"""Flow-as-a-service benchmark — warm-path economics + dedup gate.

Measures, per design, the three ways one flow request can be served:

* ``cold_s``         — full compute through the store-backed flow
  (empty store: generate, partition, place, buffer, route, signoff);
* ``warm_summary_s`` — the daemon fast path: a fresh store handle
  answers from the ``flow.summary`` artifact without unpickling the
  megabyte-scale report;
* ``warm_report_s``  — full bit-identical :class:`FlowReport` replay
  (decompress + unpickle), what ``--save-report`` clients pay.

A second section boots a real in-process daemon and performs the CI
dedup smoke: two *identical* concurrent submissions plus one distinct
one must cost exactly two flow computes — the duplicate is served from
the in-flight future or the finished artifact, never recomputed.

Writes ``BENCH_service.json`` at the repo root.

Gates (non-zero exit on failure):

* the warm summary path is >= ``WARM_SPEEDUP_GATE`` x faster than the
  cold run on every benchmarked design (the headline acceptance gate
  runs on MAERI-128; ``--smoke`` applies the same gate to the 16PE
  fabric, where the margin is even wider);
* warm replay is digest-identical to the cold run (cold/warm
  ``report_digest`` match, and the replayed report's row agrees);
* daemon dedup: 2 identical + 1 distinct request => exactly 2
  computes and >= 1 dedup/replay hit.

Run directly::

    PYTHONPATH=src:. python benchmarks/bench_service.py          # full
    PYTHONPATH=src:. python benchmarks/bench_service.py --smoke  # CI
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT))

from repro.core.flow import FlowConfig                         # noqa: E402
from repro.harness.designs import get_benchmark                # noqa: E402
from repro.obs import metrics                                  # noqa: E402
from repro.service import ArtifactStore                        # noqa: E402
from repro.service.client import ServiceClient                 # noqa: E402
from repro.service.daemon import (ServiceConfig,               # noqa: E402
                                  start_in_thread)
from repro.service.stages import run_flow_stored               # noqa: E402

BENCH_JSON = REPO_ROOT / "BENCH_service.json"
TREND_JSONL = REPO_ROOT / "benchmarks" / "results" / "trend.jsonl"

#: Acceptance: warm (summary-served) requests at least this many times
#: faster than the cold compute.
WARM_SPEEDUP_GATE = 5.0

#: Repeats for the warm timings (best-of; cold runs once — it
#: dominates wall-clock and its variance is irrelevant to the gate).
WARM_REPEATS = 3


def bench_design(key: str, workdir: Path) -> dict:
    spec = get_benchmark(key)
    config = FlowConfig(selector="none",
                        target_freq_mhz=spec.target_freq_mhz)
    root = workdir / f"store-{key}"

    store = ArtifactStore(root)
    t0 = time.perf_counter()
    cold_report, cold_summary, cached = run_flow_stored(
        spec.factory, spec.tech(), spec.seeds(), config, store)
    cold_s = time.perf_counter() - t0
    assert not cached, "store was supposed to be empty"

    warm_summary_s = min(
        _timed(lambda: run_flow_stored(
            spec.factory, spec.tech(), spec.seeds(), config,
            ArtifactStore(root), need_report=False))
        for _ in range(WARM_REPEATS))
    warm_report_s = min(
        _timed(lambda: run_flow_stored(
            spec.factory, spec.tech(), spec.seeds(), config,
            ArtifactStore(root)))
        for _ in range(WARM_REPEATS))

    _none, warm_summary, warm_cached = run_flow_stored(
        spec.factory, spec.tech(), spec.seeds(), config,
        ArtifactStore(root), need_report=False)
    warm_report, _summary, _cached = run_flow_stored(
        spec.factory, spec.tech(), spec.seeds(), config,
        ArtifactStore(root))

    return {
        "design": spec.paper_name,
        "key": key,
        "instances": len(cold_report.design.netlist.instances),
        "nets": len(cold_report.design.netlist.nets),
        "store_bytes": ArtifactStore(root).total_bytes(),
        "cold_s": round(cold_s, 3),
        "warm_summary_s": round(warm_summary_s, 5),
        "warm_report_s": round(warm_report_s, 3),
        "warm_speedup_x": round(cold_s / warm_summary_s, 1),
        "report_replay_speedup_x": round(cold_s / warm_report_s, 1),
        "warm_cached": warm_cached,
        "digest_identical": (
            warm_summary["report_digest"]
            == cold_summary["report_digest"]
            and warm_report.row() == cold_report.row()),
    }


def bench_daemon_dedup(key: str, workdir: Path) -> dict:
    """The CI smoke: 2 identical + 1 distinct concurrent submissions
    through a real daemon => 2 computes, >= 1 dedup/replay hit."""
    sockdir = tempfile.mkdtemp(prefix="rsvc-bench-", dir="/tmp")
    config = ServiceConfig(socket_path=f"{sockdir}/s.sock",
                           store_root=str(workdir / f"daemon-{key}"))
    handle = start_in_thread(config)
    names = ("service.flow_computes", "service.dedup_hits",
             "service.flow_summary_hits", "service.flow_report_hits")
    base = {n: metrics.counter(n) for n in names}
    payloads = [dict(benchmark=key, selector="none", seed=1),
                dict(benchmark=key, selector="none", seed=1),
                dict(benchmark=key, selector="none", seed=2)]
    responses: list = [None] * len(payloads)
    barrier = threading.Barrier(len(payloads))

    def submit(idx, payload):
        client = ServiceClient(config.socket_path, timeout=1800.0)
        barrier.wait()
        responses[idx] = client.submit_flow(**payload)

    threads = [threading.Thread(target=submit, args=(i, p))
               for i, p in enumerate(payloads)]
    try:
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=1800)
    finally:
        handle.stop()
        shutil.rmtree(sockdir, ignore_errors=True)

    moved = {n: metrics.counter(n) - base[n] for n in names}
    replays = (moved["service.dedup_hits"]
               + moved["service.flow_summary_hits"]
               + moved["service.flow_report_hits"])
    return {
        "key": key,
        "submissions": len(payloads),
        "all_ok": all(r and r.get("ok") for r in responses),
        "identical_digests_agree": (
            responses[0] is not None and responses[1] is not None
            and responses[0].get("report_digest")
            == responses[1].get("report_digest")),
        "distinct_digest_differs": (
            responses[0] is not None and responses[2] is not None
            and responses[0].get("report_digest")
            != responses[2].get("report_digest")),
        "flow_computes": moved["service.flow_computes"],
        "dedup_or_replay_hits": replays,
    }


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _gates(rows: list[dict], dedup: dict) -> list[str]:
    failures = []
    for row in rows:
        name = row["key"]
        if not row["warm_cached"]:
            failures.append(f"{name}: warm run was not served from "
                            "the artifact store")
        if not row["digest_identical"]:
            failures.append(f"{name}: warm replay is not "
                            "digest-identical to the cold run")
        if row["warm_speedup_x"] < WARM_SPEEDUP_GATE:
            failures.append(
                f"{name}: warm path only {row['warm_speedup_x']:.1f}x "
                f"faster than cold (< {WARM_SPEEDUP_GATE:.0f}x gate)")
    if not dedup["all_ok"]:
        failures.append("daemon dedup smoke: a submission failed")
    if dedup["flow_computes"] != 2:
        failures.append(
            f"daemon dedup smoke: {dedup['flow_computes']} computes "
            f"for 2 identical + 1 distinct submissions (expected 2)")
    if dedup["dedup_or_replay_hits"] < 1:
        failures.append("daemon dedup smoke: the duplicate submission "
                        "was not deduped or replayed")
    if not dedup["identical_digests_agree"]:
        failures.append("daemon dedup smoke: identical submissions "
                        "returned different digests")
    if not dedup["distinct_digest_differs"]:
        failures.append("daemon dedup smoke: distinct submissions "
                        "returned the same digest")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI gate: 16PE fabric only")
    args = parser.parse_args(argv)

    keys = ["maeri16_hetero"] if args.smoke \
        else ["maeri16_hetero", "maeri128_hetero"]
    workdir = Path(tempfile.mkdtemp(prefix="bench-service-"))

    try:
        rows = []
        for key in keys:
            print(f"benchmarking {key} ...", flush=True)
            row = bench_design(key, workdir)
            rows.append(row)
            for field, value in row.items():
                print(f"  {field:<24}{value}")

        dedup_key = keys[0]
        print(f"daemon dedup smoke on {dedup_key} ...", flush=True)
        dedup = bench_daemon_dedup(dedup_key, workdir)
        for field, value in dedup.items():
            print(f"  {field:<24}{value}")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    record = {"smoke": args.smoke,
              "warm_speedup_gate_x": WARM_SPEEDUP_GATE,
              "warm_repeats": WARM_REPEATS,
              "designs": rows, "daemon_dedup": dedup}
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {BENCH_JSON}")

    from repro.obs.trend import append_trend
    legs = {f"service.{row['key']}.{leg}": row[leg]
            for row in rows
            for leg in ("cold_s", "warm_summary_s", "warm_report_s")}
    append_trend(TREND_JSONL, "service", legs, smoke=args.smoke,
                 meta={"warm_repeats": WARM_REPEATS})

    failures = _gates(rows, dedup)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
