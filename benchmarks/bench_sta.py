"""STA kernel benchmark — seed loop vs CSR vs incremental update.

Times three ways of answering "what is the slack now?" on the routed
no-MLS MAERI fabrics and writes ``BENCH_sta.json`` at the repo root:

* ``seed``        — the pre-CSR behavior: rebuild the timing graph and
                    run the reference Python propagation loop;
* ``serial``      — the reference loop on a prebuilt graph (isolates
                    the propagation kernel);
* ``csr``         — the levelized ``np.maximum.at``/``np.minimum.at``
                    scatter kernel on the same prebuilt graph;
* ``incremental`` — :class:`IncrementalSta.update` after a single-net
                    MLS reroute (the refine/oracle hot-loop shape).

Every timed variant is also checked for **bit-identical** reports
(arrival, required, endpoint slack, worst_pred) — the script exits
non-zero on any divergence, which is what the CI smoke job gates on.

Run directly::

    PYTHONPATH=src python benchmarks/bench_sta.py           # both sizes
    PYTHONPATH=src python benchmarks/bench_sta.py --smoke   # 16PE, CI
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.flow import FlowConfig, prepare_design          # noqa: E402
from repro.harness.designs import get_benchmark                 # noqa: E402
from repro.mls import route_with_mls                            # noqa: E402
from repro.mls.oracle import candidate_nets                     # noqa: E402
from repro.timing import (IncrementalSta, build_timing_graph,   # noqa: E402
                          run_sta)

BENCH_JSON = REPO_ROOT / "BENCH_sta.json"
TREND_JSONL = REPO_ROOT / "benchmarks" / "results" / "trend.jsonl"

#: Single-net reroute toggles timed per design in the incremental leg.
INCR_TOGGLES = 6


def _best_of(fn, repeats: int) -> tuple[float, object]:
    """(best seconds, last result) over *repeats* calls."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _reports_identical(a, b) -> bool:
    return (a.arrival == b.arrival and a.required == b.required
            and a.worst_pred == b.worst_pred
            and a.endpoint_slack == b.endpoint_slack
            and list(a.endpoint_slack) == list(b.endpoint_slack))


def bench_design(key: str, repeats: int) -> dict:
    spec = get_benchmark(key)
    config = FlowConfig(selector="none",
                        target_freq_mhz=spec.target_freq_mhz)
    design = prepare_design(spec.factory, spec.tech(), spec.seeds(),
                            config)
    router, routing = route_with_mls(design, set())
    graph = build_timing_graph(design)
    csr = graph.csr()           # build the CSR view outside the timers

    t_seed, ref = _best_of(lambda: run_sta(design, kernel="serial"),
                           repeats)
    t_serial, serial = _best_of(
        lambda: run_sta(design, graph=graph, kernel="serial"), repeats)
    t_csr, vec = _best_of(
        lambda: run_sta(design, graph=graph, kernel="csr"), repeats)
    csr_ok = _reports_identical(vec, ref) and _reports_identical(serial,
                                                                 ref)

    inc = IncrementalSta(design, graph=graph)
    incr_ok = _reports_identical(inc.report(), ref)
    nets = [n for n in candidate_nets(design)
            if routing.tree(n.name).wirelength() > 20][:INCR_TOGGLES]
    t_incr_total = 0.0
    for net in nets:
        mls_on = net.name not in design.mls_nets
        router.reroute_net(routing, net, mls=mls_on)
        t0 = time.perf_counter()
        rep = inc.update([net.name])
        t_incr_total += time.perf_counter() - t0
        incr_ok = incr_ok and _reports_identical(rep, run_sta(design))
    t_incr = t_incr_total / max(1, len(nets))

    return {
        "design": spec.paper_name,
        "key": key,
        "pins": len(graph.pins),
        "edges": int(csr.num_edges),
        "endpoints": len(ref.endpoint_slack),
        "seed_full_sta_ms": round(t_seed * 1e3, 3),
        "serial_kernel_ms": round(t_serial * 1e3, 3),
        "csr_kernel_ms": round(t_csr * 1e3, 3),
        "incremental_update_ms": round(t_incr * 1e3, 3),
        "incremental_toggles": len(nets),
        "speedup_csr_vs_seed": round(t_seed / t_csr, 2),
        "speedup_csr_vs_serial_kernel": round(t_serial / t_csr, 2),
        "speedup_incremental_vs_seed": round(t_seed / t_incr, 2),
        "csr_bit_identical": csr_ok,
        "incremental_bit_identical": incr_ok,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="16PE only, fewer repeats (CI divergence "
                             "gate)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats per variant (best-of)")
    args = parser.parse_args(argv)

    keys = ["maeri16_hetero"] if args.smoke \
        else ["maeri16_hetero", "maeri128_hetero"]
    repeats = args.repeats or (3 if args.smoke else 5)

    rows = []
    for key in keys:
        print(f"benchmarking {key} ...", flush=True)
        row = bench_design(key, repeats)
        rows.append(row)
        for field, value in row.items():
            print(f"  {field:<32}{value}")

    from repro.obs import metrics
    record = {"repeats": repeats, "smoke": args.smoke, "designs": rows,
              "metrics": metrics.snapshot()}
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {BENCH_JSON}")

    from repro.obs.trend import append_trend
    legs = {}
    for row in rows:
        for leg in ("seed_full_sta_ms", "serial_kernel_ms",
                    "csr_kernel_ms", "incremental_update_ms"):
            name = leg[:-3] + "_s"          # the ledger speaks seconds
            legs[f"sta.{row['key']}.{name}"] = row[leg] / 1e3
    append_trend(TREND_JSONL, "sta", legs, smoke=args.smoke,
                 meta={"repeats": repeats})

    ok = all(r["csr_bit_identical"] and r["incremental_bit_identical"]
             for r in rows)
    if not ok:
        print("FAIL: kernel divergence — reports are not bit-identical",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
