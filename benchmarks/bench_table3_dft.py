"""Table III — the two MLS DFT strategies on the small MAERI fabric.

Paper: wire-based (scan-FF) DFT has slightly more total faults than
net-based (MUX) DFT but detects more, at marginally worse WNS.  The
bench also exercises the Figure 3 motivation: without DFT, MLS opens
crater die-level test coverage.
"""

from repro.harness import table3_dft_comparison
from repro.harness.designs import get_benchmark
from repro.harness.tables import run_benchmark_flow
from repro.dft import die_test_fault_sim
from repro.rng import stream


def test_table3_dft_strategies(benchmark, emit):
    table = benchmark.pedantic(table3_dft_comparison,
                               rounds=1, iterations=1)
    lines = ["Table III — MLS DFT strategy comparison (maeri16_hetero)",
             "=" * 58,
             (f"{'strategy':<14}{'total faults':>14}{'detected':>12}"
              f"{'coverage %':>12}{'WNS (ps)':>10}")]
    for strategy in ("net-based", "wire-based"):
        row = table[strategy]
        lines.append(
            f"{strategy:<14}{row['total_faults']:>14.0f}"
            f"{row['detected_faults']:>12.0f}"
            f"{row['coverage_pct']:>11.2f}%{row['wns_ps']:>10.1f}")
    emit("table3_dft", "\n".join(lines))

    net, wire = table["net-based"], table["wire-based"]
    # Table III shape.
    assert wire["total_faults"] > net["total_faults"]
    assert wire["detected_faults"] > net["detected_faults"]
    assert wire["wns_ps"] <= net["wns_ps"] + 2.0


def test_fig3_opens_destroy_coverage(benchmark, emit):
    """Figure 3 motivation: MLS opens without DFT are untestable."""
    def run():
        report = run_benchmark_flow(get_benchmark("maeri16_hetero"),
                                    "gnn", with_scan=True,
                                    dft_strategy="wire-based")
        broken = die_test_fault_sim(report.design, stream("fig3", 1),
                                    patterns=128, with_dft=False)
        fixed = die_test_fault_sim(report.design, stream("fig3", 1),
                                   patterns=128, with_dft=True)
        return broken, fixed

    broken, fixed = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("fig3_testability",
         "Figure 3 — die-level test coverage with MLS opens\n"
         + "=" * 50 + "\n"
         f"without DFT: {broken.coverage_pct:6.2f}%\n"
         f"with DFT   : {fixed.coverage_pct:6.2f}%")
    assert fixed.coverage_pct > broken.coverage_pct + 5.0
