"""GNN selector-leg benchmark — padded batches vs per-graph reference.

Times the select leg (DGI pretraining, fine-tuning, inference) of the
GNN-MLS selector two ways on the routed no-MLS fabrics and writes
``BENCH_select.json`` at the repo root:

* ``batched``             — the padded (B, L, D) path
  (``TrainConfig.vectorized=True``), one forward/backward and
  optimizer step per length-bucketed minibatch;
* ``per_graph_reference`` — the same minibatch schedule computed with
  per-graph forwards and gradient accumulation
  (``vectorized=False``), i.e. the historical per-graph kernels.

Both legs share one dataset (and its cached normalized features) and
the same seeds, so they see identical minibatches and must select the
**identical net set** — the script exits non-zero on any selection
divergence, or when the fine-tune throughput speedup falls below the
gate (3x full, 2x smoke).  This is what the ``select-smoke`` CI job
runs.

Run directly::

    PYTHONPATH=src python benchmarks/bench_select.py          # 16 + 128 PE
    PYTHONPATH=src python benchmarks/bench_select.py --smoke  # 16PE, CI
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import (TrainConfig, build_dataset,             # noqa: E402
                        decide_mls_nets, train_gnn_mls)
from repro.core.flow import FlowConfig, prepare_design          # noqa: E402
from repro.harness.designs import get_benchmark                 # noqa: E402
from repro.mls import route_with_mls                            # noqa: E402
from repro.timing import run_sta                                # noqa: E402

BENCH_JSON = REPO_ROOT / "BENCH_select.json"
TREND_JSONL = REPO_ROOT / "benchmarks" / "results" / "trend.jsonl"

#: (num_paths, num_labeled, dgi_epochs, finetune_epochs) per mode —
#: small enough to time in CI, large enough that throughput is kernel-
#: bound rather than overhead-bound.
SMOKE_SHAPE = (120, 40, 1, 3)
FULL_SHAPE = (400, 150, 2, 6)


def _time(fn):
    t0 = time.perf_counter()
    result = fn()
    return time.perf_counter() - t0, result


def bench_design(key: str, batch_size: int,
                 shape: tuple[int, int, int, int]) -> dict:
    num_paths, num_labeled, dgi_epochs, ft_epochs = shape
    spec = get_benchmark(key)
    config = FlowConfig(selector="gnn",
                        target_freq_mhz=spec.target_freq_mhz)
    design = prepare_design(spec.factory, spec.tech(), spec.seeds(),
                            config)
    router, routing = route_with_mls(design, set())
    report = run_sta(design)
    dataset_s, dataset = _time(lambda: build_dataset(
        design, router, routing, report,
        num_paths=num_paths, num_labeled=num_labeled))
    dataset.normalized()        # shared precompute, outside the timers

    row = {
        "design": spec.paper_name,
        "key": key,
        "graphs": len(dataset.graphs),
        "labeled": len(dataset.labeled_graphs),
        "batch_size": batch_size,
        "dgi_epochs": dgi_epochs,
        "finetune_epochs": ft_epochs,
        "dataset_s": round(dataset_s, 3),
    }
    selections = {}
    for leg, vectorized in (("batched", True),
                            ("per_graph_reference", False)):
        cfg = TrainConfig(dgi_epochs=dgi_epochs,
                          finetune_epochs=ft_epochs,
                          batch_size=batch_size, vectorized=vectorized)
        # Fine-tune leg in isolation (the acceptance gate's metric).
        ft_s, _ = _time(lambda: train_gnn_mls(
            dataset, spec.seeds(),
            dataclasses.replace(cfg, use_dgi=False)))
        # Whole select leg: DGI + fine-tune + batched inference.
        select_s, model = _time(
            lambda: train_gnn_mls(dataset, spec.seeds(), cfg))
        infer_s, nets = _time(lambda: decide_mls_nets(model))
        selections[leg] = nets
        visits = ft_epochs * len(dataset.labeled_graphs)
        row[leg] = {
            "finetune_s": round(ft_s, 3),
            "finetune_epoch_s": round(ft_s / ft_epochs, 4),
            "finetune_graphs_per_s": round(visits / ft_s, 1),
            "select_s": round(select_s + infer_s, 3),
            "infer_s": round(infer_s, 4),
            "nets_selected": len(nets),
        }
    ref, bat = row["per_graph_reference"], row["batched"]
    row["speedup_finetune"] = round(
        ref["finetune_s"] / bat["finetune_s"], 2)
    row["speedup_select"] = round(ref["select_s"] / bat["select_s"], 2)
    row["selection_identical"] = \
        selections["batched"] == selections["per_graph_reference"]
    return row


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="16PE only, reduced epochs, 2x gate (CI)")
    parser.add_argument("--batch", type=int, default=16,
                        help="padded minibatch size (default 16)")
    args = parser.parse_args(argv)

    keys = ["maeri16_hetero"] if args.smoke \
        else ["maeri16_hetero", "maeri128_hetero"]
    shape = SMOKE_SHAPE if args.smoke else FULL_SHAPE
    min_speedup = 2.0 if args.smoke else 3.0

    rows = []
    for key in keys:
        print(f"benchmarking {key} ...", flush=True)
        row = bench_design(key, args.batch, shape)
        rows.append(row)
        for field, value in row.items():
            print(f"  {field:<28}{value}")

    from repro.obs import metrics
    record = {"smoke": args.smoke, "batch": args.batch,
              "min_speedup": min_speedup, "designs": rows,
              "metrics": metrics.snapshot()}
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {BENCH_JSON}")

    from repro.obs.trend import append_trend
    legs = {}
    for row in rows:
        legs[f"select.{row['key']}.finetune_s"] = \
            row["batched"]["finetune_s"]
        legs[f"select.{row['key']}.select_s"] = \
            row["batched"]["select_s"]
        legs[f"select.{row['key']}.dataset_s"] = row["dataset_s"]
    append_trend(TREND_JSONL, "select", legs, smoke=args.smoke,
                 meta={"batch": args.batch})

    ok = True
    for row in rows:
        if not row["selection_identical"]:
            print(f"FAIL: {row['design']}: batched and per-graph "
                  "reference selected different net sets",
                  file=sys.stderr)
            ok = False
        if row["speedup_finetune"] < min_speedup:
            print(f"FAIL: {row['design']}: fine-tune speedup "
                  f"{row['speedup_finetune']}x below the "
                  f"{min_speedup}x gate", file=sys.stderr)
            ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
