"""Table IV — heterogeneous integration PPA (16 nm logic + 28 nm memory).

Regenerates the paper's Table IV rows for MAERI-128PE and the A7
dual-core across {No MLS, SOTA, GNN-MLS}.  Expected shape: GNN-MLS
best WNS/TNS/violations with fewer MLS nets than SOTA.
"""

from repro.harness import format_table, table4_heterogeneous
from repro.harness.tables import _PPA_METRICS


def test_table4_heterogeneous(benchmark, emit):
    tables = benchmark.pedantic(table4_heterogeneous,
                                rounds=1, iterations=1)
    blocks = []
    for bench_key, rows in tables.items():
        blocks.append(format_table(
            f"Table IV ({bench_key}) — 16nm logic + 28nm memory",
            ["none", "sota", "gnn"], rows, _PPA_METRICS))
    emit("table4_hetero", "\n\n".join(blocks))

    for bench_key, rows in tables.items():
        # Paper shape: GNN-MLS beats SOTA beats No-MLS on TNS, and
        # applies fewer MLS nets than SOTA in hetero designs.
        assert rows["gnn"]["tns_ns"] >= rows["sota"]["tns_ns"], bench_key
        assert rows["sota"]["tns_ns"] >= rows["none"]["tns_ns"], bench_key
        assert rows["gnn"]["wns_ps"] > rows["none"]["wns_ps"], bench_key
        assert 0 < rows["gnn"]["mls_nets"] < rows["sota"]["mls_nets"], \
            bench_key
