"""Table V — homogeneous integration PPA (28 nm logic + 28 nm memory).

Expected shape (paper): indiscriminate SOTA MLS *degrades* homogeneous
designs (its WNS/TNS are worse than No-MLS — dramatically so for the
A7), while GNN-MLS stays at least as good as No-MLS and beats SOTA.
"""

from repro.harness import format_table, table5_homogeneous
from repro.harness.tables import _PPA_METRICS


def test_table5_homogeneous(benchmark, emit):
    tables = benchmark.pedantic(table5_homogeneous,
                                rounds=1, iterations=1)
    blocks = []
    for bench_key, rows in tables.items():
        blocks.append(format_table(
            f"Table V ({bench_key}) — 28nm logic + 28nm memory",
            ["none", "sota", "gnn"], rows, _PPA_METRICS))
    emit("table5_homo", "\n\n".join(blocks))

    for bench_key, rows in tables.items():
        # SOTA over-application backfires in homogeneous stacks.
        assert rows["sota"]["tns_ns"] < rows["none"]["tns_ns"], bench_key
        # GNN-MLS beats SOTA everywhere.
        assert rows["gnn"]["tns_ns"] > rows["sota"]["tns_ns"], bench_key
        assert rows["gnn"]["wns_ps"] > rows["sota"]["wns_ps"], bench_key
