"""Figure 8 — timing metric comparison across all four benchmarks.

The bar-chart series (WNS / TNS / violating paths per benchmark per
flow).  Free when Tables IV/V already ran in this process (shared
flow cache).
"""

from repro.harness import fig8_timing_series


def test_fig8_timing_series(benchmark, emit):
    series = benchmark.pedantic(fig8_timing_series, rounds=1, iterations=1)
    lines = ["Figure 8 — timing metric series", "=" * 48]
    for bench, flows in series.items():
        lines.append(f"\n{bench}")
        lines.append(f"{'flow':<8}{'WNS (ps)':>12}{'TNS (ns)':>12}"
                     f"{'#vio':>8}")
        for flow in ("none", "sota", "gnn"):
            row = flows[flow]
            lines.append(f"{flow:<8}{row['wns_ps']:>12.1f}"
                         f"{row['tns_ns']:>12.2f}"
                         f"{row['vio_paths']:>8.0f}")
    emit("fig8_timing_series", "\n".join(lines))

    assert set(series) == {"maeri128_hetero", "a7_hetero",
                           "maeri256_homo", "a7_homo"}
    for flows in series.values():
        assert set(flows) == {"none", "sota", "gnn"}
        # GNN-MLS never loses to SOTA on TNS on any benchmark.
        assert flows["gnn"]["tns_ns"] >= flows["sota"]["tns_ns"]
