"""Figure 9 — IR-drop map and PDN/MLS top-layer sharing.

Paper: hetero MAERI-128 peaks at 92 mV (10 % of 0.81 V supply as the
binding case); the A7 sits near 2 %.  The top metal pair is split
between PDN stripes and signal/MLS routing.
"""

import numpy as np

from repro.harness import fig9_irdrop_map


def test_fig9_irdrop(benchmark, emit):
    data = benchmark.pedantic(fig9_irdrop_map, rounds=1, iterations=1)
    drop = data["drop_map_mv"]
    # Coarse ASCII rendering of the drop map (Figure 9a).
    scale = " .:-=+*#%@"
    peak = max(drop.max(), 1e-9)
    art = []
    for row in drop[::max(1, drop.shape[0] // 16)]:
        art.append("".join(
            scale[min(int(v / peak * (len(scale) - 1)), len(scale) - 1)]
            for v in row[::max(1, drop.shape[1] // 48)]))
    text = "\n".join([
        "Figure 9 — hetero MAERI-128 logic-tier IR-drop",
        "=" * 48,
        f"peak drop: {data['peak_drop_mv']:.1f} mV",
        f"PDN: W={data['pdn_width_um']}um P={data['pdn_pitch_um']}um "
        f"(utilization {data['pdn_util_pct']:.1f}% of top pair)",
        f"signal top-pair utilization: logic "
        f"{data['signal_top_util_logic_pct']:.1f}%, memory "
        f"{data['signal_top_util_memory_pct']:.1f}%",
        f"MLS nets on the shared layer: "
        f"{data['mls_nets_on_shared_layer']}",
        "",
        *art,
    ])
    emit("fig9_irdrop", text)

    assert data["peak_drop_mv"] > 0
    assert 0 < data["pdn_util_pct"] < 100
    # MLS nets really are sharing the memory tier's top pair.
    assert data["mls_nets_on_shared_layer"] > 0
    assert data["signal_top_util_memory_pct"] > 0
