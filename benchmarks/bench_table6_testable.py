"""Table VI — testable designs: No-MLS+DFT vs GNN-MLS+DFT (hetero).

Paper: the combined GNN-MLS + wire-based DFT framework keeps test
coverage at least as high as the No-MLS design while delivering the
timing gains (MAERI-128: 75 % fewer violating paths, 94 % TNS, 15 %
effective-frequency gain).
"""

from repro.harness import format_table, table6_testable

_METRICS = [
    ("target_freq_mhz", "Target Freq (MHz)", ".0f"),
    ("wirelength_m", "WL (m)", ".3f"),
    ("coverage_pct", "Test Cover. (%)", ".2f"),
    ("wns_ps", "WNS (ps)", ".1f"),
    ("tns_ns", "TNS (ns)", ".2f"),
    ("vio_paths", "#Vio. Paths", ".0f"),
    ("mls_nets", "#MLS Nets", ".0f"),
    ("runtime_min", "Run-Time (min)", ".2f"),
    ("power_mw", "Pwr (mW)", ".1f"),
    ("eff_freq_mhz", "Eff. Freq (MHz)", ".0f"),
]


def test_table6_testable(benchmark, emit):
    tables = benchmark.pedantic(table6_testable, rounds=1, iterations=1)
    blocks = []
    for bench_key, rows in tables.items():
        blocks.append(format_table(
            f"Table VI ({bench_key}) — testable designs (wire-based DFT)",
            ["none", "gnn"], rows, _METRICS))
    emit("table6_testable", "\n\n".join(blocks))

    for bench_key, rows in tables.items():
        none_row, gnn_row = rows["none"], rows["gnn"]
        # Timing gains survive DFT insertion: WNS and effective
        # frequency improve; TNS does not regress beyond noise.
        assert gnn_row["wns_ps"] > none_row["wns_ps"], bench_key
        assert gnn_row["eff_freq_mhz"] > none_row["eff_freq_mhz"], bench_key
        assert gnn_row["tns_ns"] > none_row["tns_ns"] - 0.1, bench_key
        # Violation counts: strong reduction on the MAERI fabric; the
        # A7's counts are small enough to jitter by a few endpoints.
        assert gnn_row["vio_paths"] <= max(
            none_row["vio_paths"] * 1.3, none_row["vio_paths"] + 6), \
            bench_key
        # Coverage stays usable.  Paper (deterministic ATPG) keeps it
        # within 0.2 points; our random-pattern sim funnels every
        # crossing's observability through one observe point, which
        # costs more — recorded as a deviation in EXPERIMENTS.md.
        assert gnn_row["coverage_pct"] > none_row["coverage_pct"] - 20.0, \
            bench_key
