"""Benchmark-suite fixtures.

Flow results are cached per-process by :mod:`repro.harness.tables`, so
the figure benches that replot table data reuse the table runs.  Every
bench renders its table/series to stdout *and* to
``benchmarks/results/<name>.txt`` for EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def emit(results_dir):
    """emit(name, text): print and persist one bench's rendering."""
    def _emit(name: str, text: str) -> None:
        print()
        print(text)
        (results_dir / f"{name}.txt").write_text(text + "\n")
    return _emit
