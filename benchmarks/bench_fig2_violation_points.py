"""Figure 2 — timing violation points (violating registers).

Paper: on hetero MAERI, SOTA reduces violation points by 68 % and
GNN-MLS by 80 % versus No-MLS.  Shape asserted: both reduce, GNN-MLS
reduces more.
"""

from repro.harness import fig2_violation_points


def test_fig2_violation_points(benchmark, emit):
    series = benchmark.pedantic(fig2_violation_points,
                                rounds=1, iterations=1)
    lines = ["Figure 2 — violation points (maeri128_hetero)",
             "=" * 48,
             f"{'flow':<10}{'violations':>12}{'reduction %':>14}"]
    for flow in ("none", "sota", "gnn"):
        row = series[flow]
        lines.append(f"{flow:<10}{row['violation_points']:>12.0f}"
                     f"{row['reduction_pct']:>13.1f}%")
    emit("fig2_violation_points", "\n".join(lines))

    assert series["none"]["reduction_pct"] == 0.0
    assert series["sota"]["reduction_pct"] > 0.0
    assert series["gnn"]["reduction_pct"] > series["sota"]["reduction_pct"]
