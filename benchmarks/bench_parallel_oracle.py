"""Parallel what-if oracle — serial vs 4-worker speedup record.

Times :func:`oracle_labels` on the routed MAERI-16PE fabric both ways,
checks the labels are identical (the engine's hard contract), and
writes ``BENCH_parallel.json`` at the repo root so the speedup is a
tracked artifact.

The speedup assertion is gated on the machine actually having >= 4
usable cores: on a 1-core container the pool cannot beat the serial
loop and the honest record shows that instead of a faked number.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core.flow import prepare_design_cached
from repro.harness.designs import get_benchmark
from repro.mls.oracle import oracle_labels
from repro.parallel import ParallelConfig, usable_cores
from repro.core.flow import FlowConfig
from repro.route import GlobalRouter

BENCH_JSON = Path(__file__).parent.parent / "BENCH_parallel.json"
TREND_JSONL = Path(__file__).parent / "results" / "trend.jsonl"
WORKERS = 4


def test_parallel_oracle_speedup(benchmark, emit):
    spec = get_benchmark("maeri16_hetero")
    config = FlowConfig(selector="oracle",
                        target_freq_mhz=spec.target_freq_mhz, pdn=False)
    design = prepare_design_cached(spec.factory, spec.tech(),
                                   spec.seeds(), config)
    router = GlobalRouter(design)
    routing = router.route_all()

    def run():
        t0 = time.perf_counter()
        serial = oracle_labels(design, router, routing)
        t_serial = time.perf_counter() - t0
        t0 = time.perf_counter()
        fanout = oracle_labels(
            design, router, routing,
            parallel=ParallelConfig(workers=WORKERS, min_items=8))
        t_parallel = time.perf_counter() - t0
        return serial, fanout, t_serial, t_parallel

    serial, fanout, t_serial, t_parallel = benchmark.pedantic(
        run, rounds=1, iterations=1)

    identical = serial == fanout
    speedup = t_serial / t_parallel if t_parallel > 0 else float("inf")
    cores = usable_cores()
    record = {
        "design": spec.paper_name,
        "key": spec.key,
        "nets": len(serial),
        "workers": WORKERS,
        "t_serial_s": round(t_serial, 4),
        "t_parallel_s": round(t_parallel, 4),
        "speedup": round(speedup, 3),
        "cpu_count": cores,
        "labels_identical": identical,
    }
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")

    from repro.obs.trend import append_trend
    append_trend(TREND_JSONL, "oracle", {
        f"oracle.{spec.key}.serial_s": record["t_serial_s"],
        f"oracle.{spec.key}.parallel_s": record["t_parallel_s"],
    }, meta={"cpu_count": cores, "workers": WORKERS})

    emit("parallel_oracle", "\n".join([
        "Parallel what-if oracle (maeri16_hetero)",
        "=" * 40,
        f"{'nets probed':<16}{record['nets']:>10}",
        f"{'serial (s)':<16}{t_serial:>10.3f}",
        f"{'4 workers (s)':<16}{t_parallel:>10.3f}",
        f"{'speedup':<16}{speedup:>10.2f}x",
        f"{'usable cores':<16}{cores:>10}",
        f"{'identical':<16}{str(identical):>10}",
    ]))

    # Hard contract: the fan-out never changes a single label.
    assert identical
    # Perf claim only where the hardware can deliver it.
    if cores >= WORKERS:
        assert speedup >= 2.0, \
            f"expected >=2x at {WORKERS} workers, got {speedup:.2f}x"
