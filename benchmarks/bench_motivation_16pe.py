"""Section II-A motivation — selective MLS on the 16PE fabric.

Paper: "in the MAERI architecture with 16PE, MLS improves critical
path slack from -76 ps without MLS to -18 ps with selective MLS."
The bench runs the exact-oracle selective policy and asserts a
substantial WNS recovery.
"""

from repro.harness.designs import get_benchmark
from repro.harness.tables import run_benchmark_flow


def test_motivation_selective_mls(benchmark, emit):
    def run():
        spec = get_benchmark("maeri16_hetero")
        none = run_benchmark_flow(spec, "none").row()
        oracle = run_benchmark_flow(spec, "oracle").row()
        return none, oracle

    none, oracle = benchmark.pedantic(run, rounds=1, iterations=1)
    recovered = 0.0
    if none["wns_ps"] < 0:
        recovered = 100.0 * (1.0 - oracle["wns_ps"] / none["wns_ps"])
    emit("motivation_16pe",
         "Section II-A — selective MLS on MAERI-16PE\n"
         + "=" * 48 + "\n"
         f"critical-path slack without MLS : {none['wns_ps']:8.1f} ps\n"
         f"critical-path slack selective   : {oracle['wns_ps']:8.1f} ps\n"
         f"WNS recovered                   : {recovered:8.1f} %\n"
         f"MLS nets applied                : {oracle['mls_nets']:8.0f}")

    assert oracle["wns_ps"] > none["wns_ps"]
    assert oracle["tns_ns"] >= none["tns_ns"]
