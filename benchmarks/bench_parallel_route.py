"""Wavefront-parallel global route — serial vs 4-worker record.

Times :meth:`GlobalRouter.route_all` both ways on a small and on the
largest benchmark design, checks trees/RC/stats are identical (the
wavefront engine's hard contract), and writes
``BENCH_route_parallel.json`` at the repo root so the speedup is a
tracked artifact.

Each record now carries the dispatch economics of the speculative
multi-wave batching (``route.dispatches`` vs ``route.waves``, plus
speculative/replayed net counts from the metrics registry): batches
must need at least 5x fewer pool round-trips than the
one-dispatch-per-wave schedule they replaced, wherever the wavefront
path actually engages.

The speedup assertion is gated on the machine actually having >= 4
usable cores: per-wave dispatch cannot beat the serial loop on a
1-core container, and the honest record shows that instead of a faked
number (on such a box the wavefront call degrades to the serial loop,
so the dispatch gate is skipped too).  The large design is prepared
with :func:`prepare_design` directly — its pickled snapshot is deep
enough to be fragile, and the fork-based pool never needs one.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core.flow import FlowConfig, prepare_design
from repro.harness.designs import get_benchmark
from repro.obs import metrics
from repro.parallel import ParallelConfig, usable_cores
from repro.route import GlobalRouter

BENCH_JSON = Path(__file__).parent.parent / "BENCH_route_parallel.json"
TREND_JSONL = Path(__file__).parent / "results" / "trend.jsonl"
WORKERS = 4
#: Smallest wave worth a pool round-trip.
MIN_WAVE = 16
#: Batches must cut pool round-trips by at least this factor vs the
#: one-dispatch-per-wave schedule.
DISPATCH_REDUCTION_GATE = 5

#: (key, is the headline/largest design).  REPRO_BENCH_SMOKE=1 keeps
#: only the small fabric (no headline design, so the dispatch/speedup
#: gates are skipped and only route identity is asserted) — the CI
#: perf-trend job uses this to record a cheap ``route.*`` trend leg.
DESIGNS = (("maeri16_hetero", False),) \
    if os.environ.get("REPRO_BENCH_SMOKE") \
    else (("maeri16_hetero", False), ("maeri128_hetero", True))


def _routing_fingerprint(result) -> dict:
    return {
        "stats": result.stats(),
        "edges": sum(len(t.edges) for t in result.trees.values()),
    }


def test_parallel_route_speedup(benchmark, emit):
    records = []

    def run():
        out = []
        for key, largest in DESIGNS:
            spec = get_benchmark(key)
            config = FlowConfig(selector="none",
                                target_freq_mhz=spec.target_freq_mhz,
                                pdn=False)
            design = prepare_design(spec.factory, spec.tech(),
                                    spec.seeds(), config)

            t0 = time.perf_counter()
            serial = GlobalRouter(design).route_all()
            t_serial = time.perf_counter() - t0

            counters0 = dict(metrics.snapshot()["counters"])
            t0 = time.perf_counter()
            wavefront = GlobalRouter(design).route_all(
                parallel=ParallelConfig(workers=WORKERS,
                                        min_items=MIN_WAVE))
            t_parallel = time.perf_counter() - t0
            counters = metrics.snapshot()["counters"]

            def delta(name: str) -> int:
                return int(counters.get(name, 0)
                           - counters0.get(name, 0))

            identical = (
                _routing_fingerprint(serial)
                == _routing_fingerprint(wavefront)
                and all(serial.trees[n].edges == wavefront.trees[n].edges
                        for n in serial.trees))
            out.append({
                "design": spec.paper_name,
                "key": key,
                "largest": largest,
                "nets": len(serial.trees),
                "workers": WORKERS,
                "t_serial_s": round(t_serial, 4),
                "t_parallel_s": round(t_parallel, 4),
                "speedup": round(t_serial / t_parallel, 3)
                if t_parallel > 0 else float("inf"),
                "identical": identical,
                "waves": delta("route.waves"),
                "dispatches": delta("route.dispatches"),
                "speculative_nets": delta("route.speculative_nets"),
                "replayed_nets": delta("route.replayed_nets"),
            })
        return out

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    cores = usable_cores()
    BENCH_JSON.write_text(json.dumps({
        "workers": WORKERS,
        "cpu_count": cores,
        "designs": records,
        "metrics": metrics.snapshot(),
    }, indent=2) + "\n")

    from repro.obs.trend import append_trend
    legs = {}
    for rec in records:
        legs[f"route.{rec['key']}.serial_s"] = rec["t_serial_s"]
        legs[f"route.{rec['key']}.parallel_s"] = rec["t_parallel_s"]
    append_trend(TREND_JSONL, "route", legs,
                 smoke=bool(os.environ.get("REPRO_BENCH_SMOKE")),
                 meta={"cpu_count": cores, "workers": WORKERS})

    lines = ["Wavefront-parallel global route", "=" * 40]
    for rec in records:
        lines += [
            rec["design"] + (" (largest)" if rec["largest"] else ""),
            f"  {'nets':<14}{rec['nets']:>10}",
            f"  {'serial (s)':<14}{rec['t_serial_s']:>10.3f}",
            f"  {'4 workers (s)':<14}{rec['t_parallel_s']:>10.3f}",
            f"  {'speedup':<14}{rec['speedup']:>10.2f}x",
            f"  {'identical':<14}{str(rec['identical']):>10}",
            f"  {'waves':<14}{rec['waves']:>10}",
            f"  {'dispatches':<14}{rec['dispatches']:>10}",
            f"  {'speculative':<14}{rec['speculative_nets']:>10}",
            f"  {'replayed':<14}{rec['replayed_nets']:>10}",
        ]
    lines.append(f"{'usable cores':<16}{cores:>10}")
    emit("parallel_route", "\n".join(lines))

    # Hard contract: the wavefront schedule never changes a route.
    assert all(rec["identical"] for rec in records)
    # Batching economics, wherever the wavefront path engaged at all
    # (dispatches == 0 means the overhead gate kept the route serial —
    # correct on a 1-core box, nothing to measure).
    for rec in records:
        if rec["largest"] and rec["dispatches"] > 0:
            assert rec["dispatches"] * DISPATCH_REDUCTION_GATE \
                <= rec["waves"], \
                f"{rec['design']}: {rec['dispatches']} dispatches for " \
                f"{rec['waves']} waves — batching under " \
                f"{DISPATCH_REDUCTION_GATE}x"
    # Perf claim only where the hardware can deliver it.
    largest = next((r for r in records if r["largest"]), None)
    if cores >= WORKERS and largest is not None:
        assert largest["speedup"] >= 1.0, \
            f"expected wavefront >= serial at {WORKERS} workers on " \
            f"{cores} cores, got {largest['speedup']:.2f}x"
