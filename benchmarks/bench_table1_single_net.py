"""Table I — single-net MLS impact (the paper's motivation).

On the hetero MAERI baseline, probing individual nets shows MLS helps
some nets and *hurts* others — e.g. the paper's n480132 improved
-62 -> -45 ps while n146095 degraded -45 -> -48 ps.  The bench reports
the strongest improvement and the strongest degradation with the
metal-layer usage strings.
"""

from repro.harness import table1_single_net


def _render(rows) -> str:
    lines = ["Table I — single-net MLS slack impact",
             "=" * 48]
    header = (f"{'case':<10}{'net':<34}{'slack before':>14}"
              f"{'slack after':>14}  metals")
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            f"{row['case']:<10}{row['net'][:32]:<34}"
            f"{row['slack_before_ps']:>12.1f}ps"
            f"{row['slack_after_ps']:>12.1f}ps  "
            f"{row['metals_before']} -> {row['metals_after']}")
    return "\n".join(lines)


def test_table1_single_net(benchmark, emit):
    rows = benchmark.pedantic(table1_single_net, rounds=1, iterations=1)
    emit("table1_single_net", _render(rows))

    cases = {row["case"]: row for row in rows}
    assert "improved" in cases and "degraded" in cases
    improved, degraded = cases["improved"], cases["degraded"]
    # MLS helps the improved net and hurts the degraded one.
    assert improved["slack_after_ps"] > improved["slack_before_ps"]
    assert degraded["slack_after_ps"] < degraded["slack_before_ps"]
    # The shared route borrows the other tier's metals.
    assert "(top)" in improved["metals_after"]
