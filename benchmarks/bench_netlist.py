"""Netlist flat-serialization benchmark — prepare-cache pickle economics.

Prepares each design through the shared flow front-end
(:func:`repro.core.flow.prepare_design`) and measures the snapshot
payload every prepare-cache entry and SnapshotPool fan-out actually
ships: ``dumps_snapshot(design)`` bytes plus dump/load wall-clock.
Writes ``BENCH_netlist.json`` at the repo root.

The ``object_graph_bytes`` baseline column is frozen: it was measured
at the seed commit (recursive pin->net->pin pickling, inside a thread
with a 1 GB stack and a 5M recursion limit — the only way that code
survived MAERI-128) and must never be re-measured against current
code.  The shipped flat core is gated against it.

Gates (non-zero exit on failure):

* restored snapshot is digest-identical to the prepared design
  (netlist + placement — the round-trip correctness contract);
* flat payload is >= ``SHRINK_GATE`` x smaller than the frozen
  object-graph baseline on every design with a baseline;
* scale budgets on the 256PE-class design: peak payload bytes always,
  prepare + dump wall-clock only on multi-core boxes (single-core CI
  wall-clock is noise — same honesty rule as ``bench_place``).

Run directly::

    PYTHONPATH=src:. python benchmarks/bench_netlist.py          # all sizes
    PYTHONPATH=src:. python benchmarks/bench_netlist.py --smoke  # CI gate
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT))

from repro.core.flow import FlowConfig, prepare_design        # noqa: E402
from repro.harness.designs import get_benchmark               # noqa: E402
from repro.parallel import usable_cores                       # noqa: E402
from repro.parallel.pool import dumps_snapshot, loads_snapshot  # noqa: E402

from tests.golden_util import netlist_digest, placement_digest  # noqa: E402

BENCH_JSON = REPO_ROOT / "BENCH_netlist.json"
TREND_JSONL = REPO_ROOT / "benchmarks" / "results" / "trend.jsonl"

#: Flat payload must be at least this many times smaller than the
#: frozen object-graph baseline (ISSUE 6 acceptance: >= 3x on MAERI-128).
SHRINK_GATE = 3.0

#: dumps_snapshot(prepared design) at the seed commit (object-graph
#: pickle; MAERI-128 measured in a 1 GB-stack helper thread because the
#: main thread segfaulted).  Frozen — do not re-measure.
OBJECT_GRAPH_BASELINE_BYTES = {
    "maeri16_hetero": 723_383,
    "maeri128_hetero": 5_330_335,
}

#: Scale budgets for the CI ``netlist-scale`` job (256PE-class design).
#: Bytes are deterministic; seconds carry generous headroom for shared
#: runners and only gate on multi-core boxes.
SCALE_BUDGETS = {
    "maeri256_homo": {
        "peak_pickle_bytes": 4_500_000,
        "prepare_s": 60.0,
        "dump_s": 5.0,
    },
}


def bench_design(key: str, repeats: int) -> dict:
    spec = get_benchmark(key)
    config = FlowConfig(selector="none",
                        target_freq_mhz=spec.target_freq_mhz)

    t0 = time.perf_counter()
    design = prepare_design(spec.factory, spec.tech(), spec.seeds(),
                            config)
    prepare_s = time.perf_counter() - t0

    payload = dumps_snapshot(design)
    dump_s = min(_timed(lambda: dumps_snapshot(design))
                 for _ in range(repeats))
    load_s = min(_timed(lambda: loads_snapshot(payload))
                 for _ in range(repeats))

    restored = loads_snapshot(payload)
    roundtrip_ok = (
        netlist_digest(restored.netlist) == netlist_digest(design.netlist)
        and placement_digest(restored) == placement_digest(design))

    baseline = OBJECT_GRAPH_BASELINE_BYTES.get(key)
    return {
        "design": spec.paper_name,
        "key": key,
        "instances": len(design.netlist.instances),
        "nets": len(design.netlist.nets),
        "prepare_s": round(prepare_s, 3),
        "flat_pickle_bytes": len(payload),
        "object_graph_bytes": baseline,
        "shrink_x": round(baseline / len(payload), 2) if baseline else None,
        "dump_s": round(dump_s, 4),
        "load_s": round(load_s, 4),
        "roundtrip_identical": roundtrip_ok,
    }


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _gates(rows: list[dict], cores: int) -> list[str]:
    failures = []
    for row in rows:
        name = row["key"]
        if not row["roundtrip_identical"]:
            failures.append(f"{name}: snapshot round trip is not "
                            "digest-identical")
        if row["shrink_x"] is not None and row["shrink_x"] < SHRINK_GATE:
            failures.append(
                f"{name}: flat payload only {row['shrink_x']:.2f}x "
                f"smaller than object-graph baseline "
                f"(< {SHRINK_GATE:.1f}x gate)")
        budget = SCALE_BUDGETS.get(name)
        if budget is None:
            continue
        if row["flat_pickle_bytes"] > budget["peak_pickle_bytes"]:
            failures.append(
                f"{name}: payload {row['flat_pickle_bytes']} B over the "
                f"{budget['peak_pickle_bytes']} B budget")
        if cores > 1:
            if row["prepare_s"] > budget["prepare_s"]:
                failures.append(
                    f"{name}: prepare took {row['prepare_s']:.1f} s "
                    f"(> {budget['prepare_s']:.0f} s budget)")
            if row["dump_s"] > budget["dump_s"]:
                failures.append(
                    f"{name}: dump took {row['dump_s']:.2f} s "
                    f"(> {budget['dump_s']:.1f} s budget)")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI gate: MAERI-128 shrink + 256PE budgets, "
                             "fewer repeats")
    parser.add_argument("--repeats", type=int, default=None,
                        help="dump/load timing repeats (best-of)")
    args = parser.parse_args(argv)

    keys = ["maeri128_hetero", "maeri256_homo"] if args.smoke \
        else ["maeri16_hetero", "maeri128_hetero", "maeri256_homo"]
    repeats = args.repeats or (2 if args.smoke else 5)
    cores = usable_cores()

    rows = []
    for key in keys:
        print(f"benchmarking {key} ...", flush=True)
        row = bench_design(key, repeats)
        rows.append(row)
        for field, value in row.items():
            print(f"  {field:<24}{value}")

    record = {"smoke": args.smoke, "repeats": repeats, "cpu_count": cores,
              "shrink_gate_x": SHRINK_GATE,
              "scale_budgets": SCALE_BUDGETS, "designs": rows}
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {BENCH_JSON}")

    from repro.obs.trend import append_trend
    legs = {f"netlist.{row['key']}.{leg}": row[leg]
            for row in rows
            for leg in ("prepare_s", "dump_s", "load_s")}
    append_trend(TREND_JSONL, "netlist", legs, smoke=args.smoke,
                 meta={"cpu_count": cores, "repeats": repeats})

    failures = _gates(rows, cores)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
