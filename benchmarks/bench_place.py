"""Placement engine benchmark — seed loops vs cached-Laplacian system.

Times the end-to-end two-tier placement (``place_design``) on the
no-MLS MAERI fabrics and writes ``BENCH_place.json`` at the repo root:

* ``seed``   — the pre-rework placer, frozen verbatim below: per-level
               Python net walks, dict-based bisection, fresh
               ``scipy.factorized`` per solve;
* ``cached`` — the shipped engine: one :class:`NetConnectivity` walk,
               one assembled sparse pattern served to every bisection
               level (``repro.place.system``), vectorized split/clamp/
               leaf layout;
* ``region`` — the opt-in block-Jacobi region-parallel refinement
               (``region_parallel=True``), fanned over the process
               pool;
* ``cg``     — the factor-reuse backend (``solver="cg"``): one SuperLU
               factorization kept as a PCG preconditioner across
               bisection levels, refactoring only when the anchor
               perturbation grows past the reuse bound.

Per-leg metric deltas (from the ``place.factor_s`` stat) record what
share of each leg's wall-clock went into factorization — the quantity
the cg backend exists to shrink.

Correctness gates (the script exits non-zero on any failure):

* cached bisection with ``reuse_system=True`` is **bit-identical** to
  ``reuse_system=False`` (fresh assembly per level) — the cached-vs-
  rebuild contract;
* region-parallel placement is deterministic across worker counts,
  legalizes cleanly, and stays within 2% HPWL of the serial placer;
* the cg placement stays within 2% HPWL of the direct placement.

Speedup is additionally gated in full mode (cached ≥ 3x seed on
MAERI-128) and loosely in smoke mode — but only when more than one
core is usable; on a 1-core box the JSON still records timings while
the gate checks correctness/quality only.  The cg factor-share gate
on MAERI-128 (share ≤ 30% of the placement leg, or ≥ 1.5x leg
speedup) applies in full mode at any core count: it measures solver
economics, not parallel scaling.

Run directly::

    PYTHONPATH=src python benchmarks/bench_place.py           # both sizes
    PYTHONPATH=src python benchmarks/bench_place.py --smoke   # 16PE, CI
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.errors import PlacementError                          # noqa: E402
from repro.harness.designs import get_benchmark                  # noqa: E402
from repro.obs import metrics                                    # noqa: E402
from repro.parallel import ParallelConfig, usable_cores          # noqa: E402
from repro.partition import partition_memory_on_logic            # noqa: E402
from repro.partition.tier import TIER_LOGIC, TIER_MEMORY         # noqa: E402
from repro.place import (NetConnectivity, Placement,             # noqa: E402
                         bisection_place, make_floorplan,
                         place_design, quadratic_solve)
from repro.place.legalize import legalize_macros, legalize_tier  # noqa: E402
from repro.place.placer import _pin_ports                        # noqa: E402

BENCH_JSON = REPO_ROOT / "BENCH_place.json"
TREND_JSONL = REPO_ROOT / "benchmarks" / "results" / "trend.jsonl"

#: Allowed relative HPWL delta: cached vs seed, region vs cached, and
#: cg vs cached.
HPWL_TOL = 0.02
#: Full-mode speedup gate for the cached engine on MAERI-128.
FULL_SPEEDUP_GATE = 3.0
#: Full-mode MAERI-128 gate on the cg leg: factorization may take at
#: most this share of the placement leg's wall-clock ...
CG_FACTOR_SHARE_GATE = 30.0
#: ... or, failing that, the cg leg must beat direct by this factor.
CG_SPEEDUP_GATE = 1.5

# --------------------------------------------------------------------------
# Frozen seed implementation (pre cached-Laplacian), kept verbatim so the
# baseline leg keeps measuring the same code forever.  Do not modernize.
# --------------------------------------------------------------------------

_CLIQUE_LIMIT = 4
_CENTER_REG = 1e-6


def _seed_quadratic_solve(netlist, fixed, fp, movable=None, anchors=None,
                          anchor_weight=0.0):
    if movable is None:
        movable = [n for n in netlist.instances if n not in fixed]
    if not movable:
        return {}
    index = {name: i for i, name in enumerate(movable)}
    n_movable = len(movable)

    rows, cols, vals = [], [], []
    diag = np.full(n_movable, _CENTER_REG, dtype=float)
    bx = np.full(n_movable, _CENTER_REG * fp.width / 2.0, dtype=float)
    by = np.full(n_movable, _CENTER_REG * fp.height / 2.0, dtype=float)

    if anchors and anchor_weight > 0.0:
        for name, (ax, ay) in anchors.items():
            i = index.get(name)
            if i is None:
                continue
            diag[i] += anchor_weight
            bx[i] += anchor_weight * ax
            by[i] += anchor_weight * ay

    def pin_key(pin):
        if pin.owner is not None:
            return pin.owner.name
        return f"port:{pin.port.name}"

    def add_edge(a_key, b_key, w):
        ia = index.get(a_key)
        ib = index.get(b_key)
        if ia is not None and ib is not None:
            diag[ia] += w
            diag[ib] += w
            rows.extend((ia, ib))
            cols.extend((ib, ia))
            vals.extend((-w, -w))
        elif ia is not None:
            pos = fixed.get(b_key)
            if pos is None:
                return
            diag[ia] += w
            bx[ia] += w * pos[0]
            by[ia] += w * pos[1]
        elif ib is not None:
            pos = fixed.get(a_key)
            if pos is None:
                return
            diag[ib] += w
            bx[ib] += w * pos[0]
            by[ib] += w * pos[1]

    star_edges = []
    n_virtual = 0
    for net in netlist.signal_nets():
        pins = net.pins()
        deg = len(pins)
        if deg < 2:
            continue
        keys = [pin_key(p) for p in pins]
        if deg <= _CLIQUE_LIMIT:
            w = 1.0 / (deg - 1)
            for i in range(deg):
                for j in range(i + 1, deg):
                    add_edge(keys[i], keys[j], w)
        else:
            w = 2.0 / deg
            star_edges.append((n_virtual, [(k, w) for k in keys]))
            n_virtual += 1

    n_total = n_movable + n_virtual
    if n_virtual:
        diag = np.concatenate([diag, np.zeros(n_virtual)])
        bx = np.concatenate([bx, np.zeros(n_virtual)])
        by = np.concatenate([by, np.zeros(n_virtual)])
        for v_idx, edges in star_edges:
            vi = n_movable + v_idx
            for key, w in edges:
                ii = index.get(key)
                if ii is not None:
                    diag[vi] += w
                    diag[ii] += w
                    rows.extend((vi, ii))
                    cols.extend((ii, vi))
                    vals.extend((-w, -w))
                else:
                    pos = fixed.get(key)
                    if pos is None:
                        continue
                    diag[vi] += w
                    bx[vi] += w * pos[0]
                    by[vi] += w * pos[1]
            if diag[vi] == 0.0:
                diag[vi] = 1.0

    lap = sp.coo_matrix(
        (np.concatenate([np.array(vals, dtype=float), diag]),
         (np.concatenate([np.array(rows, dtype=int),
                          np.arange(n_total)]),
          np.concatenate([np.array(cols, dtype=int),
                          np.arange(n_total)]))),
        shape=(n_total, n_total)).tocsc()
    solver = spla.factorized(lap)
    xs = solver(bx)
    ys = solver(by)
    return {name: (float(xs[i]), float(ys[i])) for name, i in index.items()}


@dataclass
class _SeedRegion:
    x0: float
    y0: float
    x1: float
    y1: float
    cells: list

    @property
    def width(self):
        return self.x1 - self.x0

    @property
    def height(self):
        return self.y1 - self.y0

    @property
    def center(self):
        return ((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)


def _seed_split(region, pos, area):
    axis = 0 if region.width >= region.height else 1
    ordered = sorted(region.cells, key=lambda n: (pos[n][axis], n))
    total = sum(area[n] for n in ordered)
    half, acc, cut = total / 2.0, 0.0, 0
    for i, name in enumerate(ordered):
        acc += area[name]
        if acc >= half:
            cut = i + 1
            break
    cut = max(1, min(cut, len(ordered) - 1))
    first, second = ordered[:cut], ordered[cut:]
    frac = max(0.1, min(0.9, sum(area[n] for n in first) / total))
    if axis == 0:
        xm = region.x0 + frac * region.width
        return (_SeedRegion(region.x0, region.y0, xm, region.y1, first),
                _SeedRegion(xm, region.y0, region.x1, region.y1, second))
    ym = region.y0 + frac * region.height
    return (_SeedRegion(region.x0, region.y0, region.x1, ym, first),
            _SeedRegion(region.x0, ym, region.x1, region.y1, second))


def _seed_layout_leaf(region, pos):
    cells = sorted(region.cells, key=lambda n: (pos[n][1], pos[n][0], n))
    n = len(cells)
    if n == 0:
        return {}
    cols = max(1, int(math.ceil(math.sqrt(n * max(region.width, 1e-6)
                                          / max(region.height, 1e-6)))))
    rows = int(math.ceil(n / cols))
    out = {}
    for i, name in enumerate(cells):
        r, c = divmod(i, cols)
        x = region.x0 + (c + 0.5) * region.width / cols
        y = region.y0 + (r + 0.5) * region.height / max(rows, 1)
        out[name] = (x, y)
    return out


def _seed_bisection_place(netlist, fixed, fp, movable,
                          leaf_cells=24, base_anchor=0.01):
    if not movable:
        return {}
    area = {n: max(netlist.instance(n).cell.area_um2, 0.1) for n in movable}
    pos = _seed_quadratic_solve(netlist, fixed, fp, movable=movable)
    regions = [_SeedRegion(0.0, 0.0, fp.width, fp.core_height,
                           list(movable))]
    weight = base_anchor
    while max(len(r.cells) for r in regions) > leaf_cells:
        next_regions = []
        for region in regions:
            if len(region.cells) <= leaf_cells:
                next_regions.append(region)
                continue
            a, b = _seed_split(region, pos, area)
            next_regions.extend((a, b))
        regions = next_regions
        anchors = {}
        for region in regions:
            cx, cy = region.center
            for name in region.cells:
                anchors[name] = (cx, cy)
        pos = _seed_quadratic_solve(netlist, fixed, fp, movable=movable,
                                    anchors=anchors, anchor_weight=weight)
        for region in regions:
            for name in region.cells:
                x, y = pos[name]
                pos[name] = (min(max(x, region.x0), region.x1),
                             min(max(y, region.y0), region.y1))
        weight *= 2.0

    final = {}
    for region in regions:
        final.update(_seed_layout_leaf(region, pos))
    if len(final) != len(movable):
        raise PlacementError(
            f"bisection lost cells: {len(final)} != {len(movable)}")
    return final


def _seed_legalize_tier(netlist, names, positions, fp):
    if not names:
        return {}
    widths = {}
    for name in names:
        inst = netlist.instance(name)
        if inst.is_macro:
            raise PlacementError(
                f"macro {name} must go through legalize_macros")
        widths[name] = max(fp.site_width,
                           inst.cell.area_um2 / fp.row_height)
    total_width = sum(widths.values())
    capacity = fp.num_rows * fp.width
    if total_width > capacity:
        raise PlacementError(
            f"cells need {total_width:.0f}um of row space, floorplan has "
            f"{capacity:.0f}um — increase the floorplan or utilization")

    num_rows = fp.num_rows
    row_cap = fp.width
    row_used = np.zeros(num_rows)
    row_members = [[] for _ in range(num_rows)]

    by_y = sorted(names, key=lambda n: (positions[n][1], n))
    for name in by_y:
        desired_row = int(positions[name][1] / fp.row_height)
        desired_row = min(max(desired_row, 0), num_rows - 1)
        row = desired_row
        for offset in range(num_rows):
            candidates = []
            if desired_row + offset < num_rows:
                candidates.append(desired_row + offset)
            if offset > 0 and desired_row - offset >= 0:
                candidates.append(desired_row - offset)
            found = None
            for r in candidates:
                if row_used[r] + widths[name] <= row_cap:
                    found = r
                    break
            if found is not None:
                row = found
                break
        else:
            raise PlacementError(f"no row space for {name}")
        row_used[row] += widths[name]
        row_members[row].append(name)

    legal = {}
    for row_idx, members in enumerate(row_members):
        if not members:
            continue
        members.sort(key=lambda n: (positions[n][0], n))
        cursor = 0.0
        placed = []
        for name in members:
            desired_left = positions[name][0] - widths[name] / 2.0
            left = max(cursor, desired_left)
            placed.append((name, left))
            cursor = left + widths[name]
        overflow = cursor - fp.width
        if overflow > 0:
            placed = [(n, max(0.0, left - overflow)) for n, left in placed]
            cursor = 0.0
            repacked = []
            for name, left in placed:
                left = max(cursor, left)
                repacked.append((name, left))
                cursor = left + widths[name]
            placed = repacked
        y = row_idx * fp.row_height + fp.row_height / 2.0
        for name, left in placed:
            legal[name] = (left + widths[name] / 2.0, y)
    return legal


def _seed_place_design(netlist, tiers, fp=None, utilization=0.45):
    """The pre-rework ``place_design`` flow over the frozen kernels."""
    if fp is None:
        fp = make_floorplan(netlist, utilization=utilization)
    placement = Placement(netlist, tiers)
    fixed = _pin_ports(netlist, tiers, fp, placement)
    macro_names = [n for n, inst in netlist.instances.items()
                   if inst.is_macro]
    std_names = [n for n in netlist.instances
                 if n not in set(macro_names)]
    rough = _seed_quadratic_solve(netlist, fixed, fp)
    if macro_names:
        macro_pos = legalize_macros(netlist, macro_names, rough, fp)
        for name, (x, y) in macro_pos.items():
            fixed[name] = (x, y)
            placement.set_instance(name, x, y)
    spread_pos = _seed_bisection_place(netlist, fixed, fp,
                                       movable=std_names)
    for tier in (TIER_LOGIC, TIER_MEMORY):
        tier_names = [n for n in std_names
                      if tiers.of_instance(n) == tier]
        legal = _seed_legalize_tier(netlist, tier_names, spread_pos, fp)
        for name, (x, y) in legal.items():
            placement.set_instance(name, x, y)
    placement.validate()
    return placement, fp


# --------------------------------------------------------------------------
# Benchmark harness
# --------------------------------------------------------------------------

def _best_of(fn, repeats: int) -> tuple[float, object]:
    """(best seconds, last result) over *repeats* calls."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _stat_total(name: str) -> float:
    stat = metrics.snapshot()["stats"].get(name)
    return stat["total"] if stat else 0.0


def _metered_leg(fn, repeats: int) -> tuple[float, object, float, dict]:
    """_best_of plus the leg's factor-time share and counter deltas.

    Share = ``place.factor_s`` accumulated across *all* repeats divided
    by total leg wall-clock — a ratio, so best-of jitter cancels.
    """
    factor0 = _stat_total("place.factor_s")
    counters0 = dict(metrics.snapshot()["counters"])
    t0 = time.perf_counter()
    best, result = _best_of(fn, repeats)
    wall = time.perf_counter() - t0
    factor_s = _stat_total("place.factor_s") - factor0
    share = factor_s / wall * 100.0 if wall > 0 else 0.0
    deltas = {name: value - counters0.get(name, 0)
              for name, value in metrics.snapshot()["counters"].items()
              if name.startswith("place.")}
    return best, result, share, deltas


def _placements_identical(a: Placement, b: Placement, netlist) -> bool:
    return all(a.of_instance(n) == b.of_instance(n)
               for n in netlist.instances)


def _cached_vs_rebuild_identical(netlist, tiers) -> bool:
    """Gate: serving levels from the cached system == per-level rebuild."""
    fp = make_floorplan(netlist, utilization=0.45)
    fixed = _pin_ports(netlist, tiers, fp, Placement(netlist, tiers))
    macros = [n for n, i in netlist.instances.items() if i.is_macro]
    std = [n for n, i in netlist.instances.items() if not i.is_macro]
    conn = NetConnectivity.from_netlist(netlist)
    rough = quadratic_solve(netlist, fixed, fp, conn=conn)
    fixed.update(legalize_macros(netlist, macros, rough, fp))
    cached = bisection_place(netlist, fixed, fp, movable=std, conn=conn,
                             reuse_system=True)
    rebuilt = bisection_place(netlist, fixed, fp, movable=std, conn=conn,
                              reuse_system=False)
    return cached == rebuilt


def bench_design(key: str, repeats: int, workers: int) -> dict:
    spec = get_benchmark(key)
    netlist = spec.factory(spec.tech().libraries, spec.seeds())
    tiers = partition_memory_on_logic(netlist)
    seeds = spec.seeds()

    t_seed, (seed_pl, _) = _best_of(
        lambda: _seed_place_design(netlist, tiers), repeats)
    t_cached, (cached_pl, _), share_direct, _ = _metered_leg(
        lambda: place_design(netlist, tiers, seeds), repeats)
    t_cg, (cg_pl, _), share_cg, cg_counts = _metered_leg(
        lambda: place_design(netlist, tiers, seeds, solver="cg"), repeats)
    identical = _cached_vs_rebuild_identical(netlist, tiers)

    region_cfg = ParallelConfig(workers=workers)
    t_region, (region_pl, region_fp) = _best_of(
        lambda: place_design(netlist, tiers, seeds, parallel=region_cfg,
                             region_parallel=True), 1)
    region_other, _ = place_design(
        netlist, tiers, seeds,
        parallel=ParallelConfig(workers=max(1, workers // 2)
                                if workers > 1 else 2),
        region_parallel=True)
    region_deterministic = _placements_identical(region_pl, region_other,
                                                 netlist)
    try:
        region_pl.validate()
        region_legal = True
    except PlacementError:
        region_legal = False

    try:
        cg_pl.validate()
        cg_legal = True
    except PlacementError:
        cg_legal = False

    hpwl_seed = seed_pl.hpwl()
    hpwl_cached = cached_pl.hpwl()
    hpwl_region = region_pl.hpwl()
    hpwl_cg = cg_pl.hpwl()
    return {
        "design": spec.paper_name,
        "key": key,
        "instances": len(netlist.instances),
        "nets": len(netlist.nets),
        "seed_place_s": round(t_seed, 3),
        "cached_place_s": round(t_cached, 3),
        "region_place_s": round(t_region, 3),
        "cg_place_s": round(t_cg, 3),
        "speedup_cached_vs_seed": round(t_seed / t_cached, 2),
        "speedup_cg_vs_direct": round(t_cached / t_cg, 2),
        "factor_share_direct_pct": round(share_direct, 1),
        "factor_share_cg_pct": round(share_cg, 1),
        "cg_factorizations": cg_counts.get("place.factorizations", 0),
        "cg_factor_reuse": cg_counts.get("place.factor_reuse", 0),
        "cg_fallbacks": cg_counts.get("place.cg_fallbacks", 0),
        "hpwl_seed": round(hpwl_seed, 2),
        "hpwl_cached": round(hpwl_cached, 2),
        "hpwl_region": round(hpwl_region, 2),
        "hpwl_cg": round(hpwl_cg, 2),
        "hpwl_cached_delta_pct": round(
            (hpwl_cached - hpwl_seed) / hpwl_seed * 100.0, 3),
        "hpwl_region_delta_pct": round(
            (hpwl_region - hpwl_cached) / hpwl_cached * 100.0, 3),
        "hpwl_cg_delta_pct": round(
            (hpwl_cg - hpwl_cached) / hpwl_cached * 100.0, 3),
        "cached_equals_rebuild": identical,
        "region_deterministic": region_deterministic,
        "region_legal": region_legal,
        "cg_legal": cg_legal,
        "region_workers": workers,
    }


def _gates(rows: list[dict], smoke: bool, cores: int) -> list[str]:
    failures = []
    for row in rows:
        name = row["design"]
        if not row["cached_equals_rebuild"]:
            failures.append(f"{name}: cached system != per-level rebuild")
        if not row["region_deterministic"]:
            failures.append(f"{name}: region-parallel placement varies "
                            "with worker count")
        if not row["region_legal"]:
            failures.append(f"{name}: region-parallel placement illegal")
        if abs(row["hpwl_cached_delta_pct"]) > HPWL_TOL * 100.0 \
                and row["hpwl_cached_delta_pct"] > 0:
            failures.append(f"{name}: cached HPWL regressed "
                            f"{row['hpwl_cached_delta_pct']:.2f}%")
        if row["hpwl_region_delta_pct"] > HPWL_TOL * 100.0:
            failures.append(f"{name}: region HPWL off by "
                            f"{row['hpwl_region_delta_pct']:.2f}%")
        if not row["cg_legal"]:
            failures.append(f"{name}: cg placement illegal")
        if row["hpwl_cg_delta_pct"] > HPWL_TOL * 100.0:
            failures.append(f"{name}: cg HPWL off by "
                            f"{row['hpwl_cg_delta_pct']:.2f}%")
        # Solver economics, valid at any core count: on the big fabric
        # the cg leg must either get factorization under the share
        # gate or beat direct outright on wall-clock.
        if not smoke and "128" in name \
                and row["factor_share_cg_pct"] > CG_FACTOR_SHARE_GATE \
                and row["speedup_cg_vs_direct"] < CG_SPEEDUP_GATE:
            failures.append(
                f"{name}: cg factor share "
                f"{row['factor_share_cg_pct']:.1f}% > "
                f"{CG_FACTOR_SHARE_GATE:.0f}% and speedup "
                f"{row['speedup_cg_vs_direct']:.2f}x < "
                f"{CG_SPEEDUP_GATE:.1f}x")
    if cores <= 1:
        # Honest single-core mode: wall-clock on a time-sliced box is
        # noise, so only correctness/quality gate above applies.
        return failures
    for row in rows:
        gate = FULL_SPEEDUP_GATE if (not smoke and "128" in row["design"]) \
            else 1.0
        if row["speedup_cached_vs_seed"] < gate:
            failures.append(
                f"{row['design']}: cached speedup "
                f"{row['speedup_cached_vs_seed']:.2f}x < {gate:.1f}x gate")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="16PE only, fewer repeats (CI gate)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats per variant (best-of)")
    args = parser.parse_args(argv)

    keys = ["maeri16_hetero"] if args.smoke \
        else ["maeri16_hetero", "maeri128_hetero"]
    repeats = args.repeats or (2 if args.smoke else 4)
    cores = usable_cores()
    workers = max(2, min(cores, 4)) if cores > 1 else 1

    rows = []
    for key in keys:
        print(f"benchmarking {key} ...", flush=True)
        row = bench_design(key, repeats, workers)
        rows.append(row)
        for field, value in row.items():
            print(f"  {field:<28}{value}")

    from repro.obs import metrics
    record = {"repeats": repeats, "smoke": args.smoke,
              "cpu_count": cores, "designs": rows,
              "metrics": metrics.snapshot()}
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {BENCH_JSON}")

    from repro.obs.trend import append_trend
    legs = {f"place.{row['key']}.{leg}": row[leg]
            for row in rows
            for leg in ("seed_place_s", "cached_place_s",
                        "cg_place_s", "region_place_s")}
    append_trend(TREND_JSONL, "place", legs, smoke=args.smoke,
                 meta={"cpu_count": cores, "repeats": repeats})

    failures = _gates(rows, args.smoke, cores)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
