"""Ablation — decision-policy ladder and DGI pretraining value.

Not a paper table, but the design-choice checks DESIGN.md calls out:

* policy ladder on hetero MAERI-16: random < SOTA <= GNN <= oracle on
  TNS (the GNN approximates the oracle it was trained on);
* DGI pretraining vs from-scratch fine-tuning (paper Section III-C
  argues pretraining extracts features from unlabeled paths).
"""

from repro import FlowConfig, run_flow
from repro.core.trainer import TrainConfig
from repro.harness.designs import get_benchmark
from repro.harness.tables import run_benchmark_flow


def test_ablation_policy_ladder(benchmark, emit):
    def run():
        spec = get_benchmark("maeri16_hetero")
        return {sel: run_benchmark_flow(spec, sel).row()
                for sel in ("random", "none", "sota", "gnn", "oracle")}

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation — decision policy ladder (maeri16_hetero)",
             "=" * 52,
             f"{'policy':<10}{'WNS (ps)':>12}{'TNS (ns)':>12}"
             f"{'#vio':>8}{'#MLS':>8}"]
    for sel in ("none", "random", "sota", "gnn", "oracle"):
        row = rows[sel]
        lines.append(f"{sel:<10}{row['wns_ps']:>12.1f}"
                     f"{row['tns_ns']:>12.2f}{row['vio_paths']:>8.0f}"
                     f"{row['mls_nets']:>8.0f}")
    emit("ablation_policies", "\n".join(lines))

    # The ladder: the oracle is the upper bound; the GNN approaches it
    # and beats blind policies.
    assert rows["oracle"]["tns_ns"] >= rows["gnn"]["tns_ns"] - 0.05
    assert rows["gnn"]["tns_ns"] >= rows["random"]["tns_ns"] - 0.05
    assert rows["oracle"]["tns_ns"] >= rows["none"]["tns_ns"]


def test_ablation_dgi_pretraining(benchmark, emit):
    def run():
        spec = get_benchmark("maeri16_hetero")
        out = {}
        for tag, use_dgi in (("with_dgi", True), ("no_dgi", False)):
            config = FlowConfig(
                selector="gnn",
                target_freq_mhz=spec.target_freq_mhz,
                num_paths=spec.num_paths,
                num_labeled=spec.num_labeled,
                activity=spec.activity,
                pdn=False,
                train=TrainConfig(use_dgi=use_dgi),
            )
            out[tag] = run_flow(spec.factory, spec.tech(), spec.seeds(),
                                config).row()
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("ablation_dgi",
         "Ablation — DGI pretraining (maeri16_hetero)\n" + "=" * 48 + "\n"
         + "\n".join(
             f"{tag:<10} WNS {row['wns_ps']:8.1f} ps  "
             f"TNS {row['tns_ns']:8.2f} ns  #MLS {row['mls_nets']:5.0f}"
             for tag, row in rows.items()))

    # Both variants must produce a working decision policy; DGI should
    # not be catastrophically worse (it usually helps on small label
    # budgets).
    for row in rows.values():
        assert row["mls_nets"] > 0
