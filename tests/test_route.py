"""Routing tests: Steiner, grid accounting, RC, router invariants."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RoutingError
from repro.route import (CongestionGrid, GlobalRouter, RouteConfig,
                         RouteEdge, RouteTree, extract_rc, mst_parents)
from repro.route.router import desired_pair
from repro.route.steiner import l_path_gcells
from repro.place.floorplan import Floorplan
from repro.tech import F2FVia, NODE_16NM, NODE_28NM, default_stack
from repro.timing import run_sta

STACKS = (default_stack(NODE_16NM, 6), default_stack(NODE_28NM, 6))
F2F = F2FVia()


def _mst_length(xs, ys, parents):
    return sum(abs(xs[i] - xs[p]) + abs(ys[i] - ys[p])
               for i, p in enumerate(parents) if p >= 0)


class TestSteiner:
    def test_single_point(self):
        assert mst_parents(np.array([1.0]), np.array([1.0])) == [-1]

    def test_two_points(self):
        parents = mst_parents(np.array([0.0, 3.0]), np.array([0.0, 4.0]))
        assert parents == [-1, 0]

    @given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 50)),
                    min_size=2, max_size=7, unique=True))
    @settings(max_examples=60, deadline=None)
    def test_mst_is_minimal_vs_bruteforce(self, points):
        xs = np.array([p[0] for p in points], dtype=float)
        ys = np.array([p[1] for p in points], dtype=float)
        ours = _mst_length(xs, ys, mst_parents(xs, ys))
        # Brute force over all spanning trees via Prim from each root
        # is unnecessary: MST length is unique; compare against
        # networkx for ground truth.
        import networkx as nx
        g = nx.Graph()
        for i in range(len(points)):
            for j in range(i + 1, len(points)):
                w = abs(xs[i] - xs[j]) + abs(ys[i] - ys[j])
                g.add_edge(i, j, weight=w)
        best = sum(d["weight"]
                   for *_e, d in nx.minimum_spanning_tree(g).edges(data=True))
        assert ours == pytest.approx(best)

    def test_l_path_cells_connected(self):
        cells = l_path_gcells(0, 0, 22, 13, 5.0, 10, 10)
        assert cells[0] == (0, 0)
        assert cells[-1] == (4, 2)
        for (a, b), (c, d) in zip(cells, cells[1:]):
            assert abs(a - c) + abs(b - d) == 1

    def test_l_path_clamps(self):
        cells = l_path_gcells(-10, -10, 999, 999, 5.0, 4, 4)
        assert all(0 <= ix < 4 and 0 <= iy < 4 for ix, iy in cells)


class TestRouteTree:
    def test_validate_detects_disconnection(self):
        tree = RouteTree("n")
        tree.add_node(0, 0, 0)
        tree.add_node(1, 1, 0)
        with pytest.raises(RoutingError, match="disconnected"):
            tree.validate()

    def test_validate_detects_double_parent(self):
        tree = RouteTree("n")
        for _ in range(3):
            tree.add_node(0, 0, 0)
        tree.add_edge(RouteEdge(0, 1, 1.0, 0, 0))
        tree.add_edge(RouteEdge(0, 1, 1.0, 0, 0))
        with pytest.raises(RoutingError, match="two parents"):
            tree.validate()

    def test_usage_string(self):
        tree = RouteTree("n")
        tree.add_node(0, 0, 0)
        tree.add_node(10, 0, 0)
        tree.add_edge(RouteEdge(0, 1, 10.0, 0, 0))
        stacks = {0: STACKS[0], 1: STACKS[1]}
        assert tree.usage_string(stacks, 0) == "M1-2(bot)"
        tree.add_edge(RouteEdge(0, 1, 10.0, 1, 2))  # fake shared edge
        assert "M5-6(top)" in tree.usage_string(stacks, 0)


class TestCongestionGrid:
    def make_grid(self):
        fp = Floorplan(width=50, height=50)
        return CongestionGrid(fp, STACKS, F2F, gcell_um=5.0)

    def test_capacity_ordering(self):
        grid = self.make_grid()
        caps = grid.capacity[0]
        assert caps[0] > caps[1] > caps[2]    # finer pitch = more tracks

    def test_add_release_symmetric(self):
        grid = self.make_grid()
        cells = [(1, 1), (2, 1), (3, 1)]
        grid.add_path(0, 1, cells, 1.0)
        assert grid.path_load(0, 1, cells) > 0
        grid.add_path(0, 1, cells, -1.0)
        assert grid.path_load(0, 1, cells) == 0.0

    def test_f2f_accounting(self):
        grid = self.make_grid()
        grid.add_f2f(2, 2, 3.0)
        assert grid.f2f_load(2, 2) == pytest.approx(3.0 / grid.f2f_cap)
        grid.add_f2f(2, 2, -5.0)
        assert grid.f2f_load(2, 2) == 0.0      # clamped at zero

    def test_pdn_reservation_cuts_top_pair(self):
        fp = Floorplan(width=50, height=50)
        free = CongestionGrid(fp, STACKS, F2F, pdn_reserved=(0.0, 0.0))
        reserved = CongestionGrid(fp, STACKS, F2F, pdn_reserved=(0.5, 0.5))
        top = free.top_pair(0)
        assert reserved.capacity[0][top] < free.capacity[0][top]
        assert reserved.capacity[0][0] == free.capacity[0][0]

    def test_summary_keys(self):
        grid = self.make_grid()
        summary = grid.summary()
        assert "f2f_peak" in summary
        assert "util_t0p0" in summary and "overflow_t1p2" in summary


class TestDesiredPair:
    def test_thresholds(self):
        th = (20.0, 70.0, 170.0)
        assert desired_pair(5, 3, th) == 0
        assert desired_pair(30, 3, th) == 1
        assert desired_pair(100, 3, th) == 2
        assert desired_pair(500, 3, th) == 2

    def test_clamped_to_stack(self):
        assert desired_pair(500, 2, (20.0, 70.0, 170.0)) == 1


class TestExtractRC:
    def test_two_pin_hand_computed(self):
        from repro.netlist import Netlist
        from repro.tech import build_library
        nl = Netlist("rc")
        lib = build_library(NODE_28NM)
        g0 = nl.add_instance("g0", lib.get("INV"))
        g1 = nl.add_instance("g1", lib.get("INV"))
        net = nl.add_net("n")
        net.attach(g0.output_pin)
        net.attach(g1.pin("A"))

        tree = RouteTree("n")
        tree.add_node(0, 0, 1, pin=g0.output_pin)
        tree.add_node(10, 0, 1, pin=g1.pin("A"))
        tree.add_edge(RouteEdge(0, 1, 10.0, tier=1, pair=0))
        rc = extract_rc(tree, STACKS, F2F)

        la, lb = STACKS[1].pairs()[0]
        r = (la.r_per_um + lb.r_per_um) / 2 * 10.0
        c = (la.c_per_um + lb.c_per_um) / 2 * 10.0
        sink_cap = g1.pin("A").cap_ff
        assert rc.wire_res_ohm == pytest.approx(r)
        assert rc.wire_cap_ff == pytest.approx(c)
        assert rc.load_ff == pytest.approx(c + sink_cap)
        expected = r * (c / 2 + sink_cap) / 1000.0
        assert rc.sink_delay_ps[g1.pin("A").full_name] == \
            pytest.approx(expected)

    def test_f2f_adds_rc(self):
        from repro.netlist import Netlist
        from repro.tech import build_library
        nl = Netlist("rc")
        lib = build_library(NODE_28NM)
        g0 = nl.add_instance("g0", lib.get("INV"))
        g1 = nl.add_instance("g1", lib.get("INV"))
        net = nl.add_net("n")
        net.attach(g0.output_pin)
        net.attach(g1.pin("A"))

        def build(n_f2f):
            tree = RouteTree("n")
            tree.add_node(0, 0, 0, pin=g0.output_pin)
            tree.add_node(10, 0, 0, pin=g1.pin("A"))
            tree.add_edge(RouteEdge(0, 1, 10.0, tier=0, pair=0,
                                    n_f2f=n_f2f))
            return extract_rc(tree, STACKS, F2F)
        plain = build(0)
        shared = build(2)
        assert shared.wire_res_ohm == pytest.approx(
            plain.wire_res_ohm + 2 * F2F.resistance)
        assert shared.wire_cap_ff == pytest.approx(
            plain.wire_cap_ff + 2 * F2F.capacitance)

    def test_elmore_downstream_cap_dominance(self):
        """A sink behind more resistance sees a larger delay."""
        from repro.netlist import Netlist
        from repro.tech import build_library
        nl = Netlist("rc")
        lib = build_library(NODE_28NM)
        g0 = nl.add_instance("g0", lib.get("INV"))
        g1 = nl.add_instance("g1", lib.get("INV"))
        g2 = nl.add_instance("g2", lib.get("INV"))
        net = nl.add_net("n")
        net.attach(g0.output_pin)
        net.attach(g1.pin("A"))
        net.attach(g2.pin("A"))
        tree = RouteTree("n")
        tree.add_node(0, 0, 1, pin=g0.output_pin)
        tree.add_node(10, 0, 1, pin=g1.pin("A"))
        tree.add_node(30, 0, 1, pin=g2.pin("A"))
        tree.add_edge(RouteEdge(0, 1, 10.0, tier=1, pair=0))
        tree.add_edge(RouteEdge(1, 2, 20.0, tier=1, pair=0))
        rc = extract_rc(tree, STACKS, F2F)
        assert rc.sink_delay_ps[g2.pin("A").full_name] > \
            rc.sink_delay_ps[g1.pin("A").full_name]


class TestGlobalRouter:
    def test_all_signal_nets_routed(self, routed_small_design):
        routing = routed_small_design.require_routing()
        signal = {n.name for n in routed_small_design.netlist.signal_nets()}
        assert set(routing.trees) == signal
        assert set(routing.rc) == signal

    def test_trees_validate(self, routed_small_design):
        for tree in routed_small_design.routing.trees.values():
            tree.validate()

    def test_cross_tier_nets_use_f2f(self, routed_small_design):
        d = routed_small_design
        tiers = d.require_tiers()
        for net in d.netlist.signal_nets():
            if tiers.is_cross_tier(net):
                assert d.routing.tree(net.name).f2f_count() >= 1

    def test_probe_is_nondestructive(self, fresh_small_design):
        d = fresh_small_design
        router = GlobalRouter(d)
        routing = router.route_all()
        before = run_sta(d).wns_ps
        usage_before = [u.copy() for tier in routing.grid.usage
                        for u in tier]
        nets = list(d.netlist.signal_nets())[::11][:60]
        for net in nets:
            router.probe_net(routing, net)
        usage_after = [u for tier in routing.grid.usage for u in tier]
        for ub, ua in zip(usage_before, usage_after):
            assert np.array_equal(ub, ua)
        assert run_sta(d).wns_ps == before

    def test_reroute_mls_roundtrip(self, fresh_small_design):
        d = fresh_small_design
        router = GlobalRouter(d)
        routing = router.route_all()
        tiers = d.require_tiers()
        net = next(n for n in d.netlist.signal_nets()
                   if not tiers.is_cross_tier(n)
                   and routing.tree(n.name).wirelength() > 20)
        rc_before = routing.net_rc(net.name).load_ff
        router.reroute_net(routing, net, mls=True)
        tree_on = routing.tree(net.name)
        if tree_on.num_shared_edges():
            assert net.name in d.mls_nets
            assert tree_on.f2f_count() >= 2
        router.reroute_net(routing, net, mls=False)
        assert net.name not in d.mls_nets
        assert routing.tree(net.name).num_shared_edges() == 0
        assert routing.net_rc(net.name).load_ff == pytest.approx(
            rc_before, rel=0.2)

    def test_unrouted_lookup_raises(self, routed_small_design):
        with pytest.raises(RoutingError):
            routed_small_design.routing.tree("ghost_net")
        with pytest.raises(RoutingError):
            routed_small_design.routing.net_rc("ghost_net")

    def test_stats_shape(self, routed_small_design):
        stats = routed_small_design.routing.stats()
        assert stats["nets"] > 0
        assert stats["wirelength_m"] > 0
        assert stats["mls_nets"] == 0         # routed without MLS

    def test_mls_request_produces_shared_routes(self, hetero_tech):
        from tests.conftest import build_small_design
        d = build_small_design(hetero_tech, routed=False)
        tiers = d.require_tiers()
        candidates = {n.name for n in d.netlist.signal_nets()
                      if not tiers.is_cross_tier(n)}
        router = GlobalRouter(d)
        routing = router.route_all(mls_nets=candidates)
        applied = routing.mls_applied_nets()
        assert applied
        assert applied <= candidates
        for name in list(applied)[:20]:
            tree = routing.tree(name)
            assert tree.f2f_count() >= 2 * tree.num_shared_edges()
