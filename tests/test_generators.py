"""Benchmark generator tests."""

import pytest

from repro.errors import NetlistError
from repro.netlist.generators import (A7Config, MaeriConfig,
                                      generate_a7_dual_core, generate_maeri,
                                      random_cloud)
from repro.netlist.builder import NetlistBuilder
from repro.rng import SeedBundle


class TestMaeriConfig:
    def test_defaults(self):
        cfg = MaeriConfig()
        assert cfg.pe_count == 128
        assert cfg.num_banks == 4

    def test_power_of_two_enforced(self):
        with pytest.raises(NetlistError):
            MaeriConfig(pe_count=12)

    def test_bandwidth_minimum(self):
        with pytest.raises(NetlistError):
            MaeriConfig(bandwidth=4)

    def test_display_name(self):
        assert MaeriConfig(pe_count=16, bandwidth=8).display_name \
            == "maeri_16pe_8bw"


class TestMaeriGeneration:
    @pytest.fixture(scope="class")
    def netlist(self, hetero_tech):
        return generate_maeri(MaeriConfig(pe_count=16, bandwidth=8),
                              hetero_tech.libraries, SeedBundle(5))

    def test_validates(self, netlist):
        netlist.validate()

    def test_has_both_regions(self, netlist):
        regions = {i.attrs.get("region") for i in netlist.instances.values()}
        assert regions == {"logic", "memory"}

    def test_has_sram_macros(self, netlist):
        macros = [i for i in netlist.instances.values() if i.is_macro]
        assert len(macros) == 2 * MaeriConfig(pe_count=16,
                                              bandwidth=8).num_banks
        assert all(i.attrs["region"] == "memory" for i in macros)

    def test_has_pe_array(self, netlist):
        pes = {n.split("/")[0] for n in netlist.instances if n.startswith("pe")}
        assert len(pes) == 16

    def test_scales_with_pe_count(self, hetero_tech):
        small = generate_maeri(MaeriConfig(pe_count=16, bandwidth=8),
                               hetero_tech.libraries, SeedBundle(5))
        large = generate_maeri(MaeriConfig(pe_count=64, bandwidth=16),
                               hetero_tech.libraries, SeedBundle(5))
        assert len(large.instances) > 2.5 * len(small.instances)

    def test_deterministic(self, hetero_tech):
        a = generate_maeri(MaeriConfig(pe_count=16, bandwidth=8),
                           hetero_tech.libraries, SeedBundle(5))
        b = generate_maeri(MaeriConfig(pe_count=16, bandwidth=8),
                           hetero_tech.libraries, SeedBundle(5))
        assert sorted(a.instances) == sorted(b.instances)
        assert sorted(a.nets) == sorted(b.nets)

    def test_clock_net_reaches_all_flops(self, netlist):
        clk = netlist.net("clk")
        seq = netlist.sequential_instances()
        clocked = {p.owner.name for p in clk.sinks if p.owner is not None}
        assert all(i.name in clocked for i in seq)


class TestA7Generation:
    @pytest.fixture(scope="class")
    def netlist(self, hetero_tech):
        return generate_a7_dual_core(A7Config(), hetero_tech.libraries,
                                     SeedBundle(5))

    def test_validates(self, netlist):
        netlist.validate()

    def test_two_cores(self, netlist):
        cores = {n.split("/")[0] for n in netlist.instances
                 if n.startswith("core")}
        assert {"core0", "core1"} <= cores

    def test_cache_macros_on_memory_region(self, netlist):
        macros = [i for i in netlist.instances.values() if i.is_macro]
        assert len(macros) == 2 * 2 * A7Config().cache_banks
        assert all(i.attrs["region"] == "memory" for i in macros)

    def test_pipeline_stages_present(self, netlist):
        names = set(netlist.instances)
        for stage in ("fetch", "decode", "execute", "mem", "wb"):
            assert any(f"/{stage}/" in n for n in names), stage

    def test_config_validation(self):
        with pytest.raises(NetlistError):
            A7Config(cores=0)
        with pytest.raises(NetlistError):
            A7Config(word_width=2)
        with pytest.raises(NetlistError):
            A7Config(stage_depth=1)
        with pytest.raises(NetlistError):
            A7Config(cache_banks=0)


class TestRandomCloud:
    def test_basic_shape(self, hetero_tech):
        builder = NetlistBuilder("rc", hetero_tech.libraries)
        ins = [builder.input(f"i{k}") for k in range(4)]
        outs = random_cloud(builder, ins, out_count=6, depth=4, width=8,
                            rng=SeedBundle(3).get("cloud"))
        assert len(outs) == 6
        for net in outs:
            builder.output(f"o_{net.name}", net)
        builder.done()     # validates: no dangling nets

    def test_deterministic(self, hetero_tech):
        def build(seed):
            builder = NetlistBuilder("rc", hetero_tech.libraries)
            ins = [builder.input(f"i{k}") for k in range(3)]
            outs = random_cloud(builder, ins, 4, 3, 6,
                                SeedBundle(seed).get("cloud"))
            for net in outs:
                builder.output(f"o_{net.name}", net)
            nl = builder.done()
            # Signature: instance cell types + full connectivity.
            return sorted(
                (name, inst.cell.name,
                 tuple(sorted(p.net.name for p in inst.pins.values()
                              if p.net is not None)))
                for name, inst in nl.instances.items())
        assert build(1) == build(1)
        assert build(1) != build(2)

    def test_rejects_bad_params(self, hetero_tech):
        builder = NetlistBuilder("rc", hetero_tech.libraries)
        ins = [builder.input("i0")]
        with pytest.raises(NetlistError):
            random_cloud(builder, [], 1, 1, 1, SeedBundle(1).get("x"))
        with pytest.raises(NetlistError):
            random_cloud(builder, ins, 0, 1, 1, SeedBundle(1).get("x"))
