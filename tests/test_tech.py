"""Technology model tests: nodes, metal stacks, cells, libraries."""

import numpy as np
import pytest

from repro.errors import TechError
from repro.tech import (NODE_16NM, NODE_28NM, CellType, F2FVia, MetalLayer,
                        MetalStack, build_library, default_stack, get_node)
from repro.tech.cells import reference_cells


class TestNodes:
    def test_lookup(self):
        assert get_node("28nm") is NODE_28NM
        assert get_node("16nm") is NODE_16NM

    def test_unknown_node(self):
        with pytest.raises(TechError, match="unknown technology node"):
            get_node("7nm")

    def test_16nm_is_faster_denser(self):
        assert NODE_16NM.delay_scale < NODE_28NM.delay_scale
        assert NODE_16NM.area_scale < NODE_28NM.area_scale

    def test_16nm_wires_more_resistive(self):
        assert NODE_16NM.wire_r_scale > NODE_28NM.wire_r_scale

    def test_paper_voltages(self):
        assert NODE_16NM.vdd == pytest.approx(0.81)
        assert NODE_28NM.vdd == pytest.approx(0.90)


class TestMetalStack:
    def test_default_stack_structure(self):
        stack = default_stack(NODE_28NM, 6)
        assert len(stack) == 6
        assert stack.layer("M1").index == 1
        assert stack.layer(6).name == "M6"
        assert stack.top.thick

    def test_directions_alternate(self):
        stack = default_stack(NODE_28NM, 6)
        dirs = [layer.direction for layer in stack]
        assert dirs == ["H", "V", "H", "V", "H", "V"]

    def test_pairs(self):
        stack = default_stack(NODE_28NM, 6)
        pairs = stack.pairs()
        assert len(pairs) == 3
        assert pairs[0][0].name == "M1" and pairs[0][1].name == "M2"
        assert pairs[2][1].name == "M6"

    def test_odd_stack_pairs_last_self(self):
        stack = default_stack(NODE_28NM, 5)
        pairs = stack.pairs()
        assert pairs[-1][0] is pairs[-1][1]

    def test_upper_metals_less_resistive(self):
        stack = default_stack(NODE_28NM, 6)
        assert stack.layer("M6").r_per_um < stack.layer("M1").r_per_um

    def test_wire_scale_multiplies_rc(self):
        base = default_stack(NODE_28NM, 6, wire_scale=1.0)
        scaled = default_stack(NODE_28NM, 6, wire_scale=4.0)
        for b, s in zip(base, scaled):
            assert s.r_per_um == pytest.approx(4.0 * b.r_per_um)
            assert s.c_per_um == pytest.approx(4.0 * b.c_per_um)

    def test_16nm_lower_metals_scaled_up(self):
        s16 = default_stack(NODE_16NM, 6, wire_scale=1.0)
        s28 = default_stack(NODE_28NM, 6, wire_scale=1.0)
        assert s16.layer("M1").r_per_um > s28.layer("M1").r_per_um
        # Thick top metals are node-independent.
        assert s16.layer("M6").r_per_um == pytest.approx(
            s28.layer("M6").r_per_um)

    def test_via_path(self):
        stack = default_stack(NODE_28NM, 6)
        r, c = stack.stack_via_path(1, 6)
        assert r == pytest.approx(5 * stack.via_r)
        assert c == pytest.approx(5 * stack.via_c)

    def test_describe_span(self):
        stack = default_stack(NODE_28NM, 6)
        assert stack.describe_span(1, 4) == "M1-4"
        assert stack.describe_span(6, 6) == "M6"

    def test_bad_layer_lookup(self):
        stack = default_stack(NODE_28NM, 6)
        with pytest.raises(TechError):
            stack.layer("M9")
        with pytest.raises(TechError):
            stack.layer(0)

    def test_wire_helpers(self):
        layer = default_stack(NODE_28NM, 6).layer("M3")
        assert layer.wire_resistance(10.0) == pytest.approx(
            10.0 * layer.r_per_um)
        assert layer.wire_capacitance(10.0) == pytest.approx(
            10.0 * layer.c_per_um)

    def test_invalid_stack_depth(self):
        with pytest.raises(TechError):
            default_stack(NODE_28NM, 1)
        with pytest.raises(TechError):
            default_stack(NODE_28NM, 99)


class TestF2F:
    def test_paper_defaults(self):
        via = F2FVia()
        assert via.size_um == 0.5
        assert via.pitch_um == 1.0
        assert via.resistance == 0.5
        assert via.capacitance == 0.2

    def test_rejects_nonpositive(self):
        with pytest.raises(TechError):
            F2FVia(resistance=0.0)


class TestCells:
    def test_delay_is_linear_in_load(self):
        inv = build_library(NODE_28NM).get("INV")
        d0 = inv.delay_ps(0.0)
        d10 = inv.delay_ps(10.0)
        d20 = inv.delay_ps(20.0)
        assert d0 == pytest.approx(inv.intrinsic_ps)
        assert (d20 - d10) == pytest.approx(d10 - d0)

    def test_negative_load_rejected(self):
        inv = build_library(NODE_28NM).get("INV")
        with pytest.raises(TechError):
            inv.delay_ps(-1.0)

    @pytest.mark.parametrize("name,ins,expected", [
        ("INV", (0,), 1), ("INV", (1,), 0),
        ("BUF", (1,), 1),
        ("NAND2", (1, 1), 0), ("NAND2", (1, 0), 1),
        ("NOR2", (0, 0), 1), ("NOR2", (0, 1), 0),
        ("XOR2", (1, 0), 1), ("XOR2", (1, 1), 0),
        ("XNOR2", (1, 1), 1),
        ("AOI21", (1, 1, 0), 0), ("AOI21", (0, 0, 0), 1),
        ("OAI21", (0, 0, 1), 1), ("OAI21", (1, 0, 1), 0),
        ("MUX2", (1, 0, 0), 1), ("MUX2", (1, 0, 1), 0),
        ("MAJ3", (1, 1, 0), 1), ("MAJ3", (1, 0, 0), 0),
        ("XOR3", (1, 1, 1), 1), ("XOR3", (1, 1, 0), 0),
        ("AND3", (1, 1, 1), 1), ("OR3", (0, 0, 1), 1),
    ])
    def test_logic_functions(self, name, ins, expected):
        ones = np.uint64(0xFFFFFFFFFFFFFFFF)
        lib = build_library(NODE_28NM)
        words = [ones if b else np.uint64(0) for b in ins]
        out = lib.get(name).evaluate(*words)
        assert int(out & np.uint64(1)) == expected

    def test_wrong_arity_rejected(self):
        inv = build_library(NODE_28NM).get("INV")
        with pytest.raises(TechError):
            inv.evaluate(np.uint64(0), np.uint64(0))

    def test_macro_has_no_logic(self):
        sram = build_library(NODE_28NM).get("SRAM_1KX32")
        with pytest.raises(TechError):
            sram.evaluate(*([np.uint64(0)] * 5))

    def test_sequential_cells_flagged(self):
        lib = build_library(NODE_28NM)
        assert lib.get("DFF").is_sequential
        assert lib.get("SDFF").is_scannable
        assert lib.get("LVLSHIFT").is_level_shifter
        assert lib.get("SRAM_1KX32").is_macro

    def test_pins_include_clock_and_output(self):
        dff = build_library(NODE_28NM).get("DFF")
        names = [p.name for p in dff.pins()]
        assert names == ["D", "CK", "Q"]


class TestLibrary:
    def test_scaling_16_vs_28(self):
        lib16 = build_library(NODE_16NM)
        lib28 = build_library(NODE_28NM)
        assert lib16.get("NAND2").intrinsic_ps < lib28.get("NAND2").intrinsic_ps
        assert lib16.get("NAND2").area_um2 < lib28.get("NAND2").area_um2

    def test_macro_delay_scales_sqrt(self):
        lib16 = build_library(NODE_16NM)
        lib28 = build_library(NODE_28NM)
        ratio = lib16.get("SRAM_1KX32").intrinsic_ps \
            / lib28.get("SRAM_1KX32").intrinsic_ps
        assert ratio == pytest.approx(NODE_16NM.delay_scale ** 0.5)

    def test_unknown_cell(self):
        with pytest.raises(TechError, match="not in"):
            build_library(NODE_28NM).get("NAND99")

    def test_combinational_excludes_seq_and_macro(self):
        lib = build_library(NODE_28NM)
        names = {c.name for c in lib.combinational()}
        assert "NAND2" in names
        assert "DFF" not in names
        assert "SRAM_1KX32" not in names

    def test_reference_cells_have_unique_names(self):
        cells = reference_cells()
        assert len({c.name for c in cells}) == len(cells)

    def test_library_container_protocol(self):
        lib = build_library(NODE_28NM)
        assert "INV" in lib
        assert len(lib) == len(list(lib))
        assert "INV" in lib.names()
