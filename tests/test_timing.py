"""STA tests with hand-computed references."""

import math

import pytest

from repro.design import Design
from repro.errors import TimingError
from repro.mls import route_with_mls
from repro.partition import partition_memory_on_logic
from repro.place import place_design
from repro.rng import SeedBundle
from repro.timing import (PORT_DRIVE_RES, build_timing_graph,
                          extract_worst_paths, net_whatif_delta, run_sta,
                          setup_time)
from repro.timing.delay import cell_output_delay
from repro.units import mhz_to_period_ps

from tests.conftest import TEST_SEED, make_chain_netlist


@pytest.fixture()
def chain_design(hetero_tech):
    """reg -> 3 inverters -> reg, placed and routed."""
    nl = make_chain_netlist(hetero_tech, stages=3)
    design = Design(nl, hetero_tech, 1000.0)
    design.tiers = partition_memory_on_logic(nl)
    design.placement, design.floorplan = place_design(
        nl, design.tiers, SeedBundle(TEST_SEED))
    route_with_mls(design, set())
    return design


class TestChainSTA:
    def test_arrival_matches_hand_sum(self, chain_design):
        d = chain_design
        report = run_sta(d)
        graph = report.graph
        nl = d.netlist
        launch = next(i for i in nl.sequential_instances()
                      if "launch" in i.name)
        capture = next(i for i in nl.sequential_instances()
                       if "capture" in i.name)
        routing = d.require_routing()

        def stage_delay(inst):
            net = inst.output_pin.net
            rc = routing.net_rc(net.name)
            sink = net.sinks[0]
            return cell_output_delay(inst.cell, rc.load_ff) \
                + rc.sink_delay_ps[sink.full_name]

        expected = stage_delay(launch)
        inst = launch
        # Walk the inverter chain to the capture flop.
        while True:
            sink = inst.output_pin.net.sinks[0]
            inst = sink.owner
            if inst is capture:
                break
            expected += stage_delay(inst)
        endpoint = capture.pin("D").full_name
        arrival = report.arrival[graph.pin_index[endpoint]]
        assert arrival == pytest.approx(expected, rel=1e-9)

    def test_slack_formula(self, chain_design):
        report = run_sta(chain_design)
        nl = chain_design.netlist
        capture = next(i for i in nl.sequential_instances()
                       if "capture" in i.name)
        endpoint = capture.pin("D").full_name
        arrival = report.arrival[report.graph.pin_index[endpoint]]
        expected_slack = (chain_design.clock_period_ps
                          - setup_time(capture.cell) - arrival)
        assert report.endpoint_slack[endpoint] == \
            pytest.approx(expected_slack)

    def test_meets_timing_at_low_frequency(self, chain_design):
        chain_design.clock_period_ps = mhz_to_period_ps(100)
        report = run_sta(chain_design)
        assert report.wns_ps == 0.0
        assert report.tns_ns == 0.0
        assert report.num_violating == 0
        assert report.effective_freq_mhz() == pytest.approx(100.0)

    def test_violates_at_high_frequency(self, chain_design):
        chain_design.clock_period_ps = mhz_to_period_ps(20000)
        report = run_sta(chain_design)
        assert report.wns_ps < 0
        assert report.num_violating >= 1
        # Effective frequency accounts for the violation.
        assert report.effective_freq_mhz() < 20000

    def test_worst_path_walks_the_chain(self, chain_design):
        chain_design.clock_period_ps = mhz_to_period_ps(20000)
        report = run_sta(chain_design)
        paths = extract_worst_paths(report, 1)
        assert len(paths) == 1
        path = paths[0]
        assert path.depth >= 3
        names = [p.full_name for p in path.pins]
        assert any("launch" in n for n in names)
        assert path.slack_ps == report.wns_ps

    def test_tns_is_sum_of_negatives(self, chain_design):
        chain_design.clock_period_ps = mhz_to_period_ps(20000)
        report = run_sta(chain_design)
        expected = sum(s for s in report.endpoint_slack.values() if s < 0)
        assert report.tns_ns == pytest.approx(expected / 1000.0)


class TestGraphStructure:
    def test_clock_pins_not_in_arcs(self, routed_small_design):
        graph = build_timing_graph(routed_small_design)
        for inst in routed_small_design.netlist.sequential_instances():
            ck = inst.clock_pin
            idx = graph.pin_index[ck.full_name]
            assert not graph.fanout[idx]
            assert not graph.fanin[idx]

    def test_sequential_outputs_are_sources(self, routed_small_design):
        graph = build_timing_graph(routed_small_design)
        source_idx = {i for i, _ in graph.sources}
        for inst in routed_small_design.netlist.sequential_instances():
            q = graph.pin_index[inst.output_pin.full_name]
            assert q in source_idx

    def test_endpoints_have_setup(self, routed_small_design):
        graph = build_timing_graph(routed_small_design)
        setups = dict(graph.endpoints)
        for inst in routed_small_design.netlist.sequential_instances():
            d_idx = graph.pin_index[inst.pin("D").full_name]
            assert setups[d_idx] == pytest.approx(setup_time(inst.cell))

    def test_topological_order_complete(self, routed_small_design):
        graph = build_timing_graph(routed_small_design)
        assert len(graph.topo) == len(graph.pins)

    def test_false_path_port_excluded(self, hetero_tech):
        from tests.conftest import build_small_design
        from repro.dft import insert_scan
        d = build_small_design(hetero_tech, routed=False, buffered=False)
        insert_scan(d)
        from repro.opt import insert_buffers
        insert_buffers(d)
        route_with_mls(d, set())
        graph = build_timing_graph(d)
        se_idx = graph.pin_index["port:scan_enable"]
        assert se_idx not in {i for i, _ in graph.sources}
        out_eps = {i for i, _ in graph.endpoints}
        so_idx = graph.pin_index["port:scan_out"]
        assert so_idx not in out_eps


class TestWhatIf:
    def test_delta_matches_probe_rc(self, fresh_small_design):
        from repro.route import GlobalRouter
        d = fresh_small_design
        router = GlobalRouter(d)
        routing = router.route_all()
        tiers = d.require_tiers()
        net = next(n for n in d.netlist.signal_nets()
                   if not tiers.is_cross_tier(n) and n.fanout >= 1
                   and n.driver is not None and n.driver.owner is not None
                   and routing.tree(n.name).wirelength() > 20)
        delta = net_whatif_delta(d, router, routing, net)
        rc_off, rc_on, applied = router.probe_net(routing, net)
        assert delta.applied == applied
        drive = net.driver.owner.cell.drive_res
        assert delta.delta_driver_ps == pytest.approx(
            drive * (rc_on.load_ff - rc_off.load_ff) / 1000.0)

    def test_worst_and_best_bounds(self, fresh_small_design):
        from repro.route import GlobalRouter
        d = fresh_small_design
        router = GlobalRouter(d)
        routing = router.route_all()
        for net in list(d.netlist.signal_nets())[::17][:30]:
            delta = net_whatif_delta(d, router, routing, net)
            assert delta.best_delta_ps() <= delta.worst_delta_ps() + 1e-9

    def test_whatif_matches_full_sta_reroute(self, fresh_small_design):
        """Property: for a sampled net, the what-if delta equals the
        arrival-time change measured by a from-scratch STA after an
        actual reroute.  Commit the off-route first so the probe's
        baseline coincides with the committed tree, then toggle MLS on
        and difference the two reports per sink."""
        from repro.mls.oracle import candidate_nets
        from repro.route import GlobalRouter
        from repro.rng import stream
        d = fresh_small_design
        router = GlobalRouter(d)
        routing = router.route_all()
        pool = [n for n in candidate_nets(d)
                if n.driver is not None and n.driver.owner is not None]
        rng = stream("whatif-prop", TEST_SEED)
        for idx in rng.choice(len(pool), size=5, replace=False):
            net = pool[int(idx)]
            router.reroute_net(routing, net, mls=False)
            off = run_sta(d)
            delta = net_whatif_delta(d, router, routing, net)
            router.reroute_net(routing, net, mls=True)
            on = run_sta(d)
            for sink in delta.delta_sink_ps:
                a_off = off.arrival[off.graph.pin_index[sink]]
                a_on = on.arrival[on.graph.pin_index[sink]]
                if math.isinf(a_off) or math.isinf(a_on):
                    continue    # sink unreachable from any source
                assert a_on - a_off == pytest.approx(
                    delta.path_delta_ps(sink), abs=1e-6)
            router.reroute_net(routing, net, mls=False)


class TestEffectiveFreq:
    def _report(self, period_ps: float, slack: dict[str, float]):
        from repro.timing.sta import TimingReport
        return TimingReport(clock_period_ps=period_ps, graph=None,
                            arrival=[], required=[],
                            endpoint_slack=slack, worst_pred=[])

    def test_normal_period(self):
        assert self._report(1000.0, {"a": 50.0}).effective_freq_mhz() \
            == pytest.approx(1000.0)

    def test_wns_stretches_period(self):
        assert self._report(1000.0, {"a": -250.0}).effective_freq_mhz() \
            == pytest.approx(800.0)

    def test_zero_period_is_inf_not_crash(self):
        # Regression: 1e6 / (0 - 0) used to raise ZeroDivisionError.
        assert self._report(0.0, {}).effective_freq_mhz() == math.inf

    def test_negative_period_is_inf(self):
        assert self._report(-5.0, {}).effective_freq_mhz() == math.inf
