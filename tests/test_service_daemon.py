"""Async flow-daemon concurrency suite (in-process daemon).

Each test boots a real :class:`FlowService` on a background thread —
real unix socket, real asyncio loop, real executor — against a
throwaway artifact store, then hammers it with blocking
:class:`ServiceClient` threads exactly as external processes would.

Contracts locked here:

* N concurrent *identical* submissions run the flow exactly once —
  every arrival either joins the in-flight future (dedup) or replays
  the finished artifact, observable through the ``service.*`` metrics
  the ``status`` op reports (at any ``flow_workers`` count);
* distinct requests are independent — two seeds, two computes, two
  report digests;
* a worker that crashes mid-flow surfaces the error to its waiters,
  leaves **no** flow artifact in the store (completed prepare-stage
  artifacts are fine — they are whole), clears the in-flight table,
  and the daemon keeps serving;
* socket hygiene — a stale socket file is reclaimed, a live one
  refuses a second daemon.
"""

from __future__ import annotations

import asyncio
import os
import shutil
import tempfile
import threading

import pytest

from repro.obs import metrics
from repro.service.client import ServiceClient, ServiceUnavailable
from repro.service.daemon import (FlowService, ServiceConfig,
                                  ServiceError, start_in_thread)

BENCH = "maeri16_hetero"


class _Counters:
    """Delta view over the process-global metrics registry."""

    _NAMES = ("service.flow_computes", "service.dedup_hits",
              "service.flow_summary_hits", "service.flow_report_hits",
              "service.errors", "store.puts.flow.report",
              "store.puts.flow.summary", "store.hits.prepare.design")

    def __init__(self):
        self._base = {n: metrics.counter(n) for n in self._NAMES}

    def delta(self, name: str) -> float:
        return metrics.counter(name) - self._base[name]

    def replays(self) -> float:
        return (self.delta("service.dedup_hits")
                + self.delta("service.flow_summary_hits")
                + self.delta("service.flow_report_hits"))


class _Daemon:
    def __init__(self, handle, socket_path, store_root):
        self.handle = handle
        self.socket_path = socket_path
        self.store_root = store_root

    def client(self, timeout: float = 300.0) -> ServiceClient:
        return ServiceClient(self.socket_path, timeout=timeout)

    def flow_blobs(self) -> list:
        objects = os.path.join(self.store_root, "objects")
        found = []
        for sub, _dirs, files in os.walk(objects):
            found += [f for f in files if f.startswith("flow.")]
        return found


def _start(tmp_path, flow_workers: int = 1) -> _Daemon:
    # Unix socket paths are length-limited (~104 bytes); pytest tmp
    # dirs can blow that, so sockets live in their own short dir.
    sockdir = tempfile.mkdtemp(prefix="rsvc-", dir="/tmp")
    store_root = str(tmp_path / "store")
    config = ServiceConfig(socket_path=os.path.join(sockdir, "s.sock"),
                           store_root=store_root,
                           flow_workers=flow_workers)
    handle = start_in_thread(config)
    return _Daemon(handle, config.socket_path, store_root)


@pytest.fixture()
def daemon(tmp_path):
    running = _start(tmp_path)
    yield running
    running.handle.stop()
    shutil.rmtree(os.path.dirname(running.socket_path),
                  ignore_errors=True)


def _submit_many(daemon: _Daemon, payloads: list[dict]) -> list[dict]:
    """Fire all payloads at the daemon simultaneously (one thread
    each, barrier-released) and collect the responses in order."""
    responses: list = [None] * len(payloads)
    barrier = threading.Barrier(len(payloads))

    def worker(idx: int, payload: dict) -> None:
        client = daemon.client()
        barrier.wait()
        responses[idx] = client.submit_flow(**payload)

    threads = [threading.Thread(target=worker, args=(i, p))
               for i, p in enumerate(payloads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=300)
    assert all(r is not None for r in responses)
    return responses


class TestRequestParsing:
    def test_explicit_seed_zero_is_honored(self):
        """Regression: ``or``-defaulting silently replaced an explicit
        seed=0 with the default experiment seed."""
        from repro.harness.designs import DEFAULT_EXPERIMENT_SEED
        from repro.service.daemon import build_flow_config

        assert DEFAULT_EXPERIMENT_SEED != 0
        _, _, seeds = build_flow_config({"benchmark": BENCH, "seed": 0})
        assert seeds.seed == 0
        _, _, defaulted = build_flow_config({"benchmark": BENCH})
        assert defaulted.seed == DEFAULT_EXPERIMENT_SEED


class TestProtocol:
    def test_ping_status_shutdown(self, daemon):
        client = daemon.client()
        pong = client.ping()
        assert pong["ok"] and pong["pid"] == os.getpid()
        status = client.status()
        assert status["ok"]
        assert status["queue_depth"] == 0
        assert status["inflight"] == 0
        assert status["flow_workers"] == 1
        assert status["store"]["entries"] == 0
        assert "service.requests" in status["metrics"]["counters"]

    def test_unknown_op_is_an_error_not_a_crash(self, daemon):
        client = daemon.client()
        counters = _Counters()
        response = client.request({"op": "frobnicate"})
        assert not response["ok"]
        assert "frobnicate" in response["error"]
        assert counters.delta("service.errors") == 1
        assert client.ping()["ok"]      # daemon survived

    def test_bad_flow_request_is_an_error(self, daemon):
        client = daemon.client()
        response = client.submit_flow(benchmark="no_such_benchmark")
        assert not response["ok"]
        assert "no_such_benchmark" in response["error"]
        assert client.ping()["ok"]


class TestDedup:
    @pytest.mark.parametrize("flow_workers", [1, 3])
    def test_identical_submissions_compute_once(self, tmp_path,
                                                flow_workers):
        daemon = _start(tmp_path, flow_workers=flow_workers)
        try:
            counters = _Counters()
            n = 8
            payload = dict(benchmark=BENCH, selector="none")
            responses = _submit_many(daemon, [payload] * n)
            assert all(r["ok"] for r in responses)
            digests = {r["report_digest"] for r in responses}
            assert len(digests) == 1
            rows = [r["row"] for r in responses]
            assert all(row == rows[0] for row in rows)
            # The flow ran exactly once; every other arrival either
            # joined the in-flight future or replayed the artifact.
            assert counters.delta("service.flow_computes") == 1
            assert counters.replays() == n - 1
            status = daemon.client().status()
            assert status["inflight"] == 0
            assert status["queue_depth"] == 0
        finally:
            daemon.handle.stop()

    def test_distinct_requests_independent(self, daemon):
        counters = _Counters()
        responses = _submit_many(daemon, [
            dict(benchmark=BENCH, selector="none", seed=1),
            dict(benchmark=BENCH, selector="none", seed=2),
        ])
        assert all(r["ok"] for r in responses)
        assert counters.delta("service.flow_computes") == 2
        assert counters.delta("service.dedup_hits") == 0
        assert responses[0]["report_digest"] != \
            responses[1]["report_digest"]

    def test_warm_resubmission_replays_artifact(self, daemon):
        counters = _Counters()
        payload = dict(benchmark=BENCH, selector="none")
        cold = daemon.client().submit_flow(**payload)
        warm = daemon.client().submit_flow(**payload)
        assert not cold["cached"] and warm["cached"]
        assert warm["report_digest"] == cold["report_digest"]
        assert warm["row"] == cold["row"]
        assert counters.delta("service.flow_computes") == 1
        assert counters.delta("service.flow_summary_hits") == 1

    @pytest.mark.slow
    def test_mixed_storm_any_worker_count(self, tmp_path):
        """16 mixed submissions, 4 workers: three distinct cells, each
        computed exactly once, everything else deduped/replayed."""
        daemon = _start(tmp_path, flow_workers=4)
        try:
            counters = _Counters()
            cells = [dict(benchmark=BENCH, selector="none", seed=s)
                     for s in (1, 2, 3)]
            payloads = [cells[i % 3] for i in range(16)]
            responses = _submit_many(daemon, payloads)
            assert all(r["ok"] for r in responses)
            assert counters.delta("service.flow_computes") == 3
            assert counters.replays() == 16 - 3
            by_seed = {}
            for payload, response in zip(payloads, responses):
                by_seed.setdefault(payload["seed"],
                                   set()).add(response["report_digest"])
            assert all(len(d) == 1 for d in by_seed.values())
            assert len(set().union(*by_seed.values())) == 3
        finally:
            daemon.handle.stop()


class TestCrashRecovery:
    def test_crashed_flow_leaves_no_flow_artifact(self, daemon,
                                                  monkeypatch):
        import repro.service.stages as stages

        def exploding_run_flow(*args, **kwargs):
            raise RuntimeError("simulated mid-flow crash")

        monkeypatch.setattr(stages, "run_flow", exploding_run_flow)
        counters = _Counters()
        response = daemon.client().submit_flow(benchmark=BENCH,
                                               selector="none")
        assert not response["ok"]
        assert "simulated mid-flow crash" in response["error"]
        # No flow.report / flow.summary blob may exist — crashes must
        # never publish partial results.
        assert daemon.flow_blobs() == []
        assert counters.delta("store.puts.flow.report") == 0
        assert counters.delta("store.puts.flow.summary") == 0
        status = daemon.client().status()
        assert status["ok"] and status["inflight"] == 0
        # The daemon recovers: un-patch, resubmit, and the completed
        # prepare artifacts from before the crash are reused.
        monkeypatch.undo()
        retry = daemon.client().submit_flow(benchmark=BENCH,
                                            selector="none")
        assert retry["ok"] and not retry["cached"]
        assert counters.delta("service.flow_computes") == 2
        assert counters.delta("store.hits.prepare.design") == 1
        assert len(daemon.flow_blobs()) == 2

    def test_crash_surfaces_to_every_deduped_waiter(self, daemon,
                                                    monkeypatch):
        import repro.service.stages as stages

        release = threading.Event()

        def stalling_crash(*args, **kwargs):
            release.wait(timeout=30)
            raise RuntimeError("deferred crash")

        monkeypatch.setattr(stages, "run_flow_stored", stalling_crash)
        payload = dict(benchmark=BENCH, selector="none")
        responses: list = [None] * 3
        barrier = threading.Barrier(4)

        def submit(idx):
            client = daemon.client()
            barrier.wait()
            responses[idx] = client.submit_flow(**payload)

        threads = [threading.Thread(target=submit, args=(i,))
                   for i in range(3)]
        for t in threads:
            t.start()
        barrier.wait()                  # all three are in flight
        release.set()
        for t in threads:
            t.join(timeout=60)
        assert all(r is not None and not r["ok"] for r in responses)
        assert all("deferred crash" in r["error"] for r in responses)
        assert daemon.client().status()["inflight"] == 0


class TestSocketHygiene:
    def test_stale_socket_reclaimed(self, tmp_path):
        sockdir = tempfile.mkdtemp(prefix="rsvc-", dir="/tmp")
        socket_path = os.path.join(sockdir, "s.sock")
        open(socket_path, "wb").close()     # dead leftover
        config = ServiceConfig(socket_path=socket_path,
                               store_root=str(tmp_path / "store"))
        handle = start_in_thread(config)
        try:
            assert ServiceClient(socket_path).ping()["ok"]
        finally:
            handle.stop()
            shutil.rmtree(sockdir, ignore_errors=True)

    def test_live_socket_refuses_second_daemon(self, daemon, tmp_path):
        config = ServiceConfig(socket_path=daemon.socket_path,
                               store_root=str(tmp_path / "store2"))
        with pytest.raises(ServiceError, match="already running"):
            asyncio.run(FlowService(config).serve())
        # ... and the original daemon is unharmed.
        assert daemon.client().ping()["ok"]

    def test_shutdown_removes_socket(self, tmp_path):
        running = _start(tmp_path)
        sockdir = os.path.dirname(running.socket_path)
        try:
            assert running.client().shutdown()["ok"]
            running.handle.thread.join(timeout=30)
            assert not running.handle.thread.is_alive()
            assert not os.path.exists(running.socket_path)
            with pytest.raises(ServiceUnavailable):
                ServiceClient(running.socket_path, timeout=1.0).ping()
        finally:
            running.handle.stop()
            shutil.rmtree(sockdir, ignore_errors=True)


class TestTelemetry:
    """Protocol-v2 observability: health/metrics ops, request ids,
    per-op latency histograms, and flight-recorder visibility."""

    def test_health_op(self, daemon):
        health = daemon.client().health()
        assert health["ok"]
        assert health["status"] == "ok"
        assert health["pid"] == os.getpid()      # in-process daemon
        assert health["protocol"] == 2
        assert health["uptime_s"] >= 0
        assert health["inflight"] == 0

    def test_metrics_op_is_valid_exposition(self, daemon, tmp_path):
        from repro.obs.schema import validate_prometheus_text
        client = daemon.client()
        client.ping()                            # move a latency hist
        text = client.metrics_prometheus()
        path = tmp_path / "scrape.prom"
        path.write_text(text)
        info = validate_prometheus_text(path)
        assert info["samples"] > 0
        assert "# TYPE repro_service_latency_s histogram" in text
        # Per-op breakdown: the pings we just made have their own
        # histogram family.
        assert "repro_service_latency_s_ping_bucket" in text

    def test_flow_response_carries_request_id(self, daemon):
        response = daemon.client().submit_flow(
            benchmark=BENCH, selector="none", seed=411)
        assert response["ok"]
        assert response["request_id"].startswith("req-")
        # A warm replay of the same request is a new request id.
        again = daemon.client().submit_flow(
            benchmark=BENCH, selector="none", seed=411)
        assert again["request_id"] != response["request_id"]

    def test_status_reports_inflight_and_flight_recorder(self, daemon):
        status = daemon.client().status()
        assert status["ok"]
        assert status["inflight_requests"] == []     # idle daemon
        assert status["flight"]["armed"]
        assert status["flight"]["dumps"] >= 0
        assert "flight" in status["flight"]["dir"]

    def test_flow_latency_lands_in_histograms(self, daemon):
        daemon.client().submit_flow(benchmark=BENCH, selector="none",
                                    seed=412)
        snap = metrics.snapshot()["histograms"]
        assert snap["service.latency_s"]["count"] > 0
        assert snap["service.flow_serve_s"]["count"] > 0
