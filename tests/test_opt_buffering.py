"""Repeater-insertion tests."""

import pytest

from repro.design import Design
from repro.errors import PlacementError
from repro.netlist import NetlistBuilder
from repro.opt import insert_buffers
from repro.partition import partition_memory_on_logic
from repro.place import Placement
from repro.place.floorplan import Floorplan
from repro.rng import SeedBundle


def _line_design(hetero_tech, sink_positions, fanout_cell="INV"):
    """One driver at the origin, sinks at given positions."""
    builder = NetlistBuilder("line", hetero_tech.libraries)
    clock = builder.clock_net("clk")
    clock.attach(builder.netlist.add_port("ck", "in").pin)
    d_in = builder.input("d")
    q = builder.flop(d_in, clock, hint="drv")
    sinks = []
    for i, _ in enumerate(sink_positions):
        out = builder.gate("INV", q, hint=f"ld{i}")
        builder.output(f"o{i}", out)
        sinks.append(f"ld{i}")
    nl = builder.done()
    design = Design(nl, hetero_tech, 1000.0)
    design.tiers = partition_memory_on_logic(nl)
    fp = Floorplan(width=400, height=400)
    placement = Placement(nl, design.tiers)
    for name in nl.instances:
        placement.set_instance(name, 2.0, 2.0)
    for i, (x, y) in enumerate(sink_positions):
        inst = next(n for n in nl.instances if n.startswith(f"ld{i}"))
        placement.set_instance(inst, x, y)
    for port in nl.ports:
        placement.set_port(port, 0.0, 0.0)
    design.placement = placement
    design.floorplan = fp
    return design


class TestChains:
    def test_long_two_pin_net_gets_chain(self, hetero_tech):
        design = _line_design(hetero_tech, [(200.0, 2.0)])
        stats = insert_buffers(design, l_buf_um=40.0)
        assert stats.buffers_added >= 4          # ~200 um / 40 um
        design.netlist.validate()

    def test_spans_bounded_after_pass(self, hetero_tech):
        design = _line_design(hetero_tech, [(200.0, 2.0), (2.0, 350.0)])
        insert_buffers(design, l_buf_um=40.0)
        placement = design.placement
        for net in design.netlist.signal_nets():
            if net.driver is None:
                continue
            dloc = placement.of_pin(net.driver)
            for sink in net.sinks:
                sloc = placement.of_pin(sink)
                span = abs(dloc.x - sloc.x) + abs(dloc.y - sloc.y)
                assert span <= 40.0 + 1e-6

    def test_short_net_untouched(self, hetero_tech):
        design = _line_design(hetero_tech, [(10.0, 2.0)])
        stats = insert_buffers(design, l_buf_um=40.0)
        assert stats.buffers_added == 0


class TestFanout:
    def test_high_fanout_clustered(self, hetero_tech):
        sinks = [(5.0 + i, 5.0) for i in range(20)]
        design = _line_design(hetero_tech, sinks)
        insert_buffers(design, l_buf_um=40.0, max_fanout=8)
        for net in design.netlist.signal_nets():
            assert net.fanout <= 20          # root split into groups
        design.netlist.validate()

    def test_buffers_inherit_tier(self, hetero_tech):
        design = _line_design(hetero_tech, [(200.0, 2.0)])
        insert_buffers(design, l_buf_um=40.0)
        tiers = design.require_tiers()
        for name, inst in design.netlist.instances.items():
            if inst.attrs.get("buffered"):
                assert tiers.of_instance(name) == 0


class TestValidation:
    def test_param_checks(self, hetero_tech):
        design = _line_design(hetero_tech, [(10.0, 2.0)])
        with pytest.raises(PlacementError):
            insert_buffers(design, l_buf_um=-1)
        with pytest.raises(PlacementError):
            insert_buffers(design, max_fanout=1)

    def test_stats_recorded_on_design(self, hetero_tech):
        design = _line_design(hetero_tech, [(200.0, 2.0)])
        stats = insert_buffers(design)
        assert design.notes["buffering"] is stats
        assert stats.nets_processed > 0
