"""Harness tests with an injected tiny benchmark (keeps CI fast)."""

import pytest

from repro.core.trainer import TrainConfig
from repro.harness.designs import BENCHMARKS, BenchmarkSpec
from repro.harness.tables import (clear_flow_cache, flow_comparison_rows,
                                  run_benchmark_flow)
from repro.netlist.generators import MaeriConfig, generate_maeri


def _tiny_factory(libraries, seeds):
    return generate_maeri(MaeriConfig(pe_count=16, bandwidth=8),
                          libraries, seeds)


@pytest.fixture()
def tiny_benchmark(monkeypatch):
    spec = BenchmarkSpec(
        key="tiny_test",
        paper_name="tiny",
        logic_node="16nm", memory_node="28nm", beol_layers=6,
        target_freq_mhz=1900.0, paper_target_mhz=2500.0,
        factory=_tiny_factory,
        num_paths=60, num_labeled=30,
    )
    monkeypatch.setitem(BENCHMARKS, "tiny_test", spec)
    clear_flow_cache()
    yield spec
    clear_flow_cache()


class TestFlowCache:
    def test_cache_hit_returns_same_report(self, tiny_benchmark):
        a = run_benchmark_flow(tiny_benchmark, "none")
        b = run_benchmark_flow(tiny_benchmark, "none")
        assert a is b

    def test_cache_varies_by_selector_and_options(self, tiny_benchmark):
        a = run_benchmark_flow(tiny_benchmark, "none")
        b = run_benchmark_flow(tiny_benchmark, "sota")
        assert a is not b
        c = run_benchmark_flow(tiny_benchmark, "none", seed=999)
        assert a is not c

    def test_flow_comparison_rows(self, tiny_benchmark):
        rows = flow_comparison_rows("tiny_test", selectors=("none", "sota"))
        assert set(rows) == {"none", "sota"}
        assert rows["none"]["mls_nets"] == 0


class TestSpecHelpers:
    def test_tech_and_seeds(self, tiny_benchmark):
        tech = tiny_benchmark.tech()
        assert tech.is_heterogeneous
        assert tiny_benchmark.seeds(1).seed == 1

    def test_registry_specs_consistent(self):
        for key, spec in BENCHMARKS.items():
            if key == "tiny_test":
                continue
            assert spec.key == key
            assert spec.target_freq_mhz <= spec.paper_target_mhz
            assert spec.num_labeled <= spec.num_paths
