"""Batched selector-leg equivalence and determinism.

Locks the contract of the padded (B, L, D) rework: batched forwards
match per-graph forwards within 1e-9 (padding rows contribute exact
zeros), the masked losses equal their per-graph means, length
bucketing partitions the epoch order deterministically, the
``vectorized=False`` reference trainer tracks the padded trainer, and
two same-seed runs select the identical net set.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (EncoderConfig, GraphTransformer, TrainConfig,
                        build_dataset, decide_mls_nets, train_gnn_mls)
from repro.core.batching import (length_bucketed_batches, pad_batch,
                                 pad_rows)
from repro.core.dgi import DGIPretrainer
from repro.core.classifier import DecisionHead
from repro.nn.functional import (binary_cross_entropy_with_logits,
                                 dgi_loss, masked_bce_with_logits,
                                 masked_dgi_loss)
from repro.nn.tensor import Tensor
from repro.route import GlobalRouter
from repro.rng import SeedBundle
from repro.timing import run_sta

from tests.conftest import TEST_SEED, build_small_design

#: Forward/loss equivalence tolerance the issue gates on: padding
#: changes reduction grouping (pairwise summation), never the terms.
TOL = 1e-9

DIM = 7
CFG = EncoderConfig(in_dim=DIM, d_model=8, heads=2, layers=2,
                    ff_mult=2, max_len=64)


def _encoder(seed: int = 0) -> GraphTransformer:
    return GraphTransformer(CFG, np.random.default_rng(seed))


def _mats(rng: np.random.Generator, lengths: list[int]) -> list[np.ndarray]:
    return [rng.normal(size=(n, DIM)) for n in lengths]


lengths_strategy = st.lists(st.integers(1, 24), min_size=1, max_size=7)


class TestBatchedForwardEquivalence:
    @given(lengths=lengths_strategy, seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_padded_rows_match_per_graph_forward(self, lengths, seed):
        """Each real row of a padded batched forward equals the
        per-graph (N, D) forward of that graph — including graphs far
        longer than the bucket median, which maximize padding."""
        rng = np.random.default_rng(seed)
        encoder = _encoder(seed % 1000)
        mats = _mats(rng, lengths)
        batch, mask = pad_batch(mats)
        out = encoder(Tensor(batch), mask).data
        for i, m in enumerate(mats):
            alone = encoder(Tensor(m)).data
            np.testing.assert_allclose(out[i, : m.shape[0]], alone,
                                       rtol=0, atol=TOL)

    def test_all_padding_row_is_finite_and_isolated(self):
        """A fully masked row must not poison the real rows (softmax
        over zero kept keys) and must come out finite itself."""
        rng = np.random.default_rng(7)
        encoder = _encoder(3)
        m = rng.normal(size=(5, DIM))
        batch = np.zeros((2, 5, DIM))
        batch[0] = m
        mask = np.zeros((2, 5), dtype=bool)
        mask[0] = True                     # row 1 is pure padding
        out = encoder(Tensor(batch), mask).data
        assert np.isfinite(out).all()
        np.testing.assert_allclose(out[0], encoder(Tensor(m)).data,
                                   rtol=0, atol=TOL)

    @given(lengths=lengths_strategy, seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_masked_softmax_grads_flow_like_per_graph(self, lengths, seed):
        """Parameter gradients of a masked batched forward equal the
        sum of per-graph gradients (padding contributes exact zeros)."""
        rng = np.random.default_rng(seed)
        encoder = _encoder(seed % 1000)
        mats = _mats(rng, lengths)
        batch, mask = pad_batch(mats)
        out = encoder(Tensor(batch), mask)
        (out * Tensor(mask[:, :, None].astype(np.float64))).sum().backward()
        batched_grads = [p.grad.copy() for p in encoder.parameters()]
        encoder.zero_grad()
        for m in mats:
            encoder(Tensor(m)).sum().backward()
        for got, p in zip(batched_grads, encoder.parameters()):
            np.testing.assert_allclose(got, p.grad, rtol=0, atol=TOL)
        encoder.zero_grad()


class TestMaskedLosses:
    @given(lengths=lengths_strategy, seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_masked_bce_equals_mean_of_per_row_bce(self, lengths, seed):
        rng = np.random.default_rng(seed)
        logits_rows = [rng.normal(size=n) for n in lengths]
        targets_rows = [(rng.random(n) < 0.5).astype(np.float64)
                        for n in lengths]
        length = max(lengths)
        logits = Tensor(pad_rows(logits_rows, length))
        targets = pad_rows(targets_rows, length)
        mask = pad_rows([np.ones(n) for n in lengths], length,
                        dtype=bool)
        batched = masked_bce_with_logits(logits, targets, mask,
                                         pos_weight=2.5)
        per_row = [binary_cross_entropy_with_logits(
            Tensor(lo[:, None]), Tensor(t[:, None]), pos_weight=2.5)
            for lo, t in zip(logits_rows, targets_rows)]
        expect = np.mean([float(l.data) for l in per_row])
        assert float(batched.data) == pytest.approx(expect, abs=TOL)

    def test_masked_bce_skips_empty_rows(self):
        logits = Tensor(np.zeros((2, 3)))
        targets = np.ones((2, 3))
        mask = np.array([[True, True, False],
                         [False, False, False]])
        loss = masked_bce_with_logits(logits, targets, mask)
        only = masked_bce_with_logits(Tensor(np.zeros((1, 3))),
                                      np.ones((1, 3)), mask[:1])
        assert float(loss.data) == pytest.approx(float(only.data), abs=TOL)

    def test_batched_dgi_loss_matches_per_graph(self):
        """With corruption pinned deterministic, loss_for_batch equals
        the mean of loss_for over the same graphs."""
        rng = np.random.default_rng(11)
        mats = _mats(rng, [4, 9, 6])
        pre = DGIPretrainer(_encoder(5), np.random.default_rng(2))
        pre.corrupt = lambda m: m[::-1].copy()
        batched = pre.loss_for_batch(mats)
        expect = np.mean([float(pre.loss_for(m).data) for m in mats])
        assert float(batched.data) == pytest.approx(expect, abs=TOL)


class TestBucketing:
    @given(n=st.integers(1, 40), batch=st.integers(1, 9),
           seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_batches_partition_the_order(self, n, batch, seed):
        rng = np.random.default_rng(seed)
        lengths = rng.integers(1, 30, size=n)
        order = rng.permutation(n)
        batches = length_bucketed_batches(lengths, order, batch,
                                          rng=rng if batch > 1 else None)
        flat = np.concatenate(batches)
        assert sorted(flat.tolist()) == list(range(n))
        assert all(len(b) <= batch for b in batches)

    def test_batch_size_one_preserves_order_exactly(self):
        lengths = np.array([5, 2, 9, 1])
        order = np.array([2, 0, 3, 1])
        batches = length_bucketed_batches(lengths, order, 1)
        assert [int(b[0]) for b in batches] == [2, 0, 3, 1]

    def test_same_seed_same_buckets(self):
        lengths = np.random.default_rng(3).integers(1, 30, size=25)
        runs = []
        for _ in range(2):
            rng = np.random.default_rng(99)
            order = rng.permutation(25)
            runs.append(length_bucketed_batches(lengths, order, 4,
                                                rng=rng))
        assert all((a == b).all() for a, b in zip(*runs))


@pytest.fixture(scope="module")
def trained_pair(hetero_tech):
    """One dataset + the configs the equivalence tests compare."""
    design = build_small_design(hetero_tech)
    router = GlobalRouter(design)
    routing = router.route_all()
    report = run_sta(design)
    dataset = build_dataset(design, router, routing, report,
                            num_paths=100, num_labeled=30)
    config = TrainConfig(dgi_epochs=2, finetune_epochs=3, batch_size=4)
    return dataset, config


class TestTrainerEquivalence:
    def test_vectorized_tracks_accumulation_reference(self, trained_pair):
        """The padded trainer and the per-graph gradient-accumulation
        reference see the same minibatches and produce loss
        trajectories within tolerance plus the identical net set."""
        dataset, config = trained_pair
        runs = {}
        for vectorized in (True, False):
            cfg = dataclasses.replace(config, vectorized=vectorized)
            model = train_gnn_mls(dataset, SeedBundle(TEST_SEED), cfg)
            runs[vectorized] = (model.history,
                               decide_mls_nets(model))
        hist_v, nets_v = runs[True]
        hist_r, nets_r = runs[False]
        for key in ("dgi", "finetune"):
            np.testing.assert_allclose(hist_v[key], hist_r[key],
                                       rtol=0, atol=1e-9)
        assert nets_v == nets_r

    def test_same_seed_selects_identical_nets(self, trained_pair):
        dataset, config = trained_pair
        picks = []
        for _ in range(2):
            model = train_gnn_mls(dataset, SeedBundle(TEST_SEED), config)
            picks.append((decide_mls_nets(model), model.history))
        assert picks[0][0] == picks[1][0]
        for key in ("dgi", "finetune"):
            assert picks[0][1][key] == picks[1][1][key]

    def test_batch_size_one_is_the_reference_schedule(self, trained_pair):
        """batch_size=1 ignores ``vectorized`` — both settings run the
        exact historical per-graph loop, bit-identically."""
        dataset, config = trained_pair
        hists = []
        for vectorized in (True, False):
            cfg = dataclasses.replace(config, batch_size=1,
                                      vectorized=vectorized)
            model = train_gnn_mls(dataset, SeedBundle(TEST_SEED), cfg)
            hists.append(model.history)
        for key in ("dgi", "finetune"):
            assert hists[0][key] == hists[1][key]

    def test_batched_inference_matches_per_graph(self, trained_pair):
        dataset, config = trained_pair
        model = train_gnn_mls(dataset, SeedBundle(TEST_SEED), config)
        batched = model.net_probabilities(dataset.graphs)
        model.config = dataclasses.replace(config, batch_size=1)
        reference = model.net_probabilities(dataset.graphs)
        assert batched.keys() == reference.keys()
        for name, p in reference.items():
            assert batched[name] == pytest.approx(p, abs=TOL)

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(ValueError, match="batch_size"):
            TrainConfig(batch_size=0)
