"""DFT tests: scan insertion, fault universe, fault simulation, the two
MLS DFT strategies, SCOAP."""

import numpy as np
import pytest

from repro.dft import (NET_BASED, WIRE_BASED, apply_mls_dft,
                       build_fault_universe, compute_scoap,
                       die_test_fault_sim, insert_scan, simulate_faults,
                       untestable_fault_fraction)
from repro.dft.scoap import estimate_coverage_pct
from repro.errors import DFTError
from repro.mls import oracle_select, route_with_mls
from repro.rng import stream
from repro.route import GlobalRouter
from repro.timing import run_sta

from tests.conftest import build_small_design, make_chain_netlist


@pytest.fixture()
def scanned_design(hetero_tech):
    design = build_small_design(hetero_tech, routed=False, buffered=False)
    chain = insert_scan(design)
    from repro.opt import insert_buffers
    insert_buffers(design)
    route_with_mls(design, set())
    return design, chain


class TestScan:
    def test_all_flops_scannable(self, scanned_design):
        design, chain = scanned_design
        flops = [i for i in design.netlist.sequential_instances()
                 if not i.is_macro]
        assert len(chain.elements) == len(flops)
        for inst in flops:
            assert inst.cell.is_scannable

    def test_chain_connectivity(self, scanned_design):
        design, chain = scanned_design
        nl = design.netlist
        # Walk from scan_in following SI pins.
        current = nl.port("scan_in").pin.net
        visited = []
        while True:
            si_sinks = [p for p in current.sinks
                        if p.owner is not None and p.name == "SI"]
            if not si_sinks:
                break
            inst = si_sinks[0].owner
            visited.append(inst.name)
            current = inst.output_pin.net
        assert visited == chain.elements
        # scan_out is reachable from the last Q net (possibly through
        # repeaters the buffering pass inserted).
        frontier = [current]
        found = False
        while frontier and not found:
            net = frontier.pop()
            for p in net.sinks:
                if p.port is not None and p.port.name == "scan_out":
                    found = True
                    break
                if p.owner is not None and p.owner.cell.name.startswith("BUF"):
                    out = p.owner.output_pin.net
                    if out is not None:
                        frontier.append(out)
        assert found

    def test_scan_enable_fans_to_all(self, scanned_design):
        design, chain = scanned_design
        se_net = design.netlist.net("scan_enable_net")
        se_owners = {p.owner.name for p in se_net.sinks
                     if p.owner is not None}
        assert set(chain.elements) <= se_owners

    def test_double_insertion_rejected(self, scanned_design):
        design, _ = scanned_design
        with pytest.raises(DFTError, match="already"):
            insert_scan(design)

    def test_netlist_still_valid(self, scanned_design):
        scanned_design[0].netlist.validate()


class TestFaultUniverse:
    def test_counts(self, hetero_tech):
        nl = make_chain_netlist(hetero_tech, stages=3)
        universe = build_fault_universe(nl)
        assert universe.total > 0
        assert len(universe) <= universe.total     # collapsing shrinks
        assert universe.collapse_ratio <= 1.0

    def test_single_input_cells_collapsed(self, hetero_tech):
        nl = make_chain_netlist(hetero_tech, stages=3)
        universe = build_fault_universe(nl)
        inv_input_faults = [f for f in universe
                            if "/A" in f.site and f.kind == "in"]
        assert not inv_input_faults

    def test_clock_pins_excluded(self, hetero_tech):
        nl = make_chain_netlist(hetero_tech, stages=1)
        universe = build_fault_universe(nl)
        assert not any("/CK" in f.site for f in universe)


class TestFaultSim:
    def test_chain_fully_testable(self, hetero_tech):
        nl = make_chain_netlist(hetero_tech, stages=4)
        universe = build_fault_universe(nl)
        result = simulate_faults(nl, universe, stream("fs", 1),
                                 patterns=128)
        # An inverter chain between scannable points detects everything.
        assert result.coverage_pct == pytest.approx(100.0)
        assert result.detected_total == result.total_faults

    def test_patterns_must_be_word_multiple(self, hetero_tech):
        nl = make_chain_netlist(hetero_tech)
        universe = build_fault_universe(nl)
        with pytest.raises(DFTError):
            simulate_faults(nl, universe, stream("fs", 1), patterns=100)

    def test_cut_net_kills_coverage(self, hetero_tech):
        nl = make_chain_netlist(hetero_tech, stages=4)
        universe = build_fault_universe(nl)
        rng = stream("fs", 1)
        # Cut the net right after the launch flop.
        launch = next(i for i in nl.sequential_instances()
                      if "launch" in i.name)
        cut = {launch.output_pin.net.name}
        result = simulate_faults(nl, universe, rng, patterns=128,
                                 cut_nets=cut)
        assert result.coverage_pct < 60.0

    def test_deterministic(self, hetero_tech):
        nl = make_chain_netlist(hetero_tech, stages=4)
        universe = build_fault_universe(nl)
        a = simulate_faults(nl, universe, stream("fs", 7), patterns=128)
        b = simulate_faults(nl, universe, stream("fs", 7), patterns=128)
        assert a.detected_collapsed == b.detected_collapsed


class TestLogic3:
    def test_exact_x_through_mux(self, hetero_tech):
        """A MUX with a known select must resolve despite an X input."""
        from repro.dft.logic3 import eval_gate
        lib = hetero_tech.libraries["logic"]
        mux = lib.get("MUX2")
        ones = np.array([np.uint64(0xFFFFFFFFFFFFFFFF)])
        zeros = np.array([np.uint64(0)])
        # A unknown, B known-1, S known-1 (select B).
        value, known = eval_gate(
            mux,
            [zeros, ones, ones],
            [zeros, ones, ones],
        )
        assert int(known[0]) == 0xFFFFFFFFFFFFFFFF
        assert int(value[0]) == 0xFFFFFFFFFFFFFFFF

    def test_and_with_controlling_zero(self, hetero_tech):
        from repro.dft.logic3 import eval_gate
        lib = hetero_tech.libraries["logic"]
        and2 = lib.get("AND2")
        ones = np.array([np.uint64(0xFFFFFFFFFFFFFFFF)])
        zeros = np.array([np.uint64(0)])
        # A = known 0 (controlling), B = X -> out known 0.
        value, known = eval_gate(and2, [zeros, zeros], [ones, zeros])
        assert int(known[0]) == 0xFFFFFFFFFFFFFFFF
        assert int(value[0]) == 0

    def test_xor_with_x_stays_x(self, hetero_tech):
        from repro.dft.logic3 import eval_gate
        lib = hetero_tech.libraries["logic"]
        xor2 = lib.get("XOR2")
        ones = np.array([np.uint64(0xFFFFFFFFFFFFFFFF)])
        zeros = np.array([np.uint64(0)])
        _, known = eval_gate(xor2, [ones, zeros], [ones, zeros])
        assert int(known[0]) == 0


@pytest.fixture()
def mls_design(hetero_tech):
    """A scanned, routed 16PE with oracle MLS applied."""
    design = build_small_design(hetero_tech, routed=False, buffered=False)
    insert_scan(design)
    from repro.opt import insert_buffers
    insert_buffers(design)
    router, routing = route_with_mls(design, set())
    selected = oracle_select(design, router, routing)
    router, routing = route_with_mls(design, selected)
    return design, router, routing


class TestMlsDft:
    def test_opens_destroy_coverage(self, mls_design):
        design, _, _ = mls_design
        loss = untestable_fault_fraction(design, stream("dt", 3),
                                         patterns=128)
        assert loss > 5.0           # Figure 3: designs become untestable

    def test_net_based_restores(self, mls_design):
        design, router, routing = mls_design
        broken = die_test_fault_sim(design, stream("dt", 3),
                                    patterns=128, with_dft=False)
        before_applied = len(routing.mls_applied_nets())
        crossings, cells = apply_mls_dft(design, router, routing,
                                         NET_BASED)
        assert crossings == before_applied
        assert cells == crossings           # one MUX per net
        fixed = die_test_fault_sim(design, stream("dt", 3),
                                   patterns=128, with_dft=True)
        assert fixed.coverage_pct > broken.coverage_pct + 10.0
        design.netlist.validate()

    def test_wire_based_beats_net_based(self, hetero_tech):
        def run(strategy):
            design = build_small_design(hetero_tech, routed=False,
                                        buffered=False)
            insert_scan(design)
            from repro.opt import insert_buffers
            insert_buffers(design)
            router, routing = route_with_mls(design, set())
            selected = oracle_select(design, router, routing)
            router, routing = route_with_mls(design, selected)
            apply_mls_dft(design, router, routing, strategy)
            sim = die_test_fault_sim(design, stream("dt", 3),
                                     patterns=128, with_dft=True)
            sta = run_sta(design)
            return sim, sta
        net_sim, net_sta = run(NET_BASED)
        wire_sim, wire_sta = run(WIRE_BASED)
        # Table III shape: wire-based has more total faults and detects
        # more; its WNS is no better than net-based's.
        assert wire_sim.total_faults > net_sim.total_faults
        assert wire_sim.detected_total > net_sim.detected_total
        assert wire_sta.wns_ps <= net_sta.wns_ps + 1.0

    def test_unknown_strategy(self, mls_design):
        design, router, routing = mls_design
        with pytest.raises(DFTError):
            apply_mls_dft(design, router, routing, "quantum")


class TestScoap:
    def test_chain_values(self, hetero_tech):
        nl = make_chain_netlist(hetero_tech, stages=2)
        scoap = compute_scoap(nl)
        launch = next(i for i in nl.sequential_instances()
                      if "launch" in i.name)
        q_net = launch.output_pin.net.name
        assert scoap.cc0[q_net] == 1.0
        assert scoap.cc1[q_net] == 1.0
        # Deeper nets are harder to control.
        deeper = launch.output_pin.net
        while deeper.sinks and deeper.sinks[0].owner is not None \
                and not deeper.sinks[0].owner.is_sequential:
            deeper = deeper.sinks[0].owner.output_pin.net
        assert scoap.cc1[deeper.name] > 1.0

    def test_cut_makes_uncontrollable(self, hetero_tech):
        nl = make_chain_netlist(hetero_tech, stages=3)
        launch = next(i for i in nl.sequential_instances()
                      if "launch" in i.name)
        cut = {launch.output_pin.net.name}
        scoap = compute_scoap(nl, cut_nets=cut)
        # Everything downstream of the cut is unreachable.
        downstream = launch.output_pin.net.sinks[0].owner
        out = downstream.output_pin.net.name
        assert scoap.cc1[out] == float("inf")

    def test_estimate_tracks_exact_direction(self, hetero_tech):
        """SCOAP estimate must degrade when nets are cut, like the
        exact simulation does."""
        nl = make_chain_netlist(hetero_tech, stages=3)
        launch = next(i for i in nl.sequential_instances()
                      if "launch" in i.name)
        whole = estimate_coverage_pct(nl, compute_scoap(nl))
        cut = estimate_coverage_pct(
            nl, compute_scoap(nl, {launch.output_pin.net.name}))
        assert cut < whole
