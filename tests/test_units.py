"""Unit conversion tests."""

import pytest
from hypothesis import given, strategies as st

from repro import units


def test_distance_roundtrip():
    assert units.mm_to_um(1.5) == 1500.0
    assert units.um_to_mm(1500.0) == 1.5
    assert units.um_to_m(1_000_000.0) == pytest.approx(1.0)


def test_time_roundtrip():
    assert units.ns_to_ps(2.5) == 2500.0
    assert units.ps_to_ns(2500.0) == 2.5


def test_capacitance_roundtrip():
    assert units.pf_to_ff(0.5) == 500.0
    assert units.ff_to_pf(500.0) == 0.5


def test_frequency_period():
    assert units.mhz_to_period_ps(2500) == pytest.approx(400.0)
    assert units.period_ps_to_mhz(400.0) == pytest.approx(2500.0)


def test_frequency_rejects_nonpositive():
    with pytest.raises(ValueError):
        units.mhz_to_period_ps(0)
    with pytest.raises(ValueError):
        units.period_ps_to_mhz(-1)


def test_rc_to_ps():
    # 1 kohm x 1000 fF = 1 ns = 1000 ps.
    assert units.rc_to_ps(1000.0, 1000.0) == pytest.approx(1000.0)
    # 100 ohm x 10 fF = 1e-12 s = 1 ps.
    assert units.rc_to_ps(100.0, 10.0) == pytest.approx(1.0)
    assert units.rc_to_ps(0.0, 5.0) == 0.0


@given(st.floats(min_value=1e-3, max_value=1e6,
                 allow_nan=False, allow_infinity=False))
def test_frequency_period_inverse(mhz):
    assert units.period_ps_to_mhz(
        units.mhz_to_period_ps(mhz)) == pytest.approx(mhz, rel=1e-9)


@given(st.floats(min_value=0, max_value=1e6),
       st.floats(min_value=0, max_value=1e6))
def test_rc_nonnegative(r, c):
    assert units.rc_to_ps(r, c) >= 0.0
