"""Tier assignment and FM partitioning tests."""

import pytest

from repro.errors import PartitionError
from repro.netlist.generators import MaeriConfig, generate_maeri
from repro.partition import (TIER_LOGIC, TIER_MEMORY, TierAssignment,
                             cross_tier_nets, fm_bipartition, fm_refine,
                             partition_memory_on_logic)
from repro.partition.fm import cut_size
from repro.rng import SeedBundle


@pytest.fixture(scope="module")
def maeri(hetero_tech):
    return generate_maeri(MaeriConfig(pe_count=16, bandwidth=8),
                          hetero_tech.libraries, SeedBundle(5))


class TestMemoryOnLogic:
    def test_macros_on_memory_tier(self, maeri):
        tiers = partition_memory_on_logic(maeri)
        for name, inst in maeri.instances.items():
            if inst.is_macro:
                assert tiers.of_instance(name) == TIER_MEMORY

    def test_logic_region_on_logic_tier(self, maeri):
        tiers = partition_memory_on_logic(maeri)
        for name, inst in maeri.instances.items():
            if inst.attrs.get("region") == "logic":
                assert tiers.of_instance(name) == TIER_LOGIC

    def test_cross_tier_nets_exist(self, maeri):
        tiers = partition_memory_on_logic(maeri)
        crossing = cross_tier_nets(maeri, tiers)
        assert crossing
        for net in crossing:
            assert tiers.is_cross_tier(net)

    def test_counts_sum(self, maeri):
        tiers = partition_memory_on_logic(maeri)
        bottom, top = tiers.counts()
        assert bottom + top == len(maeri.instances)
        assert bottom > top        # logic dominates MAERI


class TestTierAssignment:
    def test_unassigned_raises(self, maeri):
        tiers = TierAssignment(maeri)
        with pytest.raises(PartitionError, match="unassigned"):
            tiers.of_instance(next(iter(maeri.instances)))

    def test_bad_tier_value(self, maeri):
        tiers = TierAssignment(maeri)
        with pytest.raises(PartitionError):
            tiers.set_instance(next(iter(maeri.instances)), 2)

    def test_unknown_instance(self, maeri):
        tiers = TierAssignment(maeri)
        with pytest.raises(PartitionError):
            tiers.set_instance("ghost", 0)

    def test_validate_catches_missing(self, maeri):
        tiers = TierAssignment(maeri)
        with pytest.raises(PartitionError):
            tiers.validate()

    def test_area_accounting(self, maeri):
        tiers = partition_memory_on_logic(maeri)
        total = tiers.area_on(0) + tiers.area_on(1)
        assert total == pytest.approx(maeri.total_cell_area())


class TestFM:
    def test_bipartition_balanced(self, maeri):
        side = fm_bipartition(maeri, seed=3)
        areas = [0.0, 0.0]
        for name, s in side.items():
            areas[s] += maeri.instance(name).cell.area_um2
        frac = areas[0] / sum(areas)
        assert 0.35 <= frac <= 0.65

    def test_bipartition_improves_over_random(self, maeri):
        import numpy as np
        rng = np.random.default_rng(3)
        random_side = {n: int(rng.integers(2)) for n in maeri.instances}
        refined = fm_bipartition(maeri, seed=3)
        assert cut_size(maeri, refined) < cut_size(maeri, random_side)

    def test_refine_keeps_macros_locked(self, maeri):
        tiers = partition_memory_on_logic(maeri)
        before = {n: tiers.of_instance(n) for n, i in maeri.instances.items()
                  if i.is_macro}
        fm_refine(maeri, tiers)
        for name, tier in before.items():
            assert tiers.of_instance(name) == tier

    def test_refine_does_not_worsen_cut(self, maeri):
        tiers = partition_memory_on_logic(maeri)
        side_before = {n: tiers.of_instance(n) for n in maeri.instances}
        before = cut_size(maeri, side_before)
        fm_refine(maeri, tiers)
        side_after = {n: tiers.of_instance(n) for n in maeri.instances}
        assert cut_size(maeri, side_after) <= before

    def test_empty_netlist_rejected(self):
        from repro.netlist import Netlist
        with pytest.raises(PartitionError):
            fm_bipartition(Netlist("empty"))
