"""Equivalence suite for the process-pool engine.

The contract under test: every parallelized hot loop — the what-if
oracle, the die-test fault simulation, the dataset build and the
wavefront global route — returns results *identical* to its serial
twin under the same seeds, for any worker count.  Plus unit coverage
of the pool plumbing itself and the prepare-design memo cache.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro import FlowConfig, run_flow
from repro.core.flow import (clear_prepare_cache, prepare_design,
                             prepare_design_cached)
from repro.core.pathset import build_dataset
from repro.dft.fault_sim import simulate_faults
from repro.dft.faults import build_fault_universe
from repro.dft.mls_dft import die_test_fault_sim, untestable_fault_fraction
from repro.mls import route_with_mls
from repro.mls.oracle import candidate_nets, oracle_labels, oracle_select
from repro.netlist.generators import MaeriConfig, generate_maeri
from repro.parallel import (ParallelConfig, SnapshotPool, chunked,
                            dumps_snapshot, loads_snapshot, snapshot_map)
from repro.route import GlobalRouter
from repro.rng import SeedBundle, stream
from repro.timing import run_sta

from tests.conftest import TEST_SEED, build_small_design

#: Fan out over 4 workers; min_items low enough that the small test
#: fabric's workloads actually hit the pool.
POOL4 = ParallelConfig(workers=4, min_items=8)


@pytest.fixture(scope="module")
def probe_setup(hetero_tech):
    """Routed 16PE design with its live router (read-only per test)."""
    design = build_small_design(hetero_tech, routed=False)
    router = GlobalRouter(design)
    routing = router.route_all()
    return design, router, routing


@pytest.fixture(scope="module")
def mls_design(hetero_tech):
    """A design routed with the oracle's MLS set committed."""
    design = build_small_design(hetero_tech, routed=False)
    router = GlobalRouter(design)
    routing = router.route_all()
    picked = oracle_select(design, router, routing)
    route_with_mls(design, picked)
    return design


# -- pool plumbing -----------------------------------------------------------

class TestChunked:
    def test_exact_split(self):
        assert chunked([1, 2, 3, 4], 2) == [[1, 2], [3, 4]]

    def test_remainder_chunk(self):
        assert chunked(list(range(5)), 2) == [[0, 1], [2, 3], [4]]

    def test_single_chunk_when_size_exceeds(self):
        assert chunked([1, 2], 10) == [[1, 2]]

    def test_empty(self):
        assert chunked([], 3) == []

    def test_bad_size(self):
        with pytest.raises(ValueError, match="chunk size"):
            chunked([1], 0)


class TestParallelConfig:
    @pytest.mark.parametrize("kwargs", [
        {"workers": 0}, {"workers": -2}, {"chunk_size": 0},
        {"min_items": -1}, {"waves": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ParallelConfig(**kwargs)

    def test_default_is_serial(self):
        cfg = ParallelConfig()
        assert not cfg.enabled
        assert not cfg.should_parallelize(10_000)

    def test_small_workloads_stay_serial(self):
        cfg = ParallelConfig(workers=4, min_items=64)
        assert not cfg.should_parallelize(63)
        assert cfg.should_parallelize(64)

    def test_explicit_chunk_size_wins(self):
        cfg = ParallelConfig(workers=4, chunk_size=7)
        assert cfg.resolve_chunk_size(1000) == 7

    def test_auto_chunk_size_gives_waves_per_worker(self):
        cfg = ParallelConfig(workers=4, waves=4)
        n = 1600
        size = cfg.resolve_chunk_size(n)
        assert math.ceil(n / size) == 16    # workers * waves chunks

    def test_auto_chunk_size_never_zero(self):
        cfg = ParallelConfig(workers=8, waves=4)
        assert cfg.resolve_chunk_size(1) == 1

    def test_auto_factory(self):
        cfg = ParallelConfig.auto()
        assert cfg.workers >= 1


def _scale_chunk(state, chunk):
    return [state * item for item in chunk]


def _explode_chunk(state, chunk):
    for item in chunk:
        if item == 13:
            raise ValueError("unlucky item")
    return list(chunk)


def _mutate_chunk(state, chunk):
    state.append(len(chunk))
    return list(chunk)


class TestSnapshotMap:
    def test_matches_serial_and_preserves_order(self):
        items = list(range(100))
        want = [3 * x for x in items]
        serial = snapshot_map(_scale_chunk, items, snapshot=3,
                              config=ParallelConfig())
        fanout = snapshot_map(_scale_chunk, items, snapshot=3,
                              config=ParallelConfig(workers=4, min_items=4,
                                                    chunk_size=1))
        assert serial == want
        assert fanout == want

    def test_empty_items(self):
        assert snapshot_map(_scale_chunk, [], snapshot=3,
                            config=POOL4) == []

    def test_worker_exception_propagates(self):
        with pytest.raises(ValueError, match="unlucky"):
            snapshot_map(_explode_chunk, range(20), snapshot=None,
                         config=ParallelConfig(workers=2, min_items=2))

    def test_bad_start_method_raises(self):
        cfg = ParallelConfig(workers=2, min_items=1,
                             start_method="teleport")
        with pytest.raises(ValueError):
            snapshot_map(_scale_chunk, range(10), snapshot=1, config=cfg)

    def test_serial_path_uses_caller_snapshot(self):
        # Documented semantics: below min_items the fn runs in-process
        # against the original object (no pickling round-trip).
        sink: list[int] = []
        snapshot_map(_mutate_chunk, range(5), snapshot=sink,
                     config=ParallelConfig(workers=4, min_items=100))
        assert sink   # mutated in place -> serial path taken

    def test_design_snapshot_roundtrip(self, probe_setup):
        # The deep pin<->net<->instance graph needs the raised
        # recursion limits; the round-trip must preserve the design.
        design, _router, routing = probe_setup
        copy_design, copy_routing = loads_snapshot(
            dumps_snapshot((design, routing)))
        assert copy_design is not design
        assert copy_design.netlist.stats() == design.netlist.stats()
        name = next(iter(routing.trees))
        assert copy_routing.tree(name).wirelength() == \
            routing.tree(name).wirelength()


def _scale_extra_chunk(state, extra, chunk):
    return [state * item + extra for item in chunk]


def _mutate_extra_chunk(state, extra, chunk):
    state.append(extra)
    return list(chunk)


class TestSnapshotPool:
    def test_map_matches_serial_and_preserves_order(self):
        items = list(range(40))
        with SnapshotPool(3, ParallelConfig(workers=4, min_items=2,
                                            chunk_size=3)) as pool:
            assert pool.map(_scale_extra_chunk, items, extra=7) == \
                [3 * x + 7 for x in items]

    def test_extra_changes_per_call(self):
        with SnapshotPool(2, ParallelConfig(workers=2,
                                            min_items=2)) as pool:
            assert pool.map(_scale_extra_chunk, [1, 2], extra=0) == [2, 4]
            assert pool.map(_scale_extra_chunk, [1, 2], extra=10) == \
                [12, 14]

    def test_empty_items(self):
        with SnapshotPool(1, POOL4) as pool:
            assert pool.map(_scale_extra_chunk, [], extra=0) == []

    def test_disabled_config_runs_serially_on_caller_object(self):
        sink: list[int] = []
        with SnapshotPool(sink, ParallelConfig(workers=1)) as pool:
            pool.map(_mutate_extra_chunk, range(4), extra="tag")
        assert sink  # mutated in place -> no pool was used

    def test_broken_pool_degrades_permanently_to_serial(self, monkeypatch):
        import repro.parallel.pool as pool_mod

        class Boom:
            def __init__(self, *args, **kwargs):
                raise OSError("no pool for you")

        monkeypatch.setattr(pool_mod, "ProcessPoolExecutor", Boom)
        sink: list[int] = []
        with SnapshotPool(sink, ParallelConfig(workers=4, min_items=2,
                                               chunk_size=8)) as pool:
            with pytest.warns(RuntimeWarning, match="pool unavailable"):
                assert pool.map(_mutate_extra_chunk, [1, 2, 3],
                                extra="a") == [1, 2, 3]
            # Second map: already degraded, no new warning machinery —
            # still serial against the caller's object.
            assert pool.map(_mutate_extra_chunk, [4], extra="b") == [4]
        assert sink == ["a", "b"]

    def test_close_releases_fork_slot(self):
        import repro.parallel.pool as pool_mod
        pool = SnapshotPool(5, ParallelConfig(workers=2, min_items=2))
        assert pool.map(_scale_extra_chunk, [1, 2], extra=0) == [5, 10]
        if pool._owns_fork_slot:
            assert pool_mod._FORK_SNAPSHOT is not None
        pool.close()
        assert pool_mod._FORK_SNAPSHOT is None


# -- hot-loop equivalence ----------------------------------------------------

class TestOracleEquivalence:
    def test_labels_identical_1_vs_4_workers(self, probe_setup):
        design, router, routing = probe_setup
        serial = oracle_labels(design, router, routing)
        fanout = oracle_labels(design, router, routing, parallel=POOL4)
        assert serial == fanout

    def test_workers_1_config_matches_no_config(self, probe_setup):
        design, router, routing = probe_setup
        assert oracle_labels(design, router, routing,
                             parallel=ParallelConfig(workers=1)) == \
            oracle_labels(design, router, routing)

    def test_select_identical(self, probe_setup):
        design, router, routing = probe_setup
        assert oracle_select(design, router, routing) == \
            oracle_select(design, router, routing, parallel=POOL4)

    def test_spawn_start_method_identical(self, probe_setup):
        # Spawn ships the pickled snapshot instead of inheriting it
        # copy-on-write; results must not depend on the start method.
        design, router, routing = probe_setup
        nets = candidate_nets(design)[:40]
        serial = oracle_labels(design, router, routing, nets=nets)
        spawned = oracle_labels(
            design, router, routing, nets=nets,
            parallel=ParallelConfig(workers=2, min_items=8,
                                    start_method="spawn"))
        assert serial == spawned


class TestFaultSimEquivalence:
    def test_simulate_faults_identical(self, probe_setup):
        design, _router, _routing = probe_setup
        netlist = design.netlist
        universe = build_fault_universe(netlist)
        serial = simulate_faults(netlist, universe,
                                 stream("fsim", TEST_SEED), patterns=64)
        fanout = simulate_faults(netlist, universe,
                                 stream("fsim", TEST_SEED), patterns=64,
                                 parallel=POOL4)
        assert serial == fanout

    def test_max_faults_sampling_identical(self, probe_setup):
        design, _router, _routing = probe_setup
        netlist = design.netlist
        universe = build_fault_universe(netlist)
        serial = simulate_faults(netlist, universe,
                                 stream("fsamp", TEST_SEED), patterns=64,
                                 max_faults=1500)
        fanout = simulate_faults(netlist, universe,
                                 stream("fsamp", TEST_SEED), patterns=64,
                                 max_faults=1500, parallel=POOL4)
        assert serial == fanout

    def test_die_test_identical(self, mls_design):
        serial = die_test_fault_sim(mls_design, stream("die", TEST_SEED),
                                    patterns=64, with_dft=False)
        fanout = die_test_fault_sim(mls_design, stream("die", TEST_SEED),
                                    patterns=64, with_dft=False,
                                    parallel=POOL4)
        assert serial == fanout

    def test_untestable_fraction_identical(self, mls_design):
        # Two sims share one generator: the parallel path must advance
        # the caller's rng exactly as the serial one does.
        serial = untestable_fault_fraction(
            mls_design, stream("frac", TEST_SEED), patterns=64)
        fanout = untestable_fault_fraction(
            mls_design, stream("frac", TEST_SEED), patterns=64,
            parallel=POOL4)
        assert serial == fanout


def _graphs_equal(a, b) -> bool:
    if a.endpoint != b.endpoint or a.slack_ps != b.slack_ps:
        return False
    if a.net_names != b.net_names:
        return False
    if not np.array_equal(a.features, b.features):
        return False
    if not np.array_equal(a.decidable, b.decidable):
        return False
    if (a.labels is None) != (b.labels is None):
        return False
    return a.labels is None or np.array_equal(a.labels, b.labels)


class TestBuildDatasetEquivalence:
    def test_dataset_identical(self, probe_setup):
        design, router, routing = probe_setup
        report = run_sta(design)
        serial = build_dataset(design, router, routing, report,
                               num_paths=60, num_labeled=30)
        fanout = build_dataset(design, router, routing, report,
                               num_paths=60, num_labeled=30,
                               parallel=POOL4)
        assert len(serial.graphs) == len(fanout.graphs)
        assert all(_graphs_equal(x, y)
                   for x, y in zip(serial.graphs, fanout.graphs))
        assert len(serial.labeled_graphs) == len(fanout.labeled_graphs)
        assert all(_graphs_equal(x, y)
                   for x, y in zip(serial.labeled_graphs,
                                   fanout.labeled_graphs))
        assert serial.net_labels == fanout.net_labels
        assert np.array_equal(serial.extractor._mean,
                              fanout.extractor._mean)
        assert np.array_equal(serial.extractor._std,
                              fanout.extractor._std)


# -- prepare cache + golden determinism --------------------------------------

def _tiny_factory(libraries, seeds):
    return generate_maeri(MaeriConfig(pe_count=16, bandwidth=8),
                          libraries, seeds)


def _fast_config(**kwargs) -> FlowConfig:
    defaults = dict(selector="oracle", target_freq_mhz=1500.0,
                    num_paths=80, num_labeled=40, pdn=False)
    defaults.update(kwargs)
    return FlowConfig(**defaults)


class TestPrepareCache:
    def test_hit_returns_equal_but_distinct_designs(self, hetero_tech):
        clear_prepare_cache()
        cfg = _fast_config()
        first = prepare_design_cached(_tiny_factory, hetero_tech,
                                      SeedBundle(TEST_SEED), cfg)
        second = prepare_design_cached(_tiny_factory, hetero_tech,
                                       SeedBundle(TEST_SEED), cfg)
        assert first is not second
        assert first.netlist is not second.netlist
        assert first.netlist.stats() == second.netlist.stats()
        assert dumps_snapshot(first) == dumps_snapshot(second)

    def test_matches_uncached_prepare(self, hetero_tech):
        # Routing + STA on the cached copy must land exactly where a
        # from-scratch prepare does.
        clear_prepare_cache()
        cfg = _fast_config()
        cached = prepare_design_cached(_tiny_factory, hetero_tech,
                                       SeedBundle(TEST_SEED), cfg)
        direct = prepare_design(_tiny_factory, hetero_tech,
                                SeedBundle(TEST_SEED), cfg)
        assert cached.netlist.stats() == direct.netlist.stats()
        route_with_mls(cached, set())
        route_with_mls(direct, set())
        assert run_sta(cached).summary() == run_sta(direct).summary()

    def test_seed_misses_cache(self, hetero_tech):
        clear_prepare_cache()
        cfg = _fast_config()
        a = prepare_design_cached(_tiny_factory, hetero_tech,
                                  SeedBundle(TEST_SEED), cfg)
        b = prepare_design_cached(_tiny_factory, hetero_tech,
                                  SeedBundle(TEST_SEED + 1), cfg)
        assert dumps_snapshot(a) != dumps_snapshot(b)


def _route_both_ways(tech, mls_nets, workers: int):
    """Route the same design serially and wavefront; return results."""
    serial_design = build_small_design(tech, routed=False)
    serial = GlobalRouter(serial_design).route_all(mls_nets=mls_nets)
    wave_design = build_small_design(tech, routed=False)
    wavefront = GlobalRouter(wave_design).route_all(
        mls_nets=mls_nets,
        parallel=ParallelConfig(workers=workers, min_items=2))
    return serial, wavefront


def _assert_routing_identical(serial, wavefront):
    assert list(serial.trees) == list(wavefront.trees)
    for name in serial.trees:
        assert serial.trees[name].edges == wavefront.trees[name].edges
    assert dumps_snapshot(serial.rc) == dumps_snapshot(wavefront.rc)
    for tier in range(len(serial.grid.usage)):
        for pair in range(serial.grid.num_pairs(tier)):
            assert np.array_equal(serial.grid.usage[tier][pair],
                                  wavefront.grid.usage[tier][pair])
    assert np.array_equal(serial.grid.f2f_usage,
                          wavefront.grid.f2f_usage)
    assert serial.stats() == wavefront.stats()


class TestWavefrontEquivalence:
    """Wavefront route_all is bit-identical to the serial schedule."""

    def test_workers_1_is_the_serial_path(self, hetero_tech):
        design = build_small_design(hetero_tech, routed=False)
        serial = GlobalRouter(design).route_all()
        design2 = build_small_design(hetero_tech, routed=False)
        one = GlobalRouter(design2).route_all(
            parallel=ParallelConfig(workers=1))
        _assert_routing_identical(serial, one)

    def test_wavefront_identical_4_workers(self, hetero_tech):
        serial, wavefront = _route_both_ways(hetero_tech, frozenset(), 4)
        _assert_routing_identical(serial, wavefront)

    @pytest.mark.slow
    def test_wavefront_identical_8_workers(self, hetero_tech):
        serial, wavefront = _route_both_ways(hetero_tech, frozenset(), 8)
        _assert_routing_identical(serial, wavefront)

    def test_mls_nets_force_serial_fallback_within_wave(self, hetero_tech):
        """MLS candidates break waves (serial fallback) yet the merged
        result — shared trunks, F2F pads, fallbacks — stays exact."""
        design = build_small_design(hetero_tech, routed=False)
        names = sorted(n.name for n in candidate_nets(design))
        mls = frozenset(names[::5])
        serial, wavefront = _route_both_ways(hetero_tech, mls, 4)
        assert serial.mls_applied_nets()  # scenario actually bites
        _assert_routing_identical(serial, wavefront)

    @pytest.mark.slow
    def test_flow_rows_byte_identical(self, hetero_tech):
        """Full FlowReport rows agree between serial and wavefront
        routing, MLS selection (sota) included."""
        rows = []
        for parallel in (ParallelConfig(),
                         ParallelConfig(workers=4, min_items=8)):
            clear_prepare_cache()
            cfg = FlowConfig(selector="sota", target_freq_mhz=1500.0,
                             pdn=False, parallel=parallel)
            report = run_flow(_tiny_factory, hetero_tech,
                              SeedBundle(TEST_SEED), cfg)
            assert report.requested_mls  # sota actually requested MLS
            row = {k: v for k, v in report.row().items()
                   if k != "runtime_min"}
            rows.append(json.dumps(row, sort_keys=True))
        assert rows[0] == rows[1]


class TestSpeculativeBatching:
    """Multi-wave speculative batches replay conflicts exactly.

    The batch merge accepts speculatively-routed nets only when their
    footprint is untouched by earlier batch waves; everything else
    replays serially.  These tests force both outcomes and assert the
    result never drifts from the serial schedule.
    """

    def _route(self, tech, mls, parallel=None, batch_ms=None):
        from repro.route.router import RouteConfig
        design = build_small_design(tech, routed=False)
        cfg = RouteConfig() if batch_ms is None \
            else RouteConfig(batch_ms=batch_ms)
        router = GlobalRouter(design, cfg)
        return router.route_all(mls_nets=mls, parallel=parallel)

    def test_forced_conflicts_replay_to_serial_result(self, hetero_tech):
        """One giant batch (huge batch_ms) maximizes speculation, so
        later waves conflict with earlier ones and must replay; grid,
        trees and RC still match the serial route bit-for-bit."""
        from repro.obs import metrics
        serial = self._route(hetero_tech, frozenset())
        replayed0 = metrics.counter("route.replayed_nets")
        speculative0 = metrics.counter("route.speculative_nets")
        wavefront = self._route(
            hetero_tech, frozenset(),
            parallel=ParallelConfig(workers=4, min_items=2),
            batch_ms=10_000.0)
        assert metrics.counter("route.replayed_nets") > replayed0
        assert metrics.counter("route.speculative_nets") > speculative0
        _assert_routing_identical(serial, wavefront)

    def test_batching_disabled_matches_serial(self, hetero_tech):
        """batch_ms=0 degrades to one dispatch per wave (the old
        granularity) without changing any result."""
        serial = self._route(hetero_tech, frozenset())
        wavefront = self._route(
            hetero_tech, frozenset(),
            parallel=ParallelConfig(workers=4, min_items=2),
            batch_ms=0.0)
        _assert_routing_identical(serial, wavefront)

    def test_batches_cut_dispatch_count(self, hetero_tech):
        """Default batching needs far fewer pool dispatches than the
        one-dispatch-per-wave schedule it replaces.

        The 16PE fabric's waves are tiny, so the EWMA-adaptive batch
        sizing lands around 4x here; 2x is the robust floor.  The >=5x
        acceptance gate on MAERI-128 lives in bench_parallel_route.
        """
        from repro.obs import metrics
        d0, w0 = (metrics.counter("route.dispatches"),
                  metrics.counter("route.waves"))
        self._route(hetero_tech, frozenset(),
                    parallel=ParallelConfig(workers=4, min_items=2))
        dispatches = metrics.counter("route.dispatches") - d0
        waves = metrics.counter("route.waves") - w0
        assert dispatches > 0
        assert dispatches * 2 <= waves

    def test_mls_with_forced_conflicts(self, hetero_tech):
        """MLS singletons flush batches; conflict replay around them
        still reproduces the serial MLS routing exactly."""
        design = build_small_design(hetero_tech, routed=False)
        names = sorted(n.name for n in candidate_nets(design))
        mls = frozenset(names[::5])
        serial = self._route(hetero_tech, mls)
        wavefront = self._route(
            hetero_tech, mls,
            parallel=ParallelConfig(workers=4, min_items=2),
            batch_ms=10_000.0)
        assert serial.mls_applied_nets()
        _assert_routing_identical(serial, wavefront)


class TestGoldenDeterminism:
    def test_flow_row_byte_identical(self, hetero_tech):
        """FlowReport.row() is reproducible bit-for-bit across two runs
        with the same SeedBundle, through the prepare cache AND the
        worker fan-out (runtime_min excluded: it is wall-clock)."""
        clear_prepare_cache()
        cfg = _fast_config(parallel=ParallelConfig(workers=2, min_items=8))
        rows = []
        for _ in range(2):
            design = prepare_design_cached(_tiny_factory, hetero_tech,
                                           SeedBundle(TEST_SEED), cfg)
            report = run_flow(_tiny_factory, hetero_tech,
                              SeedBundle(TEST_SEED), cfg, design=design)
            row = {k: v for k, v in report.row().items()
                   if k != "runtime_min"}
            rows.append(json.dumps(row, sort_keys=True))
        assert rows[0] == rows[1]
