"""Trace-analysis tests: path profiles, critical paths, run diffs.

Everything here drives :mod:`repro.obs.analyze` with hand-built span
forests whose self/total times and critical paths are known by
construction — no tracer involved, so failures localize to the
analysis itself.
"""

from __future__ import annotations

import pytest

from repro.obs.analyze import (aggregate, critical_path, diff_files,
                               diff_profiles, read_spans,
                               render_diff, render_report, report_file)


def span(sid, name, dur_us, parent=None, **attrs):
    return {"id": sid, "parent": parent, "name": name, "pid": 1,
            "ts_us": 0, "dur_us": float(dur_us), "attrs": attrs}


def write_jsonl(path, records):
    import json
    path.write_text("".join(json.dumps(r) + "\n" for r in records))


#: A forest with one dominating root.  Layout (durations in us):
#:
#:   flow (1000)
#:     place (600)
#:       solve (450)
#:     route (300)
#:   aux (50)
#:
#: Self times: flow 100, place 150, solve 450, route 300, aux 50.
TREE = [
    span("a", "flow", 1000),
    span("b", "place", 600, parent="a"),
    span("c", "solve", 450, parent="b"),
    span("d", "route", 300, parent="a"),
    span("e", "aux", 50),
]


class TestAggregate:
    def test_paths_and_self_times(self):
        profile = aggregate(TREE)
        assert profile.spans == 5
        assert profile.roots == 2
        assert profile.wall_us == 1050.0
        stats = profile.paths
        assert stats["flow"].total_us == 1000.0
        assert stats["flow"].self_us == 100.0           # 1000-600-300
        assert stats["flow/place"].self_us == 150.0     # 600-450
        assert stats["flow/place/solve"].self_us == 450.0
        assert stats["flow/route"].self_us == 300.0
        assert stats["aux"].self_us == 50.0
        # Self times of a forest sum to its wall-clock.
        assert sum(s.self_us for s in stats.values()) == 1050.0

    def test_repeated_paths_accumulate(self):
        records = [
            span("r", "flow", 100),
            span("x", "step", 30, parent="r"),
            span("y", "step", 50, parent="r"),
        ]
        profile = aggregate(records)
        stat = profile.paths["flow/step"]
        assert stat.count == 2
        assert stat.total_us == 80.0
        assert profile.paths["flow"].self_us == 20.0

    def test_self_time_clamped_nonnegative(self):
        # Overlapping children (worker spans merged from several
        # processes) can sum past the parent; self time must clamp.
        records = [
            span("r", "dispatch", 100),
            span("x", "chunk", 80, parent="r"),
            span("y", "chunk", 70, parent="r"),
        ]
        profile = aggregate(records)
        assert profile.paths["dispatch"].self_us == 0.0

    def test_dangling_parent_promoted_to_root(self):
        # The head of a rotated trace: parent id not in the file.
        records = [span("x", "orphan", 10, parent="gone")]
        profile = aggregate(records)
        assert profile.roots == 1
        assert profile.paths["orphan"].count == 1

    def test_empty(self):
        profile = aggregate([])
        assert profile.spans == 0
        assert profile.critical == []


class TestCriticalPath:
    def test_descends_slowest_child(self):
        steps = critical_path(TREE)
        assert [s[0] for s in steps] == \
            ["flow", "flow/place", "flow/place/solve"]
        assert steps[0][1] == 1000.0
        assert steps[1][2] == 150.0     # place self time
        assert steps[2][1] == 450.0

    def test_picks_longest_root(self):
        records = [span("a", "small", 10), span("b", "big", 20)]
        assert critical_path(records)[0][0] == "big"


class TestDiff:
    def test_localizes_the_move(self):
        before = aggregate(TREE)
        # After: solve got 300us faster, a new stage appeared, aux
        # vanished.
        after = aggregate([
            span("a", "flow", 750),
            span("b", "place", 350, parent="a"),
            span("c", "solve", 150, parent="b"),
            span("d", "route", 300, parent="a"),
            span("f", "lint", 40, parent="a"),
        ])
        deltas = {d.path: d for d in diff_profiles(before, after)}
        assert deltas["flow/place/solve"].d_self_us == -300.0
        assert deltas["flow/lint"].a is None        # [new]
        assert deltas["flow/lint"].d_self_us == 40.0
        assert deltas["aux"].b is None              # [gone]
        assert deltas["aux"].d_self_us == -50.0
        # Largest |self move| ranks first.
        ranked = diff_profiles(before, after)
        assert ranked[0].path == "flow/place/solve"
        text = render_diff(before, after)
        assert "[new]" in text and "[gone]" in text
        assert "flow/place/solve" in text

    def test_identical_runs_have_no_moves(self):
        profile = aggregate(TREE)
        assert all(d.d_self_us == 0.0
                   for d in diff_profiles(profile, profile))


class TestRendering:
    def test_report_mentions_hot_paths(self):
        text = render_report(aggregate(TREE), top=3)
        assert "critical path" in text
        assert "flow/place/solve" in text
        # Sorted by self time: solve (450) above route (300).
        assert text.index("solve") < text.index("route")

    def test_sort_by_total(self):
        text = render_report(aggregate(TREE), by="total")
        assert "by total" in text

    def test_bad_sort_key_rejected(self):
        with pytest.raises(ValueError):
            render_report(aggregate(TREE), by="wall")


class TestFiles:
    def test_report_and_diff_from_files(self, tmp_path):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        write_jsonl(a, TREE)
        write_jsonl(b, TREE)
        assert read_spans(a) == TREE
        assert "flow/place/solve" in report_file(a)
        assert "+0.0%" in diff_files(a, b)

    def test_malformed_line_raises_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"id": "x"}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            read_spans(path)
