"""Scale regression: MAERI-128 prepare + snapshot round trip.

Before the flat netlist core, pickling a prepared maeri128_hetero
design segfaulted the interpreter: the object-graph pickle recursed
pin -> net -> pin across ~14k instances, and the raised
``sys.setrecursionlimit`` in :mod:`repro.parallel.pool` pushed Python
past the C stack instead of raising ``RecursionError``.  These tests
are the direct regression for that crash — they must pass *in this
process* (a segfault here kills the pytest run, which is the point).

Marked ``slow``; CI runs them in the dedicated ``netlist-scale`` job.
"""

from __future__ import annotations

import sys

import pytest

from repro.core.flow import FlowConfig, prepare_design_cached
from repro.harness.designs import get_benchmark
from repro.parallel.pool import dumps_snapshot, loads_snapshot

from tests.golden_util import netlist_digest, placement_digest

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def maeri128_prepared():
    spec = get_benchmark("maeri128_hetero")
    config = FlowConfig(selector="none",
                        target_freq_mhz=spec.target_freq_mhz)
    return prepare_design_cached(spec.factory, spec.tech(), spec.seeds(),
                                 config)


class TestMaeri128Snapshot:
    def test_prepare_and_pickle_roundtrip(self, maeri128_prepared):
        """The exact payload SnapshotPool ships: no segfault, and the
        restored design is digest-identical."""
        design = maeri128_prepared
        assert len(design.netlist.instances) > 10_000
        payload = dumps_snapshot(design)
        restored = loads_snapshot(payload)
        assert netlist_digest(restored.netlist) \
            == netlist_digest(design.netlist)
        assert placement_digest(restored) == placement_digest(design)

    def test_roundtrip_is_recursion_limit_independent(self,
                                                     maeri128_prepared):
        """Flat serialization must not depend on sys.recursionlimit —
        the object-graph pickler needed ~1M frames for this design and
        died when the C stack ran out first."""
        design = maeri128_prepared
        limit = sys.getrecursionlimit()
        sys.setrecursionlimit(1000)
        try:
            payload = dumps_snapshot(design)
            restored = loads_snapshot(payload)
        finally:
            sys.setrecursionlimit(limit)
        assert len(restored.netlist.instances) \
            == len(design.netlist.instances)

    def test_payload_fits_budget(self, maeri128_prepared):
        """Guard the prepare-cache size win (object-graph baseline was
        5 330 335 bytes at the seed commit; the flat core ships well
        under half of that — see BENCH_netlist.json)."""
        payload = dumps_snapshot(maeri128_prepared)
        assert len(payload) < 5_330_335 / 3
