"""Cross-subsystem behavioral digests for golden-fixture tests.

One dict of stable strings/numbers per design state: placement HPWL,
routed trees + extracted RC + congestion-grid occupancy, STA arrivals
and ``worst_pred`` tie-breaks, and die-test fault coverage.  The
digests read only *semantic* object state (names, floats, orders) —
never pickle bytes or ids — so they are valid across internal
representation changes.  The netlist-core refactor (ISSUE 6) pins its
"bit-identical before/after" guarantee on these.

Regenerate the checked-in fixtures with::

    PYTHONPATH=src:. python -m tests.golden_util

which rewrites ``tests/data/golden_equiv_{maeri,a7}.json``.  Only do
this for an *intentional* behavior change, never to paper over a diff.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

DATA_DIR = Path(__file__).parent / "data"

#: Fixture keys -> builder kwargs for the two design families.
GOLDEN_FAMILIES = {
    "maeri": dict(family="maeri"),
    "a7": dict(family="a7"),
}


def _sha(lines) -> str:
    digest = hashlib.sha256()
    for line in lines:
        digest.update(line.encode())
        digest.update(b"\n")
    return digest.hexdigest()


def _f(value: float) -> str:
    """Exact float formatting (repr round-trips the bit pattern)."""
    return repr(float(value))


def netlist_digest(netlist) -> dict:
    """Iteration-order-sensitive digest of the netlist structure."""
    inst_lines = []
    for inst in netlist.instances.values():
        attrs = ",".join(f"{k}={v}" for k, v in inst.attrs.items())
        pins = ",".join(f"{p.name}:{p.direction}:{_f(p.cap_ff)}:"
                        f"{'-' if p.net is None else p.net.name}"
                        for p in inst.pins.values())
        inst_lines.append(f"{inst.name}|{inst.cell.name}|{attrs}|{pins}")
    net_lines = []
    for net in netlist.nets.values():
        driver = "-" if net.driver is None else net.driver.full_name
        sinks = ",".join(p.full_name for p in net.sinks)
        net_lines.append(f"{net.name}|{int(net.is_clock)}|{driver}|{sinks}")
    port_lines = [
        f"{p.name}|{p.direction}|{_f(p.pin.cap_ff)}|{p.tier_hint}|"
        f"{int(p.false_path)}" for p in netlist.ports.values()]
    return {
        "name": netlist.name,
        "instances": len(netlist.instances),
        "nets": len(netlist.nets),
        "ports": len(netlist.ports),
        "inst_sha": _sha(inst_lines),
        "net_sha": _sha(net_lines),
        "port_sha": _sha(port_lines),
    }


def placement_digest(design) -> dict:
    placement = design.require_placement()
    lines = []
    for name in design.netlist.instances:
        loc = placement.of_instance(name)
        lines.append(f"{name}|{_f(loc.x)}|{_f(loc.y)}|{loc.tier}")
    for name in design.netlist.ports:
        loc = placement.of_port(name)
        lines.append(f"port:{name}|{_f(loc.x)}|{_f(loc.y)}|{loc.tier}")
    return {"hpwl_um": _f(placement.hpwl()), "loc_sha": _sha(lines)}


def routing_digest(design) -> dict:
    routing = design.require_routing()
    tree_lines = []
    for name, tree in routing.trees.items():
        for node in tree.nodes:
            pin = "-" if node.pin is None else node.pin.full_name
            tree_lines.append(
                f"{name}|n{node.idx}|{_f(node.x)}|{_f(node.y)}|"
                f"{node.tier}|{pin}")
        for edge in tree.edges:
            tree_lines.append(
                f"{name}|e{edge.parent}>{edge.child}|{_f(edge.length)}|"
                f"{edge.tier}|{edge.pair}|{edge.via_hops}|{edge.n_f2f}|"
                f"{int(edge.shared)}|{int(edge.overflowed)}|"
                f"{_f(edge.escape_um)}")
    rc_lines = []
    for name, rc in routing.rc.items():
        sinks = ",".join(f"{k}:{_f(v)}" for k, v in rc.sink_delay_ps.items())
        rc_lines.append(
            f"{name}|{_f(rc.wire_cap_ff)}|{_f(rc.wire_res_ohm)}|"
            f"{_f(rc.load_ff)}|{_f(rc.wirelength_um)}|{sinks}")
    usage, f2f = routing.grid.export_state()
    grid_lines = [f"f2f|{f2f.tobytes().hex()}"]
    for tier, pairs in enumerate(usage):
        for pair, arr in enumerate(pairs):
            grid_lines.append(f"{tier}|{pair}|{arr.tobytes().hex()}")
    stats = {k: _f(v) for k, v in sorted(routing.stats().items())}
    return {
        "wirelength_um": _f(routing.wirelength_um()),
        "mls_applied": sorted(routing.mls_applied_nets()),
        "tree_sha": _sha(tree_lines),
        "rc_sha": _sha(rc_lines),
        "grid_sha": _sha(grid_lines),
        "stats": stats,
    }


def sta_digest(report) -> dict:
    graph = report.graph
    lines = []
    for idx, pin in enumerate(graph.pins):
        pred = report.worst_pred[idx]
        pred_name = "-" if pred < 0 else graph.pins[pred].full_name
        lines.append(f"{pin.full_name}|{_f(report.arrival[idx])}|"
                     f"{_f(report.required[idx])}|{pred_name}")
    slack_lines = [f"{name}|{_f(slack)}"
                   for name, slack in report.endpoint_slack.items()]
    return {
        "wns_ps": _f(report.wns_ps),
        "tns_ns": _f(report.tns_ns),
        "num_violating": report.num_violating,
        "arrival_sha": _sha(lines),
        "slack_sha": _sha(slack_lines),
    }


def fault_digest(sim) -> dict:
    return {
        "total_faults": sim.total_faults,
        "simulated_faults": sim.simulated_faults,
        "detected_collapsed": sim.detected_collapsed,
        "patterns": sim.patterns,
        "coverage_pct": _f(sim.coverage_pct),
    }


def build_golden_design(family: str):
    """One scanned, routed small design per family + its digests' inputs.

    Scan is inserted so the fault-simulation digest exercises the DFT
    structural-surgery path (swap_cell + net splits) too.
    """
    from repro.design import Design, TechSetup
    from repro.dft.mls_dft import die_test_fault_sim
    from repro.dft.scan import insert_scan
    from repro.mls import route_with_mls
    from repro.netlist.generators import (A7Config, MaeriConfig,
                                          generate_a7_dual_core,
                                          generate_maeri)
    from repro.opt import insert_buffers
    from repro.partition import partition_memory_on_logic
    from repro.place import place_design
    from repro.rng import SeedBundle
    from repro.timing import run_sta

    tech = TechSetup.build("16nm", "28nm", 6)
    seeds = SeedBundle(20250706)
    if family == "maeri":
        netlist = generate_maeri(MaeriConfig(pe_count=16, bandwidth=8),
                                 tech.libraries, seeds)
        freq = 1900.0
    else:
        netlist = generate_a7_dual_core(
            A7Config(word_width=8, stage_depth=2, cache_banks=1,
                     bus_width=4), tech.libraries, seeds)
        freq = 1000.0
    design = Design(netlist, tech, freq)
    design.tiers = partition_memory_on_logic(netlist)
    design.placement, design.floorplan = place_design(
        netlist, design.tiers, seeds)
    insert_scan(design)
    insert_buffers(design)
    route_with_mls(design, set())
    report = run_sta(design)
    sim = die_test_fault_sim(design, seeds.fresh("golden-die-test"),
                             patterns=64, with_dft=True, max_faults=4000)
    return design, report, sim


def design_digests(family: str) -> dict:
    design, report, sim = build_golden_design(family)
    return {
        "netlist": netlist_digest(design.netlist),
        "placement": placement_digest(design),
        "routing": routing_digest(design),
        "sta": sta_digest(report),
        "faults": fault_digest(sim),
    }


def golden_path(family: str) -> Path:
    return DATA_DIR / f"golden_equiv_{family}.json"


def main() -> None:
    for family in GOLDEN_FAMILIES:
        digests = design_digests(family)
        path = golden_path(family)
        path.write_text(json.dumps(digests, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
