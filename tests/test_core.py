"""GNN-MLS core tests: features, hypergraph, dataset, model, decisions."""

import numpy as np
import pytest

from repro.core import (EncoderConfig, FEATURE_NAMES, GraphTransformer,
                        NodeFeatureExtractor, TrainConfig, build_dataset,
                        build_path_graph, decide_mls_nets, train_gnn_mls)
from repro.core.dgi import DGIPretrainer
from repro.core.classifier import DecisionHead
from repro.errors import FlowError, TrainingError
from repro.nn import Tensor
from repro.route import GlobalRouter
from repro.rng import SeedBundle
from repro.timing import extract_worst_paths, run_sta

from tests.conftest import TEST_SEED, build_small_design


@pytest.fixture(scope="module")
def small_dataset(hetero_tech):
    design = build_small_design(hetero_tech)
    router = GlobalRouter(design)
    routing = router.route_all()
    report = run_sta(design)
    dataset = build_dataset(design, router, routing, report,
                            num_paths=120, num_labeled=40)
    return design, router, routing, report, dataset


class TestFeatures:
    def test_feature_vector_shape(self, small_dataset):
        design, *_ , dataset = small_dataset
        extractor = dataset.extractor
        assert extractor.dim == len(FEATURE_NAMES)
        report = run_sta(design)
        path = extract_worst_paths(report, 1)[0]
        driver, net = path.stages()[0]
        vec = extractor.raw_features(driver, net)
        assert vec.shape == (extractor.dim,)
        # Location features match placement.
        loc = design.placement.of_pin(driver)
        assert vec[0] == pytest.approx(loc.x)
        assert vec[1] == pytest.approx(loc.y)
        assert vec[2] > 0                    # cell delay
        assert vec[4] >= 0                   # wirelength

    def test_paper_feature_subset(self, small_dataset):
        design, *_ = small_dataset
        extractor = NodeFeatureExtractor(design, extra_features=False)
        assert extractor.dim == 7

    def test_non_driver_rejected(self, small_dataset):
        design, *_ , dataset = small_dataset
        net = next(iter(design.netlist.signal_nets()))
        sink = net.sinks[0]
        with pytest.raises(FlowError, match="not a driving pin"):
            dataset.extractor.raw_features(sink, net)

    def test_normalizer_standardizes(self, small_dataset):
        *_, dataset = small_dataset
        matrix = np.vstack([g.features for g in dataset.graphs])
        normalized = dataset.extractor.normalize(matrix)
        assert np.abs(normalized.mean(axis=0)).max() < 1e-6
        stds = normalized.std(axis=0)
        assert np.all((stds < 1.5) | np.isclose(stds, 0.0))


class TestHypergraph:
    def test_graph_mirrors_path(self, small_dataset):
        design, *_ , dataset = small_dataset
        report = run_sta(design)
        path = extract_worst_paths(report, 1)[0]
        graph = build_path_graph(path, dataset.extractor)
        assert graph.depth == len(path.stages())
        assert graph.features.shape == (graph.depth,
                                        dataset.extractor.dim)
        assert graph.endpoint == path.endpoint
        # Cross-tier nets are non-decidable.
        tiers = design.require_tiers()
        for name, ok in zip(graph.net_names, graph.decidable):
            assert ok == (not tiers.is_cross_tier(design.netlist.net(name)))


class TestDataset:
    def test_sizes(self, small_dataset):
        *_, dataset = small_dataset
        assert len(dataset.graphs) <= 120
        assert len(dataset.labeled_graphs) <= 40
        for g in dataset.labeled_graphs:
            assert g.labels is not None
            assert g.labels.shape == (g.depth,)

    def test_labels_follow_oracle(self, small_dataset):
        *_, dataset = small_dataset
        for g in dataset.labeled_graphs[:5]:
            for name, lab in zip(g.net_names, g.labels):
                if name in dataset.net_labels:
                    assert lab == float(dataset.net_labels[name].label)

    def test_balance_in_unit_interval(self, small_dataset):
        *_, dataset = small_dataset
        assert 0.0 <= dataset.label_balance() <= 1.0

    def test_num_labeled_bound(self, small_dataset):
        design, router, routing, report, _ = small_dataset
        with pytest.raises(FlowError):
            build_dataset(design, router, routing, report,
                          num_paths=10, num_labeled=20)


class TestModel:
    def test_dgi_loss_decreases(self, small_dataset):
        *_, dataset = small_dataset
        rng = np.random.default_rng(0)
        encoder = GraphTransformer(
            EncoderConfig(in_dim=dataset.extractor.dim, d_model=24,
                          heads=3, layers=1), rng)
        pretrainer = DGIPretrainer(encoder, np.random.default_rng(1))
        history = pretrainer.pretrain(dataset.graphs[:30],
                                      dataset.extractor.normalize,
                                      epochs=4, lr=2e-3)
        assert history[-1] < history[0]

    def test_training_produces_useful_classifier(self, small_dataset):
        *_, dataset = small_dataset
        config = TrainConfig(
            encoder=EncoderConfig(in_dim=dataset.extractor.dim,
                                  d_model=24, heads=3, layers=2),
            dgi_epochs=2, finetune_epochs=10)
        model = train_gnn_mls(dataset, SeedBundle(TEST_SEED), config)
        # Model probabilities should correlate with oracle labels.
        probs = model.net_probabilities(dataset.labeled_graphs)
        pos = [probs[n] for n, lab in dataset.net_labels.items()
               if lab.helps and n in probs]
        neg = [probs[n] for n, lab in dataset.net_labels.items()
               if not lab.helps and n in probs]
        assert pos and neg
        assert np.mean(pos) > np.mean(neg)

    def test_ablation_no_dgi_still_trains(self, small_dataset):
        *_, dataset = small_dataset
        config = TrainConfig(
            encoder=EncoderConfig(in_dim=dataset.extractor.dim,
                                  d_model=24, heads=3, layers=1),
            use_dgi=False, finetune_epochs=4)
        model = train_gnn_mls(dataset, SeedBundle(TEST_SEED), config)
        assert "dgi" not in model.history
        assert model.history["finetune"]

    def test_empty_labels_rejected(self, small_dataset):
        *_, dataset = small_dataset
        import copy
        bare = copy.copy(dataset)
        bare.labeled_graphs = []
        with pytest.raises(TrainingError):
            train_gnn_mls(bare, SeedBundle(TEST_SEED))

    def test_decide_threshold_monotone(self, small_dataset):
        *_, dataset = small_dataset
        config = TrainConfig(
            encoder=EncoderConfig(in_dim=dataset.extractor.dim,
                                  d_model=24, heads=3, layers=1),
            dgi_epochs=1, finetune_epochs=3)
        model = train_gnn_mls(dataset, SeedBundle(TEST_SEED), config)
        loose = decide_mls_nets(model, threshold=0.3)
        strict = decide_mls_nets(model, threshold=0.7)
        assert strict <= loose

    def test_head_probabilities_in_unit_interval(self, small_dataset):
        *_, dataset = small_dataset
        rng = np.random.default_rng(0)
        head = DecisionHead(24, 8, rng)
        embeddings = Tensor(rng.normal(size=(10, 24)))
        probs = head.probabilities(embeddings)
        assert probs.shape == (10,)
        assert ((probs >= 0) & (probs <= 1)).all()


class TestEncoderConfig:
    def test_head_divisibility(self):
        with pytest.raises(ValueError):
            EncoderConfig(d_model=50, heads=3)

    def test_path_length_guard(self):
        rng = np.random.default_rng(0)
        enc = GraphTransformer(EncoderConfig(in_dim=4, d_model=12,
                                             heads=3, max_len=8), rng)
        with pytest.raises(ValueError, match="exceeds max_len"):
            enc(Tensor(np.zeros((9, 4))))
