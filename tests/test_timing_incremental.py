"""CSR kernel bit-identity and exact incremental-STA equivalence.

The contract under test: the vectorized CSR kernel and the frontier
incremental engine are not approximations — every float they produce
(arrivals, requireds, endpoint slacks, worst-predecessor tie-breaks)
is **exactly** equal to the reference serial loop, on real routed
designs, through arbitrary MLS add/remove churn.
"""

from __future__ import annotations

import pytest

from repro.design import Design
from repro.errors import TimingError
from repro.mls import apply_mls_incremental, route_with_mls
from repro.mls.oracle import candidate_nets, oracle_slack_labels
from repro.netlist.generators.a7 import A7Config, generate_a7_dual_core
from repro.opt import insert_buffers
from repro.parallel import ParallelConfig
from repro.partition import partition_memory_on_logic
from repro.place import place_design
from repro.rng import SeedBundle, stream
from repro.route import GlobalRouter
from repro.timing import IncrementalSta, run_sta
from repro.timing.sta import TimingReport

from tests.conftest import TEST_SEED, build_small_design, make_chain_netlist


def build_small_a7(tech, seed: int = TEST_SEED) -> Design:
    """A deliberately tiny A7 pushed through place/buffer/route."""
    seeds = SeedBundle(seed)
    netlist = generate_a7_dual_core(
        A7Config(word_width=8, stage_depth=2, cache_banks=1, bus_width=4),
        tech.libraries, seeds)
    design = Design(netlist, tech, 1500.0)
    design.tiers = partition_memory_on_logic(netlist)
    design.placement, design.floorplan = place_design(
        netlist, design.tiers, seeds)
    insert_buffers(design)
    route_with_mls(design, set())
    return design


def assert_reports_identical(got: TimingReport, want: TimingReport) -> None:
    """Bit-exact equality, including dict iteration order (TNS is an
    order-dependent float sum over endpoint_slack.values())."""
    assert got.arrival == want.arrival
    assert got.required == want.required
    assert got.worst_pred == want.worst_pred
    assert got.endpoint_slack == want.endpoint_slack
    assert list(got.endpoint_slack) == list(want.endpoint_slack)
    assert got.wns_ps == want.wns_ps
    assert got.tns_ns == want.tns_ns


class TestCsrKernel:
    def test_bit_identical_on_routed_design(self, routed_small_design):
        d = routed_small_design
        serial = run_sta(d, kernel="serial")
        csr = run_sta(d, kernel="csr")
        assert_reports_identical(csr, serial)

    def test_bit_identical_on_chain(self, hetero_tech):
        nl = make_chain_netlist(hetero_tech, stages=4)
        d = Design(nl, hetero_tech, 20000.0)
        d.tiers = partition_memory_on_logic(nl)
        d.placement, d.floorplan = place_design(
            nl, d.tiers, SeedBundle(TEST_SEED))
        route_with_mls(d, set())
        assert_reports_identical(run_sta(d, kernel="csr"),
                                 run_sta(d, kernel="serial"))

    def test_csr_is_the_default(self, routed_small_design):
        d = routed_small_design
        assert_reports_identical(run_sta(d), run_sta(d, kernel="csr"))

    def test_unknown_kernel_rejected(self, routed_small_design):
        with pytest.raises(TimingError, match="kernel"):
            run_sta(routed_small_design, kernel="vectorised")

    def test_prebuilt_graph_csr_view_reusable(self, routed_small_design):
        from repro.timing import build_timing_graph
        graph = build_timing_graph(routed_small_design)
        first = run_sta(routed_small_design, graph=graph)
        again = run_sta(routed_small_design, graph=graph)
        assert_reports_identical(again, first)


class TestIncrementalSta:
    def _random_toggle_rounds(self, design: Design, rounds: int,
                              tag: str) -> None:
        """Property: through random MLS add/remove churn, the patched
        engine stays exactly equal to a from-scratch run_sta."""
        router = GlobalRouter(design)
        router.route_all()
        inc = IncrementalSta(design)
        assert_reports_identical(inc.report(), run_sta(design))

        pool = [n.name for n in candidate_nets(design)]
        rng = stream(f"inc-sta-{tag}", TEST_SEED)
        routing = design.require_routing()
        for _ in range(rounds):
            applied = set(design.mls_nets)
            off = [n for n in pool if n not in applied]
            take_on = int(rng.integers(1, 6))
            add = set(rng.choice(off, size=min(take_on, len(off)),
                                 replace=False).tolist()) if off else set()
            remove = set()
            if applied:
                take_off = int(rng.integers(0, 3))
                if take_off:
                    remove = set(rng.choice(sorted(applied),
                                            size=min(take_off, len(applied)),
                                            replace=False).tolist())
            apply_mls_incremental(design, router, routing,
                                  add=add, remove=remove, sta=inc)
            assert_reports_identical(inc.report(), run_sta(design))

    def test_random_toggles_match_full_sta_maeri(self, fresh_small_design):
        self._random_toggle_rounds(fresh_small_design, rounds=4,
                                   tag="maeri")

    def test_random_toggles_match_full_sta_a7(self, hetero_tech):
        self._random_toggle_rounds(build_small_a7(hetero_tech), rounds=3,
                                   tag="a7")

    def test_update_routing_follows_full_reroute(self, fresh_small_design):
        d = fresh_small_design
        inc = IncrementalSta(d)
        nets = {n.name for n in candidate_nets(d)[::9][:8]}
        route_with_mls(d, nets)
        rep = inc.update_routing()
        assert_reports_identical(rep, run_sta(d))
        # And back off again.
        route_with_mls(d, set())
        assert_reports_identical(inc.update_routing(), run_sta(d))

    def test_serial_kernel_agrees_on_patched_shared_graph(
            self, fresh_small_design):
        # The engine keeps the list-of-lists view in sync with every
        # patch, so the reference loop over the *shared* graph must
        # agree with the incremental state.
        d = fresh_small_design
        router = GlobalRouter(d)
        routing = router.route_all()
        inc = IncrementalSta(d)
        net = candidate_nets(d)[3]
        router.reroute_net(routing, net, mls=True)
        rep = inc.update([net.name])
        assert_reports_identical(
            rep, run_sta(d, graph=inc.graph, kernel="serial"))

    def test_clock_period_change_rebinds(self, fresh_small_design):
        d = fresh_small_design
        inc = IncrementalSta(d)
        d.clock_period_ps = d.clock_period_ps / 2.0
        assert_reports_identical(inc.update([]), run_sta(d))

    def test_structural_change_raises(self, hetero_tech):
        d = build_small_design(hetero_tech, routed=False, buffered=False)
        route_with_mls(d, set())
        inc = IncrementalSta(d)
        insert_buffers(d)            # splits nets: structural edit
        route_with_mls(d, set())
        with pytest.raises(TimingError, match="structurally"):
            inc.update_routing()


class TestExactSlackOracle:
    def test_probes_restore_baseline_exactly(self, fresh_small_design):
        d = fresh_small_design
        router = GlobalRouter(d)
        routing = router.route_all()
        inc = IncrementalSta(d)
        base = run_sta(d)
        nets = candidate_nets(d)[:6]
        wl_before = {n.name: routing.tree(n.name).wirelength()
                     for n in nets}
        labels = oracle_slack_labels(d, router, routing, nets=nets,
                                     sta=inc)
        assert set(labels) <= {n.name for n in nets}
        # Grid, routing and timing state all rolled back bit-exactly.
        for n in nets:
            assert routing.tree(n.name).wirelength() == wl_before[n.name]
        assert_reports_identical(inc.report(), base)
        assert_reports_identical(run_sta(d), base)

    def test_gains_are_global_slack_movements(self, fresh_small_design):
        d = fresh_small_design
        router = GlobalRouter(d)
        routing = router.route_all()
        labels = oracle_slack_labels(d, router, routing,
                                     nets=candidate_nets(d)[:4])
        for lab in labels.values():
            if lab.label == 1:
                assert lab.applied
                assert max(lab.gain_wns_ps, lab.gain_tns_ps) >= 0.25


class TestReportCaching:
    def test_summary_metrics_cached_on_first_access(self):
        rep = TimingReport(clock_period_ps=1000.0, graph=None,
                           arrival=[], required=[],
                           endpoint_slack={"a": -5.0, "b": 3.0},
                           worst_pred=[])
        assert rep.wns_ps == -5.0
        assert rep.tns_ns == pytest.approx(-0.005)
        assert rep.num_violating == 1
        # Documented immutability: cached values survive (and expose)
        # in-place mutation of endpoint_slack.
        rep.endpoint_slack["c"] = -100.0
        assert rep.wns_ps == -5.0
        assert rep.num_violating == 1


class TestSingleCoreDegrade:
    def test_degrades_to_serial_and_logs_once(self, monkeypatch, capsys):
        # The notice goes through the structured repro logger
        # (WARNING -> stderr), once per process; every degrade decision
        # still counts in the metrics registry.
        from repro.obs import metrics
        import repro.parallel.config as pcfg
        monkeypatch.setattr(pcfg, "usable_cores", lambda: 1)
        monkeypatch.setattr(pcfg, "_DEGRADE_LOGGED", False)
        before = metrics.counter("pool.single_core_degrades")
        cfg = ParallelConfig(workers=4, min_items=2)
        assert cfg.enabled
        assert not cfg.should_parallelize(1000)
        assert not cfg.should_parallelize(1000)
        captured = capsys.readouterr()
        assert captured.err.count("single-core") == 1
        assert captured.out == ""
        assert metrics.counter("pool.single_core_degrades") == before + 2

    def test_multicore_unaffected(self, monkeypatch):
        import repro.parallel.config as pcfg
        monkeypatch.setattr(pcfg, "usable_cores", lambda: 8)
        cfg = ParallelConfig(workers=4, min_items=2)
        assert cfg.should_parallelize(1000)


class TestPrepareCacheBound:
    def test_lru_eviction(self, monkeypatch, hetero_tech):
        import repro.core.flow as flow_mod
        flow_mod.clear_prepare_cache()
        monkeypatch.setattr(flow_mod, "PREPARE_CACHE_MAX_ENTRIES", 2)
        monkeypatch.setattr(
            flow_mod, "prepare_design",
            lambda factory, tech, seeds, config: ("stub", seeds.seed))
        config = flow_mod.FlowConfig(selector="none")

        def prep(seed):
            return flow_mod.prepare_design_cached(
                generate_a7_dual_core, hetero_tech,
                SeedBundle(seed), config)

        def key_of(seed):
            # The LRU keys by the shared content-hash derivation.
            from repro.service.keys import prepare_key
            key = prepare_key(generate_a7_dual_core, hetero_tech,
                              SeedBundle(seed), config)
            assert key.stable
            return (key.kind, key.hexdigest)

        assert prep(1) == ("stub", 1)
        assert prep(2) == ("stub", 2)
        assert prep(3) == ("stub", 3)
        assert len(flow_mod._PREPARE_CACHE) == 2
        # Seed 1 was least recently used -> evicted; 2 and 3 remain.
        assert list(flow_mod._PREPARE_CACHE) == [key_of(2), key_of(3)]
        # Re-touching seed 2 makes 3 the eviction candidate.
        prep(2)
        prep(4)
        assert list(flow_mod._PREPARE_CACHE) == [key_of(2), key_of(4)]
        flow_mod.clear_prepare_cache()
