"""Observability subsystem tests: spans, metrics, logging, schemas.

Covers the repro.obs contracts end to end:

* the disabled fast path is a shared no-op (and cheap);
* spans nest with correct parent ids, in-process and across pool
  workers (merged via collect_worker / merge);
* JSONL, Chrome-trace and metrics dumps satisfy their validators;
* tracing never changes results — FlowReport rows are bit-identical
  with tracing on vs off;
* the structured logger keeps default-level stdout byte-identical to
  the prints it replaced and honours --log-level;
* the CLI --trace/--metrics round-trip produces valid files.
"""

from __future__ import annotations

import json
import time

import pytest

from repro import FlowConfig, run_flow
from repro.obs import get_logger, metrics, set_log_level, trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.schema import (validate_chrome_trace, validate_metrics,
                              validate_trace_jsonl)
from repro.obs.tracer import Tracer, _NULL_SPAN, chrome_trace_path
from repro.parallel import ParallelConfig, snapshot_map
from repro.rng import SeedBundle

from tests.conftest import TEST_SEED
from tests.test_flow import fast_config, tiny_factory


@pytest.fixture(autouse=True)
def _clean_obs():
    """Leave the module singletons the way every other test expects."""
    yield
    trace.disable()
    trace.reset()
    set_log_level("info")


def by_name(records: list[dict]) -> dict[str, list[dict]]:
    out: dict[str, list[dict]] = {}
    for rec in records:
        out.setdefault(rec["name"], []).append(rec)
    return out


class TestNullFastPath:
    def test_disabled_span_is_shared_noop(self):
        assert not trace.enabled
        assert trace.span("a") is _NULL_SPAN
        assert trace.span("b", attr=1) is _NULL_SPAN
        with trace.span("c") as span:
            assert span.set(x=1) is span
        assert trace.records == []

    def test_disabled_span_overhead_is_small(self):
        # Loose ceiling, not a benchmark: 50k disabled spans must stay
        # far below anything a flow stage would notice (<5us each).
        n = 50_000
        t0 = time.perf_counter()
        for _ in range(n):
            with trace.span("hot", i=0):
                pass
        elapsed = time.perf_counter() - t0
        assert elapsed < 5e-6 * n

    def test_export_parent_is_none_when_disabled(self):
        assert trace.export_parent() is None


class TestSpans:
    def test_nesting_and_parent_ids(self):
        tr = Tracer()
        tr.enable()
        with tr.span("outer", stage="x"):
            with tr.span("inner.a"):
                pass
            with tr.span("inner.b") as span:
                span.set(found=3)
        recs = by_name(tr.records)
        outer = recs["outer"][0]
        assert outer["parent"] is None
        assert outer["attrs"] == {"stage": "x"}
        for name in ("inner.a", "inner.b"):
            assert recs[name][0]["parent"] == outer["id"]
        assert recs["inner.b"][0]["attrs"] == {"found": 3}
        # Completion order: children close before their parent.
        assert [r["name"] for r in tr.records] == \
            ["inner.a", "inner.b", "outer"]
        assert all(r["dur_us"] >= 0 for r in tr.records)

    def test_ids_unique_and_pid_prefixed(self):
        tr = Tracer()
        tr.enable()
        for _ in range(5):
            with tr.span("s"):
                pass
        ids = [r["id"] for r in tr.records]
        assert len(set(ids)) == 5
        assert all(i.startswith(f"{tr._pid:x}-") for i in ids)

    def test_collect_worker_roots_at_parent(self):
        tr = Tracer()
        tr.enable()
        with tr.span("driver") as driver:
            token = tr.export_parent()
            assert token == driver.span_id
            with tr.collect_worker(token) as records:
                with tr.span("pool.chunk"):
                    with tr.span("work"):
                        pass
            assert tr.records == []     # parked during collection
            tr.merge(records)
        recs = by_name(tr.records)
        chunk = recs["pool.chunk"][0]
        assert chunk["parent"] == recs["driver"][0]["id"]
        assert recs["work"][0]["parent"] == chunk["id"]

    def test_threads_keep_independent_span_stacks(self):
        """Concurrent spans on different threads never adopt each
        other as parents: each thread nests on its own stack
        (threading.local), while ids stay process-unique."""
        import threading

        tr = Tracer()
        tr.enable()
        entered = threading.Barrier(3)

        def worker(tag: str) -> None:
            with tr.span(f"outer.{tag}"):
                entered.wait()          # all outers open concurrently
                with tr.span(f"inner.{tag}"):
                    pass

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in ("a", "b")]
        with tr.span("main.outer"):
            for t in threads:
                t.start()
            entered.wait()
            with tr.span("main.inner"):
                pass
            for t in threads:
                t.join()
        recs = by_name(tr.records)
        for tag in ("a", "b"):
            outer = recs[f"outer.{tag}"][0]
            assert outer["parent"] is None
            assert recs[f"inner.{tag}"][0]["parent"] == outer["id"]
        assert recs["main.inner"][0]["parent"] == \
            recs["main.outer"][0]["id"]
        ids = [r["id"] for r in tr.records]
        assert len(set(ids)) == len(ids)

    def test_reset_keeps_ids_unique(self):
        tr = Tracer()
        tr.enable()
        with tr.span("a"):
            pass
        first = tr.records[0]["id"]
        tr.reset()
        tr.enable()
        with tr.span("b"):
            pass
        assert tr.records[0]["id"] != first


def _scale_chunk(state, chunk):
    return [state * item for item in chunk]


class TestWorkerSpanMerge:
    def test_snapshot_map_merges_pool_chunk_spans(self, tmp_path):
        trace.enable()
        trace.reset()
        config = ParallelConfig(workers=2, min_items=1, chunk_size=3)
        with trace.span("driver") as driver:
            out = snapshot_map(_scale_chunk, list(range(9)), 10, config)
        assert out == [10 * i for i in range(9)]
        recs = by_name(trace.records)
        chunks = recs["pool.chunk"]
        assert len(chunks) == 3
        # Every chunk span hangs off the driver span regardless of
        # which process (pool worker or serial fallback) ran it.
        assert all(c["parent"] == driver.span_id for c in chunks)
        assert sum(c["attrs"]["items"] for c in chunks) == 9

        jsonl = tmp_path / "pool.jsonl"
        trace.write_jsonl(jsonl)
        summary = validate_trace_jsonl(jsonl)
        assert summary["spans"] == len(trace.records)
        chrome = chrome_trace_path(jsonl)
        assert chrome.name == "pool.chrome.json"
        trace.write_chrome(chrome)
        assert validate_chrome_trace(chrome)["events"] == summary["spans"]


class TestMetricsRegistry:
    def test_counter_gauge_stat_families(self):
        reg = MetricsRegistry()
        reg.inc("hits")
        reg.inc("hits", 2)
        reg.set_gauge("workers", 4)
        reg.set_gauge("workers", 8)
        for value in (3.0, 1.0, 2.0):
            reg.observe("wave", value)
        snap = reg.snapshot()
        assert snap["counters"]["hits"] == 3
        assert snap["gauges"]["workers"] == 8
        assert snap["stats"]["wave"] == {"count": 3, "total": 6.0,
                                         "min": 1.0, "max": 3.0,
                                         "mean": 2.0}
        assert reg.counter("missing") == 0

    def test_write_json_validates(self, tmp_path):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.set_gauge("b", 1.5)
        reg.add_time("c_s", 0.25)
        path = tmp_path / "metrics.json"
        reg.write_json(path)
        assert validate_metrics(path) == \
            {"counters": 1, "gauges": 1, "stats": 1, "histograms": 0}


class TestLogger:
    def test_info_to_stdout_warning_to_stderr(self, capsys):
        log = get_logger("repro.test")
        log.info("plain message")
        log.warning("scary message")
        captured = capsys.readouterr()
        assert captured.out == "plain message\n"   # byte-identical print
        assert captured.err == "scary message\n"

    def test_level_threshold(self, capsys):
        log = get_logger("repro.test")
        set_log_level("warning")
        log.info("suppressed")
        log.warning("kept")
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err == "kept\n"
        set_log_level("debug")
        log.debug("now visible")
        assert capsys.readouterr().out == "now visible\n"

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            set_log_level("loud")


class TestFlowTracing:
    @pytest.fixture(scope="class")
    def traced_flow(self, hetero_tech):
        trace.enable()
        trace.reset()
        try:
            report = run_flow(
                tiny_factory, hetero_tech, SeedBundle(TEST_SEED),
                fast_config("oracle", with_scan=True,
                            dft_strategy="wire-based", dft_patterns=64,
                            pdn=True))
            records = list(trace.records)
        finally:
            trace.disable()
            trace.reset()
        return report, records

    def test_all_pipeline_stages_have_spans(self, traced_flow):
        _, records = traced_flow
        names = {rec["name"] for rec in records}
        expected = {
            "flow", "flow.prepare", "prepare.generate",
            "prepare.partition", "prepare.place",
            "prepare.level_shifters", "prepare.scan", "prepare.buffer",
            "flow.route_baseline", "flow.sta_baseline", "flow.select",
            "flow.route_mls", "flow.dft", "flow.power", "flow.pdn",
            "place.quadratic", "place.bisection", "place.solve",
            "place.factor", "place.back_solve", "place.legalize",
            "route.all", "sta.full", "sta.update_routing",
        }
        assert expected <= names

    def test_span_tree_is_rooted_at_flow(self, traced_flow, tmp_path):
        _, records = traced_flow
        recs = by_name(records)
        flow_span = recs["flow"][0]
        assert flow_span["parent"] is None
        assert flow_span["attrs"]["selector"] == "oracle"
        by_id = {rec["id"]: rec for rec in records}
        for name in ("flow.prepare", "flow.select", "flow.dft",
                     "flow.pdn"):
            assert recs[name][0]["parent"] == flow_span["id"]
        # Every stage span traces a parent chain back up to "flow".
        for rec in records:
            node = rec
            while node["parent"] is not None:
                node = by_id[node["parent"]]
            assert node["name"] == "flow"

    def test_trace_files_validate(self, traced_flow, tmp_path):
        _, records = traced_flow
        tr = Tracer()
        tr.enable()
        tr.merge(records)
        jsonl = tmp_path / "flow.jsonl"
        tr.write_jsonl(jsonl)
        summary = validate_trace_jsonl(jsonl)
        assert summary["spans"] == len(records)
        assert summary["roots"] >= 1
        chrome = chrome_trace_path(jsonl)
        tr.write_chrome(chrome)
        assert validate_chrome_trace(chrome)["events"] == len(records)
        with open(chrome, encoding="utf-8") as fh:
            events = json.load(fh)["traceEvents"]
        assert min(e["ts"] for e in events) == 0    # rebased timeline

    def test_runtime_fields(self, traced_flow):
        report, _ = traced_flow
        assert report.runtime_s >= report.select_runtime_s > 0
        stages = report.stage_runtime_s
        assert stages["flow.prepare"] > 0
        # The stage breakdown accounts for (nearly) the whole runtime.
        assert sum(stages.values()) <= report.runtime_s * 1.001
        assert "runtime_s" not in report.row()      # wall-clock stays out

    def test_flow_metrics_counters_move(self, traced_flow):
        snap = metrics.snapshot()
        for counter in ("flow.runs", "route.full_routes",
                        "route.nets_routed", "sta.full_runs",
                        "sta.arc_propagations", "sta.inc.updates",
                        "place.factorizations", "place.levels"):
            assert snap["counters"].get(counter, 0) > 0, counter
        assert "sta.inc.frontier" in snap["stats"]
        assert "place.factor_s" in snap["stats"]


class TestTracingDeterminism:
    def test_rows_bit_identical_with_tracing_on(self, hetero_tech):
        baseline = run_flow(tiny_factory, hetero_tech,
                            SeedBundle(TEST_SEED), fast_config("sota"))
        trace.enable()
        trace.reset()
        try:
            traced = run_flow(tiny_factory, hetero_tech,
                              SeedBundle(TEST_SEED), fast_config("sota"))
        finally:
            trace.disable()
            trace.reset()
        row_a = {k: v for k, v in baseline.row().items()
                 if k != "runtime_min"}
        row_b = {k: v for k, v in traced.row().items()
                 if k != "runtime_min"}
        assert row_a == row_b


class TestCliRoundTrip:
    def test_flow_trace_metrics_files(self, tmp_path, capsys):
        from repro.cli import main
        jsonl = tmp_path / "run.jsonl"
        mjson = tmp_path / "run-metrics.json"
        # A seed no other test uses, so the harness flow cache misses
        # and the run actually executes (and emits spans).
        code = main(["flow", "--benchmark", "maeri16_hetero",
                     "--selector", "none", "--seed", "20250806",
                     "--trace", str(jsonl), "--metrics", str(mjson)])
        assert code == 0
        out = capsys.readouterr().out
        assert "wns_ps" in out
        assert f"wrote metrics to {mjson}" in out

        summary = validate_trace_jsonl(jsonl)
        assert summary["spans"] > 0
        names = set()
        with open(jsonl, encoding="utf-8") as fh:
            for line in fh:
                names.add(json.loads(line)["name"])
        assert {"flow", "flow.prepare", "route.all", "flow.select",
                "sta.update_routing"} <= names
        chrome = chrome_trace_path(jsonl)
        assert validate_chrome_trace(chrome)["events"] == summary["spans"]
        msummary = validate_metrics(mjson)
        assert msummary["counters"] > 0

    def test_log_level_silences_info(self, capsys):
        from repro.cli import main
        assert main(["list", "--log-level", "warning"]) == 0
        captured = capsys.readouterr()
        assert captured.out == ""


class TestHistogram:
    def test_bucket_bound_is_le_inclusive(self):
        from repro.obs.histogram import BUCKET_BOUNDS, Histogram, \
            bucket_label
        hist = Histogram()
        bound = BUCKET_BOUNDS[5]
        hist.observe(bound)                 # exactly on the bound
        hist.observe(bound * 1.000001)      # just past it
        snap = hist.snapshot()
        assert snap["buckets"][bucket_label(bound)] == 1
        assert snap["buckets"][bucket_label(BUCKET_BOUNDS[6])] == 1

    def test_underflow_and_overflow(self):
        from repro.obs.histogram import BUCKET_BOUNDS, Histogram, \
            bucket_label
        hist = Histogram()
        hist.observe(0.0)                   # below the whole ladder
        hist.observe(BUCKET_BOUNDS[-1] * 2)  # past the top bound
        snap = hist.snapshot()
        assert snap["buckets"][bucket_label(BUCKET_BOUNDS[0])] == 1
        assert snap["buckets"]["+Inf"] == 1
        assert snap["min"] == 0.0
        assert snap["max"] == BUCKET_BOUNDS[-1] * 2

    def test_merge_is_exact(self):
        from repro.obs.histogram import Histogram
        values_a = [0.001, 0.5, 2.0]
        values_b = [0.002, 7.0, 9000.0]
        combined = Histogram()
        for v in values_a + values_b:
            combined.observe(v)
        a, b = Histogram(), Histogram()
        for v in values_a:
            a.observe(v)
        for v in values_b:
            b.observe(v)
        a.merge(b)
        assert a.snapshot() == combined.snapshot()

    def test_snapshot_roundtrip_and_cumulative(self):
        from repro.obs.histogram import BUCKET_BOUNDS, Histogram
        hist = Histogram()
        for v in (0.001, 0.001, 0.25, 30.0, 1e5):
            hist.observe(v)
        snap = hist.snapshot()
        # Sparse: only occupied buckets serialize.
        assert len(snap["buckets"]) == 4
        back = Histogram.from_snapshot(snap)
        assert back.snapshot() == snap
        cum = hist.cumulative()
        assert len(cum) == len(BUCKET_BOUNDS) + 1
        assert cum[-1] == ("+Inf", 5)
        counts = [c for _label, c in cum]
        assert counts == sorted(counts)     # cumulative never drops

    def test_empty_snapshot(self):
        from repro.obs.histogram import Histogram
        snap = Histogram().snapshot()
        assert snap == {"count": 0, "total": 0.0, "min": 0.0,
                        "max": 0.0, "buckets": {}}

    def test_registry_histograms_snapshot_and_validate(self, tmp_path):
        from repro.obs.schema import validate_histogram_snapshot
        reg = MetricsRegistry()
        reg.observe_hist("lat_s", 0.25)
        reg.observe_hist("lat_s", 4.0)
        snap = reg.snapshot()["histograms"]["lat_s"]
        assert snap["count"] == 2
        validate_histogram_snapshot(snap, "lat_s")
        path = tmp_path / "m.json"
        reg.write_json(path)
        assert validate_metrics(path)["histograms"] == 1


class TestPrometheusExposition:
    def test_name_sanitization(self):
        from repro.obs.metrics import prometheus_name
        assert prometheus_name("service.latency_s") == \
            "repro_service_latency_s"
        assert prometheus_name("a-b c") == "repro_a_b_c"

    def test_render_validates_and_covers_all_families(self, tmp_path):
        from repro.obs.metrics import render_prometheus
        from repro.obs.schema import validate_prometheus_text
        reg = MetricsRegistry()
        reg.inc("flow.runs", 3)
        reg.set_gauge("service.inflight", 2)
        reg.add_time("place.factor_s", 0.5)
        reg.observe_hist("service.latency_s", 0.01)
        reg.observe_hist("service.latency_s", 3.0)
        text = render_prometheus(reg.snapshot())
        assert "# TYPE repro_flow_runs_total counter" in text
        assert "repro_flow_runs_total 3" in text
        assert "# TYPE repro_service_inflight gauge" in text
        assert "# TYPE repro_place_factor_s summary" in text
        assert "repro_place_factor_s_max" in text
        assert "# TYPE repro_service_latency_s histogram" in text
        assert 'repro_service_latency_s_bucket{le="+Inf"} 2' in text
        assert "repro_service_latency_s_count 2" in text
        path = tmp_path / "metrics.prom"
        path.write_text(text)
        info = validate_prometheus_text(path)
        assert info["samples"] > 0
        assert info["types"] >= 4

    def test_validator_rejects_nonmonotonic_buckets(self, tmp_path):
        from repro.obs.schema import validate_prometheus_text
        path = tmp_path / "bad.prom"
        path.write_text(
            "# TYPE repro_x histogram\n"
            'repro_x_bucket{le="1.0"} 5\n'
            'repro_x_bucket{le="+Inf"} 3\n'
            "repro_x_sum 1.0\n"
            "repro_x_count 3\n")
        with pytest.raises(ValueError, match="monoton|decreas"):
            validate_prometheus_text(path)

    def test_validator_rejects_garbage_sample(self, tmp_path):
        from repro.obs.schema import validate_prometheus_text
        path = tmp_path / "bad.prom"
        path.write_text("this is not exposition\n")
        with pytest.raises(ValueError):
            validate_prometheus_text(path)


class TestRotatingSink:
    def test_rotation_produces_generations(self, tmp_path):
        from repro.obs.tracer import RotatingTraceSink
        path = tmp_path / "t.jsonl"
        record = {"id": "x", "parent": None, "name": "s", "pid": 1,
                  "ts_us": 0, "dur_us": 1.0, "attrs": {}}
        line_len = len(json.dumps(record, sort_keys=True)) + 1
        sink = RotatingTraceSink(path, max_bytes=line_len * 3,
                                 backups=2)
        for _ in range(8):
            sink.write(record)
        sink.close()
        assert sink.records_written == 8
        # 8 records at 3 per generation: live file 2, .1 and .2 full,
        # oldest generation dropped at the cap.
        assert len(path.read_text().splitlines()) == 2
        assert len((tmp_path / "t.jsonl.1").read_text()
                   .splitlines()) == 3
        assert len((tmp_path / "t.jsonl.2").read_text()
                   .splitlines()) == 3
        assert not (tmp_path / "t.jsonl.3").exists()

    def test_streaming_spans_bypass_memory(self, tmp_path):
        from repro.obs.schema import validate_trace_jsonl
        from repro.obs.tracer import RotatingTraceSink
        path = tmp_path / "stream.jsonl"
        trace.enable()
        trace.reset()
        trace.attach_sink(RotatingTraceSink(path), keep_records=False)
        with trace.span("outer"):
            with trace.span("inner"):
                pass
        sink = trace.detach_sink()
        assert sink.records_written == 2
        assert trace.records == []          # nothing buffered
        assert validate_trace_jsonl(path)["spans"] == 2


class TestRequestIds:
    def test_spans_carry_pinned_request(self):
        tr = Tracer()
        tr.enable()
        tr.set_request("req-7")
        with tr.span("serve"):
            pass
        tr.set_request(None)
        with tr.span("idle"):
            pass
        recs = by_name(tr.records)
        assert recs["serve"][0]["attrs"]["req"] == "req-7"
        assert "req" not in recs["idle"][0]["attrs"]

    def test_request_crosses_worker_boundary(self):
        """export_parent ships '<parent>|<req>'; collect_worker pins
        the request on the worker side so merged pool spans group by
        request id, not pid."""
        tr = Tracer()
        tr.enable()
        tr.set_request("req-9")
        with tr.span("driver") as driver:
            token = tr.export_parent()
            assert token == f"{driver.span_id}|req-9"
            with tr.collect_worker(token) as records:
                with tr.span("pool.chunk"):
                    pass
            tr.merge(records)
        tr.set_request(None)
        assert tr.current_request() is None
        recs = by_name(tr.records)
        chunk = recs["pool.chunk"][0]
        assert chunk["parent"] == recs["driver"][0]["id"]
        assert chunk["attrs"]["req"] == "req-9"


class TestRecorderDeterminism:
    def test_rows_bit_identical_with_recorder_armed(self, hetero_tech,
                                                    tmp_path):
        from repro.obs.recorder import flight
        baseline = run_flow(tiny_factory, hetero_tech,
                            SeedBundle(TEST_SEED), fast_config("sota"))
        flight.arm(tmp_path, export_env=False)
        try:
            recorded = run_flow(tiny_factory, hetero_tech,
                                SeedBundle(TEST_SEED),
                                fast_config("sota"))
            assert any(e["type"] == "span" for e in flight.events())
        finally:
            flight.disarm()
        row_a = {k: v for k, v in baseline.row().items()
                 if k != "runtime_min"}
        row_b = {k: v for k, v in recorded.row().items()
                 if k != "runtime_min"}
        assert row_a == row_b
