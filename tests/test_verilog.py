"""Structural Verilog writer/parser round-trip tests."""

import pytest

from repro.errors import NetlistError, TechError
from repro.netlist.generators import MaeriConfig, generate_maeri
from repro.netlist.verilog import dumps, read_verilog, write_verilog
from repro.rng import SeedBundle
from repro.tech import NODE_28NM, build_library

from tests.conftest import make_chain_netlist

LIB = build_library(NODE_28NM)


def _signature(netlist):
    """Connectivity-complete signature for equality checks."""
    insts = sorted(
        (name, inst.cell.name,
         tuple(sorted((p.name, p.net.name) for p in inst.pins.values()
                      if p.net is not None)))
        for name, inst in netlist.instances.items())
    ports = sorted((p.name, p.direction, p.false_path,
                    p.pin.net.name if p.pin.net else None)
                   for p in netlist.ports.values())
    nets = sorted((n.name, n.is_clock) for n in netlist.nets.values())
    return insts, ports, nets


class TestRoundTrip:
    def test_chain_roundtrip(self, hetero_tech, tmp_path):
        nl = make_chain_netlist(hetero_tech, stages=3)
        path = tmp_path / "chain.v"
        write_verilog(nl, path)
        back = read_verilog(path, hetero_tech.libraries["logic"])
        assert _signature(back) == _signature(nl)

    def test_maeri_roundtrip_with_attrs(self, hetero_tech, tmp_path):
        nl = generate_maeri(MaeriConfig(pe_count=16, bandwidth=8),
                            hetero_tech.libraries, SeedBundle(5))
        path = tmp_path / "maeri.v"
        write_verilog(nl, path)
        # Hetero designs need both libraries; read against a merged view.
        merged_cells = {c.name: c for lib in hetero_tech.libraries.values()
                        for c in lib}
        from repro.tech.library import CellLibrary
        merged = CellLibrary(NODE_28NM, list(merged_cells.values()))
        back = read_verilog(path, merged)
        assert len(back.instances) == len(nl.instances)
        assert len(back.nets) == len(nl.nets)
        # Region attrs survive.
        some = next(n for n, i in nl.instances.items()
                    if i.attrs.get("region") == "memory")
        assert back.instance(some).attrs["region"] == "memory"

    def test_clock_marking_survives(self, hetero_tech, tmp_path):
        nl = make_chain_netlist(hetero_tech)
        path = tmp_path / "c.v"
        write_verilog(nl, path)
        back = read_verilog(path, hetero_tech.libraries["logic"])
        assert back.net("clk").is_clock

    def test_escaped_identifiers(self, hetero_tech, tmp_path):
        nl = make_chain_netlist(hetero_tech)
        text = dumps(nl)
        # Hierarchical names like 'launch_1' are plain, but generator
        # names with '/' must be escaped.
        nl2 = generate_maeri(MaeriConfig(pe_count=16, bandwidth=8),
                             hetero_tech.libraries, SeedBundle(5))
        text2 = dumps(nl2)
        assert "\\pe0/" in text2
        assert text.count("module ") == 1  # one module decl (+ endmodule)


class TestParserErrors:
    def test_unknown_cell_rejected(self, tmp_path):
        path = tmp_path / "bad.v"
        path.write_text(
            "module m (a, y);\n  input a;\n  output y;\n"
            "  wire n1;\n  wire n2;\n"
            "  assign n1 = a;\n  assign y = n2;\n"
            "  MYSTERY u0 (.A(n1), .Y(n2));\nendmodule\n")
        with pytest.raises(TechError):
            read_verilog(path, LIB)

    def test_garbage_rejected(self, tmp_path):
        path = tmp_path / "junk.v"
        path.write_text("this is @ not ! verilog")
        with pytest.raises(NetlistError):
            read_verilog(path, LIB)

    def test_comments_ignored(self, tmp_path):
        path = tmp_path / "c.v"
        path.write_text(
            "// line comment\nmodule m (a, y);\n"
            "  input a;\n  output y;\n"
            "  /* block\n     comment */\n"
            "  wire n1;\n  wire n2;\n"
            "  assign n1 = a;\n  assign y = n2;\n"
            "  INV u0 (.A(n1), .Y(n2));\nendmodule\n")
        nl = read_verilog(path, LIB)
        assert "u0" in nl.instances
