"""Structural Verilog writer/parser round-trip tests."""

import pytest

from repro.errors import NetlistError, TechError
from repro.netlist.generators import MaeriConfig, generate_maeri
from repro.netlist.verilog import dumps, read_verilog, write_verilog
from repro.rng import SeedBundle
from repro.tech import NODE_28NM, build_library

from tests.conftest import make_chain_netlist

LIB = build_library(NODE_28NM)


def _signature(netlist):
    """Connectivity-complete signature for equality checks."""
    insts = sorted(
        (name, inst.cell.name,
         tuple(sorted((p.name, p.net.name) for p in inst.pins.values()
                      if p.net is not None)))
        for name, inst in netlist.instances.items())
    ports = sorted((p.name, p.direction, p.false_path,
                    p.pin.net.name if p.pin.net else None)
                   for p in netlist.ports.values())
    nets = sorted((n.name, n.is_clock) for n in netlist.nets.values())
    return insts, ports, nets


class TestRoundTrip:
    def test_chain_roundtrip(self, hetero_tech, tmp_path):
        nl = make_chain_netlist(hetero_tech, stages=3)
        path = tmp_path / "chain.v"
        write_verilog(nl, path)
        back = read_verilog(path, hetero_tech.libraries["logic"])
        assert _signature(back) == _signature(nl)

    def test_maeri_roundtrip_with_attrs(self, hetero_tech, tmp_path):
        nl = generate_maeri(MaeriConfig(pe_count=16, bandwidth=8),
                            hetero_tech.libraries, SeedBundle(5))
        path = tmp_path / "maeri.v"
        write_verilog(nl, path)
        # Hetero designs read back against the full library dict; each
        # instance resolves in the library its region attr names.
        back = read_verilog(path, hetero_tech.libraries)
        assert len(back.instances) == len(nl.instances)
        assert len(back.nets) == len(nl.nets)
        # Region attrs survive.
        some = next(n for n, i in nl.instances.items()
                    if i.attrs.get("region") == "memory")
        assert back.instance(some).attrs["region"] == "memory"

    def test_multi_library_resolves_per_region(self, hetero_tech,
                                               tmp_path):
        """A 16nm INV and a 28nm INV share a name but not electrical
        models — the importer must pick the region's library, not a
        merged namespace."""
        nl = generate_maeri(MaeriConfig(pe_count=16, bandwidth=8),
                            hetero_tech.libraries, SeedBundle(5))
        path = tmp_path / "maeri.v"
        write_verilog(nl, path)
        back = read_verilog(path, hetero_tech.libraries)
        for name, orig in nl.instances.items():
            region = orig.attrs.get("region", "logic")
            expected = hetero_tech.libraries[region].get(orig.cell.name)
            assert back.instance(name).cell is expected

    def test_imported_netlist_flat_roundtrip(self, hetero_tech, tmp_path):
        """Imported netlists go through the same flat (SoA) pickle as
        generated ones — exact structural round trip."""
        import pickle

        from tests.golden_util import netlist_digest
        nl = generate_maeri(MaeriConfig(pe_count=16, bandwidth=8),
                            hetero_tech.libraries, SeedBundle(5))
        path = tmp_path / "maeri.v"
        write_verilog(nl, path)
        imported = read_verilog(path, hetero_tech.libraries)
        restored = pickle.loads(pickle.dumps(imported))
        assert netlist_digest(restored) == netlist_digest(imported)
        assert list(restored.instances) == list(imported.instances)

    def test_clock_marking_survives(self, hetero_tech, tmp_path):
        nl = make_chain_netlist(hetero_tech)
        path = tmp_path / "c.v"
        write_verilog(nl, path)
        back = read_verilog(path, hetero_tech.libraries["logic"])
        assert back.net("clk").is_clock

    def test_escaped_identifiers(self, hetero_tech, tmp_path):
        nl = make_chain_netlist(hetero_tech)
        text = dumps(nl)
        # Hierarchical names like 'launch_1' are plain, but generator
        # names with '/' must be escaped.
        nl2 = generate_maeri(MaeriConfig(pe_count=16, bandwidth=8),
                             hetero_tech.libraries, SeedBundle(5))
        text2 = dumps(nl2)
        assert "\\pe0/" in text2
        assert text.count("module ") == 1  # one module decl (+ endmodule)


class TestFlowImport:
    def test_flow_runs_on_imported_verilog(self, tmp_path, capsys):
        """export -> flow --verilog matches the generate path's contract:
        the full flow (partition/place/route/STA) runs on the import."""
        from repro.cli import main
        out_file = tmp_path / "m16.v"
        assert main(["export", "--benchmark", "maeri16_hetero",
                     "--out", str(out_file)]) == 0
        capsys.readouterr()
        assert main(["flow", "--benchmark", "maeri16_hetero",
                     "--selector", "none",
                     "--verilog", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "wns_ps" in out
        assert f"import {out_file}" in out


class TestParserErrors:
    def test_unknown_cell_rejected(self, tmp_path):
        path = tmp_path / "bad.v"
        path.write_text(
            "module m (a, y);\n  input a;\n  output y;\n"
            "  wire n1;\n  wire n2;\n"
            "  assign n1 = a;\n  assign y = n2;\n"
            "  MYSTERY u0 (.A(n1), .Y(n2));\nendmodule\n")
        with pytest.raises(TechError):
            read_verilog(path, LIB)

    def test_garbage_rejected(self, tmp_path):
        path = tmp_path / "junk.v"
        path.write_text("this is @ not ! verilog")
        with pytest.raises(NetlistError):
            read_verilog(path, LIB)

    def test_unknown_region_rejected(self, hetero_tech, tmp_path):
        path = tmp_path / "bad_region.v"
        path.write_text(
            "module m (a, y);\n  input a;\n  output y;\n"
            "  wire n1;\n  wire n2;\n"
            "  assign n1 = a;\n  assign y = n2;\n"
            "  (* region = \"analog\" *)\n"
            "  INV u0 (.A(n1), .Y(n2));\nendmodule\n")
        with pytest.raises(TechError, match="analog"):
            read_verilog(path, hetero_tech.libraries)
        # A bare library ignores region attrs entirely (legacy shape).
        nl = read_verilog(path, LIB)
        assert nl.instance("u0").attrs["region"] == "analog"

    def test_comments_ignored(self, tmp_path):
        path = tmp_path / "c.v"
        path.write_text(
            "// line comment\nmodule m (a, y);\n"
            "  input a;\n  output y;\n"
            "  /* block\n     comment */\n"
            "  wire n1;\n  wire n2;\n"
            "  assign n1 = a;\n  assign y = n2;\n"
            "  INV u0 (.A(n1), .Y(n2));\nendmodule\n")
        nl = read_verilog(path, LIB)
        assert "u0" in nl.instances
