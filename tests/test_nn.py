"""Autograd and layer tests, including numerical gradient checks."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import (Adam, LayerNorm, Linear, MLP, Module,
                      MultiHeadSelfAttention, SGD, Tensor,
                      TransformerEncoder, load_params, positional_encoding,
                      save_params)
from repro.nn.functional import (accuracy,
                                 binary_cross_entropy_with_logits, dgi_loss)


def numerical_grad(fn, arr, eps=1e-6):
    grad = np.zeros_like(arr)
    it = np.nditer(arr, flags=["multi_index"])
    for _ in it:
        idx = it.multi_index
        plus = arr.copy(); plus[idx] += eps
        minus = arr.copy(); minus[idx] -= eps
        grad[idx] = (fn(plus) - fn(minus)) / (2 * eps)
    return grad


class TestTensorOps:
    @pytest.mark.parametrize("op", [
        lambda x: (x * 3.0 + 1.0).sum(),
        lambda x: (x @ x.transpose()).sum(),
        lambda x: x.relu().sum(),
        lambda x: x.sigmoid().mean(),
        lambda x: x.tanh().sum(),
        lambda x: x.exp().mean(),
        lambda x: (x * x).softmax(axis=-1).sum(),
        lambda x: (x - x.mean(axis=-1, keepdims=True)).sum(),
        lambda x: (x ** 2.0).sum(),
        lambda x: (1.0 / (x + 5.0)).sum(),
        lambda x: x[1:, :2].sum(),
        lambda x: x.reshape(12).sum(),
    ])
    def test_gradcheck(self, op):
        rng = np.random.default_rng(0)
        arr = rng.normal(size=(3, 4))

        def value(a):
            return float(op(Tensor(a)).data)

        t = Tensor(arr, requires_grad=True)
        out = op(t)
        out.backward()
        num = numerical_grad(value, arr)
        assert np.abs(num - t.grad).max() < 1e-6

    def test_broadcast_add_grad(self):
        rng = np.random.default_rng(1)
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4,)), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        assert np.allclose(b.grad, 3.0)

    def test_concat_grad(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((3, 2)), requires_grad=True)
        out = Tensor.concat([a, b], axis=0)
        (out * 2.0).sum().backward()
        assert np.allclose(a.grad, 2.0)
        assert np.allclose(b.grad, 2.0)

    def test_grad_accumulates_over_reuse(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * 3.0 + x * 4.0
        y.backward()
        assert x.grad[0] == pytest.approx(7.0)

    def test_detach_stops_grad(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        d = x.detach()
        assert not d.requires_grad

    def test_pow_requires_scalar(self):
        with pytest.raises(TypeError):
            Tensor(np.ones(2)) ** Tensor(np.ones(2))  # type: ignore

    @given(st.integers(1, 5), st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_matmul_shapes(self, n, m):
        a = Tensor(np.ones((n, m)))
        b = Tensor(np.ones((m, n)))
        assert (a @ b).shape == (n, n)


class TestLayers:
    def test_linear_shapes_and_grad(self):
        rng = np.random.default_rng(2)
        layer = Linear(5, 3, rng)
        x = Tensor(rng.normal(size=(7, 5)))
        out = layer(x)
        assert out.shape == (7, 3)
        out.sum().backward()
        assert layer.weight.grad.shape == (5, 3)
        assert layer.bias.grad.shape == (3,)

    def test_layernorm_statistics(self):
        rng = np.random.default_rng(2)
        ln = LayerNorm(8)
        x = Tensor(rng.normal(loc=5.0, scale=3.0, size=(4, 8)))
        out = ln(x).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_attention_shape_preserved(self):
        rng = np.random.default_rng(2)
        attn = MultiHeadSelfAttention(12, 3, rng)
        x = Tensor(rng.normal(size=(9, 12)))
        assert attn(x).shape == (9, 12)

    def test_attention_dim_head_mismatch(self):
        rng = np.random.default_rng(2)
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(10, 3, rng)

    def test_encoder_stack(self):
        rng = np.random.default_rng(2)
        enc = TransformerEncoder(12, 3, 2, rng)
        x = Tensor(rng.normal(size=(5, 12)))
        assert enc(x).shape == (5, 12)
        assert enc.num_parameters() > 0

    def test_positional_encoding_properties(self):
        enc = positional_encoding(16, 12)
        assert enc.shape == (16, 12)
        assert np.abs(enc).max() <= 1.0 + 1e-12
        assert not np.allclose(enc[0], enc[1])

    def test_module_collects_nested_params(self):
        rng = np.random.default_rng(2)
        mlp = MLP(4, 8, 2, rng)
        assert len(mlp.parameters()) == 4   # two linears x (W, b)

    def test_save_load_roundtrip(self, tmp_path):
        rng = np.random.default_rng(2)
        enc = TransformerEncoder(12, 3, 2, rng)
        x = Tensor(np.random.default_rng(0).normal(size=(5, 12)))
        before = enc(x).data.copy()
        path = tmp_path / "params.npz"
        save_params(enc, path)
        enc2 = TransformerEncoder(12, 3, 2, np.random.default_rng(99))
        load_params(enc2, path)
        after = enc2(x).data
        assert np.allclose(before, after)

    def test_load_shape_mismatch(self, tmp_path):
        rng = np.random.default_rng(2)
        small = MLP(4, 8, 2, rng)
        path = tmp_path / "p.npz"
        save_params(small, path)
        big = MLP(4, 16, 2, rng)
        with pytest.raises(ValueError, match="shape mismatch"):
            load_params(big, path)


class TestOptimAndLosses:
    def test_sgd_and_adam_reduce_quadratic(self):
        for opt_cls, kwargs in ((SGD, {"lr": 0.1}), (Adam, {"lr": 0.2})):
            w = Tensor.param(np.array([5.0, -3.0]))
            opt = opt_cls([w], **kwargs)
            for _ in range(100):
                loss = (w * w).sum()
                opt.zero_grad()
                loss.backward()
                opt.step()
            assert np.abs(w.data).max() < 0.1

    def test_lr_validation(self):
        with pytest.raises(ValueError):
            SGD([], lr=0)
        with pytest.raises(ValueError):
            Adam([], lr=-1)

    def test_bce_extremes(self):
        logits = Tensor(np.array([[10.0], [-10.0]]))
        targets = Tensor(np.array([[1.0], [0.0]]))
        loss = binary_cross_entropy_with_logits(logits, targets)
        assert float(loss.data) < 0.01
        wrong = binary_cross_entropy_with_logits(
            logits, Tensor(np.array([[0.0], [1.0]])))
        assert float(wrong.data) > 2.0

    def test_pos_weight_scales_positive_term(self):
        logits = Tensor(np.array([[-3.0]]))
        target = Tensor(np.array([[1.0]]))
        base = binary_cross_entropy_with_logits(logits, target)
        weighted = binary_cross_entropy_with_logits(logits, target,
                                                    pos_weight=4.0)
        assert float(weighted.data) == pytest.approx(
            4.0 * float(base.data), rel=1e-6)

    def test_dgi_loss_direction(self):
        good = dgi_loss(Tensor(np.full((5, 1), 8.0)),
                        Tensor(np.full((5, 1), -8.0)))
        bad = dgi_loss(Tensor(np.full((5, 1), -8.0)),
                       Tensor(np.full((5, 1), 8.0)))
        assert float(good.data) < float(bad.data)

    def test_accuracy(self):
        logits = np.array([[1.0], [-1.0], [2.0]])
        targets = np.array([[1.0], [0.0], [0.0]])
        assert accuracy(logits, targets) == pytest.approx(2.0 / 3.0)


class TestTraining:
    def test_transformer_learns_toy_task(self):
        """Classify nodes by sign of feature sum — must beat chance."""
        rng = np.random.default_rng(3)
        proj = Linear(4, 12, rng)
        enc = TransformerEncoder(12, 3, 2, rng)
        head = MLP(12, 8, 1, rng)
        opt = Adam(proj.parameters() + enc.parameters()
                   + head.parameters(), lr=3e-3)
        data_rng = np.random.default_rng(4)

        def batch():
            n = int(data_rng.integers(6, 12))
            feats = data_rng.normal(size=(n, 4))
            y = (feats.sum(axis=1) > 0).astype(float)[:, None]
            return feats, y

        for _ in range(150):
            feats, y = batch()
            logits = head(enc(proj(Tensor(feats))))
            loss = binary_cross_entropy_with_logits(logits, Tensor(y))
            opt.zero_grad()
            loss.backward()
            opt.step()
        correct = total = 0
        for _ in range(20):
            feats, y = batch()
            logits = head(enc(proj(Tensor(feats)))).data
            correct += ((logits >= 0) == y).sum()
            total += len(y)
        assert correct / total > 0.85
