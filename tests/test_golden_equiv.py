"""Cross-subsystem equivalence against pre-refactor golden fixtures.

The struct-of-arrays netlist core (ISSUE 6) rewrote the data structure
under placement, routing, timing, DFT and the harness.  These tests
pin the contract that the rewrite is *behaviorally invisible*:

* the checked-in golden digests (``tests/data/golden_equiv_*.json``,
  generated on the pre-refactor object-graph tree) still match for
  both design families — placement HPWL and locations, routed trees /
  RC / congestion-grid state, STA arrivals + ``worst_pred``
  tie-breaks, and die-test fault coverage;
* a full flat-pickle round trip of a routed design reproduces the
  same digests as the original in-memory objects, including a fresh
  STA run over the restored pin graph (net/pin iteration-order
  pinning — ``worst_pred`` resolves ties by graph build order, so any
  reordering would flip it).
"""

from __future__ import annotations

import json
import pickle

import pytest

from tests.golden_util import (GOLDEN_FAMILIES, design_digests,
                               golden_path, netlist_digest,
                               placement_digest, routing_digest,
                               sta_digest)


def _roundtrip(obj):
    return pickle.loads(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


class TestRoundTripEquivalence:
    """Fast: serialized copy == original, subsystem by subsystem."""

    def test_routed_design_roundtrip_digests(self, routed_small_design):
        from repro.timing import run_sta
        design = routed_small_design
        restored = _roundtrip(design)
        assert netlist_digest(restored.netlist) \
            == netlist_digest(design.netlist)
        assert placement_digest(restored) == placement_digest(design)
        assert routing_digest(restored) == routing_digest(design)
        # STA over the restored pin graph: arrivals, requireds AND the
        # worst_pred tie-breaks must come back bit-identical.
        assert sta_digest(run_sta(restored)) == sta_digest(run_sta(design))

    def test_roundtrip_design_is_isolated(self, routed_small_design):
        """Restored copies never alias the original's netlist objects."""
        restored = _roundtrip(routed_small_design)
        name = next(iter(restored.netlist.nets))
        assert restored.netlist.nets[name] \
            is not routed_small_design.netlist.nets[name]
        # ...but the restored routing's pin refs alias the restored
        # netlist (identity holds inside one payload).
        tree = next(iter(restored.require_routing().trees.values()))
        root_pin = tree.nodes[0].pin
        assert root_pin is not None
        owner = root_pin.owner
        if owner is not None:
            assert owner is restored.netlist.instances[owner.name]

    def test_timing_graph_order_pins_after_roundtrip(
            self, routed_small_design):
        """Pin order and topo order of the timing graph are pinned —
        worst_pred ties resolve by build order, so both must survive
        the round trip exactly."""
        from repro.timing.graph import build_timing_graph
        restored = _roundtrip(routed_small_design)
        g1 = build_timing_graph(routed_small_design)
        g2 = build_timing_graph(restored)
        assert [p.full_name for p in g1.pins] == [p.full_name for p in g2.pins]
        assert g1.topo == g2.topo

    def test_signal_net_order_after_roundtrip(self, hetero_tech):
        from tests.conftest import make_chain_netlist
        nl = make_chain_netlist(hetero_tech, stages=5)
        restored = _roundtrip(nl)
        assert [n.name for n in restored.signal_nets()] \
            == [n.name for n in nl.signal_nets()]
        for name, net in nl.nets.items():
            assert [p.full_name for p in restored.nets[name].pins()] \
                == [p.full_name for p in net.pins()]


@pytest.mark.slow
class TestGoldenFixtures:
    """Slow: rebuild each family end to end, compare to fixtures."""

    @pytest.mark.parametrize("family", sorted(GOLDEN_FAMILIES))
    def test_family_matches_pre_refactor_golden(self, family):
        got = design_digests(family)
        want = json.loads(golden_path(family).read_text())
        for section in want:
            assert got[section] == want[section], \
                f"{family}.{section} diverged from pre-refactor golden"
