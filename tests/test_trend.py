"""Perf-trend ledger tests: append/load, latest-sample view, budgets,
and the regression gate (including the silently-missing-leg failure)."""

from __future__ import annotations

import json

import pytest

from repro.obs.trend import (append_trend, check_gate, latest_legs,
                             load_budgets, load_trend, write_budgets)


class TestLedger:
    def test_append_and_load_roundtrip(self, tmp_path):
        path = tmp_path / "trend.jsonl"
        rec = append_trend(path, "place",
                           {"place.m16.cached_s": 0.4112349},
                           smoke=True, meta={"cpu_count": 4})
        assert rec["v"] == 1
        assert rec["legs"]["place.m16.cached_s"] == 0.411235  # rounded
        assert rec["smoke"] is True
        append_trend(path, "route", {"route.m16.serial_s": 0.2})
        records = load_trend(path)
        assert [r["bench"] for r in records] == ["place", "route"]
        assert "meta" not in records[1]

    def test_missing_file_is_empty(self, tmp_path):
        assert load_trend(tmp_path / "nope.jsonl") == []

    def test_nonfinite_leg_rejected(self, tmp_path):
        path = tmp_path / "trend.jsonl"
        for bad in (float("nan"), float("inf"), "0.3", True):
            with pytest.raises(ValueError, match="bad_s"):
                append_trend(path, "x", {"x.bad_s": bad})
        assert not path.exists()

    def test_malformed_line_raises_with_location(self, tmp_path):
        path = tmp_path / "trend.jsonl"
        path.write_text('{"v": 1, "legs": {}}\n{oops\n')
        with pytest.raises(ValueError, match="trend.jsonl:2"):
            load_trend(path)
        path.write_text('{"v": 1}\n')
        with pytest.raises(ValueError, match="no legs"):
            load_trend(path)

    def test_latest_sample_wins(self, tmp_path):
        path = tmp_path / "trend.jsonl"
        append_trend(path, "place", {"place.m16.cached_s": 0.5})
        append_trend(path, "place", {"place.m16.cached_s": 0.3,
                                     "place.m16.seed_place_s": 1.0})
        latest = latest_legs(load_trend(path))
        assert latest["place.m16.cached_s"]["value"] == 0.3
        assert latest["place.m16.cached_s"]["bench"] == "place"
        assert set(latest) == {"place.m16.cached_s",
                               "place.m16.seed_place_s"}


class TestBudgets:
    def test_write_then_load(self, tmp_path):
        budgets_path = tmp_path / "budgets.json"
        latest = {"a.leg_s": {"value": 0.5, "ts": None, "bench": "a"},
                  "b.leg_s": {"value": 1.0, "ts": None, "bench": "b"}}
        payload = write_budgets(budgets_path, latest, tolerance=0.1,
                                headroom=2.0)
        assert payload["budgets"] == {"a.leg_s": 1.0, "b.leg_s": 2.0}
        loaded = load_budgets(budgets_path)
        assert loaded["tolerance"] == 0.1
        assert loaded["budgets"]["a.leg_s"] == 1.0

    def test_leg_filter_and_missing_sample(self, tmp_path):
        latest = {"a.leg_s": {"value": 0.5, "ts": None, "bench": "a"}}
        payload = write_budgets(tmp_path / "b.json", latest,
                                legs=["a.leg_s"])
        assert set(payload["budgets"]) == {"a.leg_s"}
        with pytest.raises(ValueError, match="no trend sample"):
            write_budgets(tmp_path / "b.json", latest, legs=["ghost_s"])

    def test_invalid_budgets_rejected(self, tmp_path):
        path = tmp_path / "budgets.json"
        path.write_text(json.dumps({"budgets": {"a": -1.0}}))
        with pytest.raises(ValueError, match="positive"):
            load_budgets(path)
        path.write_text(json.dumps({"tolerance": 0.1}))
        with pytest.raises(ValueError, match="no budgets"):
            load_budgets(path)


class TestGate:
    BUDGETS = {"tolerance": 0.15,
               "budgets": {"place.m16.cached_s": 1.0}}

    def _latest(self, value):
        return {"place.m16.cached_s":
                {"value": value, "ts": None, "bench": "place"}}

    def test_pass_within_ceiling(self):
        # ceiling = 1.0 * 1.15; a sample right at it passes.
        failures, lines = check_gate(self._latest(1.15), self.BUDGETS)
        assert failures == []
        assert any("ok" in line for line in lines)

    def test_regression_fails(self):
        failures, lines = check_gate(self._latest(1.2), self.BUDGETS)
        assert len(failures) == 1
        assert "exceeds budget" in failures[0]
        assert any("REGRESSED" in line for line in lines)

    def test_missing_sample_fails(self):
        # A leg that silently stopped being measured must not pass.
        failures, lines = check_gate({}, self.BUDGETS)
        assert failures == ["place.m16.cached_s: no trend sample "
                            "recorded"]
        assert any("MISSING" in line for line in lines)

    def test_repo_budgets_cover_tracked_legs(self):
        """The checked-in budgets file gates the ISSUE-named legs and
        every budgeted leg has a seed sample in the checked-in ledger."""
        from pathlib import Path
        repo = Path(__file__).resolve().parent.parent
        budgets = load_budgets(repo / "benchmarks" / "budgets.json")
        names = set(budgets["budgets"])
        for prefix in ("place.", "route.", "sta.", "select.",
                       "service."):
            assert any(n.startswith(prefix) for n in names), \
                f"no budgeted {prefix}* leg"
        latest = latest_legs(load_trend(
            repo / "benchmarks" / "results" / "trend.jsonl"))
        failures, _lines = check_gate(latest, budgets)
        assert failures == []
