"""PDN grid and IR-drop tests."""

import numpy as np
import pytest

from repro.errors import PDNError
from repro.pdn import PdnConfig, build_pdn, size_pdn, solve_irdrop
from repro.power import default_power_plan


class TestPdnConfig:
    def test_utilization(self):
        assert PdnConfig(2.0, 8.0).utilization == pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(PDNError):
            PdnConfig(0.0, 8.0)
        with pytest.raises(PDNError):
            PdnConfig(9.0, 8.0)       # width >= pitch


class TestGrid:
    def test_build_shapes(self, routed_small_design):
        cfg = PdnConfig(2.0, 7.0)
        grid = build_pdn(routed_small_design, cfg, tier=0, vdd=0.81)
        assert grid.nx >= 2 and grid.ny >= 2
        assert grid.pad_nodes
        assert grid.num_nodes == grid.nx * grid.ny

    def test_bottom_tier_pads_on_boundary(self, routed_small_design):
        grid = build_pdn(routed_small_design, PdnConfig(2.0, 7.0), 0, 0.81)
        for node in grid.pad_nodes:
            iy, ix = divmod(node, grid.nx)
            assert ix in (0, grid.nx - 1) or iy in (0, grid.ny - 1)

    def test_top_tier_pads_distributed(self, routed_small_design):
        grid = build_pdn(routed_small_design, PdnConfig(2.0, 7.0), 1, 0.90)
        interior = [n for n in grid.pad_nodes
                    if 0 < n % grid.nx < grid.nx - 1]
        assert interior                     # F2F power lattice inside

    def test_wider_stripes_less_resistance(self, routed_small_design):
        thin = build_pdn(routed_small_design, PdnConfig(1.0, 7.0), 0, 0.81)
        wide = build_pdn(routed_small_design, PdnConfig(3.0, 7.0), 0, 0.81)
        assert wide.r_seg_x < thin.r_seg_x


class TestIRDrop:
    def test_drop_nonnegative_and_bounded(self, routed_small_design):
        plan = default_power_plan(routed_small_design)
        grid = build_pdn(routed_small_design, PdnConfig(2.0, 7.0), 0, 0.81)
        report = solve_irdrop(routed_small_design, grid, plan)
        drop = report.drop_map_mv()
        assert (drop >= -1e-6).all()
        assert report.worst_drop_v < 0.81
        assert report.drop_pct_of_lowest == pytest.approx(
            100.0 * report.worst_drop_v / plan.lowest_vdd)

    def test_wider_stripes_reduce_drop(self, routed_small_design):
        plan = default_power_plan(routed_small_design)
        thin = solve_irdrop(
            routed_small_design,
            build_pdn(routed_small_design, PdnConfig(1.0, 14.0), 0, 0.81),
            plan)
        wide = solve_irdrop(
            routed_small_design,
            build_pdn(routed_small_design, PdnConfig(4.0, 5.0), 0, 0.81),
            plan)
        assert wide.worst_drop_v <= thin.worst_drop_v + 1e-9

    def test_current_conservation(self, routed_small_design):
        plan = default_power_plan(routed_small_design)
        grid = build_pdn(routed_small_design, PdnConfig(2.0, 7.0), 0, 0.81)
        report = solve_irdrop(routed_small_design, grid, plan)
        power = report.total_current_a * 0.81
        assert power > 0


class TestSizing:
    def test_meets_target(self, routed_small_design):
        result = size_pdn(routed_small_design, target_pct=10.0)
        assert result.met_target
        assert result.worst_drop_pct <= 10.0

    def test_tighter_target_more_metal(self, routed_small_design):
        loose = size_pdn(routed_small_design, target_pct=10.0)
        tight = size_pdn(routed_small_design, target_pct=0.5)
        assert tight.config.utilization >= loose.config.utilization

    def test_bad_target(self, routed_small_design):
        with pytest.raises(PDNError):
            size_pdn(routed_small_design, target_pct=0.0)

    def test_summary(self, routed_small_design):
        summary = size_pdn(routed_small_design).summary()
        for key in ("width_um", "pitch_um", "utilization_pct",
                    "worst_drop_pct", "met_target"):
            assert key in summary
