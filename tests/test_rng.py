"""Seeded stream determinism tests."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.rng import DEFAULT_SEED, SeedBundle, stream


def test_same_name_same_sequence():
    a = stream("place", 42).random(8)
    b = stream("place", 42).random(8)
    assert np.array_equal(a, b)


def test_different_names_differ():
    a = stream("place", 42).random(8)
    b = stream("route", 42).random(8)
    assert not np.array_equal(a, b)


def test_different_seeds_differ():
    a = stream("place", 1).random(8)
    b = stream("place", 2).random(8)
    assert not np.array_equal(a, b)


def test_empty_name_rejected():
    with pytest.raises(ValueError):
        stream("", 1)


def test_bundle_caches_generator():
    bundle = SeedBundle(7)
    g1 = bundle.get("x")
    g1.random()
    g2 = bundle.get("x")
    assert g1 is g2           # same object, sequence continues


def test_bundle_fresh_resets():
    bundle = SeedBundle(7)
    bundle.get("x").random(4)
    fresh = bundle.fresh("x").random(4)
    again = stream("x", 7).random(4)
    assert np.array_equal(fresh, again)


def test_child_bundles_independent():
    parent = SeedBundle(7)
    child_a = parent.child("a")
    child_b = parent.child("b")
    assert child_a.seed != child_b.seed
    assert not np.array_equal(child_a.get("x").random(4),
                              child_b.get("x").random(4))


def test_child_deterministic():
    assert SeedBundle(7).child("a").seed == SeedBundle(7).child("a").seed


def test_default_seed_is_stable():
    assert DEFAULT_SEED == 20250706


@given(st.text(min_size=1, max_size=30), st.integers(0, 2 ** 31))
def test_stream_reproducible_for_any_name(name, seed):
    assert stream(name, seed).integers(1 << 30) == \
        stream(name, seed).integers(1 << 30)
