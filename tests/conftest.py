"""Shared fixtures.

Expensive artifacts (generated designs, placed/routed small fabrics)
are session-scoped; tests that mutate a design must build their own
(use the factory fixtures).
"""

from __future__ import annotations

import pytest

from repro.design import Design, TechSetup
from repro.mls import route_with_mls
from repro.netlist.builder import NetlistBuilder
from repro.netlist.generators import MaeriConfig, generate_maeri
from repro.opt import insert_buffers
from repro.partition import partition_memory_on_logic
from repro.place import place_design
from repro.rng import SeedBundle

TEST_SEED = 1234


@pytest.fixture(autouse=True)
def _pretend_multicore(monkeypatch):
    """Bypass the single-core pool degrade for the whole suite.

    Tests that construct ``workers>1`` configs mean to exercise the
    process pool (equivalence vs serial) even on a 1-core CI box,
    where ``should_parallelize`` would otherwise silently go serial.
    The degrade itself has a dedicated test that re-patches
    ``usable_cores`` back down to 1.
    """
    import repro.parallel.config as parallel_config
    real = parallel_config.usable_cores
    monkeypatch.setattr(parallel_config, "usable_cores",
                        lambda: max(4, real()))


@pytest.fixture(scope="session")
def hetero_tech() -> TechSetup:
    return TechSetup.build("16nm", "28nm", 6)


@pytest.fixture(scope="session")
def homo_tech() -> TechSetup:
    return TechSetup.build("28nm", "28nm", 6)


@pytest.fixture()
def seeds() -> SeedBundle:
    return SeedBundle(TEST_SEED)


def build_small_design(tech: TechSetup, seed: int = TEST_SEED,
                       pe: int = 16, freq: float = 1500.0,
                       routed: bool = True, buffered: bool = True) -> Design:
    """A small MAERI fabric pushed through place (+buffer, +route)."""
    seeds = SeedBundle(seed)
    netlist = generate_maeri(MaeriConfig(pe_count=pe, bandwidth=8),
                             tech.libraries, seeds)
    design = Design(netlist, tech, freq)
    design.tiers = partition_memory_on_logic(netlist)
    design.placement, design.floorplan = place_design(
        netlist, design.tiers, seeds)
    if buffered:
        insert_buffers(design)
    if routed:
        route_with_mls(design, set())
    return design


@pytest.fixture(scope="session")
def routed_small_design(hetero_tech) -> Design:
    """Read-only routed 16PE design (do NOT mutate in tests)."""
    return build_small_design(hetero_tech)


@pytest.fixture()
def fresh_small_design(hetero_tech) -> Design:
    """A mutable routed 16PE design, rebuilt per test."""
    return build_small_design(hetero_tech)


@pytest.fixture()
def tiny_builder(hetero_tech) -> NetlistBuilder:
    """Builder over logic/memory libraries for hand-made netlists."""
    return NetlistBuilder("tiny", hetero_tech.libraries)


def make_chain_netlist(tech: TechSetup, stages: int = 3):
    """reg -> INV chain -> reg netlist with ports, for STA hand-checks."""
    builder = NetlistBuilder("chain", tech.libraries)
    clock = builder.clock_net("clk")
    clk_port = builder.netlist.add_port("clk_pad", "in")
    clock.attach(clk_port.pin)
    d_in = builder.input("din")
    q = builder.flop(d_in, clock, hint="launch")
    for _ in range(stages):
        q = builder.gate("INV", q)
    q2 = builder.flop(q, clock, hint="capture")
    builder.output("dout", q2)
    return builder.done()
