"""MLS selection policy tests: SOTA heuristic, oracle, application."""

import pytest

from repro.mls import (apply_mls_incremental, oracle_labels, oracle_select,
                       route_with_mls, sota_select)
from repro.mls.oracle import candidate_nets
from repro.route import GlobalRouter
from repro.timing import net_whatif_delta, run_sta

from tests.conftest import build_small_design


class TestSota:
    def test_selects_only_2d_nets(self, fresh_small_design):
        d = fresh_small_design
        selected = sota_select(d, d.require_routing())
        tiers = d.require_tiers()
        for name in selected:
            assert not tiers.is_cross_tier(d.netlist.net(name))

    def test_length_threshold_monotone(self, fresh_small_design):
        d = fresh_small_design
        strict = sota_select(d, d.require_routing(), min_hpwl_um=60.0)
        loose = sota_select(d, d.require_routing(), min_hpwl_um=10.0)
        assert strict <= loose

    def test_selects_long_nets(self, fresh_small_design):
        d = fresh_small_design
        selected = sota_select(d, min_hpwl_um=25.0)
        placement = d.require_placement()
        for name in selected:
            net = d.netlist.net(name)
            x0, y0, x1, y1 = placement.net_bbox(net)
            # length rule or congestion rule admitted it; without a
            # routing, only the length rule applies.
            assert (x1 - x0) + (y1 - y0) >= 25.0


class TestOracle:
    def test_labels_match_deltas(self, fresh_small_design):
        d = fresh_small_design
        router = GlobalRouter(d)
        routing = router.route_all()
        nets = candidate_nets(d)[::9][:40]
        labels = oracle_labels(d, router, routing, nets=nets)
        for net in nets:
            label = labels[net.name]
            delta = net_whatif_delta(d, router, routing, net)
            assert label.applied == delta.applied
            assert label.delta_ps == pytest.approx(delta.worst_delta_ps())
            assert label.helps == (delta.applied
                                   and delta.worst_delta_ps() <= -0.25)

    def test_select_subset_of_candidates(self, fresh_small_design):
        d = fresh_small_design
        router = GlobalRouter(d)
        routing = router.route_all()
        selected = oracle_select(d, router, routing)
        pool = {n.name for n in candidate_nets(d)}
        assert selected <= pool

    def test_oracle_improves_timing(self, hetero_tech):
        d = build_small_design(hetero_tech, routed=False)
        router, routing = route_with_mls(d, set())
        before = run_sta(d)
        selected = oracle_select(d, router, routing)
        route_with_mls(d, selected)
        after = run_sta(d)
        assert after.tns_ns >= before.tns_ns       # less negative
        assert after.wns_ps >= before.wns_ps - 1.0


class TestApply:
    def test_incremental_add_remove(self, hetero_tech):
        d = build_small_design(hetero_tech, routed=False)
        router, routing = route_with_mls(d, set())
        tiers = d.require_tiers()
        pick = [n.name for n in d.netlist.signal_nets()
                if not tiers.is_cross_tier(n)][:20]
        apply_mls_incremental(d, router, routing, add=set(pick))
        applied = routing.mls_applied_nets()
        assert applied <= set(pick)
        apply_mls_incremental(d, router, routing, remove=set(pick))
        assert not routing.mls_applied_nets()

    def test_add_remove_conflict(self, fresh_small_design):
        d = fresh_small_design
        router = GlobalRouter(d)
        routing = router.route_all()
        with pytest.raises(ValueError, match="both added and removed"):
            apply_mls_incremental(d, router, routing,
                                  add={"x"}, remove={"x"})

    def test_route_with_mls_sets_design_state(self, hetero_tech):
        d = build_small_design(hetero_tech, routed=False)
        tiers = d.require_tiers()
        wanted = {n.name for n in d.netlist.signal_nets()
                  if not tiers.is_cross_tier(n)}
        router, routing = route_with_mls(d, wanted)
        assert d.routing is routing
        assert d.mls_nets == wanted
