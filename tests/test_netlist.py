"""Netlist data-model tests: invariants, surgery, traversal."""

import pytest

from repro.errors import NetlistError
from repro.netlist import Netlist, NetlistBuilder
from repro.tech import NODE_28NM, build_library

LIB = build_library(NODE_28NM)


def small_netlist() -> Netlist:
    nl = Netlist("t")
    a = nl.add_port("a", "in")
    b = nl.add_port("b", "in")
    y = nl.add_port("y", "out")
    na = nl.add_net("na")
    nb = nl.add_net("nb")
    ny = nl.add_net("ny")
    na.attach(a.pin)
    nb.attach(b.pin)
    g = nl.add_instance("g0", LIB.get("NAND2"))
    na.attach(g.pin("A"))
    nb.attach(g.pin("B"))
    ny.attach(g.output_pin)
    ny.attach(y.pin)
    return nl


class TestConstruction:
    def test_valid_small_netlist(self):
        small_netlist().validate()

    def test_duplicate_instance_rejected(self):
        nl = small_netlist()
        with pytest.raises(NetlistError, match="duplicate instance"):
            nl.add_instance("g0", LIB.get("INV"))

    def test_duplicate_net_rejected(self):
        nl = small_netlist()
        with pytest.raises(NetlistError, match="duplicate net"):
            nl.add_net("na")

    def test_duplicate_port_rejected(self):
        nl = small_netlist()
        with pytest.raises(NetlistError, match="duplicate port"):
            nl.add_port("a", "in")

    def test_second_driver_rejected(self):
        nl = small_netlist()
        inv = nl.add_instance("i0", LIB.get("INV"))
        nl.net("na").attach(inv.pin("A"))
        with pytest.raises(NetlistError, match="second driver"):
            nl.net("ny").attach(inv.output_pin)

    def test_double_attach_rejected(self):
        nl = small_netlist()
        with pytest.raises(NetlistError, match="already on net"):
            nl.net("nb").attach(nl.instance("g0").pin("A"))

    def test_unknown_lookups(self):
        nl = small_netlist()
        with pytest.raises(NetlistError):
            nl.instance("nope")
        with pytest.raises(NetlistError):
            nl.net("nope")
        with pytest.raises(NetlistError):
            nl.port("nope")
        with pytest.raises(NetlistError):
            nl.instance("g0").pin("Z")

    def test_fresh_name_unique(self):
        nl = small_netlist()
        names = {nl.fresh_name("x") for _ in range(50)}
        assert len(names) == 50


class TestValidation:
    def test_undriven_net_fails(self):
        nl = small_netlist()
        dangling = nl.add_net("dangle")
        inv = nl.add_instance("i0", LIB.get("INV"))
        dangling.attach(inv.pin("A"))
        out = nl.add_net("iout")
        out.attach(inv.output_pin)
        out.attach(nl.add_port("y2", "out").pin)
        with pytest.raises(NetlistError, match="no driver"):
            nl.validate()

    def test_sinkless_net_fails(self):
        nl = small_netlist()
        inv = nl.add_instance("i0", LIB.get("INV"))
        nl.net("na").attach(inv.pin("A"))
        lonely = nl.add_net("lonely")
        lonely.attach(inv.output_pin)
        with pytest.raises(NetlistError, match="no sinks"):
            nl.validate()

    def test_clock_pin_on_signal_net_fails(self):
        nl = small_netlist()
        ff = nl.add_instance("f0", LIB.get("DFF"))
        nl.net("na").attach(ff.pin("D"))
        nl.net("nb").attach(ff.clock_pin)      # nb is not a clock net
        q = nl.add_net("q")
        q.attach(ff.output_pin)
        q.attach(nl.add_port("q_out", "out").pin)
        with pytest.raises(NetlistError, match="non-clock net"):
            nl.validate()


class TestSurgery:
    def test_split_net_at_sinks(self):
        nl = small_netlist()
        net = nl.net("ny")
        sink = net.sinks[0]
        new = nl.split_net_at_sinks(net, [sink])
        assert sink.net is new
        assert new.driver is None
        assert not net.sinks

    def test_split_rejects_foreign_pin(self):
        nl = small_netlist()
        with pytest.raises(NetlistError, match="not a sink"):
            nl.split_net_at_sinks(nl.net("ny"),
                                  [nl.instance("g0").pin("A")])

    def test_swap_cell_dff_to_sdff(self):
        builder = NetlistBuilder("s", {"logic": LIB})
        clk = builder.clock_net()
        clk.attach(builder.netlist.add_port("ck", "in").pin)
        d = builder.input("d")
        q = builder.flop(d, clk)
        builder.output("q", q)
        nl = builder.done()
        ff = next(iter(nl.sequential_instances()))
        nl.swap_cell(ff, LIB.get("SDFF"))
        assert ff.cell.name == "SDFF"
        assert ff.pin("D").net is not None          # connection kept
        assert ff.pin("SI").net is None             # new pin, unconnected
        assert ff.output_pin.net is not None

    def test_swap_cell_rejects_lost_connected_pin(self):
        nl = small_netlist()
        gate = nl.instance("g0")
        with pytest.raises(NetlistError, match="no counterpart"):
            nl.swap_cell(gate, LIB.get("INV"))      # B is connected


class TestTraversal:
    def test_topological_order_respects_dependencies(self):
        nl = small_netlist()
        inv = nl.add_instance("i0", LIB.get("INV"))
        nl.net("ny").attach(inv.pin("A"))
        iout = nl.add_net("iout")
        iout.attach(inv.output_pin)
        iout.attach(nl.add_port("y2", "out").pin)
        order = [i.name for i in nl.topological_order()]
        assert order.index("g0") < order.index("i0")

    def test_loop_detected(self):
        nl = Netlist("loop")
        a = nl.add_instance("a", LIB.get("INV"))
        b = nl.add_instance("b", LIB.get("INV"))
        n1 = nl.add_net("n1")
        n2 = nl.add_net("n2")
        n1.attach(a.output_pin)
        n1.attach(b.pin("A"))
        n2.attach(b.output_pin)
        n2.attach(a.pin("A"))
        with pytest.raises(NetlistError, match="loop"):
            nl.topological_order()

    def test_stats(self):
        nl = small_netlist()
        stats = nl.stats()
        assert stats["instances"] == 1
        assert stats["nets"] == 3
        assert stats["ports"] == 3
        assert stats["max_fanout"] == 1

    def test_net_properties(self):
        nl = small_netlist()
        net = nl.net("na")
        assert net.degree == 2
        assert net.fanout == 1
        assert net.sink_cap_ff() > 0

    def test_total_cell_area(self):
        nl = small_netlist()
        assert nl.total_cell_area() == pytest.approx(
            LIB.get("NAND2").area_um2)


class TestBuilder:
    def test_gate_wrong_arity(self, tiny_builder):
        a = tiny_builder.input("a")
        with pytest.raises(NetlistError, match="takes 2 inputs"):
            tiny_builder.gate("NAND2", a)

    def test_region_switch(self, tiny_builder):
        assert tiny_builder.current_region == "logic"
        with tiny_builder.region("memory"):
            assert tiny_builder.current_region == "memory"
            inst = tiny_builder.instance("INV")
            assert inst.attrs["region"] == "memory"
        assert tiny_builder.current_region == "logic"

    def test_unknown_region(self, tiny_builder):
        with pytest.raises(NetlistError, match="unknown region"):
            with tiny_builder.region("analog"):
                pass

    def test_module_prefixes_names(self, tiny_builder):
        with tiny_builder.module("core0"):
            inst = tiny_builder.instance("INV")
        assert inst.name.startswith("core0/")
        assert inst.attrs["module"] == "core0"

    def test_buffer_tree_leaf_count(self, tiny_builder):
        a = tiny_builder.input("a")
        for want in (1, 2, 5, 16, 23):
            leaves = tiny_builder.buffer_tree(a, want, hint=f"bt{want}")
            assert len(leaves) == want
            # every leaf is a distinct net
            assert len({l.name for l in leaves}) == want

    def test_register_word(self, tiny_builder):
        clk = tiny_builder.clock_net()
        clk.attach(tiny_builder.netlist.add_port("ck", "in").pin)
        bits = [tiny_builder.input(f"d{i}") for i in range(4)]
        qs = tiny_builder.register_word(bits, clk)
        assert len(qs) == 4
        assert len(tiny_builder.netlist.sequential_instances()) == 4
