"""Netlist data-model tests: invariants, surgery, traversal."""

import pytest

from repro.errors import NetlistError
from repro.netlist import Netlist, NetlistBuilder
from repro.tech import NODE_28NM, build_library

LIB = build_library(NODE_28NM)


def small_netlist() -> Netlist:
    nl = Netlist("t")
    a = nl.add_port("a", "in")
    b = nl.add_port("b", "in")
    y = nl.add_port("y", "out")
    na = nl.add_net("na")
    nb = nl.add_net("nb")
    ny = nl.add_net("ny")
    na.attach(a.pin)
    nb.attach(b.pin)
    g = nl.add_instance("g0", LIB.get("NAND2"))
    na.attach(g.pin("A"))
    nb.attach(g.pin("B"))
    ny.attach(g.output_pin)
    ny.attach(y.pin)
    return nl


class TestConstruction:
    def test_valid_small_netlist(self):
        small_netlist().validate()

    def test_duplicate_instance_rejected(self):
        nl = small_netlist()
        with pytest.raises(NetlistError, match="duplicate instance"):
            nl.add_instance("g0", LIB.get("INV"))

    def test_duplicate_net_rejected(self):
        nl = small_netlist()
        with pytest.raises(NetlistError, match="duplicate net"):
            nl.add_net("na")

    def test_duplicate_port_rejected(self):
        nl = small_netlist()
        with pytest.raises(NetlistError, match="duplicate port"):
            nl.add_port("a", "in")

    def test_second_driver_rejected(self):
        nl = small_netlist()
        inv = nl.add_instance("i0", LIB.get("INV"))
        nl.net("na").attach(inv.pin("A"))
        with pytest.raises(NetlistError, match="second driver"):
            nl.net("ny").attach(inv.output_pin)

    def test_double_attach_rejected(self):
        nl = small_netlist()
        with pytest.raises(NetlistError, match="already on net"):
            nl.net("nb").attach(nl.instance("g0").pin("A"))

    def test_unknown_lookups(self):
        nl = small_netlist()
        with pytest.raises(NetlistError):
            nl.instance("nope")
        with pytest.raises(NetlistError):
            nl.net("nope")
        with pytest.raises(NetlistError):
            nl.port("nope")
        with pytest.raises(NetlistError):
            nl.instance("g0").pin("Z")

    def test_fresh_name_unique(self):
        nl = small_netlist()
        names = {nl.fresh_name("x") for _ in range(50)}
        assert len(names) == 50


class TestValidation:
    def test_undriven_net_fails(self):
        nl = small_netlist()
        dangling = nl.add_net("dangle")
        inv = nl.add_instance("i0", LIB.get("INV"))
        dangling.attach(inv.pin("A"))
        out = nl.add_net("iout")
        out.attach(inv.output_pin)
        out.attach(nl.add_port("y2", "out").pin)
        with pytest.raises(NetlistError, match="no driver"):
            nl.validate()

    def test_sinkless_net_fails(self):
        nl = small_netlist()
        inv = nl.add_instance("i0", LIB.get("INV"))
        nl.net("na").attach(inv.pin("A"))
        lonely = nl.add_net("lonely")
        lonely.attach(inv.output_pin)
        with pytest.raises(NetlistError, match="no sinks"):
            nl.validate()

    def test_clock_pin_on_signal_net_fails(self):
        nl = small_netlist()
        ff = nl.add_instance("f0", LIB.get("DFF"))
        nl.net("na").attach(ff.pin("D"))
        nl.net("nb").attach(ff.clock_pin)      # nb is not a clock net
        q = nl.add_net("q")
        q.attach(ff.output_pin)
        q.attach(nl.add_port("q_out", "out").pin)
        with pytest.raises(NetlistError, match="non-clock net"):
            nl.validate()


class TestSurgery:
    def test_split_net_at_sinks(self):
        nl = small_netlist()
        net = nl.net("ny")
        sink = net.sinks[0]
        new = nl.split_net_at_sinks(net, [sink])
        assert sink.net is new
        assert new.driver is None
        assert not net.sinks

    def test_split_rejects_foreign_pin(self):
        nl = small_netlist()
        with pytest.raises(NetlistError, match="not a sink"):
            nl.split_net_at_sinks(nl.net("ny"),
                                  [nl.instance("g0").pin("A")])

    def test_swap_cell_dff_to_sdff(self):
        builder = NetlistBuilder("s", {"logic": LIB})
        clk = builder.clock_net()
        clk.attach(builder.netlist.add_port("ck", "in").pin)
        d = builder.input("d")
        q = builder.flop(d, clk)
        builder.output("q", q)
        nl = builder.done()
        ff = next(iter(nl.sequential_instances()))
        nl.swap_cell(ff, LIB.get("SDFF"))
        assert ff.cell.name == "SDFF"
        assert ff.pin("D").net is not None          # connection kept
        assert ff.pin("SI").net is None             # new pin, unconnected
        assert ff.output_pin.net is not None

    def test_swap_cell_rejects_lost_connected_pin(self):
        nl = small_netlist()
        gate = nl.instance("g0")
        with pytest.raises(NetlistError, match="no counterpart"):
            nl.swap_cell(gate, LIB.get("INV"))      # B is connected


class TestTraversal:
    def test_topological_order_respects_dependencies(self):
        nl = small_netlist()
        inv = nl.add_instance("i0", LIB.get("INV"))
        nl.net("ny").attach(inv.pin("A"))
        iout = nl.add_net("iout")
        iout.attach(inv.output_pin)
        iout.attach(nl.add_port("y2", "out").pin)
        order = [i.name for i in nl.topological_order()]
        assert order.index("g0") < order.index("i0")

    def test_loop_detected(self):
        nl = Netlist("loop")
        a = nl.add_instance("a", LIB.get("INV"))
        b = nl.add_instance("b", LIB.get("INV"))
        n1 = nl.add_net("n1")
        n2 = nl.add_net("n2")
        n1.attach(a.output_pin)
        n1.attach(b.pin("A"))
        n2.attach(b.output_pin)
        n2.attach(a.pin("A"))
        with pytest.raises(NetlistError, match="loop"):
            nl.topological_order()

    def test_stats(self):
        nl = small_netlist()
        stats = nl.stats()
        assert stats["instances"] == 1
        assert stats["nets"] == 3
        assert stats["ports"] == 3
        assert stats["max_fanout"] == 1

    def test_net_properties(self):
        nl = small_netlist()
        net = nl.net("na")
        assert net.degree == 2
        assert net.fanout == 1
        assert net.sink_cap_ff() > 0

    def test_total_cell_area(self):
        nl = small_netlist()
        assert nl.total_cell_area() == pytest.approx(
            LIB.get("NAND2").area_um2)


class TestBuilder:
    def test_gate_wrong_arity(self, tiny_builder):
        a = tiny_builder.input("a")
        with pytest.raises(NetlistError, match="takes 2 inputs"):
            tiny_builder.gate("NAND2", a)

    def test_region_switch(self, tiny_builder):
        assert tiny_builder.current_region == "logic"
        with tiny_builder.region("memory"):
            assert tiny_builder.current_region == "memory"
            inst = tiny_builder.instance("INV")
            assert inst.attrs["region"] == "memory"
        assert tiny_builder.current_region == "logic"

    def test_unknown_region(self, tiny_builder):
        with pytest.raises(NetlistError, match="unknown region"):
            with tiny_builder.region("analog"):
                pass

    def test_module_prefixes_names(self, tiny_builder):
        with tiny_builder.module("core0"):
            inst = tiny_builder.instance("INV")
        assert inst.name.startswith("core0/")
        assert inst.attrs["module"] == "core0"

    def test_buffer_tree_leaf_count(self, tiny_builder):
        a = tiny_builder.input("a")
        for want in (1, 2, 5, 16, 23):
            leaves = tiny_builder.buffer_tree(a, want, hint=f"bt{want}")
            assert len(leaves) == want
            # every leaf is a distinct net
            assert len({l.name for l in leaves}) == want

    def test_register_word(self, tiny_builder):
        clk = tiny_builder.clock_net()
        clk.attach(tiny_builder.netlist.add_port("ck", "in").pin)
        bits = [tiny_builder.input(f"d{i}") for i in range(4)]
        qs = tiny_builder.register_word(bits, clk)
        assert len(qs) == 4
        assert len(tiny_builder.netlist.sequential_instances()) == 4


# ---------------------------------------------------------------------------
# Struct-of-arrays core + flat serialization (ISSUE 6)
# ---------------------------------------------------------------------------

import pickle
import sys

from hypothesis import given, settings, strategies as st

from repro.netlist.soa import NetlistSoA, pack_names, unpack_names
from tests.golden_util import netlist_digest


def roundtrip(nl: Netlist) -> Netlist:
    return pickle.loads(pickle.dumps(nl, protocol=pickle.HIGHEST_PROTOCOL))


class TestFlatSerialization:
    def test_pickle_roundtrip_exact(self):
        nl = small_netlist()
        assert netlist_digest(roundtrip(nl)) == netlist_digest(nl)

    def test_roundtrip_after_surgery(self):
        """split_net_at_sinks + swap_cell state survives exactly."""
        builder = NetlistBuilder("s", {"logic": LIB})
        clk = builder.clock_net()
        clk.attach(builder.netlist.add_port("ck", "in").pin)
        d = builder.input("d")
        q = builder.flop(d, clk)
        builder.output("q", q)
        nl = builder.netlist
        ff = next(iter(nl.sequential_instances()))
        nl.swap_cell(ff, LIB.get("SDFF"))
        nl.split_net_at_sinks(nl.net(d.name), [ff.pin("D")])
        assert netlist_digest(roundtrip(nl)) == netlist_digest(nl)

    def test_fresh_name_counter_survives(self):
        nl = small_netlist()
        nl.fresh_name("x")
        nl.fresh_name("x")
        restored = roundtrip(nl)
        assert restored.fresh_name("y") == nl.fresh_name("y")

    def test_soa_views(self):
        nl = small_netlist()
        flat = nl.to_flat()
        assert flat.num_instances == 1
        assert flat.num_nets == 3
        assert list(flat.fanouts()) == [1, 1, 1]
        assert list(flat.degrees()) == [2, 2, 2]
        assert flat.cell_areas().sum() == nl.total_cell_area()
        offsets, owners, is_driver = flat.incidence()
        assert offsets[-1] == flat.num_pins
        assert is_driver.sum() == 3                 # one driver per net
        rebuilt = Netlist.from_flat(flat)
        assert netlist_digest(rebuilt) == netlist_digest(nl)

    def test_identity_consistency_in_shared_payload(self):
        """Pins/nets pickled next to their netlist resolve INTO it."""
        nl = small_netlist()
        gate = nl.instance("g0")
        pin = gate.pin("A")
        net = nl.net("ny")
        nl2, gate2, pin2, net2 = pickle.loads(
            pickle.dumps((nl, gate, pin, net)))
        assert gate2 is nl2.instances["g0"]
        assert pin2 is gate2.pins["A"]
        assert pin2.net is nl2.nets["na"]
        assert net2 is nl2.nets["ny"]
        assert net2.driver is gate2.output_pin

    def test_detached_fragments_still_pickle(self):
        from repro.netlist import Instance, Net
        inst = Instance("solo", LIB.get("NAND2"))
        net = Net("wire")
        net.attach(inst.output_pin)
        inst2, net2 = pickle.loads(pickle.dumps((inst, net)))
        assert inst2.name == "solo" and inst2._netlist is None
        assert net2.driver is inst2.output_pin

    def test_recursion_limit_independence(self):
        """A deep serial chain pickles at a tiny recursion limit.

        The old object-graph pickle recursed once per chain stage; the
        flat encoder must not care about depth at all.
        """
        builder = NetlistBuilder("deep", {"logic": LIB})
        net = builder.input("start")
        for _ in range(4000):
            net = builder.gate("INV", net)
        builder.output("end", net)
        nl = builder.done()
        old = sys.getrecursionlimit()
        try:
            sys.setrecursionlimit(200)
            restored = roundtrip(nl)
        finally:
            sys.setrecursionlimit(old)
        assert netlist_digest(restored) == netlist_digest(nl)

    def test_pack_names_roundtrip(self):
        names = [f"core{i}/u_{i}" for i in range(100)]
        assert unpack_names(pack_names(names)) == names
        assert unpack_names(pack_names([])) == []
        weird = ["a\nb", "c"]                       # separator collision
        assert unpack_names(pack_names(weird)) == weird

    def test_foreign_pin_rejected(self):
        nl = small_netlist()
        other = small_netlist()
        # Graft a pin from another netlist behind the API's back.
        foreign = other.instance("g0").pin("A")
        foreign.net = None
        nl.net("ny").attach(foreign)
        with pytest.raises(NetlistError, match="does not belong"):
            nl.to_flat()


# -- hypothesis: random builder programs round-trip exactly -----------------

_COMB = ["INV", "BUF", "NAND2", "NOR2", "XOR2", "AOI21", "MUX2", "AND3"]

_op = st.one_of(
    st.tuples(st.just("input")),
    st.tuples(st.just("gate"), st.sampled_from(_COMB),
              st.lists(st.integers(0, 10 ** 6), min_size=3, max_size=3)),
    st.tuples(st.just("flop"), st.integers(0, 10 ** 6)),
    st.tuples(st.just("region")),
    st.tuples(st.just("module"), st.sampled_from(["a", "b/c", "x1"])),
    st.tuples(st.just("split"), st.integers(0, 10 ** 6)),
)


def _build_program(ops) -> Netlist:
    """Interpret one random op list as a netlist-builder program.

    Net choices index into the currently-available net list modulo its
    size, so every program is valid by construction; a final pass adds
    output ports for dangling nets (making validate() pass) and one
    split_net_at_sinks per requested split exercises the surgery path.
    """
    from repro.tech import NODE_16NM
    libs = {"logic": build_library(NODE_16NM),
            "memory": build_library(NODE_28NM)}
    builder = NetlistBuilder("prog", libs)
    clk = builder.clock_net()
    clk.attach(builder.netlist.add_port("ck", "in").pin)
    nets = [builder.input("seed0"), builder.input("seed1")]
    regions = ["logic", "memory"]
    region = 0
    splits = []
    for op in ops:
        if op[0] == "input":
            nets.append(builder.input(f"in{len(nets)}"))
        elif op[0] == "gate":
            _, cell, picks = op
            arity = len(libs[regions[region]].get(cell).inputs)
            ins = [nets[p % len(nets)] for p in picks[:arity]]
            with builder.region(regions[region]):
                nets.append(builder.gate(cell, *ins))
        elif op[0] == "flop":
            with builder.region("logic"):
                nets.append(builder.flop(nets[op[1] % len(nets)], clk))
        elif op[0] == "region":
            region = 1 - region
        elif op[0] == "module":
            builder._module_stack.append(op[1])
        elif op[0] == "split":
            splits.append(op[1])
    netlist = builder.netlist
    for idx, net in enumerate(nets):
        if not net.sinks:
            builder.output(f"out{idx}", net)
    for pick in splits:
        candidates = [n for n in netlist.signal_nets() if len(n.sinks) >= 2]
        if candidates:
            net = candidates[pick % len(candidates)]
            netlist.split_net_at_sinks(net, [net.sinks[pick % len(net.sinks)]])
    return netlist


class TestFlatSerializationProperties:
    @given(st.lists(_op, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_random_builder_program_roundtrips(self, ops):
        nl = _build_program(ops)
        restored = roundtrip(nl)
        assert netlist_digest(restored) == netlist_digest(nl)
        # Iteration orders, not just content digests:
        assert list(restored.instances) == list(nl.instances)
        assert list(restored.nets) == list(nl.nets)
        assert list(restored.ports) == list(nl.ports)
        for a, b in zip(restored.instances.values(), nl.instances.values()):
            assert list(a.pins) == list(b.pins)
            # Cells pickle by value (they cross process boundaries) but
            # instances of one cell type still share a single object.
            assert a.cell == b.cell
        for a, b in zip(restored.nets.values(), nl.nets.values()):
            assert [p.full_name for p in a.pins()] \
                == [p.full_name for p in b.pins()]

    @given(st.lists(_op, max_size=25))
    @settings(max_examples=20, deadline=None)
    def test_double_roundtrip_is_stable(self, ops):
        nl = _build_program(ops)
        once = roundtrip(nl)
        twice = roundtrip(once)
        assert netlist_digest(once) == netlist_digest(twice)
