"""Cold-vs-warm flow equivalence through the artifact store.

The flow-as-a-service warm path replaces computation with artifact
replay; these tests pin that the replacement is *behaviorally
invisible*, using the same cross-subsystem digests
(:mod:`tests.golden_util`) that lock the netlist-core refactor:

* a store-backed cold run produces digest-identical results to the
  plain (storeless) cold path — threading the store through the flow
  changes nothing;
* a warm run from a **fresh store handle** (simulating a new process
  over the same directory) replays the stored report bit-identically:
  netlist / placement / routing / STA digests and the end-to-end
  ``report_digest`` all match, with the generate / partition / place /
  buffer stages provably skipped (store hits, zero stage puts);
* stage-resume is sound — with only the *prepare-stage* artifacts on
  disk (report + prepared design deleted), the flow resumes from the
  placement artifact and still reproduces the cold digests exactly;
* prefix-shaped keys share placement across a frequency sweep.

Both design families run (small MAERI fabric + small A7 dual-core),
matching the golden-fixture families.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.flow import FlowConfig, prepare_design, run_flow
from repro.netlist.generators import (A7Config, MaeriConfig,
                                      generate_a7_dual_core,
                                      generate_maeri)
from repro.obs import metrics
from repro.rng import SeedBundle
from repro.service import ArtifactStore, prepare_stage_keys
from repro.service.stages import report_digest, run_flow_stored
from tests.golden_util import (netlist_digest, placement_digest,
                               routing_digest, sta_digest)

from tests.conftest import TEST_SEED


def _maeri_small(libraries, seeds):
    return generate_maeri(MaeriConfig(pe_count=16, bandwidth=8),
                          libraries, seeds)


def _a7_small(libraries, seeds):
    return generate_a7_dual_core(
        A7Config(word_width=8, stage_depth=2, cache_banks=1,
                 bus_width=4), libraries, seeds)


FAMILIES = {
    "maeri": (_maeri_small, 1900.0),
    "a7": (_a7_small, 1000.0),
}

_PREPARE_KINDS = ("prepare.generate", "prepare.partition",
                  "prepare.place", "prepare.design")


def _config(freq: float) -> FlowConfig:
    return FlowConfig(selector="none", target_freq_mhz=freq)


def _digests(report) -> dict:
    return {
        "report": report_digest(report),
        "netlist": netlist_digest(report.design.netlist),
        "placement": placement_digest(report.design),
        "routing": routing_digest(report.design),
        "sta": sta_digest(report.final_sta),
    }


def _counters(*names) -> dict:
    return {n: metrics.counter(n) for n in names}


def _delta(before: dict) -> dict:
    return {n: metrics.counter(n) - v for n, v in before.items()}


@pytest.mark.parametrize("family", sorted(FAMILIES))
class TestColdWarmEquivalence:
    def test_cold_warm_and_resume_are_bit_identical(self, family,
                                                    tmp_path,
                                                    hetero_tech):
        factory, freq = FAMILIES[family]
        config = _config(freq)
        root = tmp_path / "store"

        # Plain cold path: no store anywhere near the flow.
        design = prepare_design(factory, hetero_tech,
                                SeedBundle(TEST_SEED), config)
        plain = run_flow(factory, hetero_tech, SeedBundle(TEST_SEED),
                         config, design=design)
        golden = _digests(plain)

        # Store-backed cold run (fresh empty store).
        store = ArtifactStore(root)
        cold, cold_summary, cold_cached = run_flow_stored(
            factory, hetero_tech, SeedBundle(TEST_SEED), config, store)
        assert not cold_cached
        assert _digests(cold) == golden
        assert cold_summary["report_digest"] == golden["report"]

        # Warm run: new handle over the same directory, as a fresh
        # process would see it.  Every prepare stage must be skipped.
        before = _counters("store.hits.flow.report",
                           *(f"store.puts.{k}" for k in _PREPARE_KINDS),
                           "service.flow_computes")
        warm_store = ArtifactStore(root)
        warm, warm_summary, warm_cached = run_flow_stored(
            factory, hetero_tech, SeedBundle(TEST_SEED), config,
            warm_store)
        moved = _delta(before)
        assert warm_cached
        assert _digests(warm) == golden
        assert warm_summary == cold_summary
        assert moved["store.hits.flow.report"] == 1
        assert moved["service.flow_computes"] == 0
        for kind in _PREPARE_KINDS:
            assert moved[f"store.puts.{kind}"] == 0

        # Stage-resume: drop the report/summary/prepared artifacts,
        # keep generate/partition/place — the flow resumes from the
        # placement artifact and must land on the same digests.
        keys = prepare_stage_keys(factory, hetero_tech,
                                  SeedBundle(TEST_SEED), config)
        resume_store = ArtifactStore(root)
        for blob in root.glob("objects/*/flow.*.bin"):
            blob.unlink()
        resume_store.object_path(keys.prepared).unlink()
        resume_store = ArtifactStore(root)   # re-scan pruned objects
        before = _counters("store.hits.prepare.place",
                           "service.flow_computes")
        resumed, resumed_summary, resumed_cached = run_flow_stored(
            factory, hetero_tech, SeedBundle(TEST_SEED), config,
            resume_store)
        moved = _delta(before)
        assert not resumed_cached            # the flow itself re-ran
        assert moved["service.flow_computes"] == 1
        assert moved["store.hits.prepare.place"] == 1
        assert _digests(resumed) == golden
        assert resumed_summary["report_digest"] == golden["report"]


def test_frequency_sweep_shares_placement(tmp_path, hetero_tech):
    factory, freq = FAMILIES["maeri"]
    root = tmp_path / "store"
    store = ArtifactStore(root)
    run_flow_stored(factory, hetero_tech, SeedBundle(TEST_SEED),
                    _config(freq), store)
    swept = dataclasses.replace(_config(freq),
                                target_freq_mhz=freq - 200.0)
    before = _counters("store.hits.prepare.place",
                       "store.puts.prepare.generate",
                       "store.puts.prepare.partition",
                       "store.puts.prepare.place")
    report, _summary, cached = run_flow_stored(
        factory, hetero_tech, SeedBundle(TEST_SEED), swept,
        ArtifactStore(root))
    moved = _delta(before)
    assert not cached                        # different key, real run
    assert moved["store.hits.prepare.place"] == 1
    assert moved["store.puts.prepare.generate"] == 0
    assert moved["store.puts.prepare.partition"] == 0
    assert moved["store.puts.prepare.place"] == 0
    # Placement is genuinely shared: locations identical across the
    # sweep even though timing closed at a different clock.
    base = run_flow_stored(factory, hetero_tech, SeedBundle(TEST_SEED),
                           _config(freq), ArtifactStore(root),
                           need_report=True)[0]
    assert placement_digest(report.design) == \
        placement_digest(base.design)
    assert report_digest(report) != report_digest(base)
