"""Cached-Laplacian placement system contracts.

Locks the two guarantees the placement engine rework makes
(see repro.place.system / repro.place.bisection):

* **Bit-identity** — serving every bisection level from one cached
  :class:`PlacementSystem` returns exactly the positions a fresh
  per-level rebuild would (same assembly, same factorization), across
  arbitrary anchor sets and weights.
* **Region-parallel mode** — opt-in block-Jacobi refinement is
  deterministic at any worker count, legalizes cleanly, and stays
  within 2% HPWL of the serial joint solve.  It is *not* bit-identical
  to the joint solve, by contract.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
from hypothesis import given, settings, strategies as st

import pytest

from repro.design import TechSetup
from repro.netlist.generators import MaeriConfig, generate_maeri
from repro.obs import metrics
from repro.parallel import ParallelConfig
from repro.partition import partition_memory_on_logic
from repro.place import (NetConnectivity, Placement, PlacementSystem,
                         bisection_place, make_floorplan, place_design,
                         quadratic_solve)
from repro.place.legalize import legalize_macros
from repro.place.placer import _pin_ports
from repro.place.system import AUTO_CG_MIN_UNKNOWNS, PlacementError
from repro.rng import SeedBundle

#: Allowed relative HPWL delta of region-parallel vs serial placement.
REGION_HPWL_TOL = 0.02

#: Allowed absolute position delta (um) of a cg solve vs direct.  The
#: PCG residual tolerance (CG_RTOL) translates to well under 1e-3 um of
#: position error on the 16PE system; 0.05 um leaves headroom while
#: staying far below a placement row height.
CG_POS_TOL = 0.05

#: Allowed relative HPWL delta of a full cg bisection placement.
CG_HPWL_TOL = 0.02


@lru_cache(maxsize=1)
def _small_setup():
    """MAERI-16 mid-flow state: ports pinned, macros legalized+fixed.

    This is exactly the state ``place_design`` hands to the bisection
    refinement, cached at module scope so hypothesis examples reuse it.
    """
    tech = TechSetup.build("16nm", "28nm", 6)
    nl = generate_maeri(MaeriConfig(pe_count=16, bandwidth=8),
                        tech.libraries, SeedBundle(1234))
    tiers = partition_memory_on_logic(nl)
    fp = make_floorplan(nl, utilization=0.45)
    fixed = _pin_ports(nl, tiers, fp, Placement(nl, tiers))
    macros = [n for n, i in nl.instances.items() if i.is_macro]
    std = [n for n, i in nl.instances.items() if not i.is_macro]
    conn = NetConnectivity.from_netlist(nl)
    rough = quadratic_solve(nl, fixed, fp, conn=conn)
    fixed = dict(fixed)
    fixed.update(legalize_macros(nl, macros, rough, fp))
    return nl, tiers, fp, fixed, std, conn


@lru_cache(maxsize=1)
def _shared_system() -> PlacementSystem:
    nl, _, fp, fixed, std, conn = _small_setup()
    return PlacementSystem(nl, fixed, fp, movable=std, conn=conn)


class TestCachedSystemBitIdentity:
    @given(seed=st.integers(0, 2**32 - 1),
           weight=st.floats(0.0, 50.0))
    @settings(max_examples=12, deadline=None)
    def test_reused_system_matches_fresh_rebuild(self, seed, weight):
        """Cached pattern + anchor overlay == full per-solve rebuild.

        The reused system keeps one assembled Laplacian and adds only
        the anchor diagonal per solve; the reference leg rebuilds
        connectivity, assembly and factorization from the netlist.
        Positions must agree bit-for-bit (== on floats, no tolerance).
        """
        nl, _, fp, fixed, std, _ = _small_setup()
        system = _shared_system()
        rng = np.random.default_rng(seed)
        count = int(rng.integers(0, 24))
        picked = rng.choice(len(std), size=count, replace=False)
        anchors = {std[i]: (float(rng.uniform(0, fp.width)),
                            float(rng.uniform(0, fp.core_height)))
                   for i in picked}
        cached = system.solve(anchors, anchor_weight=weight)
        rebuilt = quadratic_solve(nl, fixed, fp, movable=std,
                                  anchors=anchors, anchor_weight=weight)
        assert cached == rebuilt

    def test_shared_connectivity_matches_fresh(self):
        """Passing a prebuilt NetConnectivity never changes results."""
        nl, _, fp, fixed, std, conn = _small_setup()
        shared = quadratic_solve(nl, fixed, fp, movable=std, conn=conn)
        fresh = quadratic_solve(nl, fixed, fp, movable=std)
        assert shared == fresh

    def test_bisection_reuse_flag_is_inert(self):
        """reuse_system=True (cached) == False (rebuild per level)."""
        nl, _, fp, fixed, std, conn = _small_setup()
        cached = bisection_place(nl, fixed, fp, movable=std, conn=conn,
                                 reuse_system=True)
        rebuilt = bisection_place(nl, fixed, fp, movable=std, conn=conn,
                                  reuse_system=False)
        assert cached == rebuilt


@lru_cache(maxsize=1)
def _cg_system() -> PlacementSystem:
    """One stateful cg system shared across hypothesis examples, so
    successive solves exercise factor reuse, refactor-on-perturbation
    and warm starts — not just the first factorization."""
    nl, _, fp, fixed, std, conn = _small_setup()
    return PlacementSystem(nl, fixed, fp, movable=std, conn=conn,
                           solver="cg")


class TestSolverBackends:
    """The cg backend is equivalent to direct within tolerance; the
    direct backend stays the bit-identical default."""

    def test_invalid_solver_rejected(self):
        nl, _, fp, fixed, std, conn = _small_setup()
        with pytest.raises(PlacementError):
            PlacementSystem(nl, fixed, fp, movable=std, conn=conn,
                            solver="jacobi")

    def test_auto_resolves_by_system_size(self):
        nl, _, fp, fixed, std, conn = _small_setup()
        system = PlacementSystem(nl, fixed, fp, movable=std, conn=conn,
                                 solver="auto")
        expect = "cg" if system._asm.n_total >= AUTO_CG_MIN_UNKNOWNS \
            else "direct"
        assert system.resolved_solver() == expect
        assert PlacementSystem(nl, fixed, fp, movable=std, conn=conn,
                               solver="direct").resolved_solver() == "direct"

    @given(seed=st.integers(0, 2**32 - 1),
           weight=st.floats(0.001, 50.0))
    @settings(max_examples=12, deadline=None)
    def test_cg_matches_direct_within_tolerance(self, seed, weight):
        """Random anchor sets and weights: cg positions track the
        direct factorization to within CG_POS_TOL um.

        The cg system is shared across examples, so anchor sets and
        weights *change* between solves — exactly the perturbation
        sequence bisection produces — exercising preconditioner reuse,
        the refactor policy and the non-convergence fallback.
        """
        nl, _, fp, fixed, std, _ = _small_setup()
        direct = _shared_system()
        cg = _cg_system()
        rng = np.random.default_rng(seed)
        count = int(rng.integers(0, 24))
        picked = rng.choice(len(std), size=count, replace=False)
        anchors = {std[i]: (float(rng.uniform(0, fp.width)),
                            float(rng.uniform(0, fp.core_height)))
                   for i in picked}
        want = direct.solve(anchors, anchor_weight=weight)
        got = cg.solve(anchors, anchor_weight=weight)
        assert want.keys() == got.keys()
        worst = max(max(abs(a[0] - b[0]), abs(a[1] - b[1]))
                    for a, b in ((want[n], got[n]) for n in want))
        assert worst <= CG_POS_TOL

    def test_exact_anchor_repeat_is_bit_identical(self):
        """Re-solving the same anchored system reuses the cached LU
        (no new factorization) and returns bit-identical positions."""
        nl, _, fp, fixed, std, conn = _small_setup()
        system = PlacementSystem(nl, fixed, fp, movable=std, conn=conn,
                                 solver="cg")
        anchors = {std[0]: (1.0, 2.0), std[7]: (30.0, 4.0)}
        first = system.solve(anchors, anchor_weight=0.5)
        factored = metrics.counter("place.factorizations")
        reused = metrics.counter("place.factor_reuse")
        second = system.solve(anchors, anchor_weight=0.5)
        assert second == first
        assert metrics.counter("place.factorizations") == factored
        assert metrics.counter("place.factor_reuse") == reused + 1

    def test_bisection_cg_hpwl_within_tolerance(self):
        """Full bisection with solver="cg" lands within CG_HPWL_TOL of
        the direct placement (both legalized)."""
        nl, tiers, *_ = _small_setup()
        direct, _ = place_design(nl, tiers, SeedBundle(1234))
        cg, _ = place_design(nl, tiers, SeedBundle(1234), solver="cg")
        cg.validate()
        assert cg.hpwl() <= direct.hpwl() * (1.0 + CG_HPWL_TOL)

    def test_direct_default_unchanged(self):
        """solver="direct" is the constructor default and the seed
        behavior: explicit and implicit spellings agree bit-for-bit."""
        nl, _, fp, fixed, std, conn = _small_setup()
        implicit = PlacementSystem(nl, fixed, fp, movable=std, conn=conn)
        explicit = PlacementSystem(nl, fixed, fp, movable=std, conn=conn,
                                   solver="direct")
        anchors = {std[3]: (5.0, 6.0)}
        assert implicit.solve(anchors, anchor_weight=2.0) \
            == explicit.solve(anchors, anchor_weight=2.0)


@lru_cache(maxsize=4)
def _placed(region_parallel: bool, workers: int):
    nl, tiers, *_ = _small_setup()
    placement, fp = place_design(
        nl, tiers, SeedBundle(1234),
        parallel=ParallelConfig(workers=workers),
        region_parallel=region_parallel)
    return nl, placement, fp


class TestRegionParallel:
    def test_deterministic_at_any_worker_count(self):
        nl, serial, _ = _placed(True, 1)
        _, two, _ = _placed(True, 2)
        _, four, _ = _placed(True, 4)
        for name in nl.instances:
            assert serial.of_instance(name) == two.of_instance(name)
            assert serial.of_instance(name) == four.of_instance(name)

    def test_legal_placement(self):
        nl, placement, fp = _placed(True, 2)
        placement.validate()
        for name in nl.instances:
            loc = placement.of_instance(name)
            assert -1e-6 <= loc.x <= fp.width + 1e-6
            assert -1e-6 <= loc.y <= fp.height + 1e-6

    def test_hpwl_within_tolerance_of_serial(self):
        _, joint, _ = _placed(False, 1)
        _, region, _ = _placed(True, 2)
        assert region.hpwl() <= joint.hpwl() * (1.0 + REGION_HPWL_TOL)

    def test_not_bit_identical_to_joint_solve(self):
        """Documents the contract: region mode is a different placement."""
        nl, joint, _ = _placed(False, 1)
        _, region, _ = _placed(True, 1)
        assert any(joint.of_instance(n) != region.of_instance(n)
                   for n in nl.instances)


class TestAutoBackendByFamily:
    """Pins which backend ``auto`` resolves to per design family.

    AUTO_CG_MIN_UNKNOWNS = 1000 deliberately places both hetero
    benchmark families on the factor-reuse cg backend (~1.9k unknowns
    per MAERI-16 region, ~3.7k per A7 region) while toy systems like
    the fixtures above stay on the bit-identical direct factorization.
    Changing the threshold must update this table consciously.
    """

    @staticmethod
    def _auto_backends(benchmark_key: str) -> list[str]:
        """Backends every bisection-level system of one benchmark's
        auto-solver placement actually resolves to."""
        import repro.place.bisection as bisection
        from repro.core.flow import stage_generate, stage_partition
        from repro.harness.designs import get_benchmark

        spec = get_benchmark(benchmark_key)
        netlist = stage_generate(spec.factory, spec.tech(), spec.seeds())
        tiers = stage_partition(netlist)
        recorded: list[str] = []
        real = bisection.PlacementSystem

        class Recording(real):
            def __init__(self, *a, **kw):
                super().__init__(*a, **kw)
                recorded.append(self.resolved_solver())

        bisection.PlacementSystem = Recording
        try:
            place_design(netlist, tiers, spec.seeds(), solver="auto")
        finally:
            bisection.PlacementSystem = real
        assert recorded, "bisection built no placement systems"
        return recorded

    def test_maeri_family_resolves_cg(self):
        assert set(self._auto_backends("maeri16_hetero")) == {"cg"}

    def test_a7_family_resolves_cg(self):
        assert set(self._auto_backends("a7_hetero")) == {"cg"}

    def test_tiny_system_stays_direct(self):
        """A sub-threshold region (e.g. a deep bisection level) still
        resolves to the direct factorization."""
        nl, _, fp, fixed, std, conn = _small_setup()
        system = PlacementSystem(nl, fixed, fp, movable=std[:200],
                                 conn=conn, solver="auto")
        assert system._asm.n_total < AUTO_CG_MIN_UNKNOWNS
        assert system.resolved_solver() == "direct"
