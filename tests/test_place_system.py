"""Cached-Laplacian placement system contracts.

Locks the two guarantees the placement engine rework makes
(see repro.place.system / repro.place.bisection):

* **Bit-identity** — serving every bisection level from one cached
  :class:`PlacementSystem` returns exactly the positions a fresh
  per-level rebuild would (same assembly, same factorization), across
  arbitrary anchor sets and weights.
* **Region-parallel mode** — opt-in block-Jacobi refinement is
  deterministic at any worker count, legalizes cleanly, and stays
  within 2% HPWL of the serial joint solve.  It is *not* bit-identical
  to the joint solve, by contract.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.design import TechSetup
from repro.netlist.generators import MaeriConfig, generate_maeri
from repro.parallel import ParallelConfig
from repro.partition import partition_memory_on_logic
from repro.place import (NetConnectivity, Placement, PlacementSystem,
                         bisection_place, make_floorplan, place_design,
                         quadratic_solve)
from repro.place.legalize import legalize_macros
from repro.place.placer import _pin_ports
from repro.rng import SeedBundle

#: Allowed relative HPWL delta of region-parallel vs serial placement.
REGION_HPWL_TOL = 0.02


@lru_cache(maxsize=1)
def _small_setup():
    """MAERI-16 mid-flow state: ports pinned, macros legalized+fixed.

    This is exactly the state ``place_design`` hands to the bisection
    refinement, cached at module scope so hypothesis examples reuse it.
    """
    tech = TechSetup.build("16nm", "28nm", 6)
    nl = generate_maeri(MaeriConfig(pe_count=16, bandwidth=8),
                        tech.libraries, SeedBundle(1234))
    tiers = partition_memory_on_logic(nl)
    fp = make_floorplan(nl, utilization=0.45)
    fixed = _pin_ports(nl, tiers, fp, Placement(nl, tiers))
    macros = [n for n, i in nl.instances.items() if i.is_macro]
    std = [n for n, i in nl.instances.items() if not i.is_macro]
    conn = NetConnectivity.from_netlist(nl)
    rough = quadratic_solve(nl, fixed, fp, conn=conn)
    fixed = dict(fixed)
    fixed.update(legalize_macros(nl, macros, rough, fp))
    return nl, tiers, fp, fixed, std, conn


@lru_cache(maxsize=1)
def _shared_system() -> PlacementSystem:
    nl, _, fp, fixed, std, conn = _small_setup()
    return PlacementSystem(nl, fixed, fp, movable=std, conn=conn)


class TestCachedSystemBitIdentity:
    @given(seed=st.integers(0, 2**32 - 1),
           weight=st.floats(0.0, 50.0))
    @settings(max_examples=12, deadline=None)
    def test_reused_system_matches_fresh_rebuild(self, seed, weight):
        """Cached pattern + anchor overlay == full per-solve rebuild.

        The reused system keeps one assembled Laplacian and adds only
        the anchor diagonal per solve; the reference leg rebuilds
        connectivity, assembly and factorization from the netlist.
        Positions must agree bit-for-bit (== on floats, no tolerance).
        """
        nl, _, fp, fixed, std, _ = _small_setup()
        system = _shared_system()
        rng = np.random.default_rng(seed)
        count = int(rng.integers(0, 24))
        picked = rng.choice(len(std), size=count, replace=False)
        anchors = {std[i]: (float(rng.uniform(0, fp.width)),
                            float(rng.uniform(0, fp.core_height)))
                   for i in picked}
        cached = system.solve(anchors, anchor_weight=weight)
        rebuilt = quadratic_solve(nl, fixed, fp, movable=std,
                                  anchors=anchors, anchor_weight=weight)
        assert cached == rebuilt

    def test_shared_connectivity_matches_fresh(self):
        """Passing a prebuilt NetConnectivity never changes results."""
        nl, _, fp, fixed, std, conn = _small_setup()
        shared = quadratic_solve(nl, fixed, fp, movable=std, conn=conn)
        fresh = quadratic_solve(nl, fixed, fp, movable=std)
        assert shared == fresh

    def test_bisection_reuse_flag_is_inert(self):
        """reuse_system=True (cached) == False (rebuild per level)."""
        nl, _, fp, fixed, std, conn = _small_setup()
        cached = bisection_place(nl, fixed, fp, movable=std, conn=conn,
                                 reuse_system=True)
        rebuilt = bisection_place(nl, fixed, fp, movable=std, conn=conn,
                                  reuse_system=False)
        assert cached == rebuilt


@lru_cache(maxsize=4)
def _placed(region_parallel: bool, workers: int):
    nl, tiers, *_ = _small_setup()
    placement, fp = place_design(
        nl, tiers, SeedBundle(1234),
        parallel=ParallelConfig(workers=workers),
        region_parallel=region_parallel)
    return nl, placement, fp


class TestRegionParallel:
    def test_deterministic_at_any_worker_count(self):
        nl, serial, _ = _placed(True, 1)
        _, two, _ = _placed(True, 2)
        _, four, _ = _placed(True, 4)
        for name in nl.instances:
            assert serial.of_instance(name) == two.of_instance(name)
            assert serial.of_instance(name) == four.of_instance(name)

    def test_legal_placement(self):
        nl, placement, fp = _placed(True, 2)
        placement.validate()
        for name in nl.instances:
            loc = placement.of_instance(name)
            assert -1e-6 <= loc.x <= fp.width + 1e-6
            assert -1e-6 <= loc.y <= fp.height + 1e-6

    def test_hpwl_within_tolerance_of_serial(self):
        _, joint, _ = _placed(False, 1)
        _, region, _ = _placed(True, 2)
        assert region.hpwl() <= joint.hpwl() * (1.0 + REGION_HPWL_TOL)

    def test_not_bit_identical_to_joint_solve(self):
        """Documents the contract: region mode is a different placement."""
        nl, joint, _ = _placed(False, 1)
        _, region, _ = _placed(True, 1)
        assert any(joint.of_instance(n) != region.of_instance(n)
                   for n in nl.instances)
