"""End-to-end flow and harness tests (small fabric, fast settings)."""

import pytest

from repro import FlowConfig, run_flow
from repro.core.flow import prepare_design
from repro.core.trainer import TrainConfig
from repro.errors import FlowError
from repro.harness import BENCHMARKS, format_table, get_benchmark
from repro.netlist.generators import MaeriConfig, generate_maeri
from repro.rng import SeedBundle

from tests.conftest import TEST_SEED

FAST_TRAIN = TrainConfig(dgi_epochs=1, finetune_epochs=3)


def tiny_factory(libraries, seeds):
    return generate_maeri(MaeriConfig(pe_count=16, bandwidth=8),
                          libraries, seeds)


def fast_config(selector: str, **kwargs) -> FlowConfig:
    defaults = dict(selector=selector, target_freq_mhz=1500.0,
                    num_paths=80, num_labeled=40, train=FAST_TRAIN,
                    pdn=False, gnn_refine_iters=1)
    defaults.update(kwargs)
    return FlowConfig(**defaults)


class TestFlowConfig:
    def test_unknown_selector(self):
        with pytest.raises(FlowError, match="unknown selector"):
            FlowConfig(selector="magic")

    def test_dft_requires_scan(self):
        with pytest.raises(FlowError, match="needs with_scan"):
            FlowConfig(dft_strategy="net-based", with_scan=False)

    def test_unknown_dft_strategy(self):
        with pytest.raises(FlowError, match="unknown DFT strategy"):
            FlowConfig(dft_strategy="bogus", with_scan=True)


class TestRunFlow:
    @pytest.fixture(scope="class")
    def reports(self, hetero_tech):
        out = {}
        for sel in ("none", "sota", "oracle"):
            out[sel] = run_flow(tiny_factory, hetero_tech,
                                SeedBundle(TEST_SEED), fast_config(sel))
        return out

    def test_row_fields_complete(self, reports):
        row = reports["none"].row()
        for key in ("target_freq_mhz", "wirelength_m", "wns_ps", "tns_ns",
                    "vio_paths", "mls_nets", "runtime_min", "power_mw",
                    "eff_freq_mhz"):
            assert key in row

    def test_none_has_no_mls(self, reports):
        assert reports["none"].row()["mls_nets"] == 0

    def test_oracle_not_worse_than_none(self, reports):
        assert reports["oracle"].row()["tns_ns"] >= \
            reports["none"].row()["tns_ns"]

    def test_selectors_apply_mls(self, reports):
        assert reports["sota"].row()["mls_nets"] > 0
        assert reports["oracle"].row()["mls_nets"] > 0

    def test_baseline_kept_in_report(self, reports):
        report = reports["oracle"]
        assert report.baseline_sta.wns_ps <= 0
        assert report.applied_mls <= report.requested_mls or \
            report.applied_mls      # applied can only shrink vs request

    def test_gnn_flow_smoke(self, hetero_tech):
        report = run_flow(tiny_factory, hetero_tech,
                          SeedBundle(TEST_SEED), fast_config("gnn"))
        assert report.model is not None
        assert report.select_runtime_s > 0
        assert report.runtime_s >= report.select_runtime_s
        assert report.stage_runtime_s["flow.select"] > 0
        assert report.row()["mls_nets"] >= 0

    def test_random_selector(self, hetero_tech):
        report = run_flow(tiny_factory, hetero_tech,
                          SeedBundle(TEST_SEED), fast_config("random"))
        assert report.requested_mls

    def test_dft_flow_reports_coverage(self, hetero_tech):
        report = run_flow(
            tiny_factory, hetero_tech, SeedBundle(TEST_SEED),
            fast_config("oracle", with_scan=True,
                        dft_strategy="wire-based", dft_patterns=128))
        row = report.row()
        assert 0 < row["coverage_pct"] <= 100
        assert row["total_faults"] > 0
        assert row["detected_faults"] <= row["total_faults"]

    def test_deterministic_across_runs(self, hetero_tech, reports):
        again = run_flow(tiny_factory, hetero_tech,
                         SeedBundle(TEST_SEED), fast_config("sota"))
        row_a = {k: v for k, v in again.row().items()
                 if k != "runtime_min"}      # wall-clock, not a result
        row_b = {k: v for k, v in reports["sota"].row().items()
                 if k != "runtime_min"}
        assert row_a == pytest.approx(row_b)


class TestPrepareDesign:
    def test_stages_attached(self, hetero_tech):
        design = prepare_design(tiny_factory, hetero_tech,
                                SeedBundle(TEST_SEED),
                                fast_config("none"))
        assert design.tiers is not None
        assert design.placement is not None
        assert design.notes.get("level_shifters", 0) > 0
        assert "buffering" in design.notes

    def test_scan_stage_optional(self, hetero_tech):
        design = prepare_design(tiny_factory, hetero_tech,
                                SeedBundle(TEST_SEED),
                                fast_config("none", with_scan=True))
        assert "scan_chain" in design.notes


class TestHarness:
    def test_benchmark_registry(self):
        assert set(BENCHMARKS) == {
            "maeri128_hetero", "a7_hetero", "maeri256_homo", "a7_homo",
            "maeri16_hetero"}
        spec = get_benchmark("maeri128_hetero")
        assert spec.is_heterogeneous
        assert spec.paper_target_mhz == 2500.0

    def test_unknown_benchmark(self):
        with pytest.raises(FlowError):
            get_benchmark("maeri1024")

    def test_homo_specs_not_heterogeneous(self):
        assert not get_benchmark("a7_homo").is_heterogeneous

    def test_format_table_renders(self):
        rows = {
            "none": {"wns_ps": -85.0, "tns_ns": -327.0},
            "ours": {"wns_ps": -23.0, "tns_ns": -11.0},
        }
        text = format_table("Table X", ["none", "ours"], rows,
                            [("wns_ps", "WNS (ps)", ".1f"),
                             ("tns_ns", "TNS (ns)", ".1f"),
                             ("missing", "Missing", ".1f")])
        assert "Table X" in text
        assert "-85.0" in text and "-23.0" in text
        assert "-" in text.splitlines()[-1]      # missing metric placeholder
