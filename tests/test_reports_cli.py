"""Timing/congestion report and CLI tests."""

import pytest

from repro.cli import main
from repro.route.report import render_heatmap, render_utilization
from repro.timing import extract_worst_paths, run_sta
from repro.timing.report import render_path, render_summary


class TestTimingReport:
    def test_render_summary_contains_headlines(self, routed_small_design):
        report = run_sta(routed_small_design)
        text = render_summary(report, num_paths=2)
        assert "WNS" in text and "TNS" in text
        assert "Slack histogram" in text
        assert f"{report.num_endpoints} endpoints" in text

    def test_render_path_arcs_sum_to_arrival(self, routed_small_design):
        report = run_sta(routed_small_design)
        path = extract_worst_paths(report, 1)[0]
        text = render_path(report, path)
        lines = [l for l in text.splitlines()
                 if l.strip().startswith(("launch", "cell", "net"))]
        total = sum(float(l.split()[1]) for l in lines)
        assert total == pytest.approx(path.arrival_ps, abs=0.5)
        assert path.endpoint in text


class TestCongestionReport:
    def test_utilization_table(self, routed_small_design):
        routing = routed_small_design.require_routing()
        text = render_utilization(routing)
        assert "wirelength" in text
        # one row per (tier, pair)
        grid = routing.grid
        rows = [l for l in text.splitlines()
                if l and l[0].isdigit()]
        expected = sum(grid.num_pairs(t) for t in range(len(grid.usage)))
        assert len(rows) == expected

    def test_heatmap_renders(self, routed_small_design):
        routing = routed_small_design.require_routing()
        text = render_heatmap(routing, tier=0, pair=0)
        assert "peak" in text
        assert len(text.splitlines()) > 2


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "maeri16_hetero" in out
        assert "selectors:" in out

    def test_export_roundtrip(self, tmp_path, capsys):
        out_file = tmp_path / "m16.v"
        assert main(["export", "--benchmark", "maeri16_hetero",
                     "--out", str(out_file)]) == 0
        assert out_file.exists()
        assert "instances" in capsys.readouterr().out

    def test_flow_none(self, capsys):
        assert main(["flow", "--benchmark", "maeri16_hetero",
                     "--selector", "none"]) == 0
        out = capsys.readouterr().out
        assert "wns_ps" in out

    def test_timing_report_command(self, capsys):
        assert main(["timing", "--benchmark", "maeri16_hetero",
                     "--selector", "none", "--paths", "1"]) == 0
        assert "Timing summary" in capsys.readouterr().out

    def test_congestion_command(self, capsys):
        assert main(["congestion", "--benchmark", "maeri16_hetero",
                     "--selector", "none"]) == 0
        assert "Routing utilization" in capsys.readouterr().out

    def test_bad_command_exits(self):
        with pytest.raises(SystemExit):
            main(["definitely-not-a-command"])
