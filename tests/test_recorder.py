"""Flight-recorder tests: ring bounding, dump contents and schema,
crash/SIGUSR1 triggers (including a subprocess raising mid-stage),
and env-based arming for pool workers."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs.recorder import (FLIGHT_DIR_ENV, FlightRecorder, flight,
                                maybe_arm_from_env)
from repro.obs.schema import validate_flight_dump
from repro.obs.tracer import trace

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


@pytest.fixture(autouse=True)
def _clean_recorder():
    """Never leak an armed singleton or the env export across tests."""
    saved = os.environ.pop(FLIGHT_DIR_ENV, None)
    yield
    if flight.armed:
        flight.disarm()
    os.environ.pop(FLIGHT_DIR_ENV, None)
    if saved is not None:
        os.environ[FLIGHT_DIR_ENV] = saved


class TestRing:
    def test_bounded_at_capacity(self):
        rec = FlightRecorder(capacity=8)
        for i in range(20):
            rec.record_sample("tick", float(i))
        events = rec.events()
        assert len(events) == 8
        assert events[0]["value"] == 12.0       # oldest kept
        assert events[-1]["value"] == 19.0

    def test_event_shapes(self):
        rec = FlightRecorder()
        rec.record_sample("lat", 0.5, req="req-1")
        rec.record_note("shutting down", reason="test")
        sample, note = rec.events()
        assert sample["type"] == "sample"
        assert sample["attrs"] == {"req": "req-1"}
        assert note["type"] == "note"
        assert note["message"] == "shutting down"

    def test_armed_recorder_mirrors_spans_while_tracing_disabled(
            self, tmp_path):
        assert not trace.enabled
        flight.arm(tmp_path, export_env=False)
        with trace.span("stage.place"):
            pass
        spans = [e for e in flight.events() if e["type"] == "span"]
        assert [s["name"] for s in spans] == ["stage.place"]
        flight.disarm()
        with trace.span("after"):
            pass
        assert flight.events() == []            # disarm clears + stops


class TestDump:
    def test_dump_validates_against_schema(self, tmp_path):
        rec = FlightRecorder()
        rec.arm(tmp_path, export_env=False)
        rec.record_sample("service.flow_serve_s", 1.25, req="req-7")
        rec.record_note("mid-flight")
        path = rec.dump("manual")
        info = validate_flight_dump(path)
        assert info["events"] == 2
        payload = json.loads(path.read_text())
        assert payload["schema"] == "repro.flight/2"
        assert payload["reason"] == "manual"
        assert payload["pid"] == os.getpid()
        assert "exception" not in payload
        assert set(payload["metrics"]) >= {"counters", "histograms"}
        rec.disarm()

    def test_crash_dump_carries_traceback(self, tmp_path):
        rec = FlightRecorder()
        rec.arm(tmp_path, export_env=False)
        try:
            raise RuntimeError("boom in place")
        except RuntimeError as exc:
            path = rec.crash_dump("test.crash", exc)
        assert path is not None
        validate_flight_dump(path)
        payload = json.loads(path.read_text())
        assert payload["exception"]["type"] == "RuntimeError"
        assert "boom in place" in payload["exception"]["traceback"]
        rec.disarm()

    def test_crash_dump_noop_when_disarmed(self):
        rec = FlightRecorder()
        assert rec.crash_dump("x", RuntimeError("y")) is None

    def test_distinct_filenames_per_dump(self, tmp_path):
        rec = FlightRecorder()
        rec.arm(tmp_path, export_env=False)
        paths = {rec.dump("a"), rec.dump("b")}
        assert len(paths) == 2
        rec.disarm()


class TestEnvArming:
    def test_arm_exports_and_disarm_cleans(self, tmp_path):
        flight.arm(tmp_path)
        assert os.environ[FLIGHT_DIR_ENV] == str(tmp_path)
        flight.disarm()
        assert FLIGHT_DIR_ENV not in os.environ

    def test_maybe_arm_from_env(self, tmp_path):
        assert maybe_arm_from_env() is False      # no env, no-op
        os.environ[FLIGHT_DIR_ENV] = str(tmp_path)
        assert maybe_arm_from_env() is True
        assert flight.armed
        assert flight.directory == tmp_path
        # Second call on an already-armed recorder is a no-op.
        assert maybe_arm_from_env() is True


class TestTriggers:
    def test_sigusr1_dumps_without_stopping(self, tmp_path):
        flight.arm(tmp_path, export_env=False, install_signal=True)
        flight.record_note("alive")
        os.kill(os.getpid(), signal.SIGUSR1)
        dumps = sorted(tmp_path.glob("flight-*.json"))
        assert len(dumps) == 1
        payload = json.loads(dumps[0].read_text())
        assert payload["reason"] == "sigusr1"
        assert flight.armed                     # still recording

    def test_unhandled_crash_mid_stage_dumps(self, tmp_path):
        """A subprocess arms the recorder with the excepthook installed
        and dies mid-stage; a valid dump must appear on disk."""
        script = (
            "from repro.obs.recorder import flight\n"
            "from repro.obs.tracer import trace\n"
            "import sys\n"
            "flight.arm(sys.argv[1], export_env=False,\n"
            "           install_excepthook=True)\n"
            "with trace.span('flow'):\n"
            "    with trace.span('flow.place'):\n"
            "        pass\n"
            "raise RuntimeError('died mid-route')\n"
        )
        env = dict(os.environ, PYTHONPATH=REPO_SRC)
        proc = subprocess.run(
            [sys.executable, "-c", script, str(tmp_path)],
            env=env, capture_output=True, text=True, timeout=60)
        assert proc.returncode != 0             # crash still propagates
        assert "died mid-route" in proc.stderr
        dumps = sorted(tmp_path.glob("flight-*.json"))
        assert len(dumps) == 1
        info = validate_flight_dump(dumps[0])
        assert info["spans"] == 2               # the ring caught them
        payload = json.loads(dumps[0].read_text())
        assert payload["reason"] == "excepthook"
        assert payload["exception"]["type"] == "RuntimeError"

    def test_pool_worker_chunk_crash_dumps(self, tmp_path):
        """A worker process arms itself from the parent's exported env
        and dumps when its chunk raises.  Driven through the real
        worker entry points (``_init_worker`` + ``_run_chunk``) in a
        subprocess so the test does not depend on the host having
        enough cores for ``snapshot_map`` to actually fan out."""
        script = (
            "from repro.parallel.pool import (_init_worker, _run_chunk,\n"
            "                                 dumps_snapshot)\n"
            "import sys\n"
            "def boom(state, chunk):\n"
            "    raise RuntimeError('chunk died on %r' % (chunk,))\n"
            "_init_worker(dumps_snapshot({'n': 1}))\n"
            "try:\n"
            "    _run_chunk(boom, [1, 2, 3])\n"
            "except RuntimeError:\n"
            "    sys.exit(3)\n"
            "sys.exit(4)\n"
        )
        env = dict(os.environ, PYTHONPATH=REPO_SRC)
        env[FLIGHT_DIR_ENV] = str(tmp_path)     # the parent's export
        proc = subprocess.run(
            [sys.executable, "-c", script],
            env=env, capture_output=True, text=True, timeout=120)
        assert proc.returncode == 3, proc.stderr
        dumps = sorted(tmp_path.glob("flight-*.json"))
        assert dumps, "worker crash produced no flight dump"
        payload = json.loads(dumps[0].read_text())
        assert payload["reason"] == "pool.chunk"
        assert "chunk died" in payload["exception"]["message"]
        validate_flight_dump(dumps[0])
