"""Property-based tests on core invariants (hypothesis)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dft.logic3 import eval_gate, truth_table
from repro.nn import Tensor
from repro.route import RouteEdge, RouteTree, extract_rc
from repro.tech import F2FVia, NODE_28NM, build_library, default_stack

LIB = build_library(NODE_28NM)
STACKS = (default_stack(NODE_28NM, 6), default_stack(NODE_28NM, 6))
F2F = F2FVia()
_GATES = ["INV", "NAND2", "NOR2", "XOR2", "AND2", "OR2", "MUX2",
          "AOI21", "OAI21", "MAJ3", "XOR3"]


def _reference_3value(cell, ins):
    """Brute-force 3-valued evaluation of one (v, k) bit pattern.

    ``ins`` is a list of 0/1/None (None = X).  Returns 0/1/None.
    """
    unknown = [i for i, v in enumerate(ins) if v is None]
    outcomes = set()
    for completion in itertools.product((0, 1), repeat=len(unknown)):
        vals = list(ins)
        for idx, bit in zip(unknown, completion):
            vals[idx] = bit
        words = [np.uint64(0xFFFFFFFFFFFFFFFF) if b else np.uint64(0)
                 for b in vals]
        outcomes.add(int(cell.evaluate(*words) & np.uint64(1)))
    return outcomes.pop() if len(outcomes) == 1 else None


class TestLogic3Exactness:
    @given(st.sampled_from(_GATES),
           st.lists(st.sampled_from([0, 1, None]), min_size=3, max_size=3))
    @settings(max_examples=200, deadline=None)
    def test_matches_bruteforce(self, gate_name, raw_ins):
        cell = LIB.get(gate_name)
        ins = raw_ins[:cell.num_inputs]
        expected = _reference_3value(cell, ins)
        ins_v, ins_k = [], []
        for v in ins:
            if v is None:
                ins_v.append(np.array([np.uint64(0)]))
                ins_k.append(np.array([np.uint64(0)]))
            else:
                word = np.uint64(0xFFFFFFFFFFFFFFFF) if v else np.uint64(0)
                ins_v.append(np.array([word]))
                ins_k.append(np.array([np.uint64(0xFFFFFFFFFFFFFFFF)]))
        value, known = eval_gate(cell, ins_v, ins_k)
        bit_known = bool(known[0] & np.uint64(1))
        if expected is None:
            assert not bit_known
        else:
            assert bit_known
            assert int(value[0] & np.uint64(1)) == expected

    def test_truth_table_cached_and_complete(self):
        for name in _GATES:
            cell = LIB.get(name)
            rows = truth_table(cell)
            assert len(rows) == 2 ** cell.num_inputs
            assert truth_table(cell) is rows      # cached


class TestElmoreInvariants:
    @given(st.lists(st.tuples(st.floats(1.0, 80.0), st.integers(0, 2)),
                    min_size=1, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_cap_additivity_on_chains(self, segments):
        """Total wire cap equals the sum of per-edge caps, and Elmore
        delay is monotone along a chain."""
        inv = LIB.get("INV")
        from repro.netlist import Netlist
        nl = Netlist("chain")
        driver = nl.add_instance("d0", inv)
        tree = RouteTree("n")
        tree.add_node(0, 0, 0, pin=driver.output_pin)
        x = 0.0
        expected_c = 0.0
        sink_delays = []
        for i, (length, pair) in enumerate(segments):
            x += length
            sink_inst = nl.add_instance(f"s{i}", inv)
            tree.add_node(x, 0, 0, pin=sink_inst.pin("A"))
            edge = RouteEdge(i, i + 1, length, tier=0, pair=pair)
            tree.add_edge(edge)
            la, lb = STACKS[0].pairs()[pair]
            expected_c += (la.c_per_um + lb.c_per_um) / 2 * length
        rc = extract_rc(tree, STACKS, F2F)
        assert rc.wire_cap_ff == pytest.approx(expected_c)
        delays = [rc.sink_delay_ps[f"s{i}/A"]
                  for i in range(len(segments))]
        assert all(a <= b + 1e-9 for a, b in zip(delays, delays[1:]))

    @given(st.floats(1.0, 100.0))
    @settings(max_examples=30, deadline=None)
    def test_shared_edge_never_cheaper_in_cap_than_bare_metal(self, length):
        """F2F vias and escape stubs always add capacitance."""
        inv = LIB.get("INV")
        from repro.netlist import Netlist
        nl = Netlist("x")
        d = nl.add_instance("d0", inv)
        s = nl.add_instance("s0", inv)

        def rc_for(shared):
            tree = RouteTree("n")
            tree.add_node(0, 0, 0, pin=d.output_pin)
            tree.add_node(length, 0, 0, pin=s.pin("A"))
            top = len(STACKS[0].pairs()) - 1
            if shared:
                tree.add_edge(RouteEdge(0, 1, length, tier=1, pair=top,
                                        n_f2f=2, via_hops=8, shared=True,
                                        escape_um=5.0))
            else:
                tree.add_edge(RouteEdge(0, 1, length, tier=0, pair=top))
            return extract_rc(tree, STACKS, F2F)
        assert rc_for(True).wire_cap_ff > rc_for(False).wire_cap_ff


class TestTensorProperties:
    @given(st.integers(1, 6), st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_softmax_rows_normalized(self, n, m):
        rng = np.random.default_rng(n * 10 + m)
        t = Tensor(rng.normal(size=(n, m)))
        out = t.softmax(axis=-1).data
        assert np.allclose(out.sum(axis=-1), 1.0)
        assert (out >= 0).all()

    @given(st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_sigmoid_tanh_identity(self, n):
        rng = np.random.default_rng(n)
        x = rng.normal(size=(n, 3))
        t = Tensor(x)
        # tanh(x) == 2*sigmoid(2x) - 1
        lhs = t.tanh().data
        rhs = 2.0 * Tensor(2.0 * x).sigmoid().data - 1.0
        assert np.allclose(lhs, rhs, atol=1e-9)

    @given(st.integers(2, 6))
    @settings(max_examples=20, deadline=None)
    def test_grad_of_sum_is_ones(self, n):
        t = Tensor(np.arange(float(n)), requires_grad=True)
        t.sum().backward()
        assert np.allclose(t.grad, 1.0)


class TestScanViewDeterminism:
    @given(seed=st.integers(0, 2 ** 16))
    @settings(max_examples=10, deadline=None)
    def test_fault_sim_seed_stability(self, hetero_tech, seed):
        from repro.dft import build_fault_universe, simulate_faults
        from repro.rng import stream
        from tests.conftest import make_chain_netlist
        nl = make_chain_netlist(hetero_tech, stages=2)
        universe = build_fault_universe(nl)
        a = simulate_faults(nl, universe, stream("p", seed), patterns=64)
        b = simulate_faults(nl, universe, stream("p", seed), patterns=64)
        assert a.detected_collapsed == b.detected_collapsed
