"""Content-key derivation + artifact-store properties (hypothesis).

Locks the flow-as-a-service storage contract:

* key soundness — identical inputs collide onto one key; *any* single
  perturbation (seed, frequency, tech, scan config, factory parameter,
  any result-relevant :class:`FlowConfig` field) changes it, while the
  result-neutral ``parallel`` field never does.  The perturbation
  table is exhaustiveness-checked against ``dataclasses.fields`` so a
  newly-added config field fails loudly until it is classified;
* stage keys are prefix-shaped (frequency/scan sweeps share the
  placement artifact);
* unstable (identity-fingerprinted) keys are usable in-process but
  refused by the persistent store on both paths;
* blob round trips are bit-identical (pickle-bytes compare, plus the
  golden netlist digest on a real generated design);
* any single-byte corruption or truncation is detected, counted and
  demoted to a miss with the damaged file unlinked;
* interrupted writes leave no partial artifact;
* the LRU byte budget evicts oldest-access entries first and a
  destroyed index is rebuilt by scanning the object tree.
"""

from __future__ import annotations

import dataclasses
import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.flow import FlowConfig, TrainConfig
from repro.netlist.generators import MaeriConfig, generate_maeri
from repro.obs import metrics
from repro.parallel import ParallelConfig, dumps_snapshot
from repro.rng import SeedBundle
from repro.route import RouteConfig
from repro.service import (ArtifactCorruptError, ArtifactStore,
                           ContentKey, flow_key, prepare_key,
                           prepare_stage_keys, tech_digest)
from repro.service.store import (read_artifact_bytes,
                                 write_artifact_bytes)
from tests.golden_util import netlist_digest

from tests.conftest import TEST_SEED


def _maeri_factory(libraries, seeds):
    return generate_maeri(MaeriConfig(pe_count=16, bandwidth=8),
                          libraries, seeds)


def _maeri_factory_wide(libraries, seeds):
    return generate_maeri(MaeriConfig(pe_count=16, bandwidth=16),
                          libraries, seeds)


def _same_name_factory(wide: bool):
    """Two factories with identical qualnames and identical co_code —
    bytecode references constants by index, so a literal-only edit
    (bandwidth 4 -> 8; both distinct from pe_count so the const
    tables keep the same shape) is invisible to a co_code hash."""
    if wide:
        def factory(libraries, seeds):
            return generate_maeri(MaeriConfig(pe_count=16, bandwidth=8),
                                  libraries, seeds)
    else:
        def factory(libraries, seeds):
            return generate_maeri(MaeriConfig(pe_count=16, bandwidth=4),
                                  libraries, seeds)
    return factory


def _nested_literal_factory(wide: bool):
    """Same trap one level down: the differing literal lives in a
    *nested* code object stored in the outer factory's co_consts."""
    if wide:
        def factory(libraries, seeds):
            def config():
                return MaeriConfig(pe_count=16, bandwidth=8)
            return generate_maeri(config(), libraries, seeds)
    else:
        def factory(libraries, seeds):
            def config():
                return MaeriConfig(pe_count=16, bandwidth=4)
            return generate_maeri(config(), libraries, seeds)
    return factory


BASE_CONFIG = FlowConfig(selector="none", target_freq_mhz=1500.0)

#: field name -> perturbed value.  ``None`` marks result-neutral
#: fields whose perturbation must NOT move the key.
_PERTURBATIONS = {
    "selector": "gnn",
    "target_freq_mhz": 1600.0,
    "num_paths": BASE_CONFIG.num_paths + 1,
    "num_labeled": BASE_CONFIG.num_labeled + 1,
    "with_scan": True,
    "dft_strategy": "wire-based",
    "dft_patterns": BASE_CONFIG.dft_patterns + 1,
    "dft_max_faults": BASE_CONFIG.dft_max_faults + 1,
    "train": TrainConfig(dgi_epochs=TrainConfig().dgi_epochs + 1),
    "route": RouteConfig(gcell_um=RouteConfig().gcell_um * 2),
    "oracle_exact_slack": True,
    "decision_threshold": BASE_CONFIG.decision_threshold + 0.1,
    "gnn_refine_iters": BASE_CONFIG.gnn_refine_iters + 1,
    "pdn": False,
    "activity": BASE_CONFIG.activity + 0.01,
    "parallel": None,
    "place_region_parallel": True,
    "place_solver": "cg",
}

_RESULT_NEUTRAL = {"parallel"}


@pytest.fixture(scope="module")
def tech(hetero_tech):
    return hetero_tech


def _seeds(seed: int = TEST_SEED) -> SeedBundle:
    return SeedBundle(seed)


class TestKeyDerivation:
    def test_identical_inputs_collide(self, tech):
        """Two independently-built identical inputs -> one key."""
        from repro.design import TechSetup
        a = flow_key(_maeri_factory, tech, _seeds(), BASE_CONFIG)
        b = flow_key(_maeri_factory, TechSetup.build("16nm", "28nm", 6),
                     _seeds(),
                     FlowConfig(selector="none", target_freq_mhz=1500.0))
        assert a.stable and b.stable
        assert a.hexdigest == b.hexdigest
        pa = prepare_key(_maeri_factory, tech, _seeds(), BASE_CONFIG)
        pb = prepare_key(_maeri_factory, tech, _seeds(), BASE_CONFIG)
        assert pa == pb

    def test_perturbation_table_is_exhaustive(self):
        """Regression (shared key-derivation helper): every FlowConfig
        field must be classified result-relevant or result-neutral
        here, and the key module's own neutral set must agree."""
        from repro.service.keys import _RESULT_NEUTRAL_CONFIG_FIELDS
        field_names = {f.name for f in dataclasses.fields(FlowConfig)}
        assert field_names == set(_PERTURBATIONS), (
            "new FlowConfig field: add it to _PERTURBATIONS and decide "
            "whether it changes results (flow keys must cover it)")
        assert _RESULT_NEUTRAL == set(_RESULT_NEUTRAL_CONFIG_FIELDS)

    @pytest.mark.parametrize("field_name",
                             sorted(set(_PERTURBATIONS)
                                    - _RESULT_NEUTRAL))
    def test_each_config_field_changes_key(self, tech, field_name):
        base_cfg = BASE_CONFIG
        if field_name == "dft_strategy":
            # FlowConfig validates dft_strategy => with_scan, so the
            # strategy perturbation is measured on a scanned baseline.
            base_cfg = dataclasses.replace(BASE_CONFIG, with_scan=True)
        base = flow_key(_maeri_factory, tech, _seeds(), base_cfg)
        changed = dataclasses.replace(
            base_cfg, **{field_name: _PERTURBATIONS[field_name]})
        assert flow_key(_maeri_factory, tech, _seeds(),
                        changed).hexdigest != base.hexdigest

    def test_parallel_config_never_changes_key(self, tech):
        base = flow_key(_maeri_factory, tech, _seeds(), BASE_CONFIG)
        wide = dataclasses.replace(
            BASE_CONFIG, parallel=ParallelConfig(workers=8,
                                                 chunk_size=17))
        assert flow_key(_maeri_factory, tech, _seeds(),
                        wide).hexdigest == base.hexdigest

    def test_route_batch_ms_never_changes_key(self, tech):
        """``batch_ms`` only sizes wavefront dispatches (the routing
        invariant suite locks results identical at any batch size), so
        it must not move flow keys — unlike the rest of RouteConfig."""
        base = flow_key(_maeri_factory, tech, _seeds(), BASE_CONFIG)
        batched = dataclasses.replace(
            BASE_CONFIG,
            route=dataclasses.replace(BASE_CONFIG.route, batch_ms=997.0))
        assert flow_key(_maeri_factory, tech, _seeds(),
                        batched).hexdigest == base.hexdigest

    def test_place_solver_changes_prepare_keys(self, tech):
        """cg placements differ within tolerance, not bit-exactly, so
        the place and prepared stage keys must cover the backend."""
        base = prepare_stage_keys(_maeri_factory, tech, _seeds(),
                                  BASE_CONFIG)
        cg = prepare_stage_keys(
            _maeri_factory, tech, _seeds(),
            dataclasses.replace(BASE_CONFIG, place_solver="cg"))
        assert base.generate == cg.generate
        assert base.partition == cg.partition
        assert base.place != cg.place
        assert base.prepared != cg.prepared

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_seed_perturbation(self, tech, seed):
        base = flow_key(_maeri_factory, tech, _seeds(TEST_SEED),
                        BASE_CONFIG)
        other = flow_key(_maeri_factory, tech, _seeds(seed), BASE_CONFIG)
        assert (other.hexdigest == base.hexdigest) == (seed == TEST_SEED)

    @given(freq=st.floats(min_value=100.0, max_value=4000.0,
                          allow_nan=False))
    @settings(max_examples=25, deadline=None)
    def test_freq_perturbation(self, tech, freq):
        base = prepare_key(_maeri_factory, tech, _seeds(), BASE_CONFIG)
        other = prepare_key(
            _maeri_factory, tech, _seeds(),
            dataclasses.replace(BASE_CONFIG, target_freq_mhz=freq))
        assert (other.hexdigest == base.hexdigest) == \
            (freq == BASE_CONFIG.target_freq_mhz)

    def test_tech_perturbation(self, tech, homo_tech):
        assert tech_digest(tech) != tech_digest(homo_tech)
        a = flow_key(_maeri_factory, tech, _seeds(), BASE_CONFIG)
        b = flow_key(_maeri_factory, homo_tech, _seeds(), BASE_CONFIG)
        assert a.hexdigest != b.hexdigest

    def test_factory_param_perturbation(self, tech):
        """Different factory bodies (bandwidth 8 vs 16) -> new keys;
        partial-bound parameters participate too."""
        import functools

        a = flow_key(_maeri_factory, tech, _seeds(), BASE_CONFIG)
        b = flow_key(_maeri_factory_wide, tech, _seeds(), BASE_CONFIG)
        assert a.hexdigest != b.hexdigest

        def parametric(config, libraries, seeds):
            return generate_maeri(config, libraries, seeds)

        p8 = functools.partial(parametric, MaeriConfig(pe_count=16,
                                                       bandwidth=8))
        p16 = functools.partial(parametric, MaeriConfig(pe_count=16,
                                                        bandwidth=16))
        ka = flow_key(p8, tech, _seeds(), BASE_CONFIG)
        kb = flow_key(p16, tech, _seeds(), BASE_CONFIG)
        assert ka.stable and kb.stable
        assert ka.hexdigest != kb.hexdigest

    def test_literal_constant_change_invalidates_key(self, tech):
        """Regression (REVIEW: co_code-only fingerprint): factories
        that differ *only* in a literal constant share bytecode, so
        the key must cover the constant pool too."""
        narrow, wide = _same_name_factory(False), _same_name_factory(True)
        # The trap this test pins: identical bytecode, different consts.
        assert narrow.__code__.co_code == wide.__code__.co_code
        ka = flow_key(narrow, tech, _seeds(), BASE_CONFIG)
        kb = flow_key(wide, tech, _seeds(), BASE_CONFIG)
        assert ka.stable and kb.stable
        assert ka.hexdigest != kb.hexdigest
        # Deterministic: an identically-rebuilt factory shares the key.
        rebuilt = flow_key(_same_name_factory(False), tech, _seeds(),
                           BASE_CONFIG)
        assert rebuilt.hexdigest == ka.hexdigest

    def test_nested_code_literal_change_invalidates_key(self, tech):
        """The constant pool is recursed: a literal edit inside an
        inner function (a code object in co_consts) moves the key."""
        narrow = _nested_literal_factory(False)
        wide = _nested_literal_factory(True)
        assert narrow.__code__.co_code == wide.__code__.co_code
        ka = flow_key(narrow, tech, _seeds(), BASE_CONFIG)
        kb = flow_key(wide, tech, _seeds(), BASE_CONFIG)
        assert ka.stable and kb.stable
        assert ka.hexdigest != kb.hexdigest

    def test_stage_keys_are_prefix_shaped(self, tech):
        """Frequency/scan sweeps share generate/partition/place."""
        base = prepare_stage_keys(_maeri_factory, tech, _seeds(),
                                  BASE_CONFIG)
        swept = prepare_stage_keys(
            _maeri_factory, tech, _seeds(),
            dataclasses.replace(BASE_CONFIG, target_freq_mhz=1700.0,
                                with_scan=True))
        assert swept.generate == base.generate
        assert swept.partition == base.partition
        assert swept.place == base.place
        assert swept.prepared != base.prepared
        regioned = prepare_stage_keys(
            _maeri_factory, tech, _seeds(),
            dataclasses.replace(BASE_CONFIG, place_region_parallel=True))
        assert regioned.generate == base.generate
        assert regioned.partition == base.partition
        assert regioned.place != base.place
        assert regioned.prepared != base.prepared

    def test_unfingerprintable_factory_degrades_to_unstable(self, tech):
        opaque = object()

        def closure_factory(libraries, seeds):
            _ = opaque          # closure over an unfingerprintable obj
            return _maeri_factory(libraries, seeds)

        key = flow_key(closure_factory, tech, _seeds(), BASE_CONFIG)
        assert not key.stable
        # Distinct opaque objects -> distinct keys (id folded in).
        other_obj = object()

        def other_factory(libraries, seeds):
            _ = other_obj
            return _maeri_factory(libraries, seeds)

        assert flow_key(other_factory, tech, _seeds(),
                        BASE_CONFIG).hexdigest != key.hexdigest


_json_leaves = (st.none() | st.booleans()
                | st.integers(min_value=-2**53, max_value=2**53)
                | st.floats(allow_nan=False)
                | st.text(max_size=20)
                | st.binary(max_size=32))
_payloads = st.recursive(
    _json_leaves,
    lambda inner: (st.lists(inner, max_size=4)
                   | st.dictionaries(st.text(max_size=8), inner,
                                     max_size=4)),
    max_leaves=12)


class TestBlobFormat:
    @given(obj=_payloads)
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_bit_identical(self, obj):
        blob = write_artifact_bytes(obj)
        restored = read_artifact_bytes(blob)
        assert dumps_snapshot(restored) == dumps_snapshot(obj)

    @given(obj=_payloads, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_any_corruption_detected(self, obj, data):
        blob = bytearray(write_artifact_bytes(obj))
        if data.draw(st.booleans(), label="truncate"):
            cut = data.draw(st.integers(0, len(blob) - 1),
                            label="cut_at")
            blob = blob[:cut]
        else:
            pos = data.draw(st.integers(0, len(blob) - 1),
                            label="flip_at")
            bit = data.draw(st.integers(0, 7), label="bit")
            blob[pos] ^= 1 << bit
        with pytest.raises(ArtifactCorruptError):
            read_artifact_bytes(bytes(blob))

    def test_netlist_roundtrip_golden_digest(self, tech):
        netlist = _maeri_factory(tech.libraries, _seeds())
        restored = read_artifact_bytes(write_artifact_bytes(netlist))
        assert netlist_digest(restored) == netlist_digest(netlist)


def _key(tag: str, kind: str = "test.blob") -> ContentKey:
    import hashlib
    return ContentKey(kind, hashlib.sha256(tag.encode()).hexdigest())


class TestArtifactStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        obj = {"rows": list(range(100)), "name": "x"}
        key = _key("roundtrip")
        assert store.get(key) is None
        assert store.put(key, obj)
        assert store.contains(key)
        assert store.get(key) == obj
        # A second handle on the same root (fresh process) still hits.
        again = ArtifactStore(tmp_path / "store")
        assert again.get(key) == obj

    def test_unstable_keys_refused(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        unstable = ContentKey("test.blob", "ab" * 32, stable=False)
        before = metrics.counter("store.unstable_key_skips")
        assert not store.put(unstable, {"x": 1})
        assert store.get(unstable) is None
        assert not store.contains(unstable)
        assert metrics.counter("store.unstable_key_skips") == before + 2
        assert not list((tmp_path / "store" / "objects").glob("*/*"))

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_corrupted_artifact_is_a_miss(self, tmp_path_factory, data):
        root = tmp_path_factory.mktemp("corrupt")
        store = ArtifactStore(root)
        key = _key("victim")
        store.put(key, {"payload": "x" * 500})
        path = store.object_path(key)
        blob = bytearray(path.read_bytes())
        if data.draw(st.booleans(), label="truncate"):
            blob = blob[:data.draw(st.integers(0, len(blob) - 1),
                                   label="cut")]
        else:
            blob[data.draw(st.integers(0, len(blob) - 1),
                           label="pos")] ^= 0xFF
        path.write_bytes(bytes(blob))
        corrupt_before = metrics.counter("store.corrupt")
        assert store.get(key) is None
        assert metrics.counter("store.corrupt") == corrupt_before + 1
        assert not path.exists()        # dropped, never served again
        assert store.get(key) is None   # plain miss now

    def test_interrupted_put_leaves_no_partial(self, tmp_path,
                                               monkeypatch):
        store = ArtifactStore(tmp_path / "store")
        key = _key("crashme")
        real_replace = os.replace

        def exploding_replace(src, dst):
            if str(dst).endswith(".bin"):
                raise OSError("simulated crash mid-publish")
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError):
            store.put(key, {"x": 1})
        monkeypatch.setattr(os, "replace", real_replace)
        assert not store.contains(key)
        assert store.get(key) is None
        assert not list((tmp_path / "store" / "tmp").iterdir())
        # The store remains fully usable afterwards.
        assert store.put(key, {"x": 1})
        assert store.get(key) == {"x": 1}

    def test_lru_eviction_respects_budget(self, tmp_path):
        store = ArtifactStore(tmp_path / "store", budget_bytes=9000)
        payload = {"blob": os.urandom(2048)}      # ~2 KB incompressible
        keys = [_key(f"evict-{i}") for i in range(6)]
        before = metrics.counter("store.evictions")
        for key in keys:
            store.put(key, payload)
        assert metrics.counter("store.evictions") - before >= 2
        assert store.total_bytes() <= 9000
        # Newest write always survives; oldest-accessed went first.
        assert store.contains(keys[-1])
        assert not store.contains(keys[0])
        # A get refreshes recency: touch the oldest survivor, add one
        # more artifact, and the touched entry outlives its peer.
        survivors = [k for k in keys if store.contains(k)]
        assert store.get(survivors[0]) is not None
        store.put(_key("evict-final"), payload)
        assert store.contains(survivors[0])

    def test_two_handles_on_one_root_merge_index(self, tmp_path):
        """Regression: index writes were last-writer-wins, so a CLI
        run sharing a live daemon's store root clobbered its entries.
        Writers must merge under the inter-process lock: every blob
        stays accounted (LRU budget enforceable) and one handle's
        evictions propagate instead of resurrecting."""
        root = tmp_path / "store"
        a = ArtifactStore(root)
        b = ArtifactStore(root)         # opened before a's first put
        ka, kb = _key("writer-a"), _key("writer-b")
        assert a.put(ka, {"payload": "a" * 256})
        assert b.put(kb, {"payload": "b" * 256})
        index = json.loads((root / "index.json").read_text())
        assert ka.hexdigest in index["entries"]     # b kept a's entry
        assert kb.hexdigest in index["entries"]
        fresh = ArtifactStore(root)
        assert fresh.stats()["entries"] == 2
        assert fresh.total_bytes() == sum(
            p.stat().st_size
            for p in (root / "objects").glob("*/*.bin"))
        # Deletions propagate too: after a clears, b's next flush must
        # not resurrect the dead entries from its in-memory view.
        a.clear()
        kc = _key("after-clear")
        assert b.put(kc, {"payload": "c" * 256})
        index = json.loads((root / "index.json").read_text())
        assert set(index["entries"]) == {kc.hexdigest}

    def test_index_rebuild_from_object_scan(self, tmp_path):
        root = tmp_path / "store"
        store = ArtifactStore(root)
        key = _key("durable")
        store.put(key, {"x": [1, 2, 3]})
        (root / "index.json").write_text("{ not json")
        rebuilds = metrics.counter("store.index_rebuilds")
        recovered = ArtifactStore(root)
        assert metrics.counter("store.index_rebuilds") == rebuilds + 1
        assert recovered.get(key) == {"x": [1, 2, 3]}
        assert recovered.stats()["entries"] == 1
        index = json.loads((root / "index.json").read_text())
        assert index["schema"] == 1

    def test_clear(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        key = _key("gone")
        store.put(key, 42)
        store.clear()
        assert store.total_bytes() == 0
        assert store.get(key) is None
