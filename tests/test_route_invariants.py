"""Routing-invariant suite: locks router semantics bit-for-bit.

Three families of invariants, checked against both the serial and the
wavefront code paths:

* **Conservation** — committing then releasing every net leaves every
  congestion array exactly zero, so ``_apply_tree_usage`` and the
  commit-time updates inside ``_normal_edge``/``_try_shared_edge`` are
  perfectly symmetric (shared-edge vs ``n_f2f`` bookkeeping included).
* **Probe purity** — ``probe_net`` restores the grid, the trees and
  the parasitics byte-exactly, making its docstring promise an
  enforced contract.
* **Golden regression** — ``tests/data/golden_routing.json`` pins
  ``RoutingResult.stats()`` and per-net (wirelength, shared_edges,
  n_f2f) for two seeded designs; serial and wavefront routing at any
  worker count must reproduce it exactly.

Regenerate the golden fixture (only after an *intentional* router
semantics change) with::

    PYTHONPATH=src:. python -c \
        "from tests.test_route_invariants import regenerate; regenerate()"
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.mls.oracle import candidate_nets
from repro.parallel import ParallelConfig, dumps_snapshot
from repro.route import GlobalRouter
from repro.route.grid import UsageDelta

from tests.conftest import build_small_design

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_routing.json"

#: Every 5th candidate net goes MLS — enough shared trunks to exercise
#: the F2F bookkeeping and the wavefront serial fallback.
MLS_EVERY = 5

#: The two golden designs: (key, logic node, memory node).
GOLDEN_DESIGNS = (
    ("maeri16_hetero", "16nm", "28nm"),
    ("maeri16_homo", "28nm", "28nm"),
)


def _tech_for(key: str):
    from repro.design import TechSetup
    _, logic, memory = next(d for d in GOLDEN_DESIGNS if d[0] == key)
    return TechSetup.build(logic, memory, 6)


def _mls_selection(design) -> frozenset:
    names = sorted(net.name for net in candidate_nets(design))
    return frozenset(names[::MLS_EVERY])


def _route_golden(key: str, parallel: ParallelConfig | None = None):
    """Build + route one golden design; returns (design, result)."""
    design = build_small_design(_tech_for(key), routed=False)
    router = GlobalRouter(design)
    result = router.route_all(mls_nets=_mls_selection(design),
                              parallel=parallel)
    return design, router, result


def _golden_record(result) -> dict:
    return {
        "stats": result.stats(),
        "nets": {name: [tree.wirelength(), tree.num_shared_edges(),
                        tree.f2f_count()]
                 for name, tree in result.trees.items()},
    }


def regenerate() -> None:
    """Rewrite the golden fixture from the current (serial) router."""
    payload = {key: _golden_record(_route_golden(key)[2])
               for key, _, _ in GOLDEN_DESIGNS}
    GOLDEN_PATH.parent.mkdir(exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(payload, sort_keys=True,
                                      separators=(",", ":")) + "\n")
    print(f"wrote {GOLDEN_PATH}")


def _grid_planes(grid) -> list[np.ndarray]:
    return [plane for tier in grid.usage for plane in tier] \
        + [grid.f2f_usage]


# -- conservation -------------------------------------------------------------


class TestConservation:
    """Commit/release symmetry of every grid resource."""

    @pytest.fixture(scope="class")
    def routed(self, hetero_tech):
        design = build_small_design(hetero_tech, routed=False)
        router = GlobalRouter(design)
        result = router.route_all(mls_nets=_mls_selection(design))
        return design, router, result

    def test_unroute_everything_zeroes_the_grid(self, routed):
        design, router, result = routed
        assert any(plane.any() for plane in _grid_planes(router.grid))
        for net in list(design.netlist.signal_nets()):
            router.unroute_net(result, net)
        assert not result.trees and not result.rc
        for plane in _grid_planes(router.grid):
            assert not plane.any(), "usage survived a full unroute"

    def test_usage_delta_roundtrip_is_exact(self, hetero_tech):
        """Releasing through a UsageDelta matches direct releases."""
        design = build_small_design(hetero_tech, routed=False)
        router = GlobalRouter(design)
        result = router.route_all(mls_nets=_mls_selection(design))
        delta = UsageDelta()
        for tree in result.trees.values():
            router._apply_tree_usage(tree, -1.0, sink=delta)
        router.grid.apply_delta(delta)
        for plane in _grid_planes(router.grid):
            assert not plane.any()


# -- probe purity -------------------------------------------------------------


class TestProbePurity:
    """probe_net leaves no trace: grid, trees and RC byte-identical."""

    def test_probe_every_net_is_pure(self, hetero_tech):
        design = build_small_design(hetero_tech, routed=False)
        router = GlobalRouter(design)
        result = router.route_all(mls_nets=_mls_selection(design))
        before_planes = [plane.copy()
                         for plane in _grid_planes(router.grid)]
        before_trees = dict(result.trees)
        before_rc = dumps_snapshot(result.rc)
        for net in design.netlist.signal_nets():
            rc_off, rc_on, applied = router.probe_net(result, net)
            assert rc_off.net_name == net.name
            assert rc_on.net_name == net.name
            assert isinstance(applied, bool)
        for plane, saved in zip(_grid_planes(router.grid), before_planes):
            assert np.array_equal(plane, saved), "probe mutated the grid"
        assert result.trees == before_trees  # same objects, same order
        assert all(result.trees[k] is before_trees[k]
                   for k in before_trees)
        assert dumps_snapshot(result.rc) == before_rc


# -- golden regression --------------------------------------------------------


def _load_golden() -> dict:
    assert GOLDEN_PATH.exists(), \
        f"{GOLDEN_PATH} missing — run tests/test_route_invariants.py " \
        f"regenerate()"
    return json.loads(GOLDEN_PATH.read_text())


class TestGoldenRouting:
    """Two seeded designs route to the committed fixture, exactly."""

    @pytest.mark.parametrize("key", [d[0] for d in GOLDEN_DESIGNS])
    def test_serial_matches_golden(self, key):
        golden = _load_golden()
        _, _, result = _route_golden(key)
        got = json.loads(json.dumps(_golden_record(result)))
        assert got["stats"] == golden[key]["stats"]
        assert got["nets"] == golden[key]["nets"]

    @pytest.mark.slow
    @pytest.mark.parametrize("workers", [1, 4, 8])
    @pytest.mark.parametrize("key", [d[0] for d in GOLDEN_DESIGNS])
    def test_wavefront_matches_golden(self, key, workers):
        golden = _load_golden()
        parallel = ParallelConfig(workers=workers, min_items=2)
        _, _, result = _route_golden(key, parallel=parallel)
        got = json.loads(json.dumps(_golden_record(result)))
        assert got["stats"] == golden[key]["stats"]
        assert got["nets"] == golden[key]["nets"]
