"""Design container and TechSetup tests."""

import pytest

from repro.design import Design, TechSetup
from repro.errors import FlowError
from repro.netlist import Netlist
from repro.units import mhz_to_period_ps


class TestTechSetup:
    def test_hetero_build(self):
        tech = TechSetup.build("16nm", "28nm", 6)
        assert tech.is_heterogeneous
        assert tech.node_of(0).name == "16nm"
        assert tech.node_of(1).name == "28nm"
        assert len(tech.stack_of(0)) == 6
        assert set(tech.libraries) == {"logic", "memory"}

    def test_homo_build(self):
        tech = TechSetup.build("28nm", "28nm", 8)
        assert not tech.is_heterogeneous
        assert len(tech.stack_of(1)) == 8

    def test_f2f_defaults(self):
        tech = TechSetup.build()
        assert tech.f2f.resistance == 0.5
        assert tech.f2f.capacitance == 0.2


class TestDesign:
    def test_clock_period_from_frequency(self):
        design = Design(Netlist("d"), TechSetup.build(), 2500.0)
        assert design.clock_period_ps == pytest.approx(
            mhz_to_period_ps(2500.0))

    def test_stage_guards(self):
        design = Design(Netlist("d"), TechSetup.build(), 1000.0)
        with pytest.raises(FlowError, match="tier"):
            design.require_tiers()
        with pytest.raises(FlowError, match="unplaced"):
            design.require_placement()
        with pytest.raises(FlowError, match="floorplan"):
            design.require_floorplan()
        with pytest.raises(FlowError, match="unrouted"):
            design.require_routing()

    def test_guards_pass_after_flow(self, routed_small_design):
        d = routed_small_design
        assert d.require_tiers() is d.tiers
        assert d.require_placement() is d.placement
        assert d.require_floorplan() is d.floorplan
        assert d.require_routing() is d.routing
