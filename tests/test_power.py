"""Power-domain and power-estimation tests."""

import pytest

from repro.errors import FlowError
from repro.mls import route_with_mls
from repro.power import (default_power_plan, estimate_power,
                         insert_level_shifters)
from repro.power.domains import level_shifter_instances

from tests.conftest import build_small_design


class TestPowerPlan:
    def test_hetero_plan_needs_shifters(self, routed_small_design):
        plan = default_power_plan(routed_small_design)
        assert plan.needs_level_shifters
        assert plan.lowest_vdd == pytest.approx(0.81)
        assert plan.domain_of_tier(0).vdd == pytest.approx(0.81)
        assert plan.domain_of_tier(1).vdd == pytest.approx(0.90)

    def test_homo_plan_single_vdd(self, homo_tech):
        design = build_small_design(homo_tech, routed=False, buffered=False)
        plan = default_power_plan(design)
        assert not plan.needs_level_shifters


class TestLevelShifters:
    def test_inserted_on_every_crossing(self, hetero_tech):
        design = build_small_design(hetero_tech, routed=False,
                                    buffered=False)
        plan = default_power_plan(design)
        count = insert_level_shifters(design, plan)
        assert count > 0
        assert len(level_shifter_instances(design)) == count
        design.netlist.validate()
        # After insertion no signal net has sinks on a foreign tier
        # without a shifter in between.
        tiers = design.require_tiers()
        for net in design.netlist.signal_nets():
            if net.driver is None:
                continue
            dtier = tiers.of_pin(net.driver)
            for sink in net.sinks:
                if tiers.of_pin(sink) != dtier:
                    owner = sink.owner
                    assert owner is not None and \
                        owner.cell.is_level_shifter

    def test_homo_design_gets_none(self, homo_tech):
        design = build_small_design(homo_tech, routed=False, buffered=False)
        plan = default_power_plan(design)
        assert insert_level_shifters(design, plan) == 0

    def test_rejects_routed_design(self, hetero_tech):
        design = build_small_design(hetero_tech)   # already routed
        plan = default_power_plan(design)
        with pytest.raises(FlowError, match="before routing"):
            insert_level_shifters(design, plan)


class TestEstimate:
    def test_breakdown_positive(self, routed_small_design):
        report = estimate_power(routed_small_design)
        assert report.dynamic_mw > 0
        assert report.leakage_mw > 0
        assert report.clock_mw > 0
        assert report.total_mw == pytest.approx(
            report.dynamic_mw + report.leakage_mw + report.clock_mw)

    def test_scales_with_activity(self, routed_small_design):
        low = estimate_power(routed_small_design, activity=0.1)
        high = estimate_power(routed_small_design, activity=0.3)
        assert high.dynamic_mw > 2.0 * low.dynamic_mw

    def test_ls_power_subset(self, hetero_tech):
        design = build_small_design(hetero_tech, routed=False,
                                    buffered=False)
        plan = default_power_plan(design)
        insert_level_shifters(design, plan)
        from repro.opt import insert_buffers
        insert_buffers(design)
        route_with_mls(design, set())
        report = estimate_power(design, plan)
        assert 0 < report.level_shifter_mw < report.total_mw
        assert report.num_level_shifters > 0

    def test_summary_keys(self, routed_small_design):
        summary = estimate_power(routed_small_design).summary()
        for key in ("total_mw", "dynamic_mw", "leakage_mw", "clock_mw",
                    "ls_mw", "ls_count"):
            assert key in summary
