"""Placement tests: floorplan, quadratic solve, bisection, legalize."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PlacementError
from repro.netlist import Netlist, NetlistBuilder
from repro.netlist.generators import MaeriConfig, generate_maeri
from repro.partition import partition_memory_on_logic
from repro.place import (Floorplan, bin_spread, bisection_place,
                         legalize_tier, make_floorplan, place_design,
                         quadratic_solve)
from repro.place.floorplan import ROW_HEIGHT_UM
from repro.place.legalize import legalize_macros
from repro.rng import SeedBundle
from repro.tech import NODE_28NM, build_library

LIB = build_library(NODE_28NM)


class TestFloorplan:
    def test_dimensions_positive(self):
        with pytest.raises(PlacementError):
            Floorplan(width=0, height=10)

    def test_macro_band_bounds(self):
        with pytest.raises(PlacementError):
            Floorplan(width=10, height=10, macro_band_h=10)

    def test_rows_and_sites(self):
        fp = Floorplan(width=20, height=10)
        assert fp.num_rows == int(10 / ROW_HEIGHT_UM)
        assert fp.sites_per_row == int(20 / fp.site_width)

    def test_clamp(self):
        fp = Floorplan(width=20, height=10)
        assert fp.clamp(-5, 100) == (0.0, 10.0)
        assert fp.clamp(5, 5) == (5.0, 5.0)

    def test_row_y_bounds(self):
        fp = Floorplan(width=20, height=10)
        with pytest.raises(PlacementError):
            fp.row_y(fp.num_rows)

    def test_make_floorplan_scales_with_area(self, hetero_tech):
        small = generate_maeri(MaeriConfig(pe_count=16, bandwidth=8),
                               hetero_tech.libraries, SeedBundle(5))
        big = generate_maeri(MaeriConfig(pe_count=64, bandwidth=16),
                             hetero_tech.libraries, SeedBundle(5))
        assert make_floorplan(big).width > make_floorplan(small).width

    def test_make_floorplan_reserves_macro_band(self, hetero_tech):
        nl = generate_maeri(MaeriConfig(pe_count=16, bandwidth=8),
                            hetero_tech.libraries, SeedBundle(5))
        fp = make_floorplan(nl)
        assert fp.macro_band_h > 0

    def test_unreasonable_utilization(self, hetero_tech):
        nl = generate_maeri(MaeriConfig(pe_count=16, bandwidth=8),
                            hetero_tech.libraries, SeedBundle(5))
        with pytest.raises(PlacementError):
            make_floorplan(nl, utilization=0.99)


def _two_cell_netlist():
    """a(port) - g0 - g1 - y(port), for exact quadratic checks."""
    nl = Netlist("two")
    a = nl.add_port("a", "in")
    y = nl.add_port("y", "out")
    n0 = nl.add_net("n0")
    n1 = nl.add_net("n1")
    n2 = nl.add_net("n2")
    n0.attach(a.pin)
    g0 = nl.add_instance("g0", LIB.get("INV"))
    g1 = nl.add_instance("g1", LIB.get("INV"))
    n0.attach(g0.pin("A"))
    n1.attach(g0.output_pin)
    n1.attach(g1.pin("A"))
    n2.attach(g1.output_pin)
    n2.attach(y.pin)
    return nl


class TestQuadratic:
    def test_chain_equispaces_between_anchors(self):
        nl = _two_cell_netlist()
        fp = Floorplan(width=30, height=30)
        fixed = {"port:a": (0.0, 15.0), "port:y": (30.0, 15.0)}
        pos = quadratic_solve(nl, fixed, fp)
        # Minimizing sum of squared segment lengths spaces the two
        # movable cells at 10 and 20.
        assert pos["g0"][0] == pytest.approx(10.0, abs=0.1)
        assert pos["g1"][0] == pytest.approx(20.0, abs=0.1)
        assert pos["g0"][1] == pytest.approx(15.0, abs=0.1)

    def test_empty_movable(self):
        nl = _two_cell_netlist()
        fp = Floorplan(width=30, height=30)
        assert quadratic_solve(nl, {}, fp, movable=[]) == {}

    def test_anchors_pull(self):
        nl = _two_cell_netlist()
        fp = Floorplan(width=30, height=30)
        fixed = {"port:a": (0.0, 15.0), "port:y": (30.0, 15.0)}
        free = quadratic_solve(nl, fixed, fp)
        anchored = quadratic_solve(nl, fixed, fp,
                                   anchors={"g0": (5.0, 5.0)},
                                   anchor_weight=100.0)
        assert anchored["g0"][1] < free["g0"][1]       # pulled down


class TestLegalize:
    def test_no_overlap_within_rows(self, hetero_tech):
        nl = generate_maeri(MaeriConfig(pe_count=16, bandwidth=8),
                            hetero_tech.libraries, SeedBundle(5))
        fp = make_floorplan(nl)
        names = [n for n, i in nl.instances.items() if not i.is_macro]
        rng = np.random.default_rng(0)
        pos = {n: (rng.uniform(0, fp.width),
                   rng.uniform(0, fp.core_height)) for n in names}
        legal = legalize_tier(nl, names, pos, fp)
        assert set(legal) == set(names)
        by_row: dict[float, list[tuple[float, float]]] = {}
        for name, (x, y) in legal.items():
            width = max(fp.site_width,
                        nl.instance(name).cell.area_um2 / fp.row_height)
            by_row.setdefault(y, []).append((x - width / 2, x + width / 2))
        for intervals in by_row.values():
            intervals.sort()
            for (l0, r0), (l1, r1) in zip(intervals, intervals[1:]):
                assert r0 <= l1 + 1e-6, "cells overlap in a row"

    def test_rejects_macros(self, hetero_tech):
        nl = generate_maeri(MaeriConfig(pe_count=16, bandwidth=8),
                            hetero_tech.libraries, SeedBundle(5))
        fp = make_floorplan(nl)
        macro = next(n for n, i in nl.instances.items() if i.is_macro)
        with pytest.raises(PlacementError, match="macro"):
            legalize_tier(nl, [macro], {macro: (1, 1)}, fp)

    def test_capacity_exceeded(self):
        nl = Netlist("fat")
        for i in range(200):
            nl.add_instance(f"g{i}", LIB.get("BUF_X4"))
        fp = Floorplan(width=5, height=3)
        pos = {f"g{i}": (1.0, 1.0) for i in range(200)}
        with pytest.raises(PlacementError, match="row space"):
            legalize_tier(nl, list(pos), pos, fp)

    def test_macro_band_layout(self, hetero_tech):
        nl = generate_maeri(MaeriConfig(pe_count=16, bandwidth=8),
                            hetero_tech.libraries, SeedBundle(5))
        fp = make_floorplan(nl)
        macros = [n for n, i in nl.instances.items() if i.is_macro]
        pos = {n: (10.0 * k, 10.0) for k, n in enumerate(macros)}
        legal = legalize_macros(nl, macros, pos, fp)
        for x, y in legal.values():
            assert y >= fp.core_height          # inside the band
            assert 0 <= x <= fp.width


class TestBisection:
    def test_keeps_clusters_local(self, hetero_tech):
        nl = generate_maeri(MaeriConfig(pe_count=16, bandwidth=8),
                            hetero_tech.libraries, SeedBundle(5))
        tiers = partition_memory_on_logic(nl)
        placement, fp = place_design(nl, tiers, SeedBundle(5))
        # Each PE's cells should sit well inside the die span.
        for pe in ("pe0", "pe7", "pe15"):
            xs = [placement.of_instance(n).x for n in nl.instances
                  if n.startswith(pe + "/")]
            assert xs, pe
            assert max(xs) - min(xs) < 0.8 * fp.width

    def test_deterministic(self, hetero_tech):
        nl = generate_maeri(MaeriConfig(pe_count=16, bandwidth=8),
                            hetero_tech.libraries, SeedBundle(5))
        tiers = partition_memory_on_logic(nl)
        p1, _ = place_design(nl, tiers, SeedBundle(5))
        p2, _ = place_design(nl, tiers, SeedBundle(5))
        for name in nl.instances:
            assert p1.of_instance(name) == p2.of_instance(name)

    def test_all_instances_inside_die(self, routed_small_design):
        d = routed_small_design
        fp = d.require_floorplan()
        for name in d.netlist.instances:
            loc = d.placement.of_instance(name)
            assert -1e-6 <= loc.x <= fp.width + 1e-6
            assert -1e-6 <= loc.y <= fp.height + 1e-6


class TestPlacementContainer:
    def test_unplaced_raises(self, hetero_tech):
        nl = generate_maeri(MaeriConfig(pe_count=16, bandwidth=8),
                            hetero_tech.libraries, SeedBundle(5))
        tiers = partition_memory_on_logic(nl)
        from repro.place import Placement
        placement = Placement(nl, tiers)
        with pytest.raises(PlacementError):
            placement.of_instance(next(iter(nl.instances)))
        with pytest.raises(PlacementError):
            placement.validate()

    def test_hpwl_positive(self, routed_small_design):
        assert routed_small_design.placement.hpwl() > 0

    def test_net_bbox_ordering(self, routed_small_design):
        d = routed_small_design
        for net in list(d.netlist.signal_nets())[:50]:
            x0, y0, x1, y1 = d.placement.net_bbox(net)
            assert x0 <= x1 and y0 <= y1


#: HPWL of the original (pre cached-Laplacian) placer, captured once on
#: the designs below.  The cached engine is free to pick different
#: solver internals (and does — see repro.place.system), so positions
#: are not seed-identical; quality must stay within tolerance instead.
SEED_HPWL = {
    "maeri16": 22290.639518144355,
    "random_logic": 5799.924244786914,
}
#: Allowed relative HPWL regression vs the recorded seed placer.
HPWL_TOL = 0.02


class TestHpwlQualityRegression:
    """Wirelength-quality gate for the cached-Laplacian engine."""

    def _place_hpwl(self, nl):
        tiers = partition_memory_on_logic(nl)
        placement, _ = place_design(nl, tiers, SeedBundle(1234))
        return placement.hpwl()

    def test_maeri16_quality(self, hetero_tech):
        nl = generate_maeri(MaeriConfig(pe_count=16, bandwidth=8),
                            hetero_tech.libraries, SeedBundle(1234))
        hpwl = self._place_hpwl(nl)
        ref = SEED_HPWL["maeri16"]
        assert hpwl <= ref * (1.0 + HPWL_TOL), \
            f"HPWL {hpwl:.1f} regressed more than {HPWL_TOL:.0%} " \
            f"vs seed placer {ref:.1f}"

    def test_random_logic_quality(self, hetero_tech):
        from repro.netlist.builder import NetlistBuilder
        from repro.netlist.generators import random_cloud
        builder = NetlistBuilder("randlogic", hetero_tech.libraries)
        ins = [builder.input(f"i{k}") for k in range(12)]
        outs = random_cloud(builder, ins, out_count=8, depth=12,
                            width=40, rng=SeedBundle(1234).get("cloud"))
        for net in outs:
            builder.output(f"o_{net.name}", net)
        nl = builder.done()
        hpwl = self._place_hpwl(nl)
        ref = SEED_HPWL["random_logic"]
        assert hpwl <= ref * (1.0 + HPWL_TOL), \
            f"HPWL {hpwl:.1f} regressed more than {HPWL_TOL:.0%} " \
            f"vs seed placer {ref:.1f}"


class TestBinSpread:
    def test_relieves_overfull_bin(self):
        nl = Netlist("dense")
        names = []
        for i in range(120):
            nl.add_instance(f"g{i}", LIB.get("BUF_X4"))
            names.append(f"g{i}")
        fp = Floorplan(width=60, height=60)
        pos = {n: (30.0, 30.0) for n in names}
        spread = bin_spread(nl, pos, fp, bin_um=6.0, fill=0.5)
        xs = {round(p[0], 3) for p in spread.values()}
        assert len(xs) > 3        # cells fanned out of the hot bin

    def test_capacity_check(self):
        nl = Netlist("over")
        pos = {}
        for i in range(400):
            nl.add_instance(f"g{i}", LIB.get("SRAM_1KX32"))
            pos[f"g{i}"] = (1.0, 1.0)
        fp = Floorplan(width=20, height=20)
        with pytest.raises(PlacementError, match="exceeds spread capacity"):
            bin_spread(nl, pos, fp)

    def test_param_validation(self):
        nl = Netlist("x")
        fp = Floorplan(width=20, height=20)
        with pytest.raises(PlacementError):
            bin_spread(nl, {}, fp, bin_um=-1)
