"""Setup shim.

The offline environment has setuptools but no `wheel`, so PEP 517
editable installs fail; this classic setup.py keeps
``pip install -e .`` working through the legacy path.
"""

from setuptools import setup, find_packages

setup(
    name="repro",
    version="1.0.0",
    description=(
        "GNN-MLS: GNN-assisted Metal Layer Sharing for mixed-node 3D ICs "
        "(DAC 2025 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10", "networkx>=3.0"],
)
