"""The :class:`Design` container — one 3D IC being pushed through the flow.

Bundles the netlist with everything the flow stages attach to it:
technology setup (per-tier node/stack/library + F2F via), tier
assignment, placement, routing, and the clock constraint.  Stages take
and return a ``Design`` so experiment code reads like the paper's
Figure 4 flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.errors import FlowError
from repro.netlist.netlist import Netlist
from repro.partition.tier import TierAssignment
from repro.tech.layers import F2FVia, MetalStack, default_stack
from repro.tech.library import CellLibrary, build_library
from repro.tech.node import TechNode, get_node
from repro.units import mhz_to_period_ps

if TYPE_CHECKING:  # pragma: no cover
    from repro.place.floorplan import Floorplan
    from repro.place.placement import Placement
    from repro.route.router import RoutingResult


@dataclass(frozen=True)
class TechSetup:
    """Per-tier technology: (bottom=logic, top=memory) ordering.

    ``beol_layers`` controls the per-die stack depth (6+6 for MAERI,
    8+8 for the A7, per Table IV).
    """

    nodes: tuple[TechNode, TechNode]
    stacks: tuple[MetalStack, MetalStack]
    libraries: dict[str, CellLibrary]
    f2f: F2FVia = field(default_factory=F2FVia)

    @classmethod
    def build(cls, logic_node: str = "16nm", memory_node: str = "28nm",
              beol_layers: int = 6, wire_scale: float = 4.0) -> "TechSetup":
        """Standard hetero (16+28) or homo (28+28) setup.

        ``wire_scale`` maps floorplan um to physical wiring um (the
        instance-count scale-down compensation, DESIGN.md section 5).

        >>> hetero = TechSetup.build("16nm", "28nm")
        >>> homo = TechSetup.build("28nm", "28nm", beol_layers=6)
        """
        bottom = get_node(logic_node)
        top = get_node(memory_node)
        return cls(
            nodes=(bottom, top),
            stacks=(default_stack(bottom, beol_layers, wire_scale),
                    default_stack(top, beol_layers, wire_scale)),
            libraries={"logic": build_library(bottom),
                       "memory": build_library(top)},
        )

    @property
    def is_heterogeneous(self) -> bool:
        return self.nodes[0].name != self.nodes[1].name

    def stack_of(self, tier: int) -> MetalStack:
        return self.stacks[tier]

    def node_of(self, tier: int) -> TechNode:
        return self.nodes[tier]


class Design:
    """One design instance moving through the flow.

    Mutable by intent: flow stages attach placement, routing and
    decision state.  ``mls_nets`` is the current set of net names with
    Metal Layer Sharing enabled — the quantity the whole paper is
    about.
    """

    def __init__(self, netlist: Netlist, tech: TechSetup,
                 target_freq_mhz: float):
        self.netlist = netlist
        self.tech = tech
        self.target_freq_mhz = float(target_freq_mhz)
        self.clock_period_ps = mhz_to_period_ps(target_freq_mhz)
        self.tiers: Optional[TierAssignment] = None
        self.placement: Optional["Placement"] = None
        self.floorplan: Optional["Floorplan"] = None
        self.routing: Optional["RoutingResult"] = None
        self.mls_nets: set[str] = set()
        self.notes: dict[str, object] = {}

    # -- guarded accessors: stages fail loudly when run out of order --------

    def require_tiers(self) -> TierAssignment:
        if self.tiers is None:
            raise FlowError("design has no tier assignment yet — "
                            "run partitioning first")
        return self.tiers

    def require_placement(self) -> "Placement":
        if self.placement is None:
            raise FlowError("design is unplaced — run placement first")
        return self.placement

    def require_floorplan(self) -> "Floorplan":
        if self.floorplan is None:
            raise FlowError("design has no floorplan — run placement first")
        return self.floorplan

    def require_routing(self) -> "RoutingResult":
        if self.routing is None:
            raise FlowError("design is unrouted — run routing first")
        return self.routing

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Design({self.netlist.name} @{self.target_freq_mhz:.0f}MHz, "
                f"{'hetero' if self.tech.is_heterogeneous else 'homo'}, "
                f"mls={len(self.mls_nets)})")
