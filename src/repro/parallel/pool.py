"""Chunked process-pool map over a shared pickled snapshot.

The pattern every wired hot loop uses:

1. the caller pickles one *snapshot* of the heavy shared state (the
   design, router, routing result, scan view...) with
   :func:`dumps_snapshot`;
2. each worker process unpickles it exactly once, at pool startup;
3. tasks are lightweight chunks of items (net names, fault indices);
   the worker function receives ``(state, chunk)`` and returns one
   result per item;
4. chunk results are concatenated in submission order, so the merged
   output is independent of worker scheduling.

Worker functions must be module-level (picklable by reference) and
deterministic given the snapshot.  If the pool cannot be created at
all (sandboxed /dev/shm, fork bans...), the map silently degrades to
an in-process serial run over the *original* snapshot object — the
results are identical by the determinism contract.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import sys
import warnings
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.parallel.config import ParallelConfig

T = TypeVar("T")

#: The netlist's pin<->net<->instance graph recurses deeply; pickle
#: needs a raised interpreter recursion limit.  Escalate in steps so
#: small designs don't pay a huge C-stack reservation.
_RECURSION_LIMITS = (50_000, 200_000, 1_000_000)

#: Per-process snapshot installed by the pool initializer.
_WORKER_STATE: Any = None

#: Fork fast-path: the parent parks the snapshot here just before the
#: pool forks, so children inherit it copy-on-write and skip the
#: pickle/unpickle round-trip entirely.  Spawn/forkserver contexts
#: cannot inherit and use the pickled payload instead.
_FORK_SNAPSHOT: Any = None


def chunked(items: Sequence[T], size: int) -> list[list[T]]:
    """Split *items* into consecutive chunks of at most *size*."""
    if size < 1:
        raise ValueError(f"chunk size must be >= 1, got {size}")
    seq = list(items)
    return [seq[i:i + size] for i in range(0, len(seq), size)]


def _with_raised_recursion(fn: Callable[[], T]) -> T:
    old = sys.getrecursionlimit()
    try:
        for limit in _RECURSION_LIMITS:
            sys.setrecursionlimit(max(old, limit))
            try:
                return fn()
            except RecursionError:
                if limit == _RECURSION_LIMITS[-1]:
                    raise
        raise AssertionError("unreachable")  # pragma: no cover
    finally:
        sys.setrecursionlimit(old)


def dumps_snapshot(obj: Any) -> bytes:
    """Pickle *obj* tolerating the deep netlist object graph."""
    return _with_raised_recursion(
        lambda: pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


def loads_snapshot(payload: bytes) -> Any:
    """Inverse of :func:`dumps_snapshot`."""
    return _with_raised_recursion(lambda: pickle.loads(payload))


def _init_worker(payload: bytes) -> None:
    global _WORKER_STATE
    _WORKER_STATE = loads_snapshot(payload)


def _init_fork_worker() -> None:
    global _WORKER_STATE
    _WORKER_STATE = _FORK_SNAPSHOT


def _run_chunk(fn: Callable[[Any, list], list], chunk: list) -> list:
    return fn(_WORKER_STATE, chunk)


def _serial_run(fn: Callable[[Any, list], list], state: Any,
                chunks: list[list]) -> list:
    out: list = []
    for chunk in chunks:
        out.extend(fn(state, chunk))
    return out


def snapshot_map(fn: Callable[[Any, list], list], items: Iterable,
                 snapshot: Any, config: ParallelConfig) -> list:
    """Map ``fn(state, chunk) -> [result per item]`` over *items*.

    Results are returned one-per-item in input order regardless of
    worker count.  ``state`` is *snapshot* itself in the serial path
    and an unpickled copy inside each worker otherwise, so ``fn`` may
    freely perform restore-style mutations (e.g. congestion-grid
    probes) without corrupting the caller's objects.
    """
    work = list(items)
    if not work:
        return []
    chunks = chunked(work, config.resolve_chunk_size(len(work)))
    if not config.should_parallelize(len(work)):
        return _serial_run(fn, snapshot, chunks)
    ctx = mp.get_context(config.start_method)   # bad method -> ValueError
    global _FORK_SNAPSHOT
    forked = ctx.get_start_method() == "fork"
    if forked:
        init, initargs = _init_fork_worker, ()
    else:
        init, initargs = _init_worker, (dumps_snapshot(snapshot),)
    try:
        if forked:
            _FORK_SNAPSHOT = snapshot
        with ProcessPoolExecutor(max_workers=config.workers,
                                 mp_context=ctx,
                                 initializer=init,
                                 initargs=initargs) as pool:
            futures = [pool.submit(_run_chunk, fn, chunk)
                       for chunk in chunks]
            out: list = []
            for future in futures:
                out.extend(future.result())
            return out
    except (BrokenExecutor, OSError) as exc:
        # Pool-level failure (sandbox, resource limits, dead workers):
        # degrade to serial.  Exceptions raised *inside* fn are not of
        # these types and propagate to the caller.
        warnings.warn(f"process pool unavailable ({exc!r}); "
                      f"running {len(work)} items serially",
                      RuntimeWarning, stacklevel=2)
        return _serial_run(fn, snapshot, chunks)
    finally:
        _FORK_SNAPSHOT = None
