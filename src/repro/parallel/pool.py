"""Chunked process-pool map over a shared pickled snapshot.

The pattern every wired hot loop uses:

1. the caller pickles one *snapshot* of the heavy shared state (the
   design, router, routing result, scan view...) with
   :func:`dumps_snapshot`;
2. each worker process unpickles it exactly once, at pool startup;
3. tasks are lightweight chunks of items (net names, fault indices);
   the worker function receives ``(state, chunk)`` and returns one
   result per item;
4. chunk results are concatenated in submission order, so the merged
   output is independent of worker scheduling.

Worker functions must be module-level (picklable by reference) and
deterministic given the snapshot.  If the pool cannot be created at
all (sandboxed /dev/shm, fork bans...), the map silently degrades to
an in-process serial run over the *original* snapshot object — the
results are identical by the determinism contract.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import sys
import time
import warnings
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.obs import metrics, trace
from repro.obs.recorder import flight, maybe_arm_from_env
from repro.parallel.config import ParallelConfig

T = TypeVar("T")

#: Netlists serialize flat (struct-of-arrays ``__getstate__`` — see
#: :mod:`repro.netlist.soa`), so snapshot depth no longer scales with
#: design size and the default interpreter limit usually suffices.
#: One modest escalation step remains for arbitrary user payloads
#: (nested route trees, ad-hoc test objects).  The old top step of
#: 1,000,000 is gone deliberately: raising the Python limit that far
#: overran the C stack and turned a clean RecursionError into a
#: segfault on 128PE-class designs.
_RECURSION_LIMITS = (50_000,)

#: Per-process snapshot installed by the pool initializer.
_WORKER_STATE: Any = None

#: Fork fast-path: the parent parks the snapshot here just before the
#: pool forks, so children inherit it copy-on-write and skip the
#: pickle/unpickle round-trip entirely.  Spawn/forkserver contexts
#: cannot inherit and use the pickled payload instead.
_FORK_SNAPSHOT: Any = None


def chunked(items: Sequence[T], size: int) -> list[list[T]]:
    """Split *items* into consecutive chunks of at most *size*."""
    if size < 1:
        raise ValueError(f"chunk size must be >= 1, got {size}")
    seq = list(items)
    return [seq[i:i + size] for i in range(0, len(seq), size)]


def _with_raised_recursion(fn: Callable[[], T]) -> T:
    old = sys.getrecursionlimit()
    try:
        for limit in _RECURSION_LIMITS:
            sys.setrecursionlimit(max(old, limit))
            try:
                return fn()
            except RecursionError:
                if limit == _RECURSION_LIMITS[-1]:
                    raise
        raise AssertionError("unreachable")  # pragma: no cover
    finally:
        sys.setrecursionlimit(old)


def dumps_snapshot(obj: Any) -> bytes:
    """Pickle *obj* with headroom for moderately nested payloads."""
    return _with_raised_recursion(
        lambda: pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


def loads_snapshot(payload: bytes) -> Any:
    """Inverse of :func:`dumps_snapshot`."""
    return _with_raised_recursion(lambda: pickle.loads(payload))


def _init_worker(payload: bytes) -> None:
    global _WORKER_STATE
    _WORKER_STATE = loads_snapshot(payload)
    maybe_arm_from_env()


def _init_fork_worker() -> None:
    global _WORKER_STATE
    _WORKER_STATE = _FORK_SNAPSHOT
    # Forked children inherit an already-armed recorder and this is a
    # no-op; spawn/forkserver children start fresh and arm here.
    maybe_arm_from_env()


def _run_chunk(fn: Callable[[Any, list], list], chunk: list,
               trace_parent: str | None = None):
    """Worker-side chunk runner.

    *trace_parent* is the parent's active-span token
    (:meth:`repro.obs.tracer.Tracer.export_parent`): ``None`` means
    tracing is off and the bare result list is returned; otherwise the
    chunk runs under a worker-local span collection and ``(results,
    span records)`` travels back for the parent to merge.
    """
    try:
        if trace_parent is None:
            return fn(_WORKER_STATE, chunk)
        with trace.collect_worker(trace_parent) as records:
            with trace.span("pool.chunk", items=len(chunk)):
                out = fn(_WORKER_STATE, chunk)
        return out, records
    except Exception as exc:
        # Per-process forensics before the exception pickles back to
        # the parent (no-op unless a flight recorder is armed).
        flight.crash_dump("pool.chunk", exc)
        raise


def _serial_run(fn: Callable[[Any, list], list], state: Any,
                chunks: list[list]) -> list:
    out: list = []
    for chunk in chunks:
        with trace.span("pool.chunk", items=len(chunk), serial=True):
            out.extend(fn(state, chunk))
    return out


def _run_chunk_extra(fn: Callable[[Any, Any, list], list], extra: Any,
                     chunk: list, trace_parent: str | None = None):
    """Persistent-pool sibling of :func:`_run_chunk`."""
    try:
        if trace_parent is None:
            return fn(_WORKER_STATE, extra, chunk)
        with trace.collect_worker(trace_parent) as records:
            with trace.span("pool.chunk", items=len(chunk)):
                out = fn(_WORKER_STATE, extra, chunk)
        return out, records
    except Exception as exc:
        flight.crash_dump("pool.chunk", exc)
        raise


def _drain_futures(futures: list, traced: bool, t_dispatch: float) -> list:
    """Collect chunk results in submission order, merging worker span
    payloads and recording dispatch->drain latency per task."""
    out: list = []
    for future in futures:
        result = future.result()
        metrics.add_time("pool.task_latency_s",
                         time.perf_counter() - t_dispatch)
        if traced:
            result, records = result
            trace.merge(records)
        out.extend(result)
    return out


class SnapshotPool:
    """Persistent worker pool over one snapshot, for many small maps.

    :func:`snapshot_map` pays pool startup (process spawn + snapshot
    shipping) on every call, which only amortizes over one large
    workload.  Loops that issue *many small* maps against
    slowly-evolving state — the wavefront router dispatches one map
    per wave — instead keep the pool alive: the heavy snapshot ships
    once, and each ``map`` call forwards a small per-call ``extra``
    payload (e.g. the current congestion-grid arrays) that the worker
    function receives alongside every chunk:
    ``fn(state, extra, chunk) -> [result per item]``.

    Results are order-preserving.  If the pool cannot be created or
    breaks, the instance degrades *permanently* to in-process serial
    execution against the original snapshot object, so worker
    functions must be restore-style (the same contract as
    :func:`snapshot_map`).  Under a fork start method the snapshot is
    parked in the module-level fork slot for the pool's lifetime —
    keep at most one fork-context pool open at a time and do not
    interleave parent-side :func:`snapshot_map` calls while it is.
    """

    def __init__(self, snapshot: Any, config: ParallelConfig):
        self.snapshot = snapshot
        self.config = config
        self._pool: ProcessPoolExecutor | None = None
        self._broken = not config.enabled
        self._owns_fork_slot = False

    def __enter__(self) -> "SnapshotPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _mark_broken(self, exc: BaseException, n_items: int) -> None:
        metrics.inc("pool.degrade_events")
        warnings.warn(f"process pool unavailable ({exc!r}); running "
                      f"{n_items} items (and all later maps) serially",
                      RuntimeWarning, stacklevel=3)
        self.close()
        self._broken = True

    def _ensure_pool(self, n_items: int) -> None:
        global _FORK_SNAPSHOT
        if self._pool is not None or self._broken:
            return
        ctx = mp.get_context(self.config.start_method)  # bad -> ValueError
        try:
            if ctx.get_start_method() == "fork":
                # Workers spawn lazily on submit, so the fork slot must
                # stay populated for the pool's whole lifetime.
                _FORK_SNAPSHOT = self.snapshot
                self._owns_fork_slot = True
                init, initargs = _init_fork_worker, ()
            else:
                init, initargs = _init_worker, (dumps_snapshot(self.snapshot),)
            self._pool = ProcessPoolExecutor(max_workers=self.config.workers,
                                             mp_context=ctx,
                                             initializer=init,
                                             initargs=initargs)
            metrics.inc("pool.pools_started")
            metrics.set_gauge("pool.workers", self.config.workers)
        except (BrokenExecutor, OSError) as exc:
            self._mark_broken(exc, n_items)

    def map(self, fn: Callable[[Any, Any, list], list], items: Iterable,
            extra: Any = None) -> list:
        """Map ``fn(state, extra, chunk)`` over *items*, in order."""
        work = list(items)
        if not work:
            return []
        chunks = chunked(work, self.config.resolve_chunk_size(len(work)))
        metrics.inc("pool.maps")
        metrics.inc("pool.items", len(work))
        metrics.inc("pool.tasks", len(chunks))
        self._ensure_pool(len(work))
        if self._pool is not None:
            tparent = trace.export_parent()
            t_dispatch = time.perf_counter()
            try:
                futures = [self._pool.submit(_run_chunk_extra, fn, extra,
                                             chunk, tparent)
                           for chunk in chunks]
                return _drain_futures(futures, tparent is not None,
                                      t_dispatch)
            except (BrokenExecutor, OSError) as exc:
                self._mark_broken(exc, len(work))
        metrics.inc("pool.serial_tasks", len(chunks))
        out = []
        for chunk in chunks:
            with trace.span("pool.chunk", items=len(chunk), serial=True):
                out.extend(fn(self.snapshot, extra, chunk))
        return out

    def close(self) -> None:
        """Shut the pool down and release the fork slot."""
        global _FORK_SNAPSHOT
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        if self._owns_fork_slot:
            _FORK_SNAPSHOT = None
            self._owns_fork_slot = False


def snapshot_map(fn: Callable[[Any, list], list], items: Iterable,
                 snapshot: Any, config: ParallelConfig) -> list:
    """Map ``fn(state, chunk) -> [result per item]`` over *items*.

    Results are returned one-per-item in input order regardless of
    worker count.  ``state`` is *snapshot* itself in the serial path
    and an unpickled copy inside each worker otherwise, so ``fn`` may
    freely perform restore-style mutations (e.g. congestion-grid
    probes) without corrupting the caller's objects.
    """
    work = list(items)
    if not work:
        return []
    chunks = chunked(work, config.resolve_chunk_size(len(work)))
    metrics.inc("pool.maps")
    metrics.inc("pool.items", len(work))
    metrics.inc("pool.tasks", len(chunks))
    if not config.should_parallelize(len(work)):
        metrics.inc("pool.serial_tasks", len(chunks))
        return _serial_run(fn, snapshot, chunks)
    ctx = mp.get_context(config.start_method)   # bad method -> ValueError
    global _FORK_SNAPSHOT
    forked = ctx.get_start_method() == "fork"
    if forked:
        init, initargs = _init_fork_worker, ()
    else:
        init, initargs = _init_worker, (dumps_snapshot(snapshot),)
    try:
        if forked:
            _FORK_SNAPSHOT = snapshot
        with ProcessPoolExecutor(max_workers=config.workers,
                                 mp_context=ctx,
                                 initializer=init,
                                 initargs=initargs) as pool:
            metrics.inc("pool.pools_started")
            metrics.set_gauge("pool.workers", config.workers)
            tparent = trace.export_parent()
            t_dispatch = time.perf_counter()
            futures = [pool.submit(_run_chunk, fn, chunk, tparent)
                       for chunk in chunks]
            return _drain_futures(futures, tparent is not None,
                                  t_dispatch)
    except (BrokenExecutor, OSError) as exc:
        # Pool-level failure (sandbox, resource limits, dead workers):
        # degrade to serial.  Exceptions raised *inside* fn are not of
        # these types and propagate to the caller.
        metrics.inc("pool.degrade_events")
        warnings.warn(f"process pool unavailable ({exc!r}); "
                      f"running {len(work)} items serially",
                      RuntimeWarning, stacklevel=2)
        return _serial_run(fn, snapshot, chunks)
    finally:
        _FORK_SNAPSHOT = None
