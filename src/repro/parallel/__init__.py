"""Process-pool execution engine for the flow's hot loops.

The paper calls exhaustive per-net what-if STA "computationally
prohibitive"; our reproduction makes one probe cheap, but the flow
still runs thousands of them — plus the die-test fault simulation, the
dataset build and the wavefront global route — strictly serially.
This package fans those loops out over worker processes against a
*shared pickled snapshot* of the design state:

* :class:`~repro.parallel.config.ParallelConfig` — the knobs
  (``workers``, ``chunk_size``, ``min_items`` serial-fallback
  threshold, ``start_method``);
* :func:`~repro.parallel.pool.snapshot_map` — chunked, order-
  preserving map of a module-level worker function over items, with
  the snapshot pickled once and shipped to each worker at startup;
* :class:`~repro.parallel.pool.SnapshotPool` — the persistent-pool
  variant for loops issuing many small maps (one per routing wave)
  against slowly-evolving state: the snapshot ships once, each map
  forwards a small per-call ``extra`` payload;
* :func:`~repro.parallel.pool.dumps_snapshot` /
  :func:`~repro.parallel.pool.loads_snapshot` — deep-object pickling
  that survives the netlist's recursive pin<->net<->instance graph.

Equivalence contract: worker functions must be deterministic and must
not leak state mutations (probe-style restore is fine) so that any
``workers`` setting — including the serial fallback — produces results
bit-identical to the plain loop.  ``tests/test_parallel.py`` locks
this for every wired call site.
"""

from repro.parallel.config import ParallelConfig, usable_cores
from repro.parallel.pool import (SnapshotPool, chunked, dumps_snapshot,
                                 loads_snapshot, snapshot_map)

__all__ = [
    "ParallelConfig",
    "SnapshotPool",
    "chunked",
    "dumps_snapshot",
    "loads_snapshot",
    "snapshot_map",
    "usable_cores",
]
