"""Knobs for the process-pool engine."""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.obs import get_logger, metrics

logger = get_logger("repro.parallel")

#: Set once the single-core degradation notice has been emitted, so a
#: sweep with thousands of should_parallelize calls logs it one time.
_DEGRADE_LOGGED = False

#: Wall seconds one pool dispatch costs end-to-end on a warm
#: persistent pool: submitting the chunk futures, pickling the small
#: extra payload, and draining the results.  Measured on the wavefront
#: router (``pool.task_latency_s`` over MAERI-class designs); the
#: exact value only needs the right order of magnitude — it gates
#: whether a workload's *estimated* serial cost can amortize a
#: round-trip at all.
DISPATCH_OVERHEAD_S = 1.5e-3

#: A dispatch must be worth at least this multiple of its own overhead
#: before fanning out — below that the parallel path is guaranteed
#: slower than the serial loop even with free workers.
DISPATCH_PAYOFF = 2.0


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def usable_cores() -> int:
    """Cores this process may actually run on (affinity-aware).

    Benchmarks use this to gate speedup assertions — a 1-core
    container cannot beat its own serial loop, and the honest record
    should show that rather than a faked number.
    """
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@dataclass(frozen=True)
class ParallelConfig:
    """How (and whether) to fan a hot loop out over worker processes.

    ``workers=1`` (the default) disables the pool entirely: callers
    run their original serial loop, bit-identical to pre-parallel
    behavior.  Small workloads also stay serial — below ``min_items``
    the pool's spawn + snapshot cost cannot amortize.

    ``chunk_size=None`` auto-sizes chunks so each worker sees a few
    waves of work (load balancing without per-item dispatch overhead).
    """

    workers: int = 1
    chunk_size: int | None = None
    #: Serial fallback: workloads smaller than this never fan out.
    min_items: int = 64
    #: multiprocessing start method; None = platform default (fork on
    #: Linux, which makes snapshot shipping nearly free).
    start_method: str | None = None
    #: Target number of chunks per worker when auto-sizing.
    waves: int = 4

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {self.chunk_size}")
        if self.min_items < 0:
            raise ValueError(f"min_items must be >= 0, got {self.min_items}")
        if self.waves < 1:
            raise ValueError(f"waves must be >= 1, got {self.waves}")

    @property
    def enabled(self) -> bool:
        return self.workers > 1

    def should_parallelize(self, n_items: int,
                           est_item_cost_s: float | None = None) -> bool:
        """True when *n_items* is worth shipping to a pool.

        On a single-core host (affinity-aware) a multi-worker config
        degrades to the serial loop: extra processes would only time-
        slice one CPU while paying spawn + snapshot costs.  The
        degradation is logged once per process so sweeps stay quiet.

        *est_item_cost_s* — a measured per-item serial cost estimate —
        additionally gates on dispatch overhead: a workload whose
        total serial cost cannot pay :data:`DISPATCH_PAYOFF` pool
        round-trips (:data:`DISPATCH_OVERHEAD_S`) stays serial no
        matter how many items it has.  This is what keeps
        microsecond-sized routing waves off the (slower) parallel
        path; callers without a cost model keep the pure
        ``min_items`` behavior.
        """
        if not (self.enabled and n_items >= max(self.min_items, 2)):
            return False
        if est_item_cost_s is not None and n_items * est_item_cost_s \
                < DISPATCH_PAYOFF * DISPATCH_OVERHEAD_S:
            metrics.inc("pool.dispatch_overhead_skips")
            return False
        if usable_cores() <= 1:
            global _DEGRADE_LOGGED
            metrics.inc("pool.single_core_degrades")
            if not _DEGRADE_LOGGED:
                _DEGRADE_LOGGED = True
                logger.warning(
                    "ParallelConfig(workers=%d) on a single-core host: "
                    "falling back to the serial loop (results are "
                    "bit-identical either way)", self.workers)
            return False
        return True

    def resolve_chunk_size(self, n_items: int) -> int:
        """Explicit chunk size, or ~``waves`` chunks per worker."""
        if self.chunk_size is not None:
            return self.chunk_size
        if n_items <= 0:
            return 1
        return max(1, _ceil_div(n_items, self.workers * self.waves))

    @classmethod
    def auto(cls, **overrides) -> "ParallelConfig":
        """All available cores (``min 1``), other knobs default."""
        workers = overrides.pop("workers", None)
        if workers is None:
            workers = usable_cores()
        return cls(workers=max(1, workers), **overrides)
