"""Unit conventions and conversion helpers.

The library uses one canonical unit per quantity everywhere in its core
data structures, chosen to keep typical values near 1.0:

========== ============ =======================================
Quantity   Canonical    Typical magnitude
========== ============ =======================================
distance   micrometre   cell pitch ~1, die ~1000
time       picosecond   gate delay ~10, clock period ~400
capacitance femtofarad  pin cap ~1, wire ~100
resistance ohm          wire ~100, via ~0.5
voltage    volt         0.81 / 0.9
power      milliwatt    cells ~1e-3, designs ~1e3
frequency  megahertz    2000-2500
========== ============ =======================================

Helpers convert to/from display units used by the paper's tables
(ns for TNS, mm for wirelength, pF for caps).
"""

from __future__ import annotations

# -- distance ---------------------------------------------------------------

UM_PER_MM = 1000.0


def mm_to_um(mm: float) -> float:
    """Convert millimetres to the canonical micrometres."""
    return mm * UM_PER_MM


def um_to_mm(um: float) -> float:
    """Convert canonical micrometres to millimetres."""
    return um / UM_PER_MM


def um_to_m(um: float) -> float:
    """Convert canonical micrometres to metres (paper reports WL in m)."""
    return um * 1e-6


# -- time -------------------------------------------------------------------

PS_PER_NS = 1000.0


def ns_to_ps(ns: float) -> float:
    """Convert nanoseconds to the canonical picoseconds."""
    return ns * PS_PER_NS


def ps_to_ns(ps: float) -> float:
    """Convert canonical picoseconds to nanoseconds."""
    return ps / PS_PER_NS


# -- capacitance ------------------------------------------------------------

FF_PER_PF = 1000.0


def pf_to_ff(pf: float) -> float:
    """Convert picofarads to the canonical femtofarads."""
    return pf * FF_PER_PF


def ff_to_pf(ff: float) -> float:
    """Convert canonical femtofarads to picofarads."""
    return ff / FF_PER_PF


# -- frequency / period -----------------------------------------------------


def mhz_to_period_ps(mhz: float) -> float:
    """Clock period in ps for a frequency in MHz.

    >>> mhz_to_period_ps(2500)
    400.0
    """
    if mhz <= 0:
        raise ValueError(f"frequency must be positive, got {mhz}")
    return 1e6 / mhz


def period_ps_to_mhz(period_ps: float) -> float:
    """Frequency in MHz for a clock period in ps."""
    if period_ps <= 0:
        raise ValueError(f"period must be positive, got {period_ps}")
    return 1e6 / period_ps


# -- RC delay ---------------------------------------------------------------
# With R in ohm and C in fF, R*C yields femtoseconds * 1e0?  ohm*fF =
# 1e-15 s = 1 fs.  Canonical time is ps, so divide by 1000.

FS_PER_PS = 1000.0


def rc_to_ps(r_ohm: float, c_ff: float) -> float:
    """Elmore product of ohms and femtofarads, expressed in picoseconds.

    1 kohm x 1000 fF = 1 ns:

    >>> rc_to_ps(1000.0, 1000.0)
    1000.0
    """
    return (r_ohm * c_ff) / FS_PER_PS
