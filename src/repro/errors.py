"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type at a flow boundary.  Subtypes mark the layer
at fault, which matters when a multi-stage flow (place -> route -> STA)
fails mid-way and the caller wants to know whether the input design or
an internal stage was the problem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class NetlistError(ReproError):
    """Malformed or inconsistent netlist (dangling pin, duplicate name...)."""


class TechError(ReproError):
    """Unknown technology node, cell type, or metal layer."""


class PartitionError(ReproError):
    """Tier assignment failed or is inconsistent with the netlist."""


class PlacementError(ReproError):
    """Placement failed (overflowing floorplan, unplaced instances...)."""


class RoutingError(ReproError):
    """Routing failed (net with no pins, capacity exhausted beyond retry)."""


class TimingError(ReproError):
    """STA failure (combinational loop, missing clock, unknown pin)."""


class DFTError(ReproError):
    """Scan insertion or fault-model construction failed."""


class PDNError(ReproError):
    """Power-grid construction or IR solve failed (singular grid...)."""


class TrainingError(ReproError):
    """Neural-network training could not proceed (empty dataset, NaN loss)."""


class FlowError(ReproError):
    """Top-level design-flow orchestration error."""
