"""K-worst timing path extraction.

One worst path per endpoint (walking the worst-arrival predecessor
chain), sorted by slack — the standard path report, and the unit the
GNN consumes: Section III-B models each timing path as a node sequence
where every node is a net folded onto its driver.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netlist.net import Net, Pin
from repro.timing.sta import TimingReport


@dataclass
class TimingPath:
    """One source-to-endpoint path.

    ``pins`` runs source -> endpoint through alternating net and cell
    arcs.  ``slack_ps`` is the endpoint slack.
    """

    endpoint: str
    slack_ps: float
    arrival_ps: float
    pins: list[Pin]

    @property
    def depth(self) -> int:
        """Number of cell stages on the path."""
        return max(0, len(self.pins) // 2)

    def stages(self) -> list[tuple[Pin, Net]]:
        """The node-centric view: (driver pin, net) per hop.

        Every driving pin on the path (cell output or input port)
        paired with the net it drives — the paper's hyperedge-to-node
        fold: MLS decisions attach to these driver nodes.
        """
        out: list[tuple[Pin, Net]] = []
        for pin in self.pins:
            if pin.drives and pin.net is not None and not pin.net.is_clock:
                out.append((pin, pin.net))
        return out

    def net_names(self) -> list[str]:
        return [net.name for _, net in self.stages()]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"TimingPath({self.endpoint}, slack={self.slack_ps:.1f}ps, "
                f"depth={self.depth})")


def extract_worst_paths(report: TimingReport, k: int | None = None,
                        only_violating: bool = False) -> list[TimingPath]:
    """Worst path per endpoint, worst-slack first, truncated to *k*.

    ``only_violating`` restricts to endpoints with negative slack
    (Figure 2's violation points).
    """
    graph = report.graph
    ranked = sorted(report.endpoint_slack.items(), key=lambda t: (t[1], t[0]))
    if only_violating:
        ranked = [(p, s) for p, s in ranked if s < 0]
    if k is not None:
        ranked = ranked[:k]
    paths: list[TimingPath] = []
    for endpoint_name, slack in ranked:
        idx = graph.pin_index[endpoint_name]
        chain: list[int] = []
        node = idx
        while node != -1:
            chain.append(node)
            node = report.worst_pred[node]
        chain.reverse()
        paths.append(TimingPath(
            endpoint=endpoint_name,
            slack_ps=slack,
            arrival_ps=report.arrival[idx],
            pins=[graph.pins[i] for i in chain],
        ))
    return paths
