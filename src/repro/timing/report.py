"""Human-readable timing reports (signoff-style).

Renders the classic per-path report — launch, arc-by-arc cell/net
delays, arrival vs required, slack — plus a design-level summary
histogram.  Used by the CLI and handy when debugging why a specific
endpoint violates.
"""

from __future__ import annotations

from repro.timing.paths import TimingPath, extract_worst_paths
from repro.timing.sta import TimingReport


def render_path(report: TimingReport, path: TimingPath) -> str:
    """One path in report form."""
    graph = report.graph
    lines = [
        f"Path to {path.endpoint}",
        f"  slack {path.slack_ps:9.1f} ps   "
        f"arrival {path.arrival_ps:9.1f} ps   depth {path.depth}",
        f"  {'arc':<6}{'delay':>9}  {'arrival':>9}  point",
        "  " + "-" * 64,
    ]
    prev_idx = None
    for pin in path.pins:
        idx = graph.pin_index[pin.full_name]
        arrival = report.arrival[idx]
        if prev_idx is None:
            kind, delay = "launch", arrival
        else:
            delay = arrival - report.arrival[prev_idx]
            kind = "net" if graph.pins[prev_idx].drives else "cell"
        lines.append(f"  {kind:<6}{delay:>9.1f}  {arrival:>9.1f}  "
                     f"{pin.full_name}")
        prev_idx = idx
    return "\n".join(lines)


def render_summary(report: TimingReport, num_paths: int = 5,
                   histogram_bins: int = 8) -> str:
    """Design-level summary: headline metrics, slack histogram, and the
    worst *num_paths* paths."""
    lines = [
        "Timing summary",
        "=" * 48,
        f"clock period   : {report.clock_period_ps:9.1f} ps",
        f"WNS            : {report.wns_ps:9.1f} ps",
        f"TNS            : {report.tns_ns:9.2f} ns",
        f"violating      : {report.num_violating} / "
        f"{report.num_endpoints} endpoints",
        f"effective freq : {report.effective_freq_mhz():9.0f} MHz",
        "",
        "Slack histogram (endpoints)",
    ]
    slacks = sorted(report.endpoint_slack.values())
    if slacks:
        lo, hi = slacks[0], slacks[-1]
        span = max(hi - lo, 1e-9)
        counts = [0] * histogram_bins
        for s in slacks:
            b = min(int((s - lo) / span * histogram_bins),
                    histogram_bins - 1)
            counts[b] += 1
        peak = max(counts)
        for b, count in enumerate(counts):
            left = lo + b * span / histogram_bins
            right = lo + (b + 1) * span / histogram_bins
            bar = "#" * max(1 if count else 0,
                            int(40 * count / max(peak, 1)))
            lines.append(f"  [{left:8.1f},{right:8.1f}) {count:>6}  {bar}")
    lines.append("")
    for path in extract_worst_paths(report, k=num_paths):
        lines.append(render_path(report, path))
        lines.append("")
    return "\n".join(lines)
