"""Static timing analysis.

A full forward/backward STA over the pin-level timing graph: arrival
times from input ports and sequential launch points, required times
from the clock constraint back through endpoints (flop D/SI pins,
macro data pins, output ports), slacks, WNS/TNS, violating-endpoint
counts, K-worst path extraction and per-net what-if deltas.

This engine is the reproduction's stand-in for Innovus signoff STA:
the MLS oracle, the SOTA baseline and the GNN's training labels all
consume it, exactly as the paper's flow consumes commercial STA.
"""

from repro.timing.delay import cell_output_delay, setup_time, PORT_DRIVE_RES
from repro.timing.graph import TimingCsr, TimingGraph, build_timing_graph
from repro.timing.sta import KERNELS, TimingReport, run_sta
from repro.timing.paths import TimingPath, extract_worst_paths
from repro.timing.incremental import (IncrementalSta, WhatIfDelta,
                                      net_whatif_delta)

__all__ = [
    "cell_output_delay",
    "setup_time",
    "PORT_DRIVE_RES",
    "KERNELS",
    "TimingCsr",
    "TimingGraph",
    "build_timing_graph",
    "TimingReport",
    "run_sta",
    "TimingPath",
    "extract_worst_paths",
    "IncrementalSta",
    "WhatIfDelta",
    "net_whatif_delta",
]
