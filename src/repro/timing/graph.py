"""Pin-level timing graph construction.

Nodes are pins (instance pins + port pins).  Arcs:

* **net arcs** — driver pin -> each sink pin, delay = Elmore wire delay
  from extracted parasitics;
* **cell arcs** — each data input -> output pin of combinational
  cells, delay = NLDM-lite cell delay under the output net's load;
* **launch** — sequential outputs and input ports are sources (clk->q
  delay, pad-driver delay respectively);
* **capture** — sequential data pins, macro data pins and output
  ports are endpoints.

Clock pins / nets are ideal (zero skew) and never propagate.  Scan-
enable pins are false paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.design import Design
from repro.errors import TimingError
from repro.netlist.net import Pin
from repro.timing.delay import (cell_output_delay, port_drive_delay,
                                setup_time)


@dataclass
class TimingCsr:
    """Flat levelized edge arrays for vectorized STA.

    Edges are stored in **serial order** — the exact order the
    reference Python loop visits them (topological order of the source
    pin, then fanout-list position) — so the edge index doubles as the
    serial tie-break key for ``worst_pred`` reconstruction.

    ``fwd_perm``/``fwd_starts`` group edges by the *destination* pin's
    level for the forward (arrival) sweep; ``bwd_perm``/``bwd_starts``
    group them by the *source* pin's level, highest first, for the
    backward (required) sweep.  Because STA is a pure max/min semiring
    over float64 (no order-dependent sums), per-level
    ``np.maximum.at`` / ``np.minimum.at`` scatters reproduce the
    serial loop bit-for-bit.
    """

    n: int                          # pin count
    edge_src: np.ndarray            # int32 [E], serial edge order
    edge_dst: np.ndarray            # int32 [E]
    edge_delay: np.ndarray          # float64 [E], patched on reroute
    #: Position of each edge inside fanout[src] / fanin[dst] — lets a
    #: delay patch keep the list-of-lists graph consistent too.
    edge_fout_pos: np.ndarray       # int32 [E]
    edge_fin_pos: np.ndarray        # int32 [E]
    level: np.ndarray               # int32 [n], longest-path depth
    num_levels: int
    fwd_perm: np.ndarray            # int32 [E] grouped by level[dst]
    fwd_starts: np.ndarray          # int64 [num_levels + 1]
    bwd_perm: np.ndarray            # int32 [E] grouped by -level[src]
    bwd_starts: np.ndarray          # int64 [num_levels + 1]
    src_idx: np.ndarray             # int32 [S] launch pins
    src_launch: np.ndarray          # float64 [S]
    ep_idx: np.ndarray              # int32 [P] endpoint pins
    ep_setup: np.ndarray            # float64 [P]

    @property
    def num_edges(self) -> int:
        return int(self.edge_src.shape[0])

    def edge_lookup(self) -> dict[tuple[int, int], tuple[int, ...]]:
        """(src, dst) -> serial edge ids (lazily built, then cached)."""
        table = getattr(self, "_edge_lookup", None)
        if table is None:
            table = {}
            for eid in range(self.num_edges):
                key = (int(self.edge_src[eid]), int(self.edge_dst[eid]))
                table.setdefault(key, []).append(eid)
            table = {k: tuple(v) for k, v in table.items()}
            self._edge_lookup = table
        return table


@dataclass
class TimingGraph:
    """Arrays-of-lists timing graph over pin indices."""

    pins: list[Pin]
    pin_index: dict[str, int]             # pin full_name -> idx
    fanout: list[list[tuple[int, float]]]   # idx -> [(to, delay)]
    fanin: list[list[tuple[int, float]]]    # idx -> [(from, delay)]
    sources: list[tuple[int, float]]        # (idx, launch delay)
    endpoints: list[tuple[int, float]]      # (idx, setup requirement)
    topo: list[int]                        # topological pin order
    _csr: TimingCsr | None = field(default=None, init=False, repr=False,
                                   compare=False)

    def index_of(self, pin: Pin) -> int:
        try:
            return self.pin_index[pin.full_name]
        except KeyError:
            raise TimingError(f"pin {pin.full_name} not in graph") from None

    def csr(self) -> TimingCsr:
        """The levelized CSR view (built on first use, then cached).

        The CSR arrays alias the graph's *current* arc delays; holders
        that patch delays (:class:`repro.timing.incremental.
        IncrementalSta`) keep both representations in sync.
        """
        if self._csr is None:
            self._csr = _build_csr(self)
        return self._csr

    def invalidate_csr(self) -> None:
        """Drop the cached CSR view (after out-of-band arc edits)."""
        self._csr = None


def _build_csr(graph: TimingGraph) -> TimingCsr:
    """Flatten the list-of-lists graph into levelized numpy arrays."""
    n = len(graph.pins)
    num_edges = sum(len(out) for out in graph.fanout)

    # Longest-path level per pin: every edge goes level[u] -> > level[u].
    level = np.zeros(n, dtype=np.int32)
    for u in graph.topo:
        lu = level[u] + 1
        for v, _ in graph.fanout[u]:
            if level[v] < lu:
                level[v] = lu

    # fanin positions: the k-th (u -> v) arc in fanout[u] is also the
    # k-th (u -> v) arc in fanin[v] (add_arc appends to both at once).
    fin_pos_map: dict[tuple[int, int], list[int]] = {}
    for v in range(n):
        for pos, (u, _) in enumerate(graph.fanin[v]):
            fin_pos_map.setdefault((u, v), []).append(pos)

    edge_src = np.empty(num_edges, dtype=np.int32)
    edge_dst = np.empty(num_edges, dtype=np.int32)
    edge_delay = np.empty(num_edges, dtype=np.float64)
    edge_fout_pos = np.empty(num_edges, dtype=np.int32)
    edge_fin_pos = np.empty(num_edges, dtype=np.int32)
    seen: dict[tuple[int, int], int] = {}
    eid = 0
    for u in graph.topo:
        for pos, (v, delay) in enumerate(graph.fanout[u]):
            edge_src[eid] = u
            edge_dst[eid] = v
            edge_delay[eid] = delay
            edge_fout_pos[eid] = pos
            k = seen.get((u, v), 0)
            seen[(u, v)] = k + 1
            edge_fin_pos[eid] = fin_pos_map[(u, v)][k]
            eid += 1

    num_levels = int(level.max()) + 1 if n else 1
    lev_dst = level[edge_dst]
    fwd_perm = np.argsort(lev_dst, kind="stable").astype(np.int32)
    counts = np.bincount(lev_dst, minlength=num_levels)
    fwd_starts = np.concatenate(([0], np.cumsum(counts)))
    lev_src = level[edge_src]
    bwd_perm = np.argsort(-lev_src, kind="stable").astype(np.int32)
    bcounts = np.bincount((num_levels - 1) - lev_src, minlength=num_levels)
    bwd_starts = np.concatenate(([0], np.cumsum(bcounts)))

    src_idx = np.array([i for i, _ in graph.sources], dtype=np.int32)
    src_launch = np.array([d for _, d in graph.sources], dtype=np.float64)
    ep_idx = np.array([i for i, _ in graph.endpoints], dtype=np.int32)
    ep_setup = np.array([s for _, s in graph.endpoints], dtype=np.float64)
    return TimingCsr(n=n, edge_src=edge_src, edge_dst=edge_dst,
                     edge_delay=edge_delay, edge_fout_pos=edge_fout_pos,
                     edge_fin_pos=edge_fin_pos, level=level,
                     num_levels=num_levels, fwd_perm=fwd_perm,
                     fwd_starts=fwd_starts, bwd_perm=bwd_perm,
                     bwd_starts=bwd_starts, src_idx=src_idx,
                     src_launch=src_launch, ep_idx=ep_idx,
                     ep_setup=ep_setup)


def _is_false_path_pin(pin: Pin) -> bool:
    """Scan-enable pins are static in functional mode."""
    return pin.owner is not None and pin.name == "SE"


def build_timing_graph(design: Design) -> TimingGraph:
    """Build the graph from the design's netlist + routing parasitics."""
    netlist = design.netlist
    routing = design.require_routing()

    pins: list[Pin] = []
    pin_index: dict[str, int] = {}

    def register(pin: Pin) -> int:
        idx = pin_index.get(pin.full_name)
        if idx is None:
            idx = len(pins)
            pins.append(pin)
            pin_index[pin.full_name] = idx
        return idx

    for inst in netlist.instances.values():
        for pin in inst.pins.values():
            register(pin)
    for port in netlist.ports.values():
        register(port.pin)

    fanout: list[list[tuple[int, float]]] = [[] for _ in pins]
    fanin: list[list[tuple[int, float]]] = [[] for _ in pins]

    def add_arc(src: int, dst: int, delay: float) -> None:
        fanout[src].append((dst, delay))
        fanin[dst].append((src, delay))

    # Net arcs.
    for net in netlist.signal_nets():
        if net.driver is None:
            continue
        rc = routing.rc.get(net.name)
        src = pin_index[net.driver.full_name]
        for sink in net.sinks:
            if _is_false_path_pin(sink):
                continue
            wire = 0.0
            if rc is not None:
                wire = rc.sink_delay_ps.get(sink.full_name, 0.0)
            add_arc(src, pin_index[sink.full_name], wire)

    # Cell arcs for combinational cells.
    sources: list[tuple[int, float]] = []
    endpoints: list[tuple[int, float]] = []
    for inst in netlist.instances.values():
        out_pin = inst.output_pin
        out_net = out_pin.net
        load = 0.0
        if out_net is not None:
            rc = routing.rc.get(out_net.name)
            load = rc.load_ff if rc is not None else out_net.sink_cap_ff()
        delay = cell_output_delay(inst.cell, load)
        out_idx = pin_index[out_pin.full_name]
        if inst.is_sequential:
            sources.append((out_idx, delay))    # clk->q launch
            req = setup_time(inst.cell)
            for pin in inst.input_pins():
                if _is_false_path_pin(pin) or pin.name == "SI":
                    continue    # scan shift is checked at scan speed
                endpoints.append((pin_index[pin.full_name], req))
        else:
            for pin in inst.input_pins():
                if _is_false_path_pin(pin):
                    continue
                add_arc(pin_index[pin.full_name], out_idx, delay)

    # Ports.
    for port in netlist.ports.values():
        idx = pin_index[port.pin.full_name]
        if port.false_path:
            continue
        if port.direction == "in":
            if port.pin.net is not None and port.pin.net.is_clock:
                continue    # ideal clock source: not a data source
            net = port.pin.net
            load = 0.0
            if net is not None:
                rc = routing.rc.get(net.name)
                load = rc.load_ff if rc is not None else 0.0
            sources.append((idx, port_drive_delay(load)))
        else:
            endpoints.append((idx, 0.0))

    topo = _topological_pins(pins, fanin, fanout)
    return TimingGraph(pins=pins, pin_index=pin_index, fanout=fanout,
                       fanin=fanin, sources=sources, endpoints=endpoints,
                       topo=topo)


def _topological_pins(pins, fanin, fanout) -> list[int]:
    """Kahn's algorithm over pin arcs; raises on cycles."""
    n = len(pins)
    indeg = [len(fanin[i]) for i in range(n)]
    ready = [i for i in range(n) if indeg[i] == 0]
    order: list[int] = []
    head = 0
    while head < len(ready):
        u = ready[head]
        head += 1
        order.append(u)
        for v, _ in fanout[u]:
            indeg[v] -= 1
            if indeg[v] == 0:
                ready.append(v)
    if len(order) != n:
        raise TimingError(
            f"timing graph has a cycle: ordered {len(order)}/{n} pins")
    return order
