"""Pin-level timing graph construction.

Nodes are pins (instance pins + port pins).  Arcs:

* **net arcs** — driver pin -> each sink pin, delay = Elmore wire delay
  from extracted parasitics;
* **cell arcs** — each data input -> output pin of combinational
  cells, delay = NLDM-lite cell delay under the output net's load;
* **launch** — sequential outputs and input ports are sources (clk->q
  delay, pad-driver delay respectively);
* **capture** — sequential data pins, macro data pins and output
  ports are endpoints.

Clock pins / nets are ideal (zero skew) and never propagate.  Scan-
enable pins are false paths.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.design import Design
from repro.errors import TimingError
from repro.netlist.net import Pin
from repro.timing.delay import (cell_output_delay, port_drive_delay,
                                setup_time)


@dataclass
class TimingGraph:
    """Arrays-of-lists timing graph over pin indices."""

    pins: list[Pin]
    pin_index: dict[str, int]             # pin full_name -> idx
    fanout: list[list[tuple[int, float]]]   # idx -> [(to, delay)]
    fanin: list[list[tuple[int, float]]]    # idx -> [(from, delay)]
    sources: list[tuple[int, float]]        # (idx, launch delay)
    endpoints: list[tuple[int, float]]      # (idx, setup requirement)
    topo: list[int]                        # topological pin order

    def index_of(self, pin: Pin) -> int:
        try:
            return self.pin_index[pin.full_name]
        except KeyError:
            raise TimingError(f"pin {pin.full_name} not in graph") from None


def _is_false_path_pin(pin: Pin) -> bool:
    """Scan-enable pins are static in functional mode."""
    return pin.owner is not None and pin.name == "SE"


def build_timing_graph(design: Design) -> TimingGraph:
    """Build the graph from the design's netlist + routing parasitics."""
    netlist = design.netlist
    routing = design.require_routing()

    pins: list[Pin] = []
    pin_index: dict[str, int] = {}

    def register(pin: Pin) -> int:
        idx = pin_index.get(pin.full_name)
        if idx is None:
            idx = len(pins)
            pins.append(pin)
            pin_index[pin.full_name] = idx
        return idx

    for inst in netlist.instances.values():
        for pin in inst.pins.values():
            register(pin)
    for port in netlist.ports.values():
        register(port.pin)

    fanout: list[list[tuple[int, float]]] = [[] for _ in pins]
    fanin: list[list[tuple[int, float]]] = [[] for _ in pins]

    def add_arc(src: int, dst: int, delay: float) -> None:
        fanout[src].append((dst, delay))
        fanin[dst].append((src, delay))

    # Net arcs.
    for net in netlist.signal_nets():
        if net.driver is None:
            continue
        rc = routing.rc.get(net.name)
        src = pin_index[net.driver.full_name]
        for sink in net.sinks:
            if _is_false_path_pin(sink):
                continue
            wire = 0.0
            if rc is not None:
                wire = rc.sink_delay_ps.get(sink.full_name, 0.0)
            add_arc(src, pin_index[sink.full_name], wire)

    # Cell arcs for combinational cells.
    sources: list[tuple[int, float]] = []
    endpoints: list[tuple[int, float]] = []
    for inst in netlist.instances.values():
        out_pin = inst.output_pin
        out_net = out_pin.net
        load = 0.0
        if out_net is not None:
            rc = routing.rc.get(out_net.name)
            load = rc.load_ff if rc is not None else out_net.sink_cap_ff()
        delay = cell_output_delay(inst.cell, load)
        out_idx = pin_index[out_pin.full_name]
        if inst.is_sequential:
            sources.append((out_idx, delay))    # clk->q launch
            req = setup_time(inst.cell)
            for pin in inst.input_pins():
                if _is_false_path_pin(pin) or pin.name == "SI":
                    continue    # scan shift is checked at scan speed
                endpoints.append((pin_index[pin.full_name], req))
        else:
            for pin in inst.input_pins():
                if _is_false_path_pin(pin):
                    continue
                add_arc(pin_index[pin.full_name], out_idx, delay)

    # Ports.
    for port in netlist.ports.values():
        idx = pin_index[port.pin.full_name]
        if port.false_path:
            continue
        if port.direction == "in":
            if port.pin.net is not None and port.pin.net.is_clock:
                continue    # ideal clock source: not a data source
            net = port.pin.net
            load = 0.0
            if net is not None:
                rc = routing.rc.get(net.name)
                load = rc.load_ff if rc is not None else 0.0
            sources.append((idx, port_drive_delay(load)))
        else:
            endpoints.append((idx, 0.0))

    topo = _topological_pins(pins, fanin, fanout)
    return TimingGraph(pins=pins, pin_index=pin_index, fanout=fanout,
                       fanin=fanin, sources=sources, endpoints=endpoints,
                       topo=topo)


def _topological_pins(pins, fanin, fanout) -> list[int]:
    """Kahn's algorithm over pin arcs; raises on cycles."""
    n = len(pins)
    indeg = [len(fanin[i]) for i in range(n)]
    ready = [i for i in range(n) if indeg[i] == 0]
    order: list[int] = []
    head = 0
    while head < len(ready):
        u = ready[head]
        head += 1
        order.append(u)
        for v, _ in fanout[u]:
            indeg[v] -= 1
            if indeg[v] == 0:
                ready.append(v)
    if len(order) != n:
        raise TimingError(
            f"timing graph has a cycle: ordered {len(order)}/{n} pins")
    return order
