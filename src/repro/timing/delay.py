"""Delay model primitives shared by STA and the what-if engine."""

from __future__ import annotations

from repro.tech.cells import CellType

#: Drive resistance assumed for external input-port drivers, ohm.
PORT_DRIVE_RES = 1500.0

#: Setup time as a fraction of the cell's intrinsic delay — a standard
#: library correlation that keeps sequential overhead proportional to
#: cell speed across nodes.
_SETUP_FRACTION = 0.35
_MACRO_SETUP_FRACTION = 0.30


def cell_output_delay(cell: CellType, load_ff: float) -> float:
    """Input-to-output (or clk-to-q) delay of *cell* driving *load_ff*."""
    return cell.delay_ps(load_ff)


def setup_time(cell: CellType) -> float:
    """Setup requirement at a sequential cell's data pins, in ps."""
    fraction = _MACRO_SETUP_FRACTION if cell.is_macro else _SETUP_FRACTION
    return cell.intrinsic_ps * fraction


def port_drive_delay(load_ff: float) -> float:
    """Delay of the external pad driver on an input port, in ps."""
    return (PORT_DRIVE_RES * load_ff) / 1000.0
