"""Arrival/required propagation and slack reporting."""

from __future__ import annotations

from dataclasses import dataclass, field

import math

from repro.design import Design
from repro.timing.graph import TimingGraph, build_timing_graph
from repro.units import ps_to_ns

_NEG_INF = -math.inf
_POS_INF = math.inf


@dataclass
class TimingReport:
    """STA outcome for one design state.

    Slacks/arrivals are in ps.  ``endpoint_slack`` maps endpoint pin
    full-name -> slack; violating endpoints are those below zero —
    the tables' "#Vio. Paths" (one worst path per endpoint, the
    standard violation count a signoff report prints).
    """

    clock_period_ps: float
    graph: TimingGraph
    arrival: list[float]
    required: list[float]
    endpoint_slack: dict[str, float]
    worst_pred: list[int]

    @property
    def wns_ps(self) -> float:
        """Worst negative slack (0 when the design meets timing)."""
        if not self.endpoint_slack:
            return 0.0
        return min(0.0, min(self.endpoint_slack.values()))

    @property
    def tns_ns(self) -> float:
        """Total negative slack in ns (paper's TNS unit)."""
        total = sum(s for s in self.endpoint_slack.values() if s < 0)
        return ps_to_ns(total)

    @property
    def num_violating(self) -> int:
        return sum(1 for s in self.endpoint_slack.values() if s < 0)

    @property
    def num_endpoints(self) -> int:
        return len(self.endpoint_slack)

    def violating_endpoints(self) -> list[tuple[str, float]]:
        """(pin, slack) for violations, worst first."""
        out = [(p, s) for p, s in self.endpoint_slack.items() if s < 0]
        out.sort(key=lambda t: t[1])
        return out

    def effective_freq_mhz(self) -> float:
        """Highest frequency the design would close at: 1/(T - WNS).

        With a non-positive effective period (a degenerate zero/negative
        clock constraint and no violations) there is no finite closing
        frequency; report +inf instead of dividing by zero.
        """
        period = self.clock_period_ps - self.wns_ps
        if period <= 0.0:
            return _POS_INF
        return 1e6 / period

    def slack_of(self, pin_full_name: str) -> float:
        return self.endpoint_slack[pin_full_name]

    def summary(self) -> dict[str, float]:
        return {
            "wns_ps": self.wns_ps,
            "tns_ns": self.tns_ns,
            "violating": self.num_violating,
            "endpoints": self.num_endpoints,
            "eff_freq_mhz": self.effective_freq_mhz(),
        }


def run_sta(design: Design, graph: TimingGraph | None = None) -> TimingReport:
    """Full STA at the design's clock constraint.

    Pass a prebuilt *graph* to skip reconstruction when the netlist
    and routing have not changed structurally (parasitics baked into
    arc delays do change with routing, so rebuild after reroutes).
    """
    if graph is None:
        graph = build_timing_graph(design)
    n = len(graph.pins)
    arrival = [_NEG_INF] * n
    worst_pred = [-1] * n
    for idx, launch in graph.sources:
        if launch > arrival[idx]:
            arrival[idx] = launch

    for u in graph.topo:
        au = arrival[u]
        if au == _NEG_INF:
            continue
        for v, delay in graph.fanout[u]:
            cand = au + delay
            if cand > arrival[v]:
                arrival[v] = cand
                worst_pred[v] = u

    period = design.clock_period_ps
    required = [_POS_INF] * n
    endpoint_slack: dict[str, float] = {}
    for idx, setup in graph.endpoints:
        req = period - setup
        required[idx] = min(required[idx], req)
        at = arrival[idx]
        if at == _NEG_INF:
            continue    # unreachable endpoint (e.g. tied-off logic)
        endpoint_slack[graph.pins[idx].full_name] = req - at

    for u in reversed(graph.topo):
        ru = required[u]
        for v, delay in graph.fanout[u]:
            cand = required[v] - delay
            if cand < ru:
                ru = cand
        required[u] = ru

    return TimingReport(clock_period_ps=period, graph=graph,
                        arrival=arrival, required=required,
                        endpoint_slack=endpoint_slack,
                        worst_pred=worst_pred)
