"""Arrival/required propagation and slack reporting.

Two interchangeable propagation kernels back :func:`run_sta`:

* ``serial`` — the reference pure-Python loop over the list-of-lists
  graph (the seed implementation, kept as the executable spec);
* ``csr`` — per-level ``np.maximum.at`` / ``np.minimum.at`` scatter
  passes over the graph's levelized CSR arrays
  (:meth:`repro.timing.graph.TimingGraph.csr`).

STA is a pure max/min semiring over float64 — there are no
order-dependent floating-point sums — so the two kernels produce
**bit-identical** arrivals, requireds, endpoint slacks and
``worst_pred`` tie-breaks (the CSR kernel reconstructs the serial
first-edge-to-reach-the-max winner from the serial edge order).  The
equivalence is asserted by the test suite and by
``benchmarks/bench_sta.py --smoke`` in CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import math

import numpy as np

from repro.design import Design
from repro.errors import TimingError
from repro.obs import metrics, trace
from repro.timing.graph import TimingGraph, build_timing_graph
from repro.units import ps_to_ns

_NEG_INF = -math.inf
_POS_INF = math.inf

#: Propagation kernels accepted by :func:`run_sta`.
KERNELS = ("csr", "serial")


@dataclass
class TimingReport:
    """STA outcome for one design state.

    Slacks/arrivals are in ps.  ``endpoint_slack`` maps endpoint pin
    full-name -> slack; violating endpoints are those below zero —
    the tables' "#Vio. Paths" (one worst path per endpoint, the
    standard violation count a signoff report prints).

    The summary metrics (``wns_ps``, ``tns_ns``, ``num_violating``)
    are computed once on first access and cached — the table builders
    read them repeatedly.  Treat a report as immutable; derive a new
    report instead of editing ``endpoint_slack`` in place.
    """

    clock_period_ps: float
    graph: TimingGraph
    arrival: list[float]
    required: list[float]
    endpoint_slack: dict[str, float]
    worst_pred: list[int]
    _wns: float | None = field(default=None, init=False, repr=False,
                               compare=False)
    _tns: float | None = field(default=None, init=False, repr=False,
                               compare=False)
    _num_violating: int | None = field(default=None, init=False, repr=False,
                                       compare=False)

    @property
    def wns_ps(self) -> float:
        """Worst negative slack (0 when the design meets timing)."""
        if self._wns is None:
            if not self.endpoint_slack:
                self._wns = 0.0
            else:
                self._wns = min(0.0, min(self.endpoint_slack.values()))
        return self._wns

    @property
    def tns_ns(self) -> float:
        """Total negative slack in ns (paper's TNS unit)."""
        if self._tns is None:
            total = sum(s for s in self.endpoint_slack.values() if s < 0)
            self._tns = ps_to_ns(total)
        return self._tns

    @property
    def num_violating(self) -> int:
        if self._num_violating is None:
            self._num_violating = sum(
                1 for s in self.endpoint_slack.values() if s < 0)
        return self._num_violating

    @property
    def num_endpoints(self) -> int:
        return len(self.endpoint_slack)

    def violating_endpoints(self) -> list[tuple[str, float]]:
        """(pin, slack) for violations, worst first."""
        out = [(p, s) for p, s in self.endpoint_slack.items() if s < 0]
        out.sort(key=lambda t: t[1])
        return out

    def effective_freq_mhz(self) -> float:
        """Highest frequency the design would close at: 1/(T - WNS).

        With a non-positive effective period (a degenerate zero/negative
        clock constraint and no violations) there is no finite closing
        frequency; report +inf instead of dividing by zero.
        """
        period = self.clock_period_ps - self.wns_ps
        if period <= 0.0:
            return _POS_INF
        return 1e6 / period

    def slack_of(self, pin_full_name: str) -> float:
        return self.endpoint_slack[pin_full_name]

    def summary(self) -> dict[str, float]:
        return {
            "wns_ps": self.wns_ps,
            "tns_ns": self.tns_ns,
            "violating": self.num_violating,
            "endpoints": self.num_endpoints,
            "eff_freq_mhz": self.effective_freq_mhz(),
        }


def _propagate_serial(graph: TimingGraph, period: float
                      ) -> tuple[list[float], list[float],
                                 dict[str, float], list[int]]:
    """Reference Python-loop propagation (the executable spec)."""
    n = len(graph.pins)
    arrival = [_NEG_INF] * n
    worst_pred = [-1] * n
    for idx, launch in graph.sources:
        if launch > arrival[idx]:
            arrival[idx] = launch

    for u in graph.topo:
        au = arrival[u]
        if au == _NEG_INF:
            continue
        for v, delay in graph.fanout[u]:
            cand = au + delay
            if cand > arrival[v]:
                arrival[v] = cand
                worst_pred[v] = u

    required = [_POS_INF] * n
    endpoint_slack: dict[str, float] = {}
    for idx, setup in graph.endpoints:
        req = period - setup
        required[idx] = min(required[idx], req)
        at = arrival[idx]
        if at == _NEG_INF:
            continue    # unreachable endpoint (e.g. tied-off logic)
        endpoint_slack[graph.pins[idx].full_name] = req - at

    for u in reversed(graph.topo):
        ru = required[u]
        for v, delay in graph.fanout[u]:
            cand = required[v] - delay
            if cand < ru:
                ru = cand
        required[u] = ru

    return arrival, required, endpoint_slack, worst_pred


def _forward_csr(csr) -> np.ndarray:
    """Vectorized arrival sweep: one maximum-scatter per level."""
    arrival = np.full(csr.n, _NEG_INF, dtype=np.float64)
    if csr.src_idx.size:
        np.maximum.at(arrival, csr.src_idx, csr.src_launch)
    for lev in range(1, csr.num_levels):
        sel = csr.fwd_perm[csr.fwd_starts[lev]:csr.fwd_starts[lev + 1]]
        if not sel.size:
            continue
        cand = arrival[csr.edge_src[sel]] + csr.edge_delay[sel]
        np.maximum.at(arrival, csr.edge_dst[sel], cand)
    return arrival


def _backward_csr(csr, period: float) -> np.ndarray:
    """Vectorized required sweep: one minimum-scatter per level."""
    required = np.full(csr.n, _POS_INF, dtype=np.float64)
    if csr.ep_idx.size:
        np.minimum.at(required, csr.ep_idx, period - csr.ep_setup)
    for group in range(csr.num_levels):
        sel = csr.bwd_perm[csr.bwd_starts[group]:csr.bwd_starts[group + 1]]
        if not sel.size:
            continue
        cand = required[csr.edge_dst[sel]] - csr.edge_delay[sel]
        np.minimum.at(required, csr.edge_src[sel], cand)
    return required


def _worst_pred_csr(csr, arrival: np.ndarray) -> np.ndarray:
    """Reconstruct the serial loop's worst-arrival predecessors.

    The serial loop visits edges in ascending edge-id order and only
    overwrites on a strict improvement, so each pin's predecessor is
    the *lowest-id* edge whose candidate equals the final arrival —
    unless the launch initialization already equals it (no strict
    improvement ever happened, predecessor stays -1).
    """
    num_edges = csr.num_edges
    pred = np.full(csr.n, -1, dtype=np.int64)
    if not num_edges:
        return pred
    launch = np.full(csr.n, _NEG_INF, dtype=np.float64)
    if csr.src_idx.size:
        np.maximum.at(launch, csr.src_idx, csr.src_launch)
    src_arr = arrival[csr.edge_src]
    cand = src_arr + csr.edge_delay
    hits = (src_arr != _NEG_INF) & (cand == arrival[csr.edge_dst]) \
        & (arrival[csr.edge_dst] != launch[csr.edge_dst])
    eid = np.where(hits, np.arange(num_edges, dtype=np.int64), num_edges)
    first = np.full(csr.n, num_edges, dtype=np.int64)
    np.minimum.at(first, csr.edge_dst, eid)
    found = first < num_edges
    pred[found] = csr.edge_src[first[found]]
    return pred


def _propagate_csr(graph: TimingGraph, period: float
                   ) -> tuple[list[float], list[float],
                              dict[str, float], list[int]]:
    """Levelized numpy propagation — bit-identical to the serial loop."""
    csr = graph.csr()
    arrival = _forward_csr(csr)
    required = _backward_csr(csr, period)
    worst_pred = _worst_pred_csr(csr, arrival)

    endpoint_slack: dict[str, float] = {}
    pins = graph.pins
    for idx, setup in graph.endpoints:
        at = arrival[idx]
        if at == _NEG_INF:
            continue
        endpoint_slack[pins[idx].full_name] = (period - setup) - float(at)

    return (arrival.tolist(), required.tolist(), endpoint_slack,
            worst_pred.tolist())


def run_sta(design: Design, graph: TimingGraph | None = None,
            kernel: str = "csr") -> TimingReport:
    """Full STA at the design's clock constraint.

    Pass a prebuilt *graph* to skip reconstruction when the netlist
    and routing have not changed structurally (parasitics baked into
    arc delays do change with routing, so rebuild — or patch through
    :class:`repro.timing.incremental.IncrementalSta` — after
    reroutes).

    *kernel* selects the propagation engine: ``"csr"`` (default, the
    vectorized levelized kernel) or ``"serial"`` (the reference
    Python loop).  Both produce bit-identical reports.
    """
    if kernel not in KERNELS:
        raise TimingError(f"unknown STA kernel {kernel!r}; "
                          f"choose from {KERNELS}")
    with trace.span("sta.full", kernel=kernel) as span:
        if graph is None:
            with trace.span("sta.build_graph"):
                graph = build_timing_graph(design)
        period = design.clock_period_ps
        if kernel == "serial":
            arrival, required, endpoint_slack, worst_pred = \
                _propagate_serial(graph, period)
            n_arcs = 2 * sum(len(out) for out in graph.fanout)
        else:
            arrival, required, endpoint_slack, worst_pred = \
                _propagate_csr(graph, period)
            n_arcs = 2 * graph.csr().num_edges
        metrics.inc("sta.full_runs")
        # Forward + backward pass each visit every arc once.
        metrics.inc("sta.arc_propagations", n_arcs)
        span.set(arcs=n_arcs)

    return TimingReport(clock_period_ps=period, graph=graph,
                        arrival=arrival, required=required,
                        endpoint_slack=endpoint_slack,
                        worst_pred=worst_pred)
