"""Per-net what-if analysis: the timing delta of toggling MLS.

Equation (1) of the paper decomposes a path's slack into the no-MLS
slack plus per-net deltas; this module computes those deltas exactly
for our delay model: re-route the net both ways, difference the driver
cell delay (load change) and each sink's Elmore delay, then restore
the original routing.  The oracle and the GNN's labels are built on
this primitive — it replaces the "iterative disconnection, rerouting
and slack recalculation" the paper calls computationally prohibitive,
at the scale of one net at a time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.design import Design
from repro.errors import TimingError
from repro.netlist.net import Net
from repro.route.router import GlobalRouter, RoutingResult
from repro.timing.delay import PORT_DRIVE_RES


@dataclass
class WhatIfDelta:
    """MLS-on minus MLS-off delays for one net (ps; negative = MLS
    helps)."""

    net_name: str
    applied: bool                       # a shared trunk edge materialized
    delta_driver_ps: float
    delta_sink_ps: dict[str, float] = field(default_factory=dict)

    def path_delta_ps(self, sink_full_name: str) -> float:
        """Delay delta seen by a path entering the net at *sink*."""
        return self.delta_driver_ps + self.delta_sink_ps.get(
            sink_full_name, 0.0)

    def worst_delta_ps(self) -> float:
        """The largest (most harmful) per-sink delta."""
        if not self.delta_sink_ps:
            return self.delta_driver_ps
        return self.delta_driver_ps + max(self.delta_sink_ps.values())

    def best_delta_ps(self) -> float:
        """The most favourable per-sink delta."""
        if not self.delta_sink_ps:
            return self.delta_driver_ps
        return self.delta_driver_ps + min(self.delta_sink_ps.values())


def _driver_resistance(net: Net) -> float:
    driver = net.driver
    if driver is None:
        raise TimingError(f"net {net.name} has no driver for what-if")
    if driver.owner is not None:
        return driver.owner.cell.drive_res
    return PORT_DRIVE_RES


def net_whatif_delta(design: Design, router: GlobalRouter,
                     result: RoutingResult, net: Net) -> WhatIfDelta:
    """Compute the MLS-on vs MLS-off delta for *net*.

    Non-destructive: probes both configurations against the current
    congestion state without committing either, so neither the routing
    result nor the grid changes.
    """
    rc_off, rc_on, applied = router.probe_net(result, net)

    drive = _driver_resistance(net)
    delta_driver = drive * (rc_on.load_ff - rc_off.load_ff) / 1000.0
    delta_sinks = {
        name: rc_on.sink_delay_ps.get(name, 0.0) - off_delay
        for name, off_delay in rc_off.sink_delay_ps.items()
    }
    return WhatIfDelta(net_name=net.name, applied=applied,
                       delta_driver_ps=delta_driver,
                       delta_sink_ps=delta_sinks)
