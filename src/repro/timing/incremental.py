"""Incremental timing: per-net what-if deltas and exact delta STA.

Two engines live here:

* :func:`net_whatif_delta` — equation (1) of the paper: the slack
  delta of toggling MLS on one net, computed by probing both routings
  and differencing the driver cell delay (load change) and each
  sink's Elmore delay.  The oracle and the GNN's labels are built on
  this primitive.

* :class:`IncrementalSta` — an **exact** incremental STA over the
  levelized CSR timing graph.  ``update(changed_nets)`` patches only
  the arc delays the reroutes actually touched (net arcs + the driver
  cell's load-dependent arcs + load-dependent launch delays), seeds a
  frontier from those pins, and re-propagates forward/backward only
  while values change.  The resulting :class:`TimingReport` is equal
  — arrivals, requireds, endpoint slacks and ``worst_pred``
  tie-breaks — to a from-scratch :func:`repro.timing.sta.run_sta`.

  The incremental contract covers *routing* changes only: the pin
  graph's structure is routing-invariant, so reroutes are pure delay
  patches.  **Structural netlist edits** (buffer insertion, scan
  stitching, DFT net splitting, level shifters) add or remove pins
  and arcs and require a fresh :class:`IncrementalSta`; ``update``
  detects unknown pins/arcs and raises :class:`TimingError` rather
  than returning a stale report.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Iterable

from repro.design import Design
from repro.errors import TimingError
from repro.netlist.net import Net
from repro.obs import metrics, trace
from repro.route.router import GlobalRouter, RoutingResult
from repro.timing.delay import (PORT_DRIVE_RES, cell_output_delay,
                                port_drive_delay)
from repro.timing.graph import (TimingGraph, _is_false_path_pin,
                                build_timing_graph)
from repro.timing.sta import TimingReport, _propagate_csr

_NEG_INF = -math.inf
_POS_INF = math.inf


@dataclass
class WhatIfDelta:
    """MLS-on minus MLS-off delays for one net (ps; negative = MLS
    helps)."""

    net_name: str
    applied: bool                       # a shared trunk edge materialized
    delta_driver_ps: float
    delta_sink_ps: dict[str, float] = field(default_factory=dict)

    def path_delta_ps(self, sink_full_name: str) -> float:
        """Delay delta seen by a path entering the net at *sink*."""
        return self.delta_driver_ps + self.delta_sink_ps.get(
            sink_full_name, 0.0)

    def worst_delta_ps(self) -> float:
        """The largest (most harmful) per-sink delta."""
        if not self.delta_sink_ps:
            return self.delta_driver_ps
        return self.delta_driver_ps + max(self.delta_sink_ps.values())

    def best_delta_ps(self) -> float:
        """The most favourable per-sink delta."""
        if not self.delta_sink_ps:
            return self.delta_driver_ps
        return self.delta_driver_ps + min(self.delta_sink_ps.values())


def _driver_resistance(net: Net) -> float:
    driver = net.driver
    if driver is None:
        raise TimingError(f"net {net.name} has no driver for what-if")
    if driver.owner is not None:
        return driver.owner.cell.drive_res
    return PORT_DRIVE_RES


def net_whatif_delta(design: Design, router: GlobalRouter,
                     result: RoutingResult, net: Net) -> WhatIfDelta:
    """Compute the MLS-on vs MLS-off delta for *net*.

    Non-destructive: probes both configurations against the current
    congestion state without committing either, so neither the routing
    result nor the grid changes.
    """
    rc_off, rc_on, applied = router.probe_net(result, net)

    drive = _driver_resistance(net)
    delta_driver = drive * (rc_on.load_ff - rc_off.load_ff) / 1000.0
    delta_sinks = {
        name: rc_on.sink_delay_ps.get(name, 0.0) - off_delay
        for name, off_delay in rc_off.sink_delay_ps.items()
    }
    return WhatIfDelta(net_name=net.name, applied=applied,
                       delta_driver_ps=delta_driver,
                       delta_sink_ps=delta_sinks)


class IncrementalSta:
    """Exact incremental STA over a routing-invariant pin graph.

    Build once per (netlist structure, clock period); call
    :meth:`update` after targeted reroutes with the affected net
    names, or :meth:`update_routing` after a full re-route (it diffs
    every net's parasitics and patches only real changes).  Both
    return a report equal to a from-scratch :func:`run_sta`.

    The engine keeps the shared :class:`TimingGraph` (list-of-lists
    *and* CSR views) consistent with every patch, so the graph can
    still be handed to :func:`run_sta` directly at any time.
    """

    def __init__(self, design: Design, graph: TimingGraph | None = None):
        self.design = design
        self.graph = graph if graph is not None else \
            build_timing_graph(design)
        self.csr = self.graph.csr()
        self.period = design.clock_period_ps

        n = self.csr.n
        # Serial-order edge adjacency (eid lists ascending == the
        # order the reference loop visits arcs into/out of each pin).
        self._fanin_e: list[list[int]] = [[] for _ in range(n)]
        self._fanout_e: list[list[int]] = [[] for _ in range(n)]
        edge_src, edge_dst = self.csr.edge_src, self.csr.edge_dst
        for eid in range(self.csr.num_edges):
            self._fanout_e[edge_src[eid]].append(eid)
            self._fanin_e[edge_dst[eid]].append(eid)
        self._edge_ids = self.csr.edge_lookup()
        #: Plain-float shadow of csr.edge_delay for fast scalar reads.
        self._delay: list[float] = self.csr.edge_delay.tolist()

        self._rank = [0] * n
        for r, u in enumerate(self.graph.topo):
            self._rank[u] = r

        # Launch and endpoint constraints, replicating run_sta's init.
        self._launch: dict[int, float] = {}
        self._src_pos: dict[int, int] = {}
        for pos, (idx, launch) in enumerate(self.graph.sources):
            if launch > self._launch.get(idx, _NEG_INF):
                self._launch[idx] = launch
            self._src_pos[idx] = pos
        self._req_init: dict[int, float] = {}
        self._ep_entry: dict[int, tuple[str, float]] = {}
        for idx, setup in self.graph.endpoints:
            req = self.period - setup
            self._req_init[idx] = min(self._req_init.get(idx, _POS_INF),
                                      req)
            self._ep_entry[idx] = (self.graph.pins[idx].full_name, req)

        arrival, required, endpoint_slack, worst_pred = \
            _propagate_csr(self.graph, self.period)
        self._arrival = arrival
        self._required = required
        self._worst_pred = worst_pred
        self._endpoint_slack = endpoint_slack

    # -- arc-delay patching --------------------------------------------------

    def _pin_idx(self, full_name: str) -> int:
        try:
            return self.graph.pin_index[full_name]
        except KeyError:
            raise TimingError(
                f"pin {full_name} not in timing graph — the netlist "
                f"changed structurally; rebuild the IncrementalSta"
            ) from None

    def _net_arc_updates(self, net: Net
                         ) -> tuple[list[tuple[int, int, float]],
                                    tuple[int, float] | None]:
        """(arc updates, launch update) implied by *net*'s current RC.

        Mirrors ``build_timing_graph`` exactly: the net's wire arcs,
        the driver cell's load-dependent arcs (combinational) or
        launch delay (sequential / input port).
        """
        routing = self.design.require_routing()
        rc = routing.rc.get(net.name)
        updates: list[tuple[int, int, float]] = []
        launch: tuple[int, float] | None = None
        driver = net.driver
        if driver is None or net.is_clock:
            return updates, launch
        src = self._pin_idx(driver.full_name)
        for sink in net.sinks:
            if _is_false_path_pin(sink):
                continue
            wire = 0.0
            if rc is not None:
                wire = rc.sink_delay_ps.get(sink.full_name, 0.0)
            updates.append((src, self._pin_idx(sink.full_name), wire))

        inst = driver.owner
        if inst is None:                     # input-port pad driver
            port = driver.port
            if port is not None and not port.false_path:
                load = rc.load_ff if rc is not None else 0.0
                launch = (src, port_drive_delay(load))
        else:
            load = rc.load_ff if rc is not None else net.sink_cap_ff()
            delay = cell_output_delay(inst.cell, load)
            if inst.is_sequential:
                launch = (src, delay)
            else:
                for pin in inst.input_pins():
                    if _is_false_path_pin(pin):
                        continue
                    updates.append((self._pin_idx(pin.full_name), src,
                                    delay))
        return updates, launch

    def _patch_edge(self, eid: int, delay: float) -> None:
        """Set one arc's delay in every view of the graph."""
        metrics.inc("sta.inc.arcs_patched")
        self._delay[eid] = delay
        self.csr.edge_delay[eid] = delay
        src = int(self.csr.edge_src[eid])
        dst = int(self.csr.edge_dst[eid])
        self.graph.fanout[src][self.csr.edge_fout_pos[eid]] = (dst, delay)
        self.graph.fanin[dst][self.csr.edge_fin_pos[eid]] = (src, delay)

    def _apply_net(self, net: Net, fwd: set[int], bwd: set[int]) -> None:
        updates, launch = self._net_arc_updates(net)
        for src, dst, delay in updates:
            eids = self._edge_ids.get((src, dst))
            if eids is None:
                raise TimingError(
                    f"arc {self.graph.pins[src].full_name} -> "
                    f"{self.graph.pins[dst].full_name} not in timing "
                    f"graph — the netlist changed structurally; "
                    f"rebuild the IncrementalSta")
            for eid in eids:
                if self._delay[eid] != delay:
                    self._patch_edge(eid, delay)
                    fwd.add(dst)
                    bwd.add(src)
        if launch is not None:
            idx, value = launch
            if self._launch.get(idx, _NEG_INF) != value:
                self._launch[idx] = value
                pos = self._src_pos[idx]
                self.graph.sources[pos] = (idx, value)
                self.csr.src_launch[pos] = value
                fwd.add(idx)

    # -- frontier re-propagation ---------------------------------------------

    def _recompute_arrival(self, v: int) -> tuple[float, int]:
        """Arrival + worst predecessor of *v*, serial tie-break."""
        best = self._launch.get(v, _NEG_INF)
        pred = -1
        arrival = self._arrival
        delay = self._delay
        edge_src = self.csr.edge_src
        for eid in self._fanin_e[v]:
            u = edge_src[eid]
            au = arrival[u]
            if au == _NEG_INF:
                continue
            cand = au + delay[eid]
            if cand > best:
                best = cand
                pred = int(u)
        return best, pred

    def _recompute_required(self, u: int) -> float:
        best = self._req_init.get(u, _POS_INF)
        required = self._required
        delay = self._delay
        edge_dst = self.csr.edge_dst
        for eid in self._fanout_e[u]:
            cand = required[edge_dst[eid]] - delay[eid]
            if cand < best:
                best = cand
        return best

    def _update_endpoint(self, idx: int) -> None:
        entry = self._ep_entry.get(idx)
        if entry is None:
            return
        name, req = entry
        at = self._arrival[idx]
        if at == _NEG_INF:
            self._endpoint_slack.pop(name, None)
        else:
            self._endpoint_slack[name] = req - at

    def _repropagate(self, fwd: set[int], bwd: set[int]) -> None:
        rank = self._rank
        heap = [(rank[v], v) for v in fwd]
        heapq.heapify(heap)
        queued = set(fwd)
        while heap:
            _, v = heapq.heappop(heap)
            queued.discard(v)
            new_a, new_p = self._recompute_arrival(v)
            self._worst_pred[v] = new_p
            if new_a != self._arrival[v]:
                self._arrival[v] = new_a
                self._update_endpoint(v)
                for eid in self._fanout_e[v]:
                    d = int(self.csr.edge_dst[eid])
                    if d not in queued:
                        queued.add(d)
                        heapq.heappush(heap, (rank[d], d))

        heap = [(-rank[u], u) for u in bwd]
        heapq.heapify(heap)
        queued = set(bwd)
        while heap:
            _, u = heapq.heappop(heap)
            queued.discard(u)
            new_r = self._recompute_required(u)
            if new_r != self._required[u]:
                self._required[u] = new_r
                for eid in self._fanin_e[u]:
                    s = int(self.csr.edge_src[eid])
                    if s not in queued:
                        queued.add(s)
                        heapq.heappush(heap, (-rank[s], s))

    # -- public API ----------------------------------------------------------

    def update(self, changed_nets: Iterable[str]) -> TimingReport:
        """Patch the delays of *changed_nets* and re-propagate.

        Pass the names of every net whose routing changed since the
        last update (the rerouted nets themselves — their driver-cell
        load arcs are patched automatically).  Returns a report equal
        to a from-scratch :func:`run_sta`.
        """
        if self.design.clock_period_ps != self.period:
            return self._rebind_period(changed_nets)
        netlist = self.design.netlist
        fwd: set[int] = set()
        bwd: set[int] = set()
        for name in changed_nets:
            self._apply_net(netlist.net(name), fwd, bwd)
        metrics.inc("sta.inc.updates")
        metrics.observe("sta.inc.frontier", len(fwd) + len(bwd))
        if fwd or bwd:
            self._repropagate(fwd, bwd)
        return self.report()

    def update_routing(self) -> TimingReport:
        """Re-sync against the design's current routing result.

        Diffs **every** signal net's parasitics against the stored arc
        delays and patches only real changes — the cheap way to follow
        a full re-route, where most nets route identically and only
        the neighborhood of the toggled MLS nets actually moves.
        """
        with trace.span("sta.update_routing"):
            return self.update(net.name
                               for net in self.design.netlist.signal_nets())

    def _rebind_period(self, changed_nets: Iterable[str]) -> TimingReport:
        """Clock constraint changed: refresh constraints, full pass."""
        self.period = self.design.clock_period_ps
        self._req_init.clear()
        self._ep_entry.clear()
        for idx, setup in self.graph.endpoints:
            req = self.period - setup
            self._req_init[idx] = min(self._req_init.get(idx, _POS_INF),
                                      req)
            self._ep_entry[idx] = (self.graph.pins[idx].full_name, req)
        netlist = self.design.netlist
        fwd: set[int] = set()
        bwd: set[int] = set()
        for name in changed_nets:
            self._apply_net(netlist.net(name), fwd, bwd)
        arrival, required, endpoint_slack, worst_pred = \
            _propagate_csr(self.graph, self.period)
        self._arrival = arrival
        self._required = required
        self._worst_pred = worst_pred
        self._endpoint_slack = endpoint_slack
        return self.report()

    def report(self) -> TimingReport:
        """A fresh :class:`TimingReport` of the current state."""
        return TimingReport(clock_period_ps=self.period, graph=self.graph,
                            arrival=list(self._arrival),
                            required=list(self._required),
                            endpoint_slack=dict(self._endpoint_slack),
                            worst_pred=list(self._worst_pred))
