"""Post-placement repeater insertion.

Two transforms, applied net by net (clock nets excluded):

1. **Fanout clustering** — sinks are bucketed into square clusters of
   side ``l_buf``; every cluster that is far from the driver (or when
   the net exceeds the fanout cap) gets a buffer at its centroid, and
   the cluster's sinks move behind it.
2. **Repeater chains** — any remaining sink farther than ``l_buf``
   (manhattan) from the driver gets buffers every ``l_buf`` along the
   L-path toward it.

Inserted buffers are placed at their geometric target (gcell-level
accuracy is all routing needs), assigned to the driver's tier, and
tagged ``attrs["buffered"]`` for reporting.  The pass is deterministic
and idempotent for nets it has already shortened.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.design import Design
from repro.errors import PlacementError
from repro.netlist.net import Net, Pin

#: Default maximum unbuffered manhattan span, um.
DEFAULT_L_BUF_UM = 40.0
#: Default maximum sinks a single driver serves directly.
DEFAULT_MAX_FANOUT = 8
#: Library cell used as repeater.
BUFFER_CELL = "BUF_X4"


@dataclass
class BufferingStats:
    """What the pass did — reported in flow summaries."""

    nets_processed: int = 0
    nets_buffered: int = 0
    buffers_added: int = 0

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return (f"buffered {self.nets_buffered}/{self.nets_processed} nets "
                f"with {self.buffers_added} repeaters")


def _manhattan(a: tuple[float, float], b: tuple[float, float]) -> float:
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


class _Inserter:
    """Shared machinery: creates placed, tier-assigned buffers."""

    def __init__(self, design: Design):
        self.design = design
        self.netlist = design.netlist
        self.placement = design.require_placement()
        self.tiers = design.require_tiers()
        self.stats = BufferingStats()

    def _library_for_tier(self, tier: int):
        region = "logic" if tier == 0 else "memory"
        return self.design.tech.libraries[region]

    def new_buffer(self, x: float, y: float, tier: int) -> tuple:
        """Create a placed buffer; returns (instance, in_pin, out_net)."""
        netlist = self.netlist
        lib = self._library_for_tier(tier)
        cell = lib.get(BUFFER_CELL)
        inst = netlist.add_instance(netlist.fresh_name("rbuf"), cell)
        inst.attrs["region"] = "logic" if tier == 0 else "memory"
        inst.attrs["buffered"] = "1"
        self.tiers.set_instance(inst.name, tier)
        fp = self.design.require_floorplan()
        cx, cy = fp.clamp(x, y)
        self.placement.set_instance(inst.name, cx, cy)
        out_net = netlist.add_net(netlist.fresh_name(f"{inst.name}_y"))
        out_net.attach(inst.output_pin)
        self.stats.buffers_added += 1
        return inst, inst.pin("A"), out_net

    def loc_of(self, pin: Pin) -> tuple[float, float]:
        loc = self.placement.of_pin(pin)
        return loc.x, loc.y

    def tier_of(self, pin: Pin) -> int:
        return self.placement.of_pin(pin).tier


def insert_buffers(design: Design, l_buf_um: float = DEFAULT_L_BUF_UM,
                   max_fanout: int = DEFAULT_MAX_FANOUT) -> BufferingStats:
    """Run the pass over every signal net of *design* (in place).

    Must run after placement and before routing; raises if unplaced.
    """
    if l_buf_um <= 0:
        raise PlacementError("l_buf_um must be positive")
    if max_fanout < 2:
        raise PlacementError("max_fanout must be >= 2")
    ins = _Inserter(design)
    # Materialize the net list first: the pass adds nets as it runs.
    nets = list(design.netlist.signal_nets())
    for net in nets:
        ins.stats.nets_processed += 1
        before = ins.stats.buffers_added
        _buffer_net(ins, net, l_buf_um, max_fanout)
        if ins.stats.buffers_added > before:
            ins.stats.nets_buffered += 1
    design.notes["buffering"] = ins.stats
    return ins.stats


def buffer_nets(design: Design, net_names: Iterable[str],
                l_buf_um: float = DEFAULT_L_BUF_UM,
                max_fanout: int = DEFAULT_MAX_FANOUT) -> BufferingStats:
    """Run the repeater pass on a specific net set (ECO buffering).

    Used after post-routing surgery (the MLS DFT repairs) to restore
    drive on the rebuilt nets.  New buffer output nets are created
    unrouted; the caller routes them.
    """
    ins = _Inserter(design)
    for name in net_names:
        net = design.netlist.net(name)
        if net.is_clock:
            continue
        ins.stats.nets_processed += 1
        before = ins.stats.buffers_added
        _buffer_net(ins, net, l_buf_um, max_fanout)
        if ins.stats.buffers_added > before:
            ins.stats.nets_buffered += 1
    return ins.stats


def _buffer_net(ins: _Inserter, root: Net, l_buf: float,
                max_fanout: int) -> None:
    """Recursive buffer-tree construction for one net.

    A worklist of nets; each is clustered geometrically until it obeys
    both the fanout cap and the span limit, with sub-cluster nets
    re-queued.  Finally any still-distant sink gets a repeater chain.
    """
    # Scan-shift (SI) and static test/scan-enable sinks are exempt:
    # they are false paths, and restructuring them would break the
    # stitched scan chain.  Nets driven by false-path ports (test
    # mode, scan enable) are skipped wholesale.
    drv = root.driver
    if drv is not None and drv.port is not None and drv.port.false_path:
        return
    worklist = [root]
    while worklist:
        net = worklist.pop()
        driver = net.driver
        if driver is None:
            continue
        dloc = ins.loc_of(driver)
        dtier = ins.tier_of(driver)
        sinks = [s for s in net.sinks if s.name not in ("SI", "SE")]
        far = [s for s in sinks
               if _manhattan(dloc, ins.loc_of(s)) > l_buf]
        if len(sinks) <= max_fanout and not far:
            continue
        if len(sinks) > 2:
            # Quadrant-split the sink bbox into up to 4 groups; each
            # multi-sink group goes behind a centroid buffer and is
            # re-queued (its span halves every level, so this
            # terminates).  Coincident sinks split by count instead.
            locs = {s.full_name: ins.loc_of(s) for s in sinks}
            xs = [l[0] for l in locs.values()]
            ys = [l[1] for l in locs.values()]
            span = (max(xs) - min(xs)) + (max(ys) - min(ys))
            groups: list[list[Pin]]
            if span < 1.0:
                groups = [sinks[i:i + max_fanout]
                          for i in range(0, len(sinks), max_fanout)]
            else:
                xm = (max(xs) + min(xs)) / 2.0
                ym = (max(ys) + min(ys)) / 2.0
                quad: dict[tuple[bool, bool], list[Pin]] = {}
                for s in sinks:
                    lx, ly = locs[s.full_name]
                    quad.setdefault((lx >= xm, ly >= ym), []).append(s)
                groups = [quad[k] for k in sorted(quad)]
            if len(groups) > 1 or len(groups[0]) < len(sinks):
                for group in groups:
                    if len(group) == 1 and _manhattan(
                            dloc, ins.loc_of(group[0])) <= l_buf:
                        continue    # already fine directly on the root
                    cx = sum(ins.loc_of(s)[0] for s in group) / len(group)
                    cy = sum(ins.loc_of(s)[1] for s in group) / len(group)
                    _, in_pin, out_net = ins.new_buffer(cx, cy, dtier)
                    for s in group:
                        net.detach(s)
                        out_net.attach(s)
                    net.attach(in_pin)
                    worklist.append(out_net)
                # Root net now feeds <= 4 group buffers (+ near
                # singles); fall through to the chain step below.
        _chain_long_sinks(ins, net, l_buf)


def _chain_long_sinks(ins: _Inserter, net: Net, l_buf: float) -> None:
    """Step 2: repeater chains toward any still-distant sink."""
    driver = net.driver
    if driver is None:
        return
    dloc = ins.loc_of(driver)
    dtier = ins.tier_of(driver)
    for sink in list(net.sinks):
        if sink.name in ("SI", "SE"):
            continue
        sloc = ins.loc_of(sink)
        dist = _manhattan(dloc, sloc)
        if dist <= l_buf:
            continue
        hops = int(dist // l_buf)
        # Walk the L-path (x first then y), dropping a repeater every
        # l_buf; each repeater feeds the next, the last feeds the sink.
        current_net = net
        for h in range(1, hops + 1):
            t = h * l_buf / dist
            # Parametric point along the L-path.
            x_leg = abs(sloc[0] - dloc[0])
            walked = t * dist
            if walked <= x_leg:
                px = dloc[0] + (walked if sloc[0] >= dloc[0] else -walked)
                py = dloc[1]
            else:
                rem = walked - x_leg
                px = sloc[0]
                py = dloc[1] + (rem if sloc[1] >= dloc[1] else -rem)
            _, in_pin, out_net = ins.new_buffer(px, py, dtier)
            current_net.attach(in_pin)
            current_net = out_net
        net.detach(sink)
        current_net.attach(sink)
