"""Netlist optimization passes (physical-synthesis lite).

Commercial pseudo-3D flows rely on the 2D engine's buffering and
sizing; our reproduction provides the minimum equivalent so the timing
regime matches: :mod:`repro.opt.buffering` inserts repeaters on long
and high-fanout nets after placement, exactly once per design, shared
by every MLS flavor (No-MLS / SOTA / GNN route the *same* buffered
netlist, as in the paper's flow).
"""

from repro.opt.buffering import BufferingStats, buffer_nets, insert_buffers

__all__ = ["BufferingStats", "buffer_nets", "insert_buffers"]
