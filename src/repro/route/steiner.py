"""Rectilinear spanning topology construction.

Global routing at gcell resolution only needs edge lengths and rough
paths, so a rectilinear MST (Prim) with L-shaped edge realization is
the right fidelity/speed point: within ~10 % of RSMT length for the
fanouts in our designs, exact for 2-pin nets (the vast majority).
"""

from __future__ import annotations

import numpy as np

from repro.errors import RoutingError
from repro.netlist.net import Net
from repro.place.placement import Placement


def build_route_points(net: Net, placement: Placement
                       ) -> list[tuple[float, float, int, object]]:
    """Pin points of a net as (x, y, tier, pin), driver first."""
    if net.driver is None:
        raise RoutingError(f"net {net.name} has no driver to route from")
    points = []
    for pin in net.pins():
        loc = placement.of_pin(pin)
        points.append((loc.x, loc.y, loc.tier, pin))
    return points


def mst_parents(xs: np.ndarray, ys: np.ndarray) -> list[int]:
    """Prim MST parents under manhattan distance, rooted at index 0.

    Returns ``parent[i]`` for every node (parent[0] == -1).  O(n^2),
    fine for net fanouts (< 100 in our designs).
    """
    n = len(xs)
    if n == 0:
        raise RoutingError("mst_parents needs at least one point")
    parent = [-1] * n
    if n == 1:
        return parent
    in_tree = np.zeros(n, dtype=bool)
    in_tree[0] = True
    # best[i] = manhattan distance from i to its closest in-tree node
    best = np.abs(xs - xs[0]) + np.abs(ys - ys[0])
    best_src = np.zeros(n, dtype=int)
    best[0] = np.inf
    for _ in range(n - 1):
        nxt = int(np.argmin(best))
        if not np.isfinite(best[nxt]):
            raise RoutingError("point set is not connectable")  # pragma: no cover
        parent[nxt] = int(best_src[nxt])
        in_tree[nxt] = True
        dist = np.abs(xs - xs[nxt]) + np.abs(ys - ys[nxt])
        closer = (~in_tree) & (dist < best)
        best = np.where(closer, dist, best)
        best_src = np.where(closer, nxt, best_src)
        best[nxt] = np.inf
    return parent


def footprint_gcells(xs: np.ndarray, ys: np.ndarray, parents: list[int],
                     gcell: float, nx: int, ny: int
                     ) -> frozenset[tuple[int, int]]:
    """Every gcell a net's routing can read or write.

    The union of the L-path cells over the net's MST edges.  Because
    the MST and the L-realization depend only on pin locations — never
    on congestion — this is computable *before* routing, and it bounds
    all ``path_load``/``f2f_load`` queries and all usage updates the
    router performs for the net (F2F pads sit on path endpoints, which
    are path cells).  Two nets with disjoint footprints therefore
    route independently: neither can observe the other's grid usage.
    """
    cells: set[tuple[int, int]] = set()
    for child in range(1, len(parents)):
        parent = parents[child]
        cells.update(l_path_gcells(xs[parent], ys[parent],
                                   xs[child], ys[child], gcell, nx, ny))
    return frozenset(cells)


def l_path_gcells(x0: float, y0: float, x1: float, y1: float,
                  gcell: float, nx: int, ny: int) -> list[tuple[int, int]]:
    """Gcells crossed by an L-route (horizontal-then-vertical).

    Deterministic lower-L realization; returns unique (ix, iy) pairs
    clamped to the grid.
    """
    def clamp(v: int, hi: int) -> int:
        return min(max(v, 0), hi - 1)

    ix0, iy0 = clamp(int(x0 / gcell), nx), clamp(int(y0 / gcell), ny)
    ix1, iy1 = clamp(int(x1 / gcell), nx), clamp(int(y1 / gcell), ny)
    cells: list[tuple[int, int]] = []
    step = 1 if ix1 >= ix0 else -1
    for ix in range(ix0, ix1 + step, step):
        cells.append((ix, iy0))
    step = 1 if iy1 >= iy0 else -1
    for iy in range(iy0, iy1 + step, step):
        if (ix1, iy) != cells[-1]:
            cells.append((ix1, iy))
    return cells
