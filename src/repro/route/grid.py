"""Gcell congestion grid.

Tracks routing-track demand per (tier, layer-pair, gcell) and F2F-pad
demand per gcell.  Capacities derive from layer pitch and gcell size;
a configurable fraction of the *top* pair is reserved for the PDN —
that reservation is exactly the "remaining routing resources are
utilized for the 2D or MLS nets" coupling of Section III-E.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import RoutingError
from repro.place.floorplan import Floorplan
from repro.tech.layers import F2FVia, MetalStack


class UsageDelta:
    """Accumulated grid mutations, mergeable and appliable in one shot.

    Mirrors the :class:`CongestionGrid` mutation interface
    (``add_path``/``add_f2f``) so tree-usage walks can target either a
    live grid or a pending delta.  The wavefront router accumulates one
    delta per wave (committed wave-by-wave even inside a speculative
    multi-wave batch, so each wave's validation sees its predecessors'
    usage) — all contributions are integer-valued track/pad counts, so
    summing them here and adding once is bit-identical to the serial
    router's cell-by-cell increments.
    """

    def __init__(self) -> None:
        #: (tier, pair) -> {(ix, iy) -> accumulated delta}
        self.paths: dict[tuple[int, int], dict[tuple[int, int], float]] = {}
        #: (ix, iy) -> accumulated F2F pad delta
        self.f2f: dict[tuple[int, int], float] = {}

    def add_path(self, tier: int, pair: int,
                 cells: list[tuple[int, int]], delta: float = 1.0) -> None:
        plane = self.paths.setdefault((tier, pair), {})
        for cell in cells:
            plane[cell] = plane.get(cell, 0.0) + delta

    def add_f2f(self, ix: int, iy: int, delta: float = 1.0) -> None:
        cell = (ix, iy)
        self.f2f[cell] = self.f2f.get(cell, 0.0) + delta

    def merge(self, other: "UsageDelta") -> None:
        """Fold *other* into this delta (order-independent for the
        integer-valued contributions the router produces)."""
        for key, plane in other.paths.items():
            mine = self.paths.setdefault(key, {})
            for cell, delta in plane.items():
                mine[cell] = mine.get(cell, 0.0) + delta
        for cell, delta in other.f2f.items():
            self.f2f[cell] = self.f2f.get(cell, 0.0) + delta

    def is_empty(self) -> bool:
        return not any(self.paths.values()) and not self.f2f


class CongestionGrid:
    """Per-tier, per-pair track usage plus F2F pad usage."""

    def __init__(self, fp: Floorplan, stacks: tuple[MetalStack, MetalStack],
                 f2f: F2FVia, gcell_um: float = 5.0,
                 track_util: float = 0.5,
                 pdn_reserved: tuple[float, float] = (0.0, 0.0)):
        if gcell_um <= 0:
            raise RoutingError("gcell size must be positive")
        self.gcell = gcell_um
        self.nx = max(1, math.ceil(fp.width / gcell_um))
        self.ny = max(1, math.ceil(fp.height / gcell_um))
        self.stacks = stacks
        self.f2f = f2f
        self.pdn_reserved = pdn_reserved

        # capacity[tier][pair] = usable tracks crossing one gcell
        self.capacity: list[list[float]] = []
        self.usage: list[list[np.ndarray]] = []
        for tier, stack in enumerate(stacks):
            caps, usages = [], []
            pairs = stack.pairs()
            for pair_idx, (la, lb) in enumerate(pairs):
                pitch = (la.pitch_um + lb.pitch_um) / 2.0
                tracks = (gcell_um / pitch) * 2.0 * track_util
                if pair_idx == len(pairs) - 1:
                    tracks *= max(0.0, 1.0 - pdn_reserved[tier])
                caps.append(max(1.0, tracks))
                usages.append(np.zeros((self.nx, self.ny), dtype=np.float32))
            self.capacity.append(caps)
            self.usage.append(usages)

        # F2F pads: one per pitch^2 of gcell area, halved for power/gnd.
        self.f2f_cap = max(1.0, (gcell_um / f2f.pitch_um) ** 2 * 0.5)
        self.f2f_usage = np.zeros((self.nx, self.ny), dtype=np.float32)

    def num_pairs(self, tier: int) -> int:
        return len(self.capacity[tier])

    def top_pair(self, tier: int) -> int:
        return len(self.capacity[tier]) - 1

    def clamp_cell(self, x: float, y: float) -> tuple[int, int]:
        ix = min(max(int(x / self.gcell), 0), self.nx - 1)
        iy = min(max(int(y / self.gcell), 0), self.ny - 1)
        return ix, iy

    # -- demand queries ------------------------------------------------------

    def path_load(self, tier: int, pair: int,
                  cells: list[tuple[int, int]]) -> float:
        """Mean usage/capacity ratio along *cells* for (tier, pair).

        Mean (not max): a detailed router weaves around single hot
        gcells, so a path is only "full" at global-routing abstraction
        when congestion is sustained along it.
        """
        if not cells:
            return 0.0
        grid = self.usage[tier][pair]
        cap = self.capacity[tier][pair]
        total = sum(grid[ix, iy] for ix, iy in cells)
        return total / (cap * len(cells))

    def f2f_load(self, ix: int, iy: int) -> float:
        return float(self.f2f_usage[ix, iy]) / self.f2f_cap

    # -- mutation ---------------------------------------------------------------

    def add_path(self, tier: int, pair: int,
                 cells: list[tuple[int, int]], delta: float = 1.0) -> None:
        grid = self.usage[tier][pair]
        for ix, iy in cells:
            grid[ix, iy] += delta
        if delta < 0:
            np.clip(grid, 0.0, None, out=grid)

    def add_f2f(self, ix: int, iy: int, delta: float = 1.0) -> None:
        self.f2f_usage[ix, iy] += delta
        if self.f2f_usage[ix, iy] < 0:
            self.f2f_usage[ix, iy] = 0.0

    def export_state(self) -> tuple[list[list[np.ndarray]], np.ndarray]:
        """Copy of every usage array — the grid's full mutable state.

        Small (gcell counts × float32), so the wavefront router ships
        one per dispatched batch to its persistent workers; also handy
        for tests that byte-compare grid state around probe operations.
        """
        return ([[plane.copy() for plane in tier] for tier in self.usage],
                self.f2f_usage.copy())

    def load_state(self,
                   state: tuple[list[list[np.ndarray]], np.ndarray]) -> None:
        """Overwrite usage arrays with an :meth:`export_state` copy."""
        planes, f2f = state
        for tier_dst, tier_src in zip(self.usage, planes):
            for dst, src in zip(tier_dst, tier_src):
                dst[:] = src
        self.f2f_usage[:] = f2f

    def apply_delta(self, delta: UsageDelta) -> None:
        """Commit an accumulated :class:`UsageDelta` to the live grid."""
        for (tier, pair), plane in delta.paths.items():
            grid = self.usage[tier][pair]
            clip = False
            for (ix, iy), d in plane.items():
                grid[ix, iy] += d
                clip = clip or d < 0
            if clip:
                np.clip(grid, 0.0, None, out=grid)
        for (ix, iy), d in delta.f2f.items():
            self.add_f2f(ix, iy, d)

    # -- reporting ---------------------------------------------------------------

    def overflow_cells(self, tier: int, pair: int) -> int:
        """Number of gcells where demand exceeds capacity."""
        return int((self.usage[tier][pair] > self.capacity[tier][pair]).sum())

    def utilization(self, tier: int, pair: int) -> float:
        """Mean demand / capacity over the grid for (tier, pair)."""
        return float(self.usage[tier][pair].mean()
                     / self.capacity[tier][pair])

    def summary(self) -> dict[str, float]:
        out: dict[str, float] = {
            "f2f_peak": float(self.f2f_usage.max()) / self.f2f_cap,
        }
        for tier in range(len(self.usage)):
            for pair in range(self.num_pairs(tier)):
                key = f"t{tier}p{pair}"
                out[f"util_{key}"] = self.utilization(tier, pair)
                out[f"overflow_{key}"] = self.overflow_cells(tier, pair)
        return out
