"""Congestion-aware global router with Metal Layer Sharing.

Routing policy per net (long nets first, as commercial routers prioritize):

1. Build a rectilinear MST over pin locations, rooted at the driver.
2. For each tree edge, pick a layer pair by length, falling back to a
   less-congested pair (or taking a detour penalty) when the bbox path
   is full — the top pair shares capacity with the PDN.
3. Cross-tier edges take one F2F via plus the via stacks to reach the
   bond interface.
4. If the net is MLS-enabled and 2-D, trunk edges above a length
   threshold are instead routed on the *other tier's top pair* through
   two F2F vias ("2d-shared"), provided that pair and the F2F pads
   have headroom; otherwise the edge silently falls back to normal
   routing (matching how indiscriminate SOTA requests saturate the
   shared resource).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.design import Design
from repro.errors import RoutingError
from repro.netlist.net import Net
from repro.obs import metrics, trace
from repro.parallel import ParallelConfig, SnapshotPool
from repro.route.grid import CongestionGrid, UsageDelta
from repro.route.rc import NetRC, extract_rc
from repro.route.steiner import (build_route_points, footprint_gcells,
                                 l_path_gcells, mst_parents)
from repro.route.tree import RouteEdge, RouteTree

import numpy as np


@dataclass(frozen=True)
class RouteConfig:
    """Router knobs.  Defaults tuned for the benchmark floorplans."""

    gcell_um: float = 5.0
    track_util: float = 0.8
    #: Fraction of each tier's top pair reserved for PDN stripes.
    pdn_reserved: tuple[float, float] = (0.15, 0.15)
    #: MLS only pays off past this edge length; shorter edges stay home.
    mls_min_edge_um: float = 8.0
    #: Length multiplier when every pair along the path is full.
    detour_factor: float = 1.3
    #: Pair selection thresholds in um: below t[0] -> pair 0, etc.
    pair_thresholds: tuple[float, ...] = (20.0, 70.0, 170.0)
    #: Minimum modeled length for coincident pins (pin escape stub).
    min_edge_um: float = 0.5
    #: Home-tier lower-metal stub (um, per end) a shared edge spends
    #: reaching its F2F pad — the fixed cost that makes MLS a net
    #: *loss* for short nets (Table I's degraded net).
    mls_escape_um: float = 2.5
    #: Target milliseconds of estimated routing work per pool dispatch
    #: in wavefront mode.  Consecutive waves batch into one dispatch
    #: until they carry this much work (measured per-net cost, EWMA);
    #: nets in waves beyond the first route *speculatively* against
    #: the batch-boundary grid, and only footprint-conflicted nets
    #: replay serially (see ``_route_batch`` — results stay
    #: bit-identical to the serial schedule).  ``0`` disables
    #: batching: every wave is its own dispatch, as before.  Purely a
    #: scheduling knob — it never changes routing results.
    #: 16 ms balances dispatch amortization against replay waste: the
    #: bigger the batch, the more of it later waves invalidate.
    batch_ms: float = 16.0


#: Starting per-net routing cost estimate (seconds) before any
#: measurement; ~what a MAERI-class net costs on one core.
INIT_NET_COST_S = 1e-4
#: EWMA smoothing for the measured per-net cost.
COST_EWMA = 0.3


class RoutingResult:
    """Routed trees + parasitics + the live congestion grid."""

    def __init__(self, grid: CongestionGrid, config: RouteConfig):
        self.grid = grid
        self.config = config
        self.trees: dict[str, RouteTree] = {}
        self.rc: dict[str, NetRC] = {}

    def tree(self, net_name: str) -> RouteTree:
        try:
            return self.trees[net_name]
        except KeyError:
            raise RoutingError(f"net {net_name!r} is not routed") from None

    def net_rc(self, net_name: str) -> NetRC:
        try:
            return self.rc[net_name]
        except KeyError:
            raise RoutingError(f"net {net_name!r} has no parasitics") from None

    def wirelength_um(self) -> float:
        return sum(t.wirelength() for t in self.trees.values())

    def mls_applied_nets(self) -> set[str]:
        """Nets where at least one trunk edge actually went shared."""
        return {name for name, t in self.trees.items()
                if t.num_shared_edges() > 0}

    def f2f_via_count(self) -> int:
        return sum(t.f2f_count() for t in self.trees.values())

    def overflow_nets(self) -> int:
        return sum(1 for t in self.trees.values() if t.has_overflow())

    def stats(self) -> dict[str, float]:
        out = {
            "nets": len(self.trees),
            "wirelength_m": self.wirelength_um() * 1e-6,
            "mls_nets": len(self.mls_applied_nets()),
            "f2f_vias": self.f2f_via_count(),
            "overflow_nets": self.overflow_nets(),
        }
        out.update(self.grid.summary())
        return out


def _route_wave_chunk(state, grid_state,
                      names: list[str]) -> list[tuple[str, list]]:
    """Worker: route one chunk of a wave against the wave-boundary grid.

    ``grid_state`` is the caller's grid at the wave boundary; loading
    it first makes the worker's view exact regardless of which waves
    this process served before.  Each net then routes with
    ``commit=True`` so later edges of the *same* net see earlier
    edges' usage exactly as the serial router does, and releases its
    usage afterwards — every net of the wave thus observes the
    pristine wave-boundary grid (their footprints are disjoint, making
    that view identical to the serial schedule's).  Usage values are
    integer-valued, so the add/release round-trip restores the float32
    arrays bit-exactly; the in-process serial fallback of
    :class:`~repro.parallel.pool.SnapshotPool`, which runs against the
    caller's live router, relies on this restore.

    Only edges travel back: they are flat dataclasses, while nodes
    reference :class:`~repro.netlist.net.Pin` objects whose graph must
    not be re-pickled per result (the caller rebuilds nodes).
    """
    router, mls_names = state
    router.grid.load_state(grid_state)
    out = []
    for name in names:
        net = router.design.netlist.net(name)
        tree = router._route_net(net, mls=name in mls_names, commit=True)
        router._apply_tree_usage(tree, -1.0)
        out.append((name, tree.edges))
    return out


def desired_pair(length_um: float, n_pairs: int,
                 thresholds: tuple[float, ...]) -> int:
    """Length-based preferred layer pair (0 = lowest metals)."""
    for idx, limit in enumerate(thresholds):
        if length_um < limit:
            return min(idx, n_pairs - 1)
    return n_pairs - 1


class GlobalRouter:
    """Routes one design; supports per-net re-route for what-if STA."""

    def __init__(self, design: Design, config: RouteConfig | None = None):
        self.design = design
        self.cfg = config or RouteConfig()
        placement = design.require_placement()
        fp = design.require_floorplan()
        self.placement = placement
        self.grid = CongestionGrid(
            fp, design.tech.stacks, design.tech.f2f,
            gcell_um=self.cfg.gcell_um, track_util=self.cfg.track_util,
            pdn_reserved=self.cfg.pdn_reserved)

    # -- public API -----------------------------------------------------------

    def route_all(self, mls_nets: set[str] | frozenset = frozenset(),
                  parallel: ParallelConfig | None = None) -> RoutingResult:
        """Route every signal net; attach the result to the design.

        With a multi-worker *parallel* config the nets are routed in
        wavefront order (see :meth:`_route_all_wavefront`); the trees,
        parasitics, congestion arrays and :meth:`RoutingResult.stats`
        are bit-identical to the serial long-nets-first schedule at any
        worker count.
        """
        result = RoutingResult(self.grid, self.cfg)
        nets = self.design.netlist.signal_nets()
        # Long nets first: they claim upper layers before congestion.
        ordered = sorted(nets, key=lambda n: (-self._est_len(n), n.name))
        wavefront = parallel is not None \
            and parallel.should_parallelize(
                len(ordered), est_item_cost_s=INIT_NET_COST_S)
        with trace.span("route.all", nets=len(ordered),
                        mls_nets=len(mls_nets), wavefront=wavefront):
            if wavefront:
                self._route_all_wavefront(result, ordered,
                                          frozenset(mls_nets), parallel)
            else:
                for net in ordered:
                    self._commit_net(result, net,
                                     mls=net.name in mls_nets)
        metrics.inc("route.full_routes")
        metrics.inc("route.nets_routed", len(ordered))
        metrics.inc("route.overflow_nets", result.overflow_nets())
        self.design.routing = result
        self.design.mls_nets = set(mls_nets)
        return result

    def _est_len(self, net: Net) -> float:
        x0, y0, x1, y1 = self.placement.net_bbox(net)
        return (x1 - x0) + (y1 - y0)

    def _commit_net(self, result: RoutingResult, net: Net,
                    mls: bool) -> None:
        """Serial inner loop: route one net and record tree + RC."""
        tree = self._route_net(net, mls=mls, commit=True)
        result.trees[net.name] = tree
        result.rc[net.name] = extract_rc(
            tree, self.design.tech.stacks, self.design.tech.f2f)

    # -- wavefront scheduling ------------------------------------------------

    def _route_all_wavefront(self, result: RoutingResult,
                             ordered: list[Net], mls_nets: frozenset,
                             parallel: ParallelConfig) -> None:
        """Route *ordered* as a sequence of disjoint-footprint waves.

        A wave is a maximal run of **consecutive** nets (in the serial
        long-nets-first order) whose gcell footprints are pairwise
        disjoint.  Within such a run, net *m*'s congestion queries only
        touch its own footprint, which no earlier net of the run
        writes — so routing every net of the wave against the grid
        state at the wave boundary reproduces the serial result
        exactly.  Waves route concurrently via
        :func:`repro.parallel.snapshot_map` against a read-only
        snapshot; usage and RC merge back in canonical (serial) net
        order, keeping dict ordering, float bit patterns and
        :meth:`RoutingResult.stats` identical to the serial router.

        MLS-requested nets contend for the other tier's top pair and
        its F2F pads — the shared resource every other MLS net also
        wants — so they are never packed with other nets: each one
        flushes the current batch and routes serially at the boundary.

        One wave per dispatch ships only microseconds of work, so
        consecutive waves accumulate into a **speculative batch** (see
        :meth:`_route_batch`) until the batch carries
        ``cfg.batch_ms`` of estimated routing work; the per-net cost
        estimate is an EWMA of measured batch/serial segment times, so
        batch sizing adapts to the design.  A batch whose estimated
        work cannot amortize a pool round-trip (the
        ``should_parallelize`` dispatch-overhead gate) routes serially
        instead — tiny fabrics never take a slower parallel path.

        One :class:`~repro.parallel.pool.SnapshotPool` serves the whole
        route: the heavy (router, mls set) snapshot ships to workers
        once, and each batch forwards only the current congestion-grid
        arrays, which workers load before routing their chunk.
        """
        footprints = {
            net.name: self._net_footprint(net) for net in ordered}
        est = INIT_NET_COST_S
        target_s = max(self.cfg.batch_ms, 0.0) * 1e-3

        with SnapshotPool((self, mls_nets), parallel) as pool:
            batch: list[list[Net]] = []
            batch_nets = 0

            def flush() -> None:
                nonlocal batch, batch_nets, est
                if not batch:
                    return
                n = batch_nets
                t0 = time.perf_counter()
                if parallel.should_parallelize(n, est_item_cost_s=est):
                    metrics.inc("route.wave_nets_parallel", n)
                    with trace.span("route.batch", waves=len(batch),
                                    nets=n):
                        self._route_batch(result, batch, pool,
                                          footprints, mls_nets)
                else:
                    metrics.inc("route.wave_nets_serial", n)
                    with trace.span("route.batch", waves=len(batch),
                                    nets=n, serial=True):
                        for wave in batch:
                            for net in wave:
                                self._commit_net(
                                    result, net,
                                    mls=net.name in mls_nets)
                est = (1.0 - COST_EWMA) * est \
                    + COST_EWMA * (time.perf_counter() - t0) / n
                batch = []
                batch_nets = 0

            index = 0
            while index < len(ordered):
                wave = self._pack_wave(ordered, index, mls_nets,
                                       footprints)
                index += len(wave)
                metrics.inc("route.waves")
                metrics.observe("route.wave_size", len(wave))
                if wave[0].name in mls_nets:
                    # MLS singleton: flush so it sees every earlier
                    # net's usage, then route at the live boundary.
                    flush()
                    metrics.inc("route.wave_nets_serial")
                    with trace.span("route.wave", size=1, serial=True):
                        self._commit_net(result, wave[0], mls=True)
                    continue
                batch.append(wave)
                batch_nets += len(wave)
                if batch_nets * est >= target_s:
                    flush()
            flush()

    def _net_footprint(self, net: Net) -> frozenset:
        """Gcells this net's routing may read or write (pre-routing)."""
        points = build_route_points(net, self.placement)
        xs = np.array([p[0] for p in points])
        ys = np.array([p[1] for p in points])
        parents = mst_parents(xs, ys)
        return footprint_gcells(xs, ys, parents, self.grid.gcell,
                                self.grid.nx, self.grid.ny)

    @staticmethod
    def _pack_wave(ordered: list[Net], start: int, mls_nets: frozenset,
                   footprints: dict[str, frozenset]) -> list[Net]:
        """Greedy maximal disjoint run of *ordered* beginning at *start*.

        MLS candidates are unpackable: one at *start* forms a singleton
        wave, one later stops the packing (serial fallback at the wave
        boundary).
        """
        first = ordered[start]
        wave = [first]
        if first.name in mls_nets:
            return wave
        occupied = set(footprints[first.name])
        for net in ordered[start + 1:]:
            footprint = footprints[net.name]
            if net.name in mls_nets or not occupied.isdisjoint(footprint):
                break
            wave.append(net)
            occupied.update(footprint)
        return wave

    def _route_batch(self, result: RoutingResult, waves: list[list[Net]],
                     pool: SnapshotPool, footprints: dict[str, frozenset],
                     mls_nets: frozenset) -> None:
        """Fan a batch of consecutive waves out in ONE pool dispatch.

        Workers route every net of the batch against the
        batch-boundary grid (releasing each net's usage after routing,
        as in single-wave mode), so nets in waves beyond the first are
        *speculative*: they did not see the usage earlier batch waves
        will commit before them in the serial schedule.  The merge
        walks waves in serial order and validates each speculative
        net: its (conservative, superset-of-reads-and-writes) gcell
        footprint must be disjoint from every cell the earlier waves
        of this batch touched — then the batch-boundary grid and the
        serial-schedule grid agree on everything the net read, and the
        speculative tree is exactly the serial tree.  Conflicted nets
        replay serially against the live grid; replay mid-wave is
        exact because same-wave footprints are pairwise disjoint, so a
        replayed net's reads are untouched by same-wave usage whether
        or not it is committed yet.  Each wave's accepted usage is
        committed (one :class:`UsageDelta`) before the next wave is
        validated, and trees/RC insert in serial net order — dict
        ordering, float bit patterns and stats all match the serial
        router.
        """
        names = [net.name for wave in waves for net in wave]
        metrics.inc("route.dispatches")
        metrics.inc("route.batches")
        metrics.observe("route.batch_waves", len(waves))
        rows = pool.map(_route_wave_chunk, names,
                        extra=self.grid.export_state())
        stacks, f2f = self.design.tech.stacks, self.design.tech.f2f
        written: set = set()
        row = 0
        for wave in waves:
            delta = UsageDelta()
            for net in wave:
                name, edges = rows[row]
                row += 1
                if written.isdisjoint(footprints[name]):
                    tree = self._rebuild_tree(name, edges)
                    self._apply_tree_usage(tree, +1.0, sink=delta)
                    metrics.inc("route.speculative_nets")
                else:
                    metrics.inc("route.replayed_nets")
                    tree = self._route_net(net, mls=name in mls_nets,
                                           commit=True)
                # Key with the tree's own name string: dict key and
                # ``NetRC.net_name`` must stay the *same object*, as
                # in the serial path, so snapshot pickles (which memo
                # shared strings) stay byte-identical.
                result.trees[tree.net_name] = tree
                result.rc[tree.net_name] = extract_rc(tree, stacks, f2f)
            self.grid.apply_delta(delta)
            for net in wave:
                written.update(footprints[net.name])

    def _rebuild_tree(self, net_name: str,
                      edges: list[RouteEdge]) -> RouteTree:
        """Reattach worker-routed edges to locally-built nodes.

        Workers ship edges only — nodes hold :class:`Pin` references
        whose object graph must stay the caller's.  Node construction
        is deterministic in the placement, so worker and caller agree
        on node indices.
        """
        net = self.design.netlist.net(net_name)
        tree = RouteTree(net_name)
        for x, y, tier, pin in build_route_points(net, self.placement):
            tree.add_node(x, y, tier, pin)
        for edge in edges:
            tree.add_edge(edge)
        return tree

    def reroute_net(self, result: RoutingResult, net: Net,
                    mls: bool) -> NetRC:
        """Re-route one net with/without MLS; updates *result* in place
        and returns the new parasitics.  Used by the what-if oracle and
        by targeted MLS application."""
        metrics.inc("route.reroutes")
        self.unroute_net(result, net)
        tree = self._route_net(net, mls=mls, commit=True)
        result.trees[net.name] = tree
        rc = extract_rc(tree, self.design.tech.stacks, self.design.tech.f2f)
        result.rc[net.name] = rc
        if mls and tree.num_shared_edges() > 0:
            self.design.mls_nets.add(net.name)
        else:
            self.design.mls_nets.discard(net.name)
        return rc

    def unroute_net(self, result: RoutingResult, net: Net) -> None:
        """Remove a net's tree and release its grid resources."""
        tree = result.trees.pop(net.name, None)
        result.rc.pop(net.name, None)
        if tree is None:
            return
        self._apply_tree_usage(tree, -1.0)

    def restore_net(self, result: RoutingResult, net: Net,
                    tree: "RouteTree", rc: NetRC) -> None:
        """Re-commit a previously extracted (tree, rc) snapshot.

        The exact inverse of a what-if :meth:`reroute_net`: re-routing
        the net a second time would route against *today's* congestion
        and may not reproduce the tree committed during the full
        route, whereas re-applying the saved tree restores grid usage
        bit-exactly (usage values are integer-valued).
        """
        self.unroute_net(result, net)
        result.trees[net.name] = tree
        result.rc[net.name] = rc
        self._apply_tree_usage(tree, +1.0)
        if tree.num_shared_edges() > 0:
            self.design.mls_nets.add(net.name)
        else:
            self.design.mls_nets.discard(net.name)

    def probe_net(self, result: RoutingResult, net: Net
                  ) -> tuple[NetRC, NetRC, bool]:
        """What-if both MLS states of *net* WITHOUT changing any state.

        Returns (rc_off, rc_on, applied) where ``applied`` says whether
        the MLS attempt actually produced shared trunk edges.  The
        net's committed route, the congestion grid and the result maps
        are bit-identical afterwards.
        """
        metrics.inc("route.probes")
        committed = result.tree(net.name)
        self._apply_tree_usage(committed, -1.0)
        try:
            tree_off = self._route_net(net, mls=False, commit=False)
            tree_on = self._route_net(net, mls=True, commit=False)
        finally:
            self._apply_tree_usage(committed, +1.0)
        stacks, f2f = self.design.tech.stacks, self.design.tech.f2f
        return (extract_rc(tree_off, stacks, f2f),
                extract_rc(tree_on, stacks, f2f),
                tree_on.num_shared_edges() > 0)

    def _apply_tree_usage(self, tree: RouteTree, sign: float,
                          sink: CongestionGrid | UsageDelta | None = None
                          ) -> None:
        """Add (+1) or release (-1) a tree's grid resources.

        *sink* defaults to the live grid; the wavefront merge passes a
        :class:`UsageDelta` instead to batch a whole wave's usage into
        one commit.
        """
        if sink is None:
            sink = self.grid
        for edge in tree.edges:
            pnode = tree.nodes[edge.parent]
            cnode = tree.nodes[edge.child]
            cells = l_path_gcells(pnode.x, pnode.y, cnode.x, cnode.y,
                                  self.grid.gcell, self.grid.nx, self.grid.ny)
            sink.add_path(edge.tier, edge.pair, cells, sign)
            if edge.shared:
                sink.add_f2f(*cells[0], sign)
                sink.add_f2f(*cells[-1], sign)
            elif edge.n_f2f:
                sink.add_f2f(*cells[0], sign * float(edge.n_f2f))

    # -- internals ----------------------------------------------------------------

    def _route_net(self, net: Net, mls: bool, commit: bool) -> RouteTree:
        points = build_route_points(net, self.placement)
        tree = RouteTree(net.name)
        xs = np.array([p[0] for p in points])
        ys = np.array([p[1] for p in points])
        for x, y, tier, pin in points:
            tree.add_node(x, y, tier, pin)
        parents = mst_parents(xs, ys)

        tiers_touched = {p[2] for p in points}
        home_tier = points[0][2]
        is_2d = len(tiers_touched) == 1

        for child in range(1, len(points)):
            parent = parents[child]
            pnode, cnode = tree.nodes[parent], tree.nodes[child]
            length = max(self.cfg.min_edge_um,
                         abs(pnode.x - cnode.x) + abs(pnode.y - cnode.y))
            cells = l_path_gcells(pnode.x, pnode.y, cnode.x, cnode.y,
                                  self.grid.gcell, self.grid.nx, self.grid.ny)
            edge = None
            if mls and is_2d and length >= self.cfg.mls_min_edge_um:
                edge = self._try_shared_edge(parent, child, length,
                                             cells, home_tier, commit)
            if edge is None:
                edge = self._normal_edge(parent, child, length, cells,
                                         pnode.tier, cnode.tier, commit)
            tree.add_edge(edge)
        return tree

    def _try_shared_edge(self, parent: int, child: int, length: float,
                         cells, home_tier: int,
                         commit: bool) -> RouteEdge | None:
        """Attempt an MLS trunk edge on the other tier's top pair."""
        other = 1 - home_tier
        top_other = self.grid.top_pair(other)
        if self.grid.path_load(other, top_other, cells) >= 1.0:
            return None
        start, end = cells[0], cells[-1]
        if (self.grid.f2f_load(*start) >= 1.0
                or self.grid.f2f_load(*end) >= 1.0):
            return None
        top_own = self.grid.top_pair(home_tier)
        # Climb our own stack to the bond interface at both ends; the
        # other tier's top metals sit directly across the F2F bond.
        via_hops = 4 * top_own
        edge = RouteEdge(parent=parent, child=child, length=length,
                         tier=other, pair=top_other, via_hops=via_hops,
                         n_f2f=2, shared=True,
                         escape_um=2.0 * self.cfg.mls_escape_um)
        if commit:
            self.grid.add_path(other, top_other, cells, 1.0)
            self.grid.add_f2f(*start, 1.0)
            self.grid.add_f2f(*end, 1.0)
        return edge

    def _normal_edge(self, parent: int, child: int, length: float,
                     cells, ptier: int, ctier: int,
                     commit: bool) -> RouteEdge:
        tier = ptier
        n_pairs = self.grid.num_pairs(tier)
        want = desired_pair(length, n_pairs, self.cfg.pair_thresholds)
        # Preference order: desired, then progressively lower (cheaper
        # vias), then higher.
        order = [want] + list(range(want - 1, -1, -1)) \
            + list(range(want + 1, n_pairs))
        chosen, overflowed = want, True
        for pair in order:
            if self.grid.path_load(tier, pair, cells) < 1.0:
                chosen, overflowed = pair, False
                break
        if overflowed:
            length *= self.cfg.detour_factor
        via_hops = 4 * chosen
        n_f2f = 0
        if ptier != ctier:
            n_f2f = 1
            # Climb from the wire pair to our top, cross, descend to the
            # sink's lowest metals on the other tier.
            top_own = self.grid.top_pair(ptier)
            via_hops = 2 * chosen + 2 * (top_own - chosen) \
                + 2 * self.grid.top_pair(ctier)
        edge = RouteEdge(parent=parent, child=child, length=length,
                         tier=tier, pair=chosen, via_hops=via_hops,
                         n_f2f=n_f2f, overflowed=overflowed)
        if commit:
            self.grid.add_path(tier, chosen, cells, 1.0)
            if n_f2f:
                self.grid.add_f2f(*cells[0], float(n_f2f))
        return edge
