"""Elmore RC extraction on route trees.

Per net, computes the driver-visible load, total wire R/C (Table II
features), and per-sink Elmore delays.  Edge electricals come from the
assigned layer pair (mean of the two layers), intra-tier via stacks,
and F2F hybrid-bond vias — so the timing cost/benefit of MLS falls out
of the same model as ordinary routing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import RoutingError
from repro.route.tree import RouteTree
from repro.tech.layers import F2FVia, MetalStack
from repro.units import rc_to_ps


@dataclass
class NetRC:
    """Extracted parasitics of one routed net.

    ``sink_delay_ps`` maps sink pin full-name -> Elmore wire delay from
    the driver.  ``load_ff`` is what the driving cell sees: all wire,
    via and F2F capacitance plus sink pin caps.
    """

    net_name: str
    wire_cap_ff: float
    wire_res_ohm: float
    load_ff: float
    wirelength_um: float
    sink_delay_ps: dict[str, float] = field(default_factory=dict)

    def worst_sink_delay(self) -> float:
        return max(self.sink_delay_ps.values(), default=0.0)


def _edge_rc(edge, stacks: tuple[MetalStack, MetalStack],
             f2f: F2FVia) -> tuple[float, float]:
    """(R_ohm, C_ff) of one route edge."""
    stack = stacks[edge.tier]
    pairs = stack.pairs()
    if not 0 <= edge.pair < len(pairs):
        raise RoutingError(
            f"net {edge.parent}->{edge.child}: pair {edge.pair} out of "
            f"range for tier {edge.tier}")
    la, lb = pairs[edge.pair]
    r_um = (la.r_per_um + lb.r_per_um) / 2.0
    c_um = (la.c_per_um + lb.c_per_um) / 2.0
    r = r_um * edge.length + edge.via_hops * stack.via_r \
        + edge.n_f2f * f2f.resistance
    c = c_um * edge.length + edge.via_hops * stack.via_c \
        + edge.n_f2f * f2f.capacitance
    if edge.escape_um > 0.0:
        # MLS escape stubs run on the *home* tier's lowest pair.
        home = stacks[1 - edge.tier]
        ea, eb = home.pairs()[0]
        r += (ea.r_per_um + eb.r_per_um) / 2.0 * edge.escape_um
        c += (ea.c_per_um + eb.c_per_um) / 2.0 * edge.escape_um
    return r, c


def extract_rc(tree: RouteTree, stacks: tuple[MetalStack, MetalStack],
               f2f: F2FVia) -> NetRC:
    """Extract parasitics and per-sink Elmore delays for *tree*.

    Sink pin capacitances are read from the tree's pin-bearing nodes.
    """
    children = tree.children()
    n = len(tree.nodes)
    edge_rc = {(e.parent, e.child): _edge_rc(e, stacks, f2f)
               for e in tree.edges}

    # Post-order subtree capacitance (iterative to handle deep trees).
    subtree_cap = [0.0] * n
    order: list[int] = []
    stack = [0]
    while stack:
        u = stack.pop()
        order.append(u)
        for e in children.get(u, ()):
            stack.append(e.child)
    for u in reversed(order):
        cap = 0.0
        node = tree.nodes[u]
        if u != 0 and node.pin is not None:
            cap += node.pin.cap_ff
        for e in children.get(u, ()):
            cap += edge_rc[(u, e.child)][1] + subtree_cap[e.child]
        subtree_cap[u] = cap

    # Pre-order Elmore accumulation.
    delay = [0.0] * n
    stack = [0]
    while stack:
        u = stack.pop()
        for e in children.get(u, ()):
            r, c = edge_rc[(u, e.child)]
            delay[e.child] = delay[u] + rc_to_ps(
                r, c / 2.0 + subtree_cap[e.child])
            stack.append(e.child)

    total_r = sum(rc[0] for rc in edge_rc.values())
    total_c = sum(rc[1] for rc in edge_rc.values())
    sink_caps = sum(node.pin.cap_ff for node in tree.sink_nodes())
    sink_delays = {node.pin.full_name: delay[node.idx]
                   for node in tree.sink_nodes()}
    return NetRC(
        net_name=tree.net_name,
        wire_cap_ff=total_c,
        wire_res_ohm=total_r,
        load_ff=total_c + sink_caps,
        wirelength_um=tree.wirelength(),
        sink_delay_ps=sink_delays,
    )
