"""Routed-net representation: a tree of wire/via segments.

A :class:`RouteTree` is rooted at the net's driver pin.  Each edge
carries the physical annotation the RC extractor and the congestion
grid need: manhattan length, the tier the wire runs on, the layer-pair
index on that tier, intra-tier via-stack hops, and the number of F2F
hybrid-bond vias (2 for an MLS shared trunk, 1 per genuine tier
crossing of a 3-D net).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RoutingError
from repro.netlist.net import Pin


@dataclass
class RouteNode:
    """A point of the route tree (pin location or Steiner point)."""

    idx: int
    x: float
    y: float
    tier: int
    pin: Pin | None = None


@dataclass
class RouteEdge:
    """Directed tree edge parent -> child with physical annotation.

    ``length`` already includes any congestion detour.  ``pair`` is the
    layer-pair index on ``tier``'s metal stack (0 = M1/M2).  ``shared``
    marks an MLS trunk edge running on the *other* tier's metal.
    """

    parent: int
    child: int
    length: float
    tier: int
    pair: int
    via_hops: int = 0
    n_f2f: int = 0
    shared: bool = False
    overflowed: bool = False
    #: Home-tier lower-metal escape stubs (um, total both ends) a
    #: shared edge needs to reach its F2F pads.
    escape_um: float = 0.0


class RouteTree:
    """The routed topology of one net."""

    def __init__(self, net_name: str):
        self.net_name = net_name
        self.nodes: list[RouteNode] = []
        self.edges: list[RouteEdge] = []

    def add_node(self, x: float, y: float, tier: int,
                 pin: Pin | None = None) -> RouteNode:
        node = RouteNode(len(self.nodes), x, y, tier, pin)
        self.nodes.append(node)
        return node

    def add_edge(self, edge: RouteEdge) -> None:
        if not (0 <= edge.parent < len(self.nodes)
                and 0 <= edge.child < len(self.nodes)):
            raise RoutingError(
                f"net {self.net_name}: edge references unknown node")
        self.edges.append(edge)

    @property
    def root(self) -> RouteNode:
        if not self.nodes:
            raise RoutingError(f"net {self.net_name} has an empty tree")
        return self.nodes[0]

    def sink_nodes(self) -> list[RouteNode]:
        return [n for n in self.nodes[1:] if n.pin is not None]

    def children(self) -> dict[int, list[RouteEdge]]:
        """parent idx -> outgoing edges."""
        out: dict[int, list[RouteEdge]] = {}
        for edge in self.edges:
            out.setdefault(edge.parent, []).append(edge)
        return out

    def wirelength(self) -> float:
        """Total routed wire length in um (vias excluded)."""
        return sum(e.length for e in self.edges)

    def f2f_count(self) -> int:
        return sum(e.n_f2f for e in self.edges)

    def num_shared_edges(self) -> int:
        return sum(1 for e in self.edges if e.shared)

    def has_overflow(self) -> bool:
        return any(e.overflowed for e in self.edges)

    def layers_used(self, stacks) -> dict[int, tuple[int, int]]:
        """Per tier: (lowest, highest) metal index touched by wires.

        Produces the Table I usage strings, e.g. ``{0: (1, 4)}`` for
        "M1-4(bot)".  ``stacks`` maps tier -> MetalStack.
        """
        spans: dict[int, tuple[int, int]] = {}
        for edge in self.edges:
            pairs = stacks[edge.tier].pairs()
            lo_layer, hi_layer = pairs[edge.pair]
            lo, hi = lo_layer.index, hi_layer.index
            if edge.tier in spans:
                cur_lo, cur_hi = spans[edge.tier]
                spans[edge.tier] = (min(cur_lo, lo), max(cur_hi, hi))
            else:
                spans[edge.tier] = (lo, hi)
        return spans

    def usage_string(self, stacks, home_tier: int) -> str:
        """Render like the paper: ``M1-6(bot)+M5-6(top)``."""
        spans = self.layers_used(stacks)
        parts = []
        for tier in sorted(spans):
            lo, hi = spans[tier]
            where = "bot" if tier == 0 else "top"
            parts.append(f"{stacks[tier].describe_span(lo, hi)}({where})")
        return "+".join(parts) if parts else "unrouted"

    def validate(self) -> None:
        """Tree sanity: connected, acyclic, rooted at node 0."""
        if not self.nodes:
            raise RoutingError(f"net {self.net_name}: empty tree")
        seen = {0}
        for edge in self.edges:
            if edge.child in seen:
                raise RoutingError(
                    f"net {self.net_name}: node {edge.child} has two parents")
            seen.add(edge.child)
        if len(seen) != len(self.nodes):
            raise RoutingError(
                f"net {self.net_name}: tree is disconnected "
                f"({len(seen)}/{len(self.nodes)} reachable)")
