"""Congestion-aware 3D global routing with Metal Layer Sharing.

The router models what the paper's targeted-routing stage does inside
Innovus: Steiner trees on a gcell grid, length-based layer-pair
assignment with congestion fallback, F2F via insertion for cross-tier
(3-D) nets, and — the paper's subject — *Metal Layer Sharing*, where a
2-D net's long trunk edges borrow the other tier's thick top metals
through a pair of F2F vias (Figure 1's "2d-shared net").
"""

from repro.route.tree import RouteNode, RouteEdge, RouteTree
from repro.route.steiner import mst_parents, build_route_points
from repro.route.grid import CongestionGrid
from repro.route.rc import NetRC, extract_rc
from repro.route.router import GlobalRouter, RouteConfig, RoutingResult

__all__ = [
    "RouteNode",
    "RouteEdge",
    "RouteTree",
    "mst_parents",
    "build_route_points",
    "CongestionGrid",
    "NetRC",
    "extract_rc",
    "GlobalRouter",
    "RouteConfig",
    "RoutingResult",
]
