"""Routing / congestion reports.

Per-layer-pair utilization tables and an ASCII congestion heatmap per
tier — the view Figure 9(b)-(c) gives of how PDN and MLS nets share
the top metals.
"""

from __future__ import annotations

import numpy as np

from repro.route.router import RoutingResult

_SCALE = " .:-=+*#%@"


def render_utilization(routing: RoutingResult) -> str:
    """Per (tier, pair) mean utilization and overflow-cell counts."""
    grid = routing.grid
    lines = ["Routing utilization", "=" * 44,
             f"{'tier':<6}{'pair':<6}{'mean util %':>12}{'overflow':>10}"]
    for tier in range(len(grid.usage)):
        for pair in range(grid.num_pairs(tier)):
            lines.append(
                f"{tier:<6}{pair:<6}"
                f"{100 * grid.utilization(tier, pair):>11.1f}%"
                f"{grid.overflow_cells(tier, pair):>10}")
    stats = routing.stats()
    lines.append("")
    lines.append(f"wirelength  : {stats['wirelength_m']:.3f} m")
    lines.append(f"MLS nets    : {stats['mls_nets']:.0f}")
    lines.append(f"F2F vias    : {stats['f2f_vias']:.0f}")
    lines.append(f"overflow    : {stats['overflow_nets']:.0f} nets")
    return "\n".join(lines)


def render_heatmap(routing: RoutingResult, tier: int, pair: int,
                   max_width: int = 64) -> str:
    """ASCII heatmap of one (tier, pair)'s demand/capacity ratio."""
    grid = routing.grid
    usage = grid.usage[tier][pair] / grid.capacity[tier][pair]
    step_x = max(1, usage.shape[0] // max_width)
    step_y = max(1, usage.shape[1] // 32)
    sampled = usage[::step_x, ::step_y]
    lines = [f"Congestion heatmap tier {tier} pair {pair} "
             f"(peak {usage.max():.2f}x capacity)"]
    # Transpose so y runs down the terminal.
    for row in np.asarray(sampled).T[::-1]:
        lines.append("".join(
            _SCALE[min(int(v * (len(_SCALE) - 1)), len(_SCALE) - 1)]
            for v in row))
    return "\n".join(lines)
