"""Fluent construction helper for netlists.

Generators express structure as ``builder.gate("NAND2", a, b)`` and get
back the output net; the builder manufactures instance and net names,
connects pins, and tracks region/module tags.  This keeps the
architecture generators readable — they describe *what* is built, not
the bookkeeping.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.errors import NetlistError
from repro.netlist.cell import Instance
from repro.netlist.net import Net
from repro.netlist.netlist import Netlist
from repro.tech.library import CellLibrary


class NetlistBuilder:
    """Builds a :class:`Netlist` against one or two cell libraries.

    ``libraries`` maps region tag -> library; gate calls use the
    *current region*'s library, so a heterogeneous design is built by
    switching regions (see :meth:`region`).
    """

    def __init__(self, name: str, libraries: dict[str, CellLibrary]):
        if not libraries:
            raise NetlistError("builder needs at least one library")
        self.netlist = Netlist(name)
        self.libraries = dict(libraries)
        self._region = next(iter(libraries))
        self._module_stack: list[str] = []

    # -- context -----------------------------------------------------------

    @property
    def current_region(self) -> str:
        return self._region

    @contextmanager
    def region(self, tag: str):
        """Temporarily switch to another region/library."""
        if tag not in self.libraries:
            raise NetlistError(f"unknown region {tag!r}; "
                               f"known: {sorted(self.libraries)}")
        prev, self._region = self._region, tag
        try:
            yield self
        finally:
            self._region = prev

    @contextmanager
    def module(self, name: str):
        """Push a hierarchical name prefix for generated instances."""
        self._module_stack.append(name)
        try:
            yield self
        finally:
            self._module_stack.pop()

    def _prefixed(self, base: str) -> str:
        if not self._module_stack:
            return base
        return "/".join(self._module_stack) + "/" + base

    # -- primitives -----------------------------------------------------------

    def wire(self, hint: str = "n") -> Net:
        """A fresh signal net."""
        return self.netlist.add_net(
            self.netlist.fresh_name(self._prefixed(hint)))

    def clock_net(self, name: str = "clk") -> Net:
        if name in self.netlist.nets:
            return self.netlist.net(name)
        return self.netlist.add_net(name, is_clock=True)

    def input(self, name: str, tier_hint: int = 0) -> Net:
        """Add an input port and return the net it drives."""
        port = self.netlist.add_port(name, "in", tier_hint=tier_hint)
        net = self.netlist.add_net(self.netlist.fresh_name(f"{name}_net"))
        net.attach(port.pin)
        return net

    def output(self, name: str, net: Net, cap_ff: float = 2.0,
               tier_hint: int = 0) -> None:
        """Add an output port fed by *net*."""
        port = self.netlist.add_port(name, "out", cap_ff=cap_ff,
                                     tier_hint=tier_hint)
        net.attach(port.pin)

    def instance(self, cell_name: str, inst_hint: str = "u") -> Instance:
        """Create an unconnected instance of *cell_name* in the current
        region's library, tagged with region and module attrs."""
        lib = self.libraries[self._region]
        cell = lib.get(cell_name)
        name = self.netlist.fresh_name(self._prefixed(inst_hint))
        inst = self.netlist.add_instance(name, cell)
        inst.attrs["region"] = self._region
        if self._module_stack:
            inst.attrs["module"] = "/".join(self._module_stack)
        return inst

    def gate(self, cell_name: str, *input_nets: Net,
             out: Net | None = None, hint: str | None = None) -> Net:
        """Instantiate a combinational gate; returns its output net.

        >>> # y = NAND(a, b)
        >>> # y = builder.gate("NAND2", a, b)
        """
        inst = self.instance(cell_name, hint or cell_name.lower())
        declared = inst.cell.inputs
        if len(input_nets) != len(declared):
            raise NetlistError(
                f"{cell_name} takes {len(declared)} inputs, got "
                f"{len(input_nets)}")
        for pin_name, net in zip(declared, input_nets):
            net.attach(inst.pin(pin_name))
        out_net = out if out is not None else self.wire(f"{inst.name}_y")
        out_net.attach(inst.output_pin)
        return out_net

    def flop(self, d_net: Net, clock: Net, cell_name: str = "DFF",
             hint: str = "ff", out: Net | None = None) -> Net:
        """Instantiate a flip-flop capturing *d_net*; returns the Q net.

        Scan flops (``SDFF``) get their SI/SE inputs tied to the D net
        as placeholders until scan stitching rewires them — this keeps
        the netlist valid at every step.
        """
        inst = self.instance(cell_name, hint)
        d_net.attach(inst.pin("D"))
        clock.attach(inst.clock_pin)
        for extra in ("SI", "SE"):
            if extra in inst.pins and inst.pins[extra].direction == "in":
                d_net.attach(inst.pins[extra])
        q_net = out if out is not None else self.wire(f"{inst.name}_q")
        q_net.attach(inst.output_pin)
        return q_net

    def register_word(self, d_nets: list[Net], clock: Net,
                      cell_name: str = "DFF", hint: str = "reg") -> list[Net]:
        """A bank of flops, one per bit; returns the Q nets."""
        return [self.flop(d, clock, cell_name=cell_name, hint=f"{hint}{i}")
                for i, d in enumerate(d_nets)]

    def buffer_tree(self, root: Net, fanout_nets: int, hint: str = "bt",
                    cell_name: str = "BUF_X4", radix: int = 4) -> list[Net]:
        """Build a *radix*-ary buffer tree from *root* to *fanout_nets*
        leaf nets; returns the leaf nets (length == fanout_nets).

        Used for MAERI's distribution tree and for clock-ish fanout
        structures without real CTS.
        """
        if fanout_nets <= 0:
            raise NetlistError("buffer_tree needs a positive fanout")
        from collections import deque
        leaves: deque[Net] = deque([root])
        while len(leaves) < fanout_nets:
            parent = leaves.popleft()
            needed = fanout_nets - len(leaves)
            branches = min(radix, max(2, needed))
            for _ in range(branches):
                leaves.append(self.gate(cell_name, parent, hint=hint))
        return list(leaves)[:fanout_nets]

    def done(self) -> Netlist:
        """Validate and return the built netlist."""
        self.netlist.validate()
        return self.netlist
