"""Cell instances."""

from __future__ import annotations

from repro.errors import NetlistError
from repro.netlist.net import Pin, _lookup_named, _new_empty
from repro.tech.cells import CellType


class Instance:
    """A placed occurrence of a :class:`~repro.tech.cells.CellType`.

    ``attrs`` is a free-form dict the generators use to tag instances
    with architecture hints (``region``: "logic"/"memory", ``module``:
    hierarchical origin) that the tier partitioner consumes.

    Instances owned by a netlist pickle *by reference* — a lookup into
    their netlist, which itself serializes flat (see
    :mod:`repro.netlist.soa`) — so external holders (route trees,
    timing snapshots) stay identity-consistent with the netlist inside
    one pickle payload and never drag a recursive object graph.
    """

    __slots__ = ("name", "cell", "pins", "attrs", "_netlist")

    def __init__(self, name: str, cell: CellType):
        self.name = name
        self.cell = cell
        self.pins: dict[str, Pin] = {}
        for spec in cell.pins():
            self.pins[spec.name] = Pin(spec.name, spec.direction,
                                       owner=self, cap_ff=spec.cap_ff)
        self.attrs: dict[str, str] = {}
        self._netlist = None            # set by Netlist.add_instance

    def __reduce__(self):
        if self._netlist is not None:
            return (_lookup_named, (self._netlist, "instances", self.name))
        # Detached instance (hand-built test fragments): by value.
        state = {slot: getattr(self, slot) for slot in self.__slots__}
        return (_new_empty, (Instance,), state)

    def __setstate__(self, state: dict) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)

    def pin(self, name: str) -> Pin:
        try:
            return self.pins[name]
        except KeyError:
            raise NetlistError(
                f"instance {self.name} ({self.cell.name}) has no pin "
                f"{name!r}; pins: {sorted(self.pins)}") from None

    @property
    def output_pin(self) -> Pin:
        return self.pins[self.cell.output]

    def input_pins(self) -> list[Pin]:
        """Data input pins in the cell's declared order (excludes clock)."""
        return [self.pins[name] for name in self.cell.inputs]

    @property
    def clock_pin(self) -> Pin | None:
        if self.cell.clock_pin is None:
            return None
        return self.pins[self.cell.clock_pin]

    @property
    def is_sequential(self) -> bool:
        return self.cell.is_sequential

    @property
    def is_macro(self) -> bool:
        return self.cell.is_macro

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Instance({self.name}:{self.cell.name})"
