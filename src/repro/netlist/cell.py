"""Cell instances."""

from __future__ import annotations

from repro.errors import NetlistError
from repro.netlist.net import Pin
from repro.tech.cells import CellType


class Instance:
    """A placed occurrence of a :class:`~repro.tech.cells.CellType`.

    ``attrs`` is a free-form dict the generators use to tag instances
    with architecture hints (``region``: "logic"/"memory", ``module``:
    hierarchical origin) that the tier partitioner consumes.
    """

    __slots__ = ("name", "cell", "pins", "attrs")

    def __init__(self, name: str, cell: CellType):
        self.name = name
        self.cell = cell
        self.pins: dict[str, Pin] = {}
        for spec in cell.pins():
            self.pins[spec.name] = Pin(spec.name, spec.direction,
                                       owner=self, cap_ff=spec.cap_ff)
        self.attrs: dict[str, str] = {}

    def pin(self, name: str) -> Pin:
        try:
            return self.pins[name]
        except KeyError:
            raise NetlistError(
                f"instance {self.name} ({self.cell.name}) has no pin "
                f"{name!r}; pins: {sorted(self.pins)}") from None

    @property
    def output_pin(self) -> Pin:
        return self.pins[self.cell.output]

    def input_pins(self) -> list[Pin]:
        """Data input pins in the cell's declared order (excludes clock)."""
        return [self.pins[name] for name in self.cell.inputs]

    @property
    def clock_pin(self) -> Pin | None:
        if self.cell.clock_pin is None:
            return None
        return self.pins[self.cell.clock_pin]

    @property
    def is_sequential(self) -> bool:
        return self.cell.is_sequential

    @property
    def is_macro(self) -> bool:
        return self.cell.is_macro

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Instance({self.name}:{self.cell.name})"
