"""Structural Verilog export / import.

Writes a flat gate-level netlist as a single-module structural Verilog
file (named instances, named port connections), and reads the same
dialect back against a cell library — the interchange format every EDA
tool in the paper's flow speaks.  The writer/parser pair round-trips
everything the library models: cell types, connectivity, ports, clock
nets (``(* clock *)`` attribute), and generator attrs (``(* key =
"value" *)`` on instances).

Scope: the dialect this library emits — one module, named connections,
no expressions, no busses (bit-blasted names).  That is deliberate;
see the paper's flows, which exchange flat post-synthesis netlists.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import TextIO

from repro.errors import NetlistError, TechError
from repro.netlist.netlist import Netlist
from repro.tech.library import CellLibrary

#: Instance attribute naming the library an imported cell resolves in.
REGION_ATTR = "region"
DEFAULT_REGION = "logic"

_ID_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_$]*$")


def _escape(name: str) -> str:
    """Verilog-escape identifiers containing '/' etc."""
    if _ID_RE.match(name):
        return name
    return f"\\{name} "          # escaped identifier, trailing space


def _unescape(token: str) -> str:
    if token.startswith("\\"):
        return token[1:].rstrip()   # escaped ids end with a space
    return token


def write_verilog(netlist: Netlist, path: str | Path) -> None:
    """Write *netlist* to *path* as structural Verilog."""
    with open(path, "w") as handle:
        _write(netlist, handle)


def _write(netlist: Netlist, out: TextIO) -> None:
    module = _escape(netlist.name)
    in_ports = [p for p in netlist.ports.values() if p.direction == "in"]
    out_ports = [p for p in netlist.ports.values() if p.direction == "out"]
    port_names = [_escape(p.name) for p in in_ports + out_ports]
    out.write(f"module {module} (\n    ")
    out.write(",\n    ".join(port_names))
    out.write("\n);\n\n")
    for port in in_ports:
        if port.false_path:
            out.write("  (* false_path *)\n")
        out.write(f"  input {_escape(port.name)};\n")
    for port in out_ports:
        if port.false_path:
            out.write("  (* false_path *)\n")
        out.write(f"  output {_escape(port.name)};\n")
    out.write("\n")
    for net in netlist.nets.values():
        if net.is_clock:
            out.write("  (* clock *)\n")
        out.write(f"  wire {_escape(net.name)};\n")
    out.write("\n")
    # Port pins alias their nets through assigns.
    for port in in_ports:
        if port.pin.net is not None:
            out.write(f"  assign {_escape(port.pin.net.name)} = "
                      f"{_escape(port.name)};\n")
    for port in out_ports:
        if port.pin.net is not None:
            out.write(f"  assign {_escape(port.name)} = "
                      f"{_escape(port.pin.net.name)};\n")
    out.write("\n")
    for inst in netlist.instances.values():
        for key, value in sorted(inst.attrs.items()):
            out.write(f"  (* {key} = \"{value}\" *)\n")
        conns = []
        for pin_name, pin in inst.pins.items():
            if pin.net is None:
                continue
            conns.append(f".{pin_name}({_escape(pin.net.name)})")
        out.write(f"  {inst.cell.name} {_escape(inst.name)} "
                  f"({', '.join(conns)});\n")
    out.write("\nendmodule\n")


_TOKEN_RE = re.compile(
    r"\\[^ ]+ |\(\*.*?\*\)|[A-Za-z_][A-Za-z0-9_$]*|[().,;=]")


def _tokenize(text: str) -> list[str]:
    # Strip comments first.
    text = re.sub(r"//[^\n]*", "", text)
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.S)
    out = []
    pos = 0
    while pos < len(text):
        ch = text[pos]
        if ch.isspace():
            pos += 1
            continue
        match = _TOKEN_RE.match(text, pos)
        if not match:
            raise NetlistError(
                f"verilog parse error near: {text[pos:pos + 40]!r}")
        out.append(match.group(0))
        pos = match.end()
    return out


def _as_library_map(library) -> dict[str, CellLibrary]:
    """Normalize the importer's library argument.

    A bare :class:`CellLibrary` serves every region; a dict (the shape
    of ``TechSetup.libraries``) resolves each instance's cell in the
    library named by its ``(* region = "..." *)`` attribute, defaulting
    to ``"logic"`` — the same convention the generators, partitioner
    and DFT surgery already use.
    """
    if isinstance(library, CellLibrary):
        return {DEFAULT_REGION: library}
    return dict(library)


class _Parser:
    """Recursive-descent parser for the emitted dialect."""

    def __init__(self, tokens: list[str],
                 libraries: dict[str, CellLibrary]):
        self.tokens = tokens
        self.pos = 0
        self.libraries = libraries

    def resolve_cell(self, cell_name: str, attrs: dict[str, str],
                     inst_name: str):
        region = attrs.get(REGION_ATTR, DEFAULT_REGION)
        try:
            library = self.libraries[region]
        except KeyError:
            if len(self.libraries) == 1:
                library = next(iter(self.libraries.values()))
            else:
                raise TechError(
                    f"instance {inst_name!r} names region {region!r}; "
                    f"known libraries: {sorted(self.libraries)}") from None
        return library.get(cell_name)

    def peek(self) -> str | None:
        if self.pos < len(self.tokens):
            return self.tokens[self.pos]
        return None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise NetlistError("unexpected end of verilog input")
        self.pos += 1
        return token

    def expect(self, token: str) -> None:
        got = self.next()
        if got != token:
            raise NetlistError(f"expected {token!r}, got {got!r}")

    def pending_attrs(self) -> dict[str, str]:
        attrs: dict[str, str] = {}
        while self.peek() is not None and self.peek().startswith("(*"):
            body = self.next()[2:-2].strip()
            if "=" in body:
                key, _, value = body.partition("=")
                attrs[key.strip()] = value.strip().strip('"')
            else:
                attrs[body.strip()] = ""
        return attrs

    def parse(self) -> Netlist:
        self.pending_attrs()
        self.expect("module")
        netlist = Netlist(_unescape(self.next()))
        self.expect("(")
        while self.peek() != ")":
            self.next()           # port order list; directions follow
            if self.peek() == ",":
                self.next()
        self.expect(")")
        self.expect(";")

        pending: list[tuple[str, str, str, dict]] = []   # deferred insts
        assigns: list[tuple[str, str]] = []
        port_dirs: dict[str, tuple[str, bool]] = {}
        clock_nets: set[str] = set()
        wires: list[str] = []

        while self.peek() not in (None, "endmodule"):
            attrs = self.pending_attrs()
            token = self.next()
            if token in ("input", "output"):
                name = _unescape(self.next())
                self.expect(";")
                direction = "in" if token == "input" else "out"
                port_dirs[name] = (direction, "false_path" in attrs)
            elif token == "wire":
                name = _unescape(self.next())
                self.expect(";")
                wires.append(name)
                if "clock" in attrs:
                    clock_nets.add(name)
            elif token == "assign":
                lhs = _unescape(self.next())
                self.expect("=")
                rhs = _unescape(self.next())
                self.expect(";")
                assigns.append((lhs, rhs))
            else:
                cell_name = token
                inst_name = _unescape(self.next())
                self.expect("(")
                conns: dict[str, str] = {}
                while self.peek() != ")":
                    token2 = self.next()
                    if token2 == ",":
                        continue
                    if token2 != ".":
                        raise NetlistError(
                            f"expected .pin(...), got {token2!r}")
                    pin_name = self.next()
                    self.expect("(")
                    conns[pin_name] = _unescape(self.next())
                    self.expect(")")
                self.expect(")")
                self.expect(";")
                pending.append((cell_name, inst_name, "", attrs |
                                {"__conns__": conns}))  # type: ignore
        # Build.
        for name in wires:
            netlist.add_net(name, is_clock=name in clock_nets)
        port_net: dict[str, str] = {}
        for lhs, rhs in assigns:
            if lhs in netlist.nets:          # input port: net = port
                port_net[rhs] = lhs
            else:                            # output port: port = net
                port_net[lhs] = rhs
        for name, (direction, false_path) in port_dirs.items():
            port = netlist.add_port(name, direction, false_path=false_path)
            net_name = port_net.get(name)
            if net_name is not None:
                netlist.net(net_name).attach(port.pin)
        for cell_name, inst_name, _, attrs in pending:
            conns = attrs.pop("__conns__")   # type: ignore
            inst = netlist.add_instance(
                inst_name, self.resolve_cell(cell_name, attrs, inst_name))
            inst.attrs.update({k: v for k, v in attrs.items()})
            # Attach output last so single-driver checks see sinks of
            # earlier instances first (order doesn't actually matter,
            # but keep deterministic).
            for pin_name, net_name in conns.items():
                netlist.net(net_name).attach(inst.pin(pin_name))
        return netlist


def read_verilog(path: str | Path,
                 library: CellLibrary | dict[str, CellLibrary]) -> Netlist:
    """Parse a structural Verilog file written by :func:`write_verilog`.

    *library* is either a single :class:`CellLibrary` or a region-name
    -> library dict (``TechSetup.libraries``); with a dict, each
    instance's cell resolves in the library named by its ``(* region =
    "..." *)`` attribute (default ``"logic"``) — required for
    heterogeneous designs where the logic and memory dies carry
    same-named cells at different nodes.  Unknown cells raise
    :class:`~repro.errors.TechError`.
    """
    text = Path(path).read_text()
    parser = _Parser(_tokenize(text), _as_library_map(library))
    netlist = parser.parse()
    netlist.validate()
    return netlist


def dumps(netlist: Netlist) -> str:
    """Render to a string (used by tests and quick inspection)."""
    import io
    buffer = io.StringIO()
    _write(netlist, buffer)
    return buffer.getvalue()
