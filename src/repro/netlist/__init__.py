"""Netlist data model and benchmark design generators.

The structural model is deliberately small: :class:`Pin`, :class:`Net`
(a hyperedge with one driver and N sinks), :class:`Instance` (a placed
occurrence of a :class:`~repro.tech.cells.CellType`), :class:`Port`
(top-level I/O) and the :class:`Netlist` container that owns them and
enforces consistency.

Generators under :mod:`repro.netlist.generators` synthesize the three
benchmark architectures of the paper (MAERI-like accelerator fabrics
and an A7-like dual-core) at simulator scale.
"""

from repro.netlist.net import Pin, Net, Port
from repro.netlist.cell import Instance
from repro.netlist.netlist import Netlist
from repro.netlist.builder import NetlistBuilder

__all__ = ["Pin", "Net", "Port", "Instance", "Netlist", "NetlistBuilder"]
