"""Struct-of-arrays netlist core.

:class:`NetlistSoA` is the flat, array-backed representation of a
:class:`~repro.netlist.netlist.Netlist`: NumPy id/offset arrays for
cells, ports and CSR-style net->pin incidence, plus Python string
tables.  It is the same struct-of-arrays move that made
``place.system`` and the CSR STA kernel fast, applied to the netlist
itself, and serves two roles:

1. **Flat serialization.**  ``Netlist.__getstate__`` encodes through
   this class, replacing the old recursive object-graph pickle (whose
   pin->net->pin chains blew the C stack on MAERI-128 — a hard
   segfault once the recursion limit was raised past what the stack
   could back).  Encode and decode are *iterative* loops over arrays;
   no step recurses, so round-tripping is independent of
   ``sys.getrecursionlimit()`` and the pickled payload shrinks to
   id arrays + string tables.

2. **Array views for analysis.**  The incidence arrays are the natural
   substrate for hypergraph feature extraction and the learned
   congestion/ordering predictors on the roadmap (DE-HNN encodes
   directed hyperedges exactly this way): ``fanouts()``,
   ``degrees()``, ``cell_areas()`` and the raw CSR members give
   vectorized whole-design queries without touching a Python object
   per pin.

Pin references are encoded as ``(owner, slot)`` pairs: ``owner >= 0``
is an instance index and ``slot`` the pin's position in the cell's
declared pin order (``CellType.pins()`` order, which ``Instance.pins``
preserves by construction — including through ``swap_cell``);
``owner < 0`` encodes port index ``-owner - 1``.  A net's sinks are
stored in list order, so iteration order — and with it every
downstream tie-break (STA ``worst_pred``, router scheduling, fault
ordering) — survives the round trip bit-identically.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.errors import NetlistError

#: ``net_driver_owner`` sentinel for an undriven net.
_NO_DRIVER = np.iinfo(np.int32).min


def pack_names(names: list[str]) -> tuple:
    """Compress a name table into one deflated blob.

    Netlist name tables are large (two strings per cell) and highly
    repetitive (hierarchical prefixes), so joining and deflating them
    beats pickling tens of thousands of individual str objects by a
    wide margin.  Names containing the separator fall back to a plain
    list — correctness never depends on the name alphabet.
    """
    if any("\n" in name for name in names):
        return ("list", names)
    blob = "\n".join(names).encode()
    return ("z", len(names), zlib.compress(blob, 6))


def unpack_names(packed: tuple) -> list[str]:
    """Inverse of :func:`pack_names`."""
    if packed[0] == "list":
        return packed[1]
    _, count, blob = packed
    if count == 0:
        return []
    return zlib.decompress(blob).decode().split("\n")


@dataclass
class NetlistSoA:
    """Flat arrays + string/cell tables for one netlist snapshot."""

    name: str
    uid: int
    # -- instances ---------------------------------------------------------
    cell_types: list                    # unique CellType objects, first-use order
    inst_names: list[str]
    inst_cell: np.ndarray               # int32[n_inst] -> cell_types index
    attr_dicts: list[dict]              # unique attr dicts (index 0 == {})
    inst_attr: np.ndarray               # int32[n_inst] -> attr_dicts index
    # -- ports -------------------------------------------------------------
    port_names: list[str]
    port_is_out: np.ndarray             # bool[n_port]
    port_cap_ff: np.ndarray             # float64[n_port] (pin cap)
    port_tier_hint: np.ndarray          # int32[n_port]
    port_false_path: np.ndarray         # bool[n_port]
    # -- nets + CSR pin incidence -------------------------------------------
    net_names: list[str]
    net_is_clock: np.ndarray            # bool[n_net]
    net_driver_owner: np.ndarray        # int32[n_net] (_NO_DRIVER = none)
    net_driver_slot: np.ndarray         # int32[n_net]
    sink_offsets: np.ndarray            # int64[n_net + 1]
    sink_owner: np.ndarray              # int32[total_sinks]
    sink_slot: np.ndarray               # int32[total_sinks]

    # -- encode --------------------------------------------------------------

    @classmethod
    def from_netlist(cls, netlist) -> "NetlistSoA":
        """Encode *netlist* into flat arrays (iterative, O(pins))."""
        cell_types: list = []
        cell_index: dict[int, int] = {}
        attr_dicts: list[dict] = [{}]
        attr_index: dict[tuple, int] = {(): 0}
        inst_names: list[str] = []
        inst_cell = np.empty(len(netlist.instances), dtype=np.int32)
        inst_attr = np.zeros(len(netlist.instances), dtype=np.int32)
        # pin id -> (owner, slot) reference map
        pin_ref: dict[int, tuple[int, int]] = {}
        for i, inst in enumerate(netlist.instances.values()):
            inst_names.append(inst.name)
            ci = cell_index.get(id(inst.cell))
            if ci is None:
                ci = cell_index[id(inst.cell)] = len(cell_types)
                cell_types.append(inst.cell)
            inst_cell[i] = ci
            if inst.attrs:
                try:
                    key = tuple(sorted(inst.attrs.items()))
                    ai = attr_index.get(key)
                    if ai is None:
                        ai = attr_index[key] = len(attr_dicts)
                        attr_dicts.append(dict(inst.attrs))
                except TypeError:       # unhashable attr values: no dedup
                    ai = len(attr_dicts)
                    attr_dicts.append(dict(inst.attrs))
                inst_attr[i] = ai
            for slot, pin in enumerate(inst.pins.values()):
                pin_ref[id(pin)] = (i, slot)

        port_names: list[str] = []
        n_ports = len(netlist.ports)
        port_is_out = np.empty(n_ports, dtype=bool)
        port_cap_ff = np.empty(n_ports, dtype=np.float64)
        port_tier_hint = np.empty(n_ports, dtype=np.int32)
        port_false_path = np.empty(n_ports, dtype=bool)
        for p, port in enumerate(netlist.ports.values()):
            port_names.append(port.name)
            port_is_out[p] = port.direction == "out"
            port_cap_ff[p] = port.pin.cap_ff
            port_tier_hint[p] = port.tier_hint
            port_false_path[p] = port.false_path
            pin_ref[id(port.pin)] = (-(p + 1), -1)

        n_nets = len(netlist.nets)
        net_names: list[str] = []
        net_is_clock = np.empty(n_nets, dtype=bool)
        net_driver_owner = np.full(n_nets, _NO_DRIVER, dtype=np.int32)
        net_driver_slot = np.full(n_nets, -1, dtype=np.int32)
        sink_offsets = np.zeros(n_nets + 1, dtype=np.int64)
        sink_owner_list: list[int] = []
        sink_slot_list: list[int] = []

        def ref_of(pin) -> tuple[int, int]:
            try:
                return pin_ref[id(pin)]
            except KeyError:
                raise NetlistError(
                    f"pin {pin.full_name} on net {pin.net.name} does not "
                    f"belong to netlist {netlist.name!r}") from None

        for j, net in enumerate(netlist.nets.values()):
            net_names.append(net.name)
            net_is_clock[j] = net.is_clock
            if net.driver is not None:
                net_driver_owner[j], net_driver_slot[j] = ref_of(net.driver)
            for pin in net.sinks:
                owner, slot = ref_of(pin)
                sink_owner_list.append(owner)
                sink_slot_list.append(slot)
            sink_offsets[j + 1] = len(sink_owner_list)

        return cls(
            name=netlist.name, uid=netlist._uid,
            cell_types=cell_types, inst_names=inst_names,
            inst_cell=inst_cell, attr_dicts=attr_dicts, inst_attr=inst_attr,
            port_names=port_names, port_is_out=port_is_out,
            port_cap_ff=port_cap_ff, port_tier_hint=port_tier_hint,
            port_false_path=port_false_path,
            net_names=net_names, net_is_clock=net_is_clock,
            net_driver_owner=net_driver_owner,
            net_driver_slot=net_driver_slot,
            sink_offsets=sink_offsets,
            sink_owner=np.asarray(sink_owner_list, dtype=np.int32),
            sink_slot=np.asarray(sink_slot_list, dtype=np.int32),
        )

    # -- decode --------------------------------------------------------------

    def populate(self, netlist) -> None:
        """Fill a bare :class:`Netlist` instance from the arrays.

        Reconstruction is exact: dict insertion orders, sink list
        orders, pin orders, attrs, the fresh-name counter and every
        capacitance come back bit-identical.  Connections are restored
        by direct assignment (the invariants were checked when the
        arrays were built), iteratively — no recursion anywhere.
        """
        from repro.netlist.cell import Instance
        from repro.netlist.net import Net, Port

        netlist.name = self.name
        netlist._uid = self.uid
        netlist.instances = {}
        netlist.nets = {}
        netlist.ports = {}

        pin_lists: list[list] = []
        for i, name in enumerate(self.inst_names):
            inst = Instance(name, self.cell_types[self.inst_cell[i]])
            attrs = self.attr_dicts[self.inst_attr[i]]
            if attrs:
                inst.attrs.update(attrs)
            inst._netlist = netlist
            netlist.instances[name] = inst
            pin_lists.append(list(inst.pins.values()))

        ports: list = []
        for p, name in enumerate(self.port_names):
            port = Port(name, "out" if self.port_is_out[p] else "in",
                        cap_ff=float(self.port_cap_ff[p]),
                        tier_hint=int(self.port_tier_hint[p]),
                        false_path=bool(self.port_false_path[p]))
            port._netlist = netlist
            netlist.ports[name] = port
            ports.append(port)

        offsets = self.sink_offsets
        sink_owner = self.sink_owner
        sink_slot = self.sink_slot
        for j, name in enumerate(self.net_names):
            net = Net(name, is_clock=bool(self.net_is_clock[j]))
            net._netlist = netlist
            owner = self.net_driver_owner[j]
            if owner != _NO_DRIVER:
                pin = pin_lists[owner][self.net_driver_slot[j]] \
                    if owner >= 0 else ports[-owner - 1].pin
                net.driver = pin
                pin.net = net
            sinks = net.sinks
            for k in range(offsets[j], offsets[j + 1]):
                owner = sink_owner[k]
                pin = pin_lists[owner][sink_slot[k]] \
                    if owner >= 0 else ports[-owner - 1].pin
                sinks.append(pin)
                pin.net = net
            netlist.nets[name] = net

    def to_netlist(self):
        """Decode into a fresh :class:`Netlist`."""
        from repro.netlist.netlist import Netlist
        netlist = Netlist.__new__(Netlist)
        self.populate(netlist)
        return netlist

    # -- array views -----------------------------------------------------------

    @property
    def num_instances(self) -> int:
        return len(self.inst_names)

    @property
    def num_nets(self) -> int:
        return len(self.net_names)

    @property
    def num_pins(self) -> int:
        """Connected pins (driver + sink attachments)."""
        return int(len(self.sink_owner)
                   + np.count_nonzero(self.net_driver_owner != _NO_DRIVER))

    def fanouts(self) -> np.ndarray:
        """Sink count per net, in net order (vectorized CSR diff)."""
        return np.diff(self.sink_offsets)

    def degrees(self) -> np.ndarray:
        """Total pin count per net (hyperedge sizes)."""
        return self.fanouts() \
            + (self.net_driver_owner != _NO_DRIVER).astype(np.int64)

    def cell_areas(self) -> np.ndarray:
        """Per-instance footprint in um^2, in instance order."""
        table = np.asarray([cell.area_um2 for cell in self.cell_types],
                           dtype=np.float64)
        return table[self.inst_cell]

    def is_sequential(self) -> np.ndarray:
        """Per-instance sequential mask, in instance order."""
        table = np.asarray([cell.is_sequential for cell in self.cell_types],
                           dtype=bool)
        return table[self.inst_cell]

    def incidence(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Directed-hypergraph incidence: ``(offsets, owners, is_driver)``.

        Per net, the driver reference (when present) followed by the
        sinks in order — the DE-HNN-style encoding the GNN feature
        extractors consume.  ``owners`` uses the instance/port code of
        this class (``>= 0`` instance index, ``< 0`` port).
        """
        fanouts = self.fanouts()
        has_driver = self.net_driver_owner != _NO_DRIVER
        sizes = fanouts + has_driver.astype(np.int64)
        offsets = np.zeros(self.num_nets + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        owners = np.empty(int(offsets[-1]), dtype=np.int32)
        is_driver = np.zeros(int(offsets[-1]), dtype=bool)
        pos = offsets[:-1].copy()
        driver_rows = np.flatnonzero(has_driver)
        owners[pos[driver_rows]] = self.net_driver_owner[driver_rows]
        is_driver[pos[driver_rows]] = True
        pos[driver_rows] += 1
        for j in range(self.num_nets):
            lo, hi = self.sink_offsets[j], self.sink_offsets[j + 1]
            owners[pos[j]:pos[j] + (hi - lo)] = self.sink_owner[lo:hi]
        return offsets, owners, is_driver

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        for field_name in ("inst_names", "net_names", "port_names"):
            state[field_name] = pack_names(state[field_name])
        return state

    def __setstate__(self, state: dict) -> None:
        for field_name in ("inst_names", "net_names", "port_names"):
            state[field_name] = unpack_names(state[field_name])
        self.__dict__.update(state)

    def nbytes(self) -> int:
        """Rough array payload size (excludes string tables)."""
        return sum(arr.nbytes for arr in (
            self.inst_cell, self.inst_attr, self.port_is_out,
            self.port_cap_ff, self.port_tier_hint, self.port_false_path,
            self.net_is_clock, self.net_driver_owner, self.net_driver_slot,
            self.sink_offsets, self.sink_owner, self.sink_slot))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"NetlistSoA({self.name}: {self.num_instances} insts, "
                f"{self.num_nets} nets, {self.num_pins} pins)")
