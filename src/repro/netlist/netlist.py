"""The :class:`Netlist` container.

Owns instances, nets and ports; provides validation, statistics, and
the structural traversals (combinational topological order, fan-in /
fan-out cones) that STA, DFT and the GNN feature extractor all build
on.  Also provides the *net-splitting* surgery DFT insertion needs.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.errors import NetlistError
from repro.netlist.cell import Instance
from repro.netlist.net import Net, Pin, Port
from repro.netlist.soa import NetlistSoA
from repro.tech.cells import CellType


class Netlist:
    """A flat gate-level netlist.

    Serialization note: pickling goes through the struct-of-arrays
    core (:class:`~repro.netlist.soa.NetlistSoA`) — flat id/offset
    arrays plus string tables instead of the recursive pin->net->pin
    object graph.  Encode and decode are iterative, so pickling is
    independent of ``sys.getrecursionlimit()`` at any design scale,
    and the payload is several times smaller than the object graph.
    """

    def __init__(self, name: str):
        self.name = name
        self.instances: dict[str, Instance] = {}
        self.nets: dict[str, Net] = {}
        self.ports: dict[str, Port] = {}
        self._uid = 0

    # -- construction --------------------------------------------------------

    def add_instance(self, name: str, cell: CellType) -> Instance:
        if name in self.instances:
            raise NetlistError(f"duplicate instance name {name!r}")
        inst = Instance(name, cell)
        inst._netlist = self
        self.instances[name] = inst
        return inst

    def add_net(self, name: str, is_clock: bool = False) -> Net:
        if name in self.nets:
            raise NetlistError(f"duplicate net name {name!r}")
        net = Net(name, is_clock=is_clock)
        net._netlist = self
        self.nets[name] = net
        return net

    def add_port(self, name: str, direction: str, cap_ff: float = 2.0,
                 tier_hint: int = 0, false_path: bool = False) -> Port:
        if name in self.ports:
            raise NetlistError(f"duplicate port name {name!r}")
        port = Port(name, direction, cap_ff=cap_ff, tier_hint=tier_hint,
                    false_path=false_path)
        port._netlist = self
        self.ports[name] = port
        return port

    # -- serialization ---------------------------------------------------------

    def to_flat(self) -> NetlistSoA:
        """Snapshot into the struct-of-arrays representation."""
        return NetlistSoA.from_netlist(self)

    @classmethod
    def from_flat(cls, flat: NetlistSoA) -> "Netlist":
        """Rebuild a netlist from a :class:`NetlistSoA` snapshot."""
        netlist = cls.__new__(cls)
        flat.populate(netlist)
        return netlist

    def __getstate__(self) -> dict:
        return {"flat": self.to_flat()}

    def __setstate__(self, state: dict) -> None:
        state["flat"].populate(self)

    def connect(self, net: Net | str, pin: Pin) -> None:
        """Attach *pin* to *net* (accepting a net name for convenience)."""
        if isinstance(net, str):
            net = self.net(net)
        net.attach(pin)

    def fresh_name(self, prefix: str) -> str:
        """Generate a name not colliding with any instance or net."""
        while True:
            self._uid += 1
            candidate = f"{prefix}_{self._uid}"
            if candidate not in self.instances and candidate not in self.nets:
                return candidate

    # -- lookup ---------------------------------------------------------------

    def instance(self, name: str) -> Instance:
        try:
            return self.instances[name]
        except KeyError:
            raise NetlistError(f"no instance {name!r} in {self.name}") from None

    def net(self, name: str) -> Net:
        try:
            return self.nets[name]
        except KeyError:
            raise NetlistError(f"no net {name!r} in {self.name}") from None

    def port(self, name: str) -> Port:
        try:
            return self.ports[name]
        except KeyError:
            raise NetlistError(f"no port {name!r} in {self.name}") from None

    # -- surgery (DFT insertion) ----------------------------------------------

    def split_net_at_sinks(self, net: Net, sinks: Iterable[Pin],
                           new_net_name: str | None = None) -> Net:
        """Move *sinks* from *net* onto a fresh, undriven net.

        The caller then wires a repair cell (MUX / scan-FF) between the
        two nets.  Returns the new net.
        """
        sinks = list(sinks)
        for pin in sinks:
            if pin.net is not net:
                raise NetlistError(
                    f"cannot split: {pin.full_name} is not a sink of "
                    f"{net.name}")
            if pin is net.driver:
                raise NetlistError("cannot move the driver in a sink split")
        name = new_net_name or self.fresh_name(f"{net.name}_split")
        new_net = self.add_net(name)
        for pin in sinks:
            net.detach(pin)
            new_net.attach(pin)
        return new_net

    def swap_cell(self, inst: Instance, new_cell: CellType) -> None:
        """Replace *inst*'s cell type in place (e.g. DFF -> SDFF).

        Pins present in both cells keep their connections (and update
        their capacitance to the new spec); pins only in the old cell
        must be unconnected; new pins are created unconnected.
        """
        old_pins = inst.pins
        new_specs = {spec.name: spec for spec in new_cell.pins()}
        for name, pin in old_pins.items():
            if name not in new_specs and pin.net is not None:
                raise NetlistError(
                    f"cannot swap {inst.name}: connected pin {name} has no "
                    f"counterpart in {new_cell.name}")
        inst.cell = new_cell
        rebuilt: dict[str, Pin] = {}
        for name, spec in new_specs.items():
            old = old_pins.get(name)
            if old is not None and old.direction == spec.direction:
                old.cap_ff = spec.cap_ff
                rebuilt[name] = old
            else:
                if old is not None and old.net is not None:
                    raise NetlistError(
                        f"cannot swap {inst.name}: pin {name} changes "
                        "direction while connected")
                rebuilt[name] = Pin(name, spec.direction, owner=inst,
                                    cap_ff=spec.cap_ff)
        inst.pins = rebuilt

    # -- validation -------------------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants; raise :class:`NetlistError` on the
        first violation.

        Invariants: every net has a driver and at least one sink; every
        instance input pin and port pin is connected; clock pins of
        sequential cells sit on clock nets.
        """
        for net in self.nets.values():
            if net.driver is None:
                raise NetlistError(f"net {net.name} has no driver")
            if not net.sinks:
                raise NetlistError(f"net {net.name} has no sinks")
        for inst in self.instances.values():
            for pin in inst.input_pins():
                if pin.net is None:
                    raise NetlistError(
                        f"unconnected input {pin.full_name}")
            clock = inst.clock_pin
            if clock is not None:
                if clock.net is None:
                    raise NetlistError(
                        f"unconnected clock pin {clock.full_name}")
                if not clock.net.is_clock:
                    raise NetlistError(
                        f"clock pin {clock.full_name} on non-clock net "
                        f"{clock.net.name}")
            if inst.output_pin.net is None:
                raise NetlistError(
                    f"dangling output {inst.output_pin.full_name}")
        for port in self.ports.values():
            if port.pin.net is None:
                raise NetlistError(f"unconnected port {port.name}")

    # -- traversal ---------------------------------------------------------------

    def signal_nets(self) -> list[Net]:
        """All non-clock nets, in insertion order."""
        return [n for n in self.nets.values() if not n.is_clock]

    def sequential_instances(self) -> list[Instance]:
        return [i for i in self.instances.values() if i.is_sequential]

    def combinational_instances(self) -> list[Instance]:
        return [i for i in self.instances.values() if not i.is_sequential]

    def topological_order(self) -> list[Instance]:
        """Combinational instances in signal-flow order.

        Sequential outputs and input ports are sources; a combinational
        instance is emitted once all its combinationally-driven inputs
        are resolved.  Raises on combinational loops.
        """
        indegree: dict[str, int] = {}
        ready: deque[Instance] = deque()
        for inst in self.instances.values():
            if inst.is_sequential:
                continue
            count = 0
            for pin in inst.input_pins():
                if pin.net is None or pin.net.driver is None:
                    continue
                drv = pin.net.driver
                if drv.owner is not None and not drv.owner.is_sequential:
                    count += 1
            indegree[inst.name] = count
            if count == 0:
                ready.append(inst)
        order: list[Instance] = []
        while ready:
            inst = ready.popleft()
            order.append(inst)
            out_net = inst.output_pin.net
            if out_net is None:
                continue
            for sink in out_net.sinks:
                owner = sink.owner
                if owner is None or owner.is_sequential:
                    continue
                if sink is owner.clock_pin:
                    continue
                indegree[owner.name] -= 1
                if indegree[owner.name] == 0:
                    ready.append(owner)
        expected = sum(1 for i in self.instances.values() if not i.is_sequential)
        if len(order) != expected:
            raise NetlistError(
                f"combinational loop: ordered {len(order)} of {expected} "
                "combinational instances")
        return order

    # -- statistics ---------------------------------------------------------------

    def stats(self) -> dict[str, int | float]:
        """Quick design summary used by reports and tests."""
        num_seq = len(self.sequential_instances())
        num_macro = sum(1 for i in self.instances.values() if i.is_macro)
        fanouts = [n.fanout for n in self.signal_nets()]
        return {
            "name": self.name,
            "instances": len(self.instances),
            "sequential": num_seq,
            "macros": num_macro,
            "combinational": len(self.instances) - num_seq,
            "nets": len(self.nets),
            "signal_nets": len(self.signal_nets()),
            "ports": len(self.ports),
            "max_fanout": max(fanouts, default=0),
            "total_pins": sum(n.degree for n in self.nets.values()),
        }

    def total_cell_area(self) -> float:
        """Sum of instance footprints in um^2."""
        return sum(inst.cell.area_um2 for inst in self.instances.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Netlist({self.name}: {len(self.instances)} insts, "
                f"{len(self.nets)} nets)")
