"""Pins, nets and top-level ports.

A :class:`Net` is the hyperedge of the paper's Section III-B: exactly
one driver pin (a cell output or an input port) and any number of sink
pins.  The GNN-MLS hypergraph conversion later folds each net onto its
driver node, which is why the single-driver invariant is enforced here
rather than discovered downstream.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import NetlistError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.netlist.cell import Instance


def _lookup_named(netlist, table: str, name: str):
    """Pickle helper: resolve a netlist-owned object by name.

    ``table`` is the owning dict attribute (``"instances"`` /
    ``"nets"`` / ``"ports"``).  Module-level so pickle can reference
    it; the netlist argument arrives already rebuilt from its flat
    struct-of-arrays state, making the whole chain recursion-free.
    """
    return getattr(netlist, table)[name]


def _lookup_inst_pin(instance, name: str):
    """Pickle helper: a pin by name on its owning instance."""
    return instance.pins[name]


def _lookup_port_pin(port):
    """Pickle helper: the single pin of a port."""
    return port.pin


def _new_empty(cls):
    """Pickle helper: bare instance for by-value slot-state restore."""
    return cls.__new__(cls)


class Pin:
    """One connection point: belongs to an instance or a port.

    ``owner`` is the owning :class:`Instance`, or ``None`` for a port
    pin (the owning :class:`Port` is then set in ``port``).
    """

    __slots__ = ("name", "direction", "owner", "port", "net", "cap_ff")

    def __init__(self, name: str, direction: str,
                 owner: Optional["Instance"] = None,
                 port: Optional["Port"] = None,
                 cap_ff: float = 0.0):
        if direction not in ("in", "out"):
            raise NetlistError(f"pin {name}: direction must be 'in'/'out'")
        if (owner is None) == (port is None):
            raise NetlistError(f"pin {name}: exactly one of owner/port required")
        self.name = name
        self.direction = direction
        self.owner = owner
        self.port = port
        self.net: Net | None = None
        self.cap_ff = cap_ff

    @property
    def is_port_pin(self) -> bool:
        return self.port is not None

    @property
    def full_name(self) -> str:
        """Hierarchical name, ``inst/PIN`` or ``port:NAME``."""
        if self.owner is not None:
            return f"{self.owner.name}/{self.name}"
        return f"port:{self.port.name}"

    @property
    def drives(self) -> bool:
        """True when this pin can drive a net.

        Instance *output* pins and top-level *input* ports drive; the
        rest sink.
        """
        if self.is_port_pin:
            return self.direction == "in"
        return self.direction == "out"

    def __reduce__(self):
        # By reference through the owner whenever the owner is itself
        # netlist-attached (the normal case); detached fragments fall
        # back to by-value slot state.
        if self.owner is not None and self.owner._netlist is not None:
            return (_lookup_inst_pin, (self.owner, self.name))
        if self.port is not None and self.port._netlist is not None:
            return (_lookup_port_pin, (self.port,))
        state = {slot: getattr(self, slot) for slot in self.__slots__}
        return (_new_empty, (Pin,), state)

    def __setstate__(self, state: dict) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Pin({self.full_name})"


class Net:
    """A signal net: one driver, N sinks.

    Routing, timing and MLS state live *outside* the netlist (in
    :class:`repro.core.flow.Design`-level maps keyed by net name), so a
    netlist stays a pure structural object that can be re-placed and
    re-routed without mutation.
    """

    __slots__ = ("name", "driver", "sinks", "is_clock", "_netlist")

    def __init__(self, name: str, is_clock: bool = False):
        self.name = name
        self.driver: Pin | None = None
        self.sinks: list[Pin] = []
        self.is_clock = is_clock
        self._netlist = None            # set by Netlist.add_net

    def __reduce__(self):
        if self._netlist is not None:
            return (_lookup_named, (self._netlist, "nets", self.name))
        state = {slot: getattr(self, slot) for slot in self.__slots__}
        return (_new_empty, (Net,), state)

    def __setstate__(self, state: dict) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)

    def attach(self, pin: Pin) -> None:
        """Connect *pin*, enforcing the single-driver invariant."""
        if pin.net is not None:
            raise NetlistError(
                f"pin {pin.full_name} already on net {pin.net.name}")
        if pin.drives:
            if self.driver is not None:
                raise NetlistError(
                    f"net {self.name}: second driver {pin.full_name} "
                    f"(already driven by {self.driver.full_name})")
            self.driver = pin
        else:
            self.sinks.append(pin)
        pin.net = self

    def detach(self, pin: Pin) -> None:
        """Disconnect *pin* (used by DFT net splitting)."""
        if pin.net is not self:
            raise NetlistError(f"pin {pin.full_name} is not on net {self.name}")
        if pin is self.driver:
            self.driver = None
        else:
            self.sinks.remove(pin)
        pin.net = None

    def pins(self) -> list[Pin]:
        """Driver first (when present), then sinks."""
        out = [] if self.driver is None else [self.driver]
        out.extend(self.sinks)
        return out

    @property
    def degree(self) -> int:
        """Total pin count (the hyperedge size)."""
        return len(self.sinks) + (1 if self.driver is not None else 0)

    @property
    def fanout(self) -> int:
        return len(self.sinks)

    def sink_cap_ff(self) -> float:
        """Sum of sink pin capacitances (gate-load part of the net load)."""
        return sum(pin.cap_ff for pin in self.sinks)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Net({self.name}, fanout={self.fanout})"


class Port:
    """Top-level I/O of the design.

    Input ports behave as timing start points driving their net; output
    ports are endpoints with an external load capacitance.
    """

    __slots__ = ("name", "direction", "pin", "tier_hint", "false_path",
                 "_netlist")

    def __reduce__(self):
        if self._netlist is not None:
            return (_lookup_named, (self._netlist, "ports", self.name))
        state = {slot: getattr(self, slot) for slot in self.__slots__}
        return (_new_empty, (Port,), state)

    def __setstate__(self, state: dict) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)

    def __init__(self, name: str, direction: str, cap_ff: float = 2.0,
                 tier_hint: int = 0, false_path: bool = False):
        if direction not in ("in", "out"):
            raise NetlistError(f"port {name}: direction must be 'in'/'out'")
        self.name = name
        self.direction = direction
        # A port pin mirrors the port direction; external load applies
        # to output ports only.
        self.pin = Pin(name, direction, port=self,
                       cap_ff=cap_ff if direction == "out" else 0.0)
        self.tier_hint = tier_hint
        #: Static-in-function ports (test mode, scan enable) are
        #: excluded from timing propagation but still load their nets.
        self.false_path = false_path
        self._netlist = None            # set by Netlist.add_port

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Port({self.name}, {self.direction})"
