"""Random combinational logic clouds.

Pipeline-stage datapaths and control FSMs are modelled as random DAG
clouds with a realistic gate mix.  The construction guarantees every
generated gate output is consumed (no dangling nets), every declared
output is driven, and the cloud is loop-free by levelization.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NetlistError
from repro.netlist.builder import NetlistBuilder
from repro.netlist.net import Net

#: Default gate mix: (cell, relative weight).  Mirrors the inverter/
#: NAND-heavy composition of synthesized control+datapath logic.
DEFAULT_MIX: list[tuple[str, float]] = [
    ("INV", 0.16),
    ("BUF", 0.04),
    ("NAND2", 0.22),
    ("NOR2", 0.12),
    ("AND2", 0.08),
    ("OR2", 0.07),
    ("XOR2", 0.09),
    ("XNOR2", 0.04),
    ("AOI21", 0.07),
    ("OAI21", 0.05),
    ("MUX2", 0.06),
]


def _pick_cell(rng: np.random.Generator,
               mix: list[tuple[str, float]]) -> str:
    names = [m[0] for m in mix]
    weights = np.array([m[1] for m in mix], dtype=float)
    weights = weights / weights.sum()
    return names[int(rng.choice(len(names), p=weights))]


def random_cloud(builder: NetlistBuilder, inputs: list[Net],
                 out_count: int, depth: int,
                 width: int, rng: np.random.Generator,
                 mix: list[tuple[str, float]] | None = None,
                 hint: str = "cl") -> list[Net]:
    """Build a random combinational cloud and return its output nets.

    Parameters
    ----------
    inputs:
        Nets feeding level 0.  Must be non-empty.
    out_count:
        Number of output nets returned.
    depth:
        Number of gate levels (logic depth of the stage).
    width:
        Gates per level.
    rng:
        Stream from :mod:`repro.rng`; the cloud is a pure function of
        the stream state.

    Guarantees: all internal nets are consumed (folded into collector
    XOR trees when not otherwise used), so the resulting netlist
    validates.
    """
    if not inputs:
        raise NetlistError("random_cloud needs at least one input net")
    if out_count <= 0 or depth <= 0 or width <= 0:
        raise NetlistError("out_count, depth and width must be positive")
    mix = mix or DEFAULT_MIX

    lib = builder.libraries[builder.current_region]
    levels: list[list[Net]] = [list(inputs)]
    usage: dict[str, int] = {net.name: 0 for net in inputs}

    def pick_input(level_idx: int) -> Net:
        # Draw mostly from the previous level, sometimes two back,
        # preferring under-used nets so nothing is left dangling.
        source_level = levels[level_idx - 1]
        if level_idx >= 2 and rng.random() < 0.25:
            source_level = levels[level_idx - 2]
        unused = [n for n in source_level if usage.get(n.name, 1) == 0]
        pool = unused if unused and rng.random() < 0.7 else source_level
        net = pool[int(rng.integers(len(pool)))]
        usage[net.name] = usage.get(net.name, 0) + 1
        return net

    for level_idx in range(1, depth + 1):
        level: list[Net] = []
        for _ in range(width):
            cell_name = _pick_cell(rng, mix)
            cell = lib.get(cell_name)
            ins = [pick_input(level_idx) for _ in range(cell.num_inputs)]
            out = builder.gate(cell_name, *ins, hint=hint)
            usage[out.name] = 0
            level.append(out)
        levels.append(level)

    outputs: list[Net] = []
    final = levels[-1]
    # Seed outputs from the last level round-robin.
    for i in range(out_count):
        net = final[i % len(final)]
        usage[net.name] = usage.get(net.name, 0) + 1
        outputs.append(net)
    # Fold every net that never found a sink (including unused inputs)
    # into XOR chains over the outputs, so the netlist validates.
    leftovers = [net for level in levels for net in level
                 if usage.get(net.name, 0) == 0]
    idx = 0
    for net in leftovers:
        merged = builder.gate("XOR2", outputs[idx % out_count], net,
                              hint=f"{hint}_fold")
        usage[net.name] = usage.get(net.name, 0) + 1
        outputs[idx % out_count] = merged
        idx += 1
    return outputs
