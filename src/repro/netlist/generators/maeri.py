"""MAERI-like accelerator fabric generator.

MAERI (Kwon et al., ASPLOS'18) is the paper's main benchmark: a DNN
accelerator built from a *distribution tree* that streams operands from
memory to a linear array of *multiplier switches* (PEs), and an
*augmented reduction tree* of adder switches that folds partial sums
back.  The paper evaluates 16PE/4BW, 128PE/32BW and 256PE/64BW
configurations with the SRAM banks on the memory die and the fabric on
the logic die.

This generator reproduces that architecture shape at simulator scale:

* ``memory`` region — activation and weight SRAM banks with registered
  interfaces (the cross-tier net sources);
* ``logic`` region — distribution buffer trees, PE array (bit-sliced
  multiply + compression), pipelined reduction tree, control FSM.

The operand bit-width is a scale knob (default 4 bits vs 8/16 in the
real design); DESIGN.md §5 documents the scale-down policy.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.errors import NetlistError
from repro.netlist.builder import NetlistBuilder
from repro.netlist.net import Net
from repro.netlist.netlist import Netlist
from repro.netlist.generators.random_logic import random_cloud
from repro.netlist.generators.sram import sram_bank
from repro.rng import SeedBundle
from repro.tech.library import CellLibrary


@dataclass(frozen=True)
class MaeriConfig:
    """Scale parameters of one MAERI instance.

    ``pe_count`` must be a power of two (the reduction tree is binary).
    ``bandwidth`` is the memory-interface width in bits and sets the
    number of SRAM banks (one bank per 8 bits of bandwidth, per operand
    kind).  ``data_width`` is the per-operand bit width.
    """

    pe_count: int = 128
    bandwidth: int = 32
    data_width: int = 4
    control_depth: int = 6
    control_width: int = 24

    def __post_init__(self) -> None:
        if self.pe_count < 2 or self.pe_count & (self.pe_count - 1):
            raise NetlistError("pe_count must be a power of two >= 2")
        if self.bandwidth < 8:
            raise NetlistError("bandwidth must be >= 8 bits")
        if self.data_width < 2:
            raise NetlistError("data_width must be >= 2 bits")

    @property
    def num_banks(self) -> int:
        """SRAM banks per operand kind (activations / weights)."""
        return max(2, self.bandwidth // 8)

    @property
    def display_name(self) -> str:
        return f"maeri_{self.pe_count}pe_{self.bandwidth}bw"


def _pe(builder: NetlistBuilder, idx: int, clock: Net,
        act: list[Net], wt: list[Net], cfg: MaeriConfig) -> list[Net]:
    """One multiplier-switch PE: registered operands, bit-sliced
    multiply (AND partial products + XOR3/MAJ3 compression), registered
    product.  Returns the W product nets."""
    width = cfg.data_width
    with builder.module(f"pe{idx}"):
        act_q = builder.register_word(act, clock, hint="act")
        wt_q = builder.register_word(wt, clock, hint="wt")
        # Partial products: band-limited to keep the cell count linear
        # in W while preserving a multiplier-like depth profile.
        columns: list[list[Net]] = [[] for _ in range(width)]
        for i in range(width):
            for j in range(width):
                col = min(i + j, width - 1)
                columns[col].append(
                    builder.gate("AND2", act_q[i], wt_q[j], hint="pp"))
        # Pipeline cut after partial-product generation (real MAERI
        # multiplier switches are pipelined): register each column.
        columns = [builder.register_word(col, clock, hint=f"ppq{ci}")
                   for ci, col in enumerate(columns)]
        # Carry-save compression per column with XOR3/MAJ3; carries
        # ripple into the next column's input set.  Compression is
        # breadth-first (FIFO), which keeps the tree balanced and the
        # logic depth logarithmic in the column height.
        product: list[Net] = []
        carries_next: list[Net] = []
        for col in columns:
            nets = list(col) + carries_next
            carries_next = []
            while len(nets) > 2:
                a, b, c = nets[0], nets[1], nets[2]
                nets = nets[3:]
                nets.append(builder.gate("XOR3", a, b, c, hint="cmp_s"))
                carries_next.append(
                    builder.gate("MAJ3", a, b, c, hint="cmp_c"))
            if len(nets) == 2:
                product.append(
                    builder.gate("XOR2", nets[0], nets[1], hint="sum"))
                carries_next.append(
                    builder.gate("AND2", nets[0], nets[1], hint="cry"))
            else:
                product.append(nets[0])
        # Terminal carries fold into the MSB through a balanced tree.
        fold = [product[-1]] + carries_next
        while len(fold) > 1:
            nxt = []
            for i in range(0, len(fold) - 1, 2):
                nxt.append(builder.gate("XOR2", fold[i], fold[i + 1],
                                        hint="cfold"))
            if len(fold) % 2:
                nxt.append(fold[-1])
            fold = nxt
        product[-1] = fold[0]
        prod_q = builder.register_word(product, clock, hint="prod")
        return prod_q


def _adder_switch(builder: NetlistBuilder, idx: str, left: list[Net],
                  right: list[Net], sel: Net) -> list[Net]:
    """One reduction-tree adder switch: per-bit carry-save add of the
    two children plus a MUX2 bypass controlled by the dataflow config
    (MAERI's 'augmented' flexibility).  Returns W result nets."""
    width = len(left)
    with builder.module(f"as{idx}"):
        out: list[Net] = []
        carry: Net | None = None
        for b in range(width):
            if carry is None:
                s = builder.gate("XOR2", left[b], right[b], hint="s")
                carry = builder.gate("AND2", left[b], right[b], hint="c")
            else:
                s = builder.gate("XOR3", left[b], right[b], carry, hint="s")
                carry = builder.gate("MAJ3", left[b], right[b], carry,
                                     hint="c")
            # Bypass mux: forward left child or the sum.
            out.append(builder.gate("MUX2", left[b], s, sel, hint="byp"))
        # Terminal carry folds into the MSB to stay width-stable.
        out[-1] = builder.gate("XOR2", out[-1], carry, hint="cfold")
        return out


def generate_maeri(cfg: MaeriConfig,
                   libraries: dict[str, CellLibrary],
                   seeds: SeedBundle) -> Netlist:
    """Generate a MAERI-like netlist per *cfg*.

    ``libraries`` must contain ``"logic"`` and ``"memory"`` regions —
    identical for homogeneous designs, 16 nm/28 nm for heterogeneous.
    """
    if "logic" not in libraries or "memory" not in libraries:
        raise NetlistError("MAERI needs 'logic' and 'memory' libraries")
    rng = seeds.get(f"maeri:{cfg.display_name}")
    builder = NetlistBuilder(cfg.display_name, libraries)
    clock = builder.clock_net("clk")
    # The clock net needs a driver: a top-level clock port.
    clk_port = builder.netlist.add_port("clk_pad", "in")
    clock.attach(clk_port.pin)
    width = cfg.data_width

    # -- memory die: activation + weight banks ------------------------------
    bank_outs: dict[str, list[list[Net]]] = {"act": [], "wt": []}
    with builder.region("memory"):
        stream = [builder.input(f"stream_in{i}", tier_hint=1)
                  for i in range(cfg.num_banks)]
        addr = [builder.input(f"addr{i}", tier_hint=1) for i in range(3)]
        we = builder.input("we", tier_hint=1)
        for kind in ("act", "wt"):
            for b in range(cfg.num_banks):
                outs = sram_bank(builder, f"{kind}_bank{b}", clock,
                                 stream[b % len(stream)], addr, we,
                                 width, rng)
                bank_outs[kind].append(outs)

    # -- logic die: distribution trees ----------------------------------------
    pes_per_bank = cfg.pe_count // cfg.num_banks
    operands: dict[str, list[list[Net]]] = {"act": [], "wt": []}
    with builder.region("logic"):
        with builder.module("dist"):
            for kind in ("act", "wt"):
                # leaf_nets[pe][bit]
                leaf_nets: list[list[Net]] = [[] for _ in range(cfg.pe_count)]
                for b, outs in enumerate(bank_outs[kind]):
                    first_pe = b * pes_per_bank
                    for bit, net in enumerate(outs):
                        leaves = builder.buffer_tree(
                            net, pes_per_bank, hint=f"{kind}{b}b{bit}")
                        for k, leaf in enumerate(leaves):
                            leaf_nets[first_pe + k].append(leaf)
                operands[kind] = leaf_nets

        # -- PE array -----------------------------------------------------------
        pe_outs: list[list[Net]] = []
        for p in range(cfg.pe_count):
            pe_outs.append(_pe(builder, p, clock,
                               operands["act"][p], operands["wt"][p], cfg))

        # -- control FSM driving the reduction-tree selects ---------------------
        with builder.module("ctrl"):
            cfg_in = [builder.input(f"cfg{i}") for i in range(4)]
            state_d = random_cloud(builder, cfg_in, cfg.control_width,
                                   cfg.control_depth, cfg.control_width,
                                   rng, hint="fsm")
            state_q = builder.register_word(state_d, clock, hint="state")

        # -- reduction tree -------------------------------------------------------
        with builder.module("redtree"):
            level = pe_outs
            depth = 0
            while len(level) > 1:
                nxt: list[list[Net]] = []
                for i in range(0, len(level), 2):
                    sel = state_q[(depth + i) % len(state_q)]
                    node = _adder_switch(builder, f"{depth}_{i // 2}",
                                         level[i], level[i + 1], sel)
                    nxt.append(node)
                # Pipeline register every other level to bound path depth.
                if depth % 2 == 1:
                    nxt = [builder.register_word(n, clock,
                                                 hint=f"pipe{depth}")
                           for n in nxt]
                level = nxt
                depth += 1
            result = builder.register_word(level[0], clock, hint="out_reg")

        for i, net in enumerate(result):
            builder.output(f"result{i}", net)

    # Consume leftover state bits so validation passes.
    with builder.region("logic"):
        spare = state_q[0]
        for net in state_q[1:]:
            if not net.sinks:
                spare = builder.gate("XOR2", spare, net, hint="ctrl_fold")
        if not spare.sinks:
            builder.output("ctrl_obs", spare)

    return builder.done()
