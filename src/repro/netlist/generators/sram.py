"""SRAM bank wrapper.

Wraps the ``SRAM_1KX32`` macro with the address/data-in registers and
data-out buffering a memory compiler's bank interface provides, so the
macro participates in timing like a real memory: reg -> macro ->
long wire -> consumer paths are exactly the cross-tier paths the paper
optimizes with MLS.
"""

from __future__ import annotations

import numpy as np

from repro.netlist.builder import NetlistBuilder
from repro.netlist.net import Net


def sram_bank(builder: NetlistBuilder, name: str, clock: Net,
              data_in: Net, addr_nets: list[Net], we_net: Net,
              out_width: int, rng: np.random.Generator) -> list[Net]:
    """Instantiate one SRAM bank; returns *out_width* data-out nets.

    The macro has a single Q output (our macros are single-output cells
    like all library cells); the bank fans it out through an output
    buffer/invert stage into ``out_width`` bit nets, which is how
    word-line data reaches multiple consumers.
    """
    with builder.module(name):
        # Input-side registers (address + data + write-enable).
        d_q = builder.flop(data_in, clock, hint="din_reg")
        addr_q = [builder.flop(a, clock, hint=f"addr_reg{i}")
                  for i, a in enumerate(addr_nets[:3])]
        while len(addr_q) < 3:
            addr_q.append(addr_q[-1])
        we_q = builder.flop(we_net, clock, hint="we_reg")

        macro = builder.instance("SRAM_1KX32", "bank")
        d_q.attach(macro.pin("D"))
        for pin_name, net in zip(("A0", "A1", "A2"), addr_q):
            net.attach(macro.pin(pin_name))
        we_q.attach(macro.pin("WE"))
        clock.attach(macro.clock_pin)
        q_net = builder.wire("bank_q")
        q_net.attach(macro.output_pin)

        # Output buffering: alternate BUF/INV to vary polarity.
        outs: list[Net] = []
        for i in range(out_width):
            cell = "BUF" if rng.random() < 0.7 else "INV"
            outs.append(builder.gate(cell, q_net, hint=f"dout{i}"))
        return outs
