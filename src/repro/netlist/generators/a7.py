"""A7-like dual-core processor generator.

The paper's second benchmark is a dual-core Cortex-A7.  We reproduce
its architecture *shape*: two identical in-order cores, each a chain of
pipeline stages (fetch, decode, execute, memory, writeback) made of
registered random-logic datapath clouds, with L1 instruction/data cache
SRAM banks on the memory die and a small snoop/bus unit coupling the
cores.  The cache-to-pipeline nets are the cross-tier traffic the MLS
experiments exercise; the A7 BEOL is 8+8 layers in the paper
(Table IV), which the harness config mirrors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import NetlistError
from repro.netlist.builder import NetlistBuilder
from repro.netlist.net import Net
from repro.netlist.netlist import Netlist
from repro.netlist.generators.random_logic import random_cloud
from repro.netlist.generators.sram import sram_bank
from repro.rng import SeedBundle
from repro.tech.library import CellLibrary


@dataclass(frozen=True)
class A7Config:
    """Scale parameters of the dual-core design.

    ``word_width`` is the datapath width (32 in the real core; the
    default scales it down), ``stage_depth`` the logic depth per
    pipeline stage, ``cache_banks`` the number of SRAM banks per cache
    (I$ and D$) per core.
    """

    cores: int = 2
    word_width: int = 16
    stage_depth: int = 8
    cache_banks: int = 4
    bus_width: int = 8

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise NetlistError("need at least one core")
        if self.word_width < 4:
            raise NetlistError("word_width must be >= 4")
        if self.stage_depth < 2:
            raise NetlistError("stage_depth must be >= 2")
        if self.cache_banks < 1:
            raise NetlistError("cache_banks must be >= 1")

    @property
    def display_name(self) -> str:
        return f"a7_{self.cores}core_w{self.word_width}"


_STAGES = ("fetch", "decode", "execute", "mem", "wb")


def _core(builder: NetlistBuilder, core_idx: int, clock: Net,
          icache_bits: list[Net], dcache_bits: list[Net],
          bus_in: list[Net], cfg: A7Config,
          rng: np.random.Generator) -> dict[str, list[Net]]:
    """One in-order core.  Returns interface nets: ``dcache_addr`` (to
    the D$ banks), ``bus_out`` (to the snoop unit), ``retire`` (for
    output ports)."""
    width = cfg.word_width
    with builder.module(f"core{core_idx}"):
        stage_in = list(icache_bits)
        # Ensure the stage input vector is word-wide; surplus cache
        # bits fold into bit 0 so nothing dangles.
        while len(stage_in) < width:
            stage_in.append(stage_in[len(stage_in) % len(icache_bits)])
        for extra_bit in stage_in[width:]:
            stage_in[0] = builder.gate("XOR2", stage_in[0], extra_bit,
                                       hint="ifold")
        q = builder.register_word(stage_in[:width], clock, hint="if_reg")
        for stage in _STAGES:
            with builder.module(stage):
                extra: list[Net] = []
                if stage == "mem":
                    extra = dcache_bits
                if stage == "execute":
                    extra = bus_in
                d = random_cloud(builder, q + extra, width,
                                 cfg.stage_depth, width + 4, rng,
                                 hint=stage[:2])
                q = builder.register_word(d, clock, hint=f"{stage}_reg")
        # Interfaces tap the writeback stage.
        dcache_addr = q[: max(3, width // 4)]
        bus_out = q[width // 2: width // 2 + cfg.bus_width]
        retire = q
        return {"dcache_addr": dcache_addr, "bus_out": bus_out,
                "retire": retire}


def generate_a7_dual_core(cfg: A7Config,
                          libraries: dict[str, CellLibrary],
                          seeds: SeedBundle) -> Netlist:
    """Generate the dual-core design per *cfg*.

    ``libraries`` must contain ``"logic"`` and ``"memory"`` regions.
    """
    if "logic" not in libraries or "memory" not in libraries:
        raise NetlistError("A7 needs 'logic' and 'memory' libraries")
    rng = seeds.get(f"a7:{cfg.display_name}")
    builder = NetlistBuilder(cfg.display_name, libraries)
    clock = builder.clock_net("clk")
    clk_port = builder.netlist.add_port("clk_pad", "in")
    clock.attach(clk_port.pin)

    # -- memory die: caches ---------------------------------------------------
    cache_bits: list[dict[str, list[Net]]] = []
    with builder.region("memory"):
        fill = [builder.input(f"fill{i}", tier_hint=1)
                for i in range(cfg.cache_banks)]
        addr = [builder.input(f"maddr{i}", tier_hint=1) for i in range(3)]
        we = builder.input("mwe", tier_hint=1)
        for c in range(cfg.cores):
            per_core: dict[str, list[Net]] = {}
            for kind in ("icache", "dcache"):
                bits: list[Net] = []
                for b in range(cfg.cache_banks):
                    outs = sram_bank(
                        builder, f"core{c}_{kind}{b}", clock,
                        fill[b % len(fill)], addr, we,
                        max(2, cfg.word_width // cfg.cache_banks), rng)
                    bits.extend(outs)
                per_core[kind] = bits
            cache_bits.append(per_core)

    # -- logic die: cores + snoop/bus unit ------------------------------------
    with builder.region("logic"):
        irq = [builder.input(f"irq{i}") for i in range(2)]
        # Snoop-control state feeding both cores' execute stages.
        with builder.module("scu"):
            scu_seed = random_cloud(builder, irq, cfg.bus_width, 4,
                                    cfg.bus_width, rng, hint="scu")
            scu_q = builder.register_word(scu_seed, clock, hint="scu_reg")

        cores = []
        for c in range(cfg.cores):
            cores.append(_core(builder, c, clock,
                               cache_bits[c]["icache"],
                               cache_bits[c]["dcache"],
                               scu_q, cfg, rng))

        # Bus arbitration cloud mixing both cores' bus_out.
        with builder.module("bus"):
            bus_nets = [net for core in cores for net in core["bus_out"]]
            arb = random_cloud(builder, bus_nets, cfg.bus_width, 3,
                               cfg.bus_width, rng, hint="arb")
            arb_q = builder.register_word(arb, clock, hint="arb_reg")
        for i, net in enumerate(arb_q):
            builder.output(f"bus_obs{i}", net)

        # Retire buses become output ports; D$ address nets loop back to
        # the memory die as the logic->memory cross-tier traffic.
        for c, core in enumerate(cores):
            for i, net in enumerate(core["retire"][: cfg.word_width // 2]):
                builder.output(f"c{c}_retire{i}", net)
            unused = core["retire"][cfg.word_width // 2:]
            spare = unused[0]
            for net in unused[1:]:
                spare = builder.gate("XOR2", spare, net, hint=f"c{c}_fold")
            builder.output(f"c{c}_status", spare)

    with builder.region("memory"):
        # Writeback path: core D$ addresses re-registered on the memory
        # die (logic -> memory cross-tier nets).
        for c, core in enumerate(cores):
            for i, net in enumerate(core["dcache_addr"]):
                q = builder.flop(net, clock, hint=f"c{c}_wb{i}")
                builder.output(f"c{c}_wb_obs{i}", q, tier_hint=1)

    return builder.done()
