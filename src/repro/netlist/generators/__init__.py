"""Benchmark netlist generators.

Synthesizes the paper's three benchmark architectures at simulator
scale: MAERI-like reconfigurable accelerator fabrics (16/128/256 PE)
and an A7-like dual-core processor.  Each generator tags instances
with ``region`` = "logic"/"memory" so the memory-on-logic partitioner
can split them onto tiers exactly as the Macro-3D flow does.
"""

from repro.netlist.generators.random_logic import random_cloud
from repro.netlist.generators.sram import sram_bank
from repro.netlist.generators.maeri import generate_maeri, MaeriConfig
from repro.netlist.generators.a7 import generate_a7_dual_core, A7Config

__all__ = [
    "random_cloud",
    "sram_bank",
    "generate_maeri",
    "MaeriConfig",
    "generate_a7_dual_core",
    "A7Config",
]
