"""Metal Layer Sharing: selection policies and application.

Three ways to pick the MLS net set, mirroring the paper's comparisons:

* :func:`~repro.mls.sota.sota_select` — the state-of-the-art heuristic
  [Pentapati & Lim, TVLSI'22]: wirelength/congestion-thresholded,
  *net-level timing blind* — the baseline GNN-MLS beats;
* :func:`~repro.mls.oracle.oracle_select` — exhaustive per-net what-if
  STA, the "computationally prohibitive" exact policy the paper's GNN
  approximates (tractable here at simulator scale; also the label
  source for training);
* the GNN decider in :mod:`repro.core` — the paper's contribution.

:mod:`repro.mls.apply` turns a selection into a routed design.
"""

from repro.mls.sota import sota_select
from repro.mls.oracle import (oracle_select, oracle_labels,
                              oracle_slack_labels, NetLabel, SlackLabel)
from repro.mls.apply import route_with_mls, apply_mls_incremental

__all__ = [
    "sota_select",
    "oracle_select",
    "oracle_labels",
    "oracle_slack_labels",
    "NetLabel",
    "SlackLabel",
    "route_with_mls",
    "apply_mls_incremental",
]
