"""State-of-the-art MLS heuristic baseline.

Pentapati & Lim's metal-layer-sharing router [9] assigns nets to the
shared cross-tier layers by physical criteria — long nets and nets in
congested regions benefit from the extra resource — with no per-net
timing evaluation.  That indiscriminateness is precisely what the
paper's Table I critiques: some selected nets get slower.

We reproduce the policy as: every 2-D net whose half-perimeter
wirelength exceeds a threshold, plus shorter 2-D nets whose bounding
box sits in congested gcells, is requested for MLS.
"""

from __future__ import annotations

from repro.design import Design
from repro.netlist.net import Net
from repro.route.router import RoutingResult

#: Nets at or above this HPWL (um) are always selected.
DEFAULT_MIN_HPWL_UM = 18.0
#: Shorter nets are selected when their region's mean track load
#: exceeds this ratio.
DEFAULT_CONGESTION_TRIGGER = 0.85


def _net_is_2d(design: Design, net: Net) -> bool:
    tiers = design.require_tiers()
    return len(tiers.net_tiers(net)) == 1


def sota_select(design: Design, routing: RoutingResult | None = None,
                min_hpwl_um: float = DEFAULT_MIN_HPWL_UM,
                congestion_trigger: float = DEFAULT_CONGESTION_TRIGGER
                ) -> set[str]:
    """Select MLS nets by the SOTA heuristic.

    *routing* (typically the no-MLS baseline) supplies the congestion
    picture for the secondary criterion; without it only the length
    rule applies.
    """
    placement = design.require_placement()
    selected: set[str] = set()
    for net in design.netlist.signal_nets():
        if not _net_is_2d(design, net):
            continue
        x0, y0, x1, y1 = placement.net_bbox(net)
        hpwl = (x1 - x0) + (y1 - y0)
        if hpwl >= min_hpwl_um:
            selected.add(net.name)
            continue
        if routing is None or hpwl < 4.0:
            continue
        tier = design.require_tiers().of_pin(net.driver)
        grid = routing.grid
        cx0, cy0 = grid.clamp_cell(x0, y0)
        cx1, cy1 = grid.clamp_cell(x1, y1)
        cells = [(ix, iy) for ix in range(cx0, cx1 + 1)
                 for iy in range(cy0, cy1 + 1)]
        # Congestion of the pair the net would normally use.
        load = max(grid.path_load(tier, pair, cells)
                   for pair in range(grid.num_pairs(tier)))
        if load >= congestion_trigger:
            selected.add(net.name)
    return selected
