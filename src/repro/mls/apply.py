"""Turning an MLS net selection into a routed design."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.design import Design
from repro.parallel import ParallelConfig
from repro.route.router import GlobalRouter, RouteConfig, RoutingResult

if TYPE_CHECKING:  # pragma: no cover - typing-only import cycle guard
    from repro.timing.incremental import IncrementalSta


def route_with_mls(design: Design, mls_nets: set[str],
                   config: RouteConfig | None = None,
                   parallel: ParallelConfig | None = None
                   ) -> tuple[GlobalRouter, RoutingResult]:
    """Route the whole design from scratch with *mls_nets* shared.

    A fresh full route is the faithful evaluation: it captures not
    only the selected nets' own delay changes but also the congestion
    relief they grant everyone else on the home tier (and the shared-
    resource pressure they put on the other tier — how SOTA's
    over-application backfires).

    A multi-worker *parallel* config routes in wavefront order; the
    result is bit-identical to the serial schedule (see
    :meth:`GlobalRouter.route_all`).
    """
    router = GlobalRouter(design, config)
    result = router.route_all(mls_nets=mls_nets, parallel=parallel)
    return router, result


def apply_mls_incremental(design: Design, router: GlobalRouter,
                          result: RoutingResult,
                          add: set[str] = frozenset(),
                          remove: set[str] = frozenset(),
                          sta: "IncrementalSta | None" = None
                          ) -> RoutingResult:
    """Toggle MLS on individual nets of an existing routing.

    Cheaper than a full re-route; used by the targeted-routing stage
    for ECO-style adjustments and by Table I's single-net experiment.
    Nets are processed longest-first so trunk edges claim shared
    resources in the same priority order as the full route.

    Pass an :class:`~repro.timing.incremental.IncrementalSta` as *sta*
    to patch its arc delays with exactly the toggled nets afterwards —
    the ECO-loop pairing that keeps timing current without a full STA.
    """
    netlist = design.netlist
    both = add & remove
    if both:
        raise ValueError(f"nets both added and removed: {sorted(both)[:3]}")

    def hpwl(name: str) -> float:
        net = netlist.net(name)
        x0, y0, x1, y1 = design.require_placement().net_bbox(net)
        return (x1 - x0) + (y1 - y0)

    for name in sorted(remove, key=lambda n: (-hpwl(n), n)):
        router.reroute_net(result, netlist.net(name), mls=False)
    for name in sorted(add, key=lambda n: (-hpwl(n), n)):
        router.reroute_net(result, netlist.net(name), mls=True)
    if sta is not None:
        sta.update(add | remove)
    return result
