"""Exact what-if oracle for MLS decisions and training labels.

For every candidate 2-D net, probes both routings and labels the net
by its delay delta.  This is the "iterative STA" policy the paper
declares computationally prohibitive at commercial scale — at our
simulator scale it is tractable, which lets us (a) generate the
supervised fine-tuning labels of Algorithm 1, and (b) report an
upper-bound policy the GNN can be compared against in ablations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.design import Design
from repro.netlist.net import Net
from repro.parallel import ParallelConfig, snapshot_map
from repro.route.router import GlobalRouter, RoutingResult
from repro.timing.incremental import IncrementalSta, net_whatif_delta

#: A net must improve its worst sink by at least this much (ps) to be
#: selected — hysteresis against churn on near-zero deltas.
DEFAULT_GAIN_EPS_PS = 0.25


@dataclass(frozen=True)
class NetLabel:
    """Oracle verdict for one net.

    ``delta_ps`` is the MLS-on minus MLS-off delay at the worst sink
    (negative = MLS helps).  ``label`` is the binary training target
    delta(n) of the paper.
    """

    net_name: str
    delta_ps: float
    applied: bool
    label: int

    @property
    def helps(self) -> bool:
        return self.label == 1


def candidate_nets(design: Design) -> list[Net]:
    """2-D signal nets — the MLS decision space."""
    tiers = design.require_tiers()
    return [net for net in design.netlist.signal_nets()
            if len(tiers.net_tiers(net)) == 1]


def _whatif_chunk(state, names: list[str]) -> list[tuple[str, float, bool]]:
    """Worker: probe one chunk of nets against the snapshot state.

    ``probe_net`` restores the grid after each probe, so probes are
    independent and the fan-out is bit-equivalent to the serial loop.
    """
    design, router, result = state
    out = []
    for name in names:
        delta = net_whatif_delta(design, router, result,
                                 design.netlist.net(name))
        out.append((name, delta.worst_delta_ps(), delta.applied))
    return out


def oracle_labels(design: Design, router: GlobalRouter,
                  result: RoutingResult,
                  nets: list[Net] | None = None,
                  gain_eps_ps: float = DEFAULT_GAIN_EPS_PS,
                  parallel: ParallelConfig | None = None
                  ) -> dict[str, NetLabel]:
    """Probe *nets* (default: all 2-D nets) and label each one.

    With a multi-worker *parallel* config the per-net probes fan out
    over a process pool against one pickled (design, router, result)
    snapshot; labels are identical to the serial run.
    """
    if nets is None:
        nets = candidate_nets(design)
    labels: dict[str, NetLabel] = {}
    if parallel is not None and parallel.should_parallelize(len(nets)):
        rows = snapshot_map(_whatif_chunk, [net.name for net in nets],
                            snapshot=(design, router, result),
                            config=parallel)
        for name, worst, applied in rows:
            good = applied and worst <= -gain_eps_ps
            labels[name] = NetLabel(net_name=name, delta_ps=worst,
                                    applied=applied,
                                    label=1 if good else 0)
        return labels
    for net in nets:
        delta = net_whatif_delta(design, router, result, net)
        worst = delta.worst_delta_ps()
        good = delta.applied and worst <= -gain_eps_ps
        labels[net.name] = NetLabel(net_name=net.name, delta_ps=worst,
                                    applied=delta.applied,
                                    label=1 if good else 0)
    return labels


@dataclass(frozen=True)
class SlackLabel:
    """Path-slack oracle verdict for one net.

    Unlike :class:`NetLabel`'s local delay delta, these deltas are
    *global* signoff movements: MLS-on minus baseline WNS/TNS over the
    whole design (positive = MLS helps).  A net whose own delay
    shrinks can still label 0 here if no negative-slack path crosses
    it.
    """

    net_name: str
    gain_wns_ps: float
    gain_tns_ps: float
    applied: bool
    label: int

    @property
    def helps(self) -> bool:
        return self.label == 1


def oracle_slack_labels(design: Design, router: GlobalRouter,
                        result: RoutingResult,
                        nets: list[Net] | None = None,
                        gain_eps_ps: float = DEFAULT_GAIN_EPS_PS,
                        sta: IncrementalSta | None = None
                        ) -> dict[str, SlackLabel]:
    """Label each net by the *exact* WNS/TNS it buys at signoff.

    The expensive variant of :func:`oracle_labels`: instead of the
    worst-sink delay delta, each probe commits the MLS routing,
    patches the incremental STA with just that net, reads the design
    WNS/TNS, then restores the committed tree bit-exactly (grid usage
    and timing state both return to baseline).  The incremental engine
    is what makes this tractable — each probe re-propagates only the
    fan-out cone of the toggled net rather than re-running full STA.

    Serial by construction: probes share one mutable routing + STA
    state.  For fan-out across workers use the delay-delta oracle.
    """
    if nets is None:
        nets = candidate_nets(design)
    if sta is None:
        sta = IncrementalSta(design)
    base = sta.report()
    base_wns, base_tns = base.wns_ps, base.tns_ns
    labels: dict[str, SlackLabel] = {}
    for net in nets:
        tree = result.trees.get(net.name)
        rc = result.rc.get(net.name)
        if tree is None:
            continue
        router.reroute_net(result, net, mls=True)
        applied = result.tree(net.name).num_shared_edges() > 0
        rep = sta.update([net.name])
        gain_wns = rep.wns_ps - base_wns
        gain_tns = (rep.tns_ns - base_tns) * 1e3
        router.restore_net(result, net, tree, rc)
        sta.update([net.name])
        good = applied and (gain_wns >= gain_eps_ps
                            or gain_tns >= gain_eps_ps)
        labels[net.name] = SlackLabel(net_name=net.name,
                                      gain_wns_ps=gain_wns,
                                      gain_tns_ps=gain_tns,
                                      applied=applied,
                                      label=1 if good else 0)
    return labels


def oracle_select(design: Design, router: GlobalRouter,
                  result: RoutingResult,
                  nets: list[Net] | None = None,
                  gain_eps_ps: float = DEFAULT_GAIN_EPS_PS,
                  parallel: ParallelConfig | None = None,
                  exact_slack: bool = False,
                  sta: IncrementalSta | None = None) -> set[str]:
    """The exact policy: MLS exactly where the what-if says it helps.

    ``exact_slack=True`` upgrades the per-net criterion from the local
    delay delta to the design-level WNS/TNS movement measured by
    :func:`oracle_slack_labels` (always serial; *parallel* ignored).
    """
    if exact_slack:
        slabels = oracle_slack_labels(design, router, result, nets=nets,
                                      gain_eps_ps=gain_eps_ps, sta=sta)
        return {name for name, lab in slabels.items() if lab.helps}
    labels = oracle_labels(design, router, result, nets=nets,
                           gain_eps_ps=gain_eps_ps, parallel=parallel)
    return {name for name, lab in labels.items() if lab.helps}
