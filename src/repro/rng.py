"""Deterministic named random streams.

Every stochastic component of the library (netlist generators, placement
jitter, DGI corruption, weight init, fault-simulation patterns) draws
from a *named* stream derived from a single experiment seed.  Naming the
streams decouples them: adding a draw in one component does not perturb
another component's sequence, so experiment tables reproduce exactly
even as the code evolves.
"""

from __future__ import annotations

import hashlib

import numpy as np

DEFAULT_SEED = 20250706


def _stream_seed(seed: int, name: str) -> int:
    """Derive a 63-bit child seed from (seed, name) via SHA-256."""
    digest = hashlib.sha256(f"{seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") & 0x7FFF_FFFF_FFFF_FFFF


def stream(name: str, seed: int = DEFAULT_SEED) -> np.random.Generator:
    """Return an independent :class:`numpy.random.Generator` for *name*.

    The same (name, seed) pair always yields an identical sequence.

    >>> a = stream("placement", 1).random()
    >>> b = stream("placement", 1).random()
    >>> a == b
    True
    >>> stream("placement", 1).random() == stream("routing", 1).random()
    False
    """
    if not name:
        raise ValueError("stream name must be non-empty")
    return np.random.default_rng(_stream_seed(seed, name))


class SeedBundle:
    """A bag of named streams sharing one experiment seed.

    Flows pass a single ``SeedBundle`` down so that every component can
    pull its own stream without threading many generators around.
    """

    def __init__(self, seed: int = DEFAULT_SEED):
        self.seed = int(seed)
        self._cache: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the stream for *name*, created on first use.

        Repeated calls return the *same* generator object, so draws
        within one bundle advance a persistent per-name sequence.
        """
        if name not in self._cache:
            self._cache[name] = stream(name, self.seed)
        return self._cache[name]

    def fresh(self, name: str) -> np.random.Generator:
        """Return a brand-new generator for *name* (position reset)."""
        return stream(name, self.seed)

    def child(self, suffix: str) -> "SeedBundle":
        """Derive a new bundle whose streams are independent of ours."""
        return SeedBundle(_stream_seed(self.seed, f"child:{suffix}"))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SeedBundle(seed={self.seed}, streams={sorted(self._cache)})"
