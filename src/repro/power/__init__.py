"""Power estimation, multi-Vdd domains, and level shifters.

Covers the paper's Section III-E power rows: per-design dynamic +
leakage power under the tier voltage plan (heterogeneous stacks run
the 16 nm logic sub-domain at 0.81 V under a 0.9 V top level), level-
shifter insertion on every cross-tier signal with a domain crossing,
and the effective-frequency metric of Tables IV-VI.
"""

from repro.power.domains import (
    PowerDomain,
    PowerPlan,
    default_power_plan,
    insert_level_shifters,
)
from repro.power.estimate import PowerReport, estimate_power

__all__ = [
    "PowerDomain",
    "PowerPlan",
    "default_power_plan",
    "insert_level_shifters",
    "PowerReport",
    "estimate_power",
]
