"""Multi-Vdd power domains and level-shifter insertion.

The paper's heterogeneous integration (Fig. 7) runs a 0.9 V top level
with the 28 nm memory sub-domain at 0.9 V and the 16 nm logic
sub-domain at 0.81 V; every 3-D signal connection crossing the domain
boundary gets a level shifter.  Homogeneous stacks use one 0.9 V
domain and need none.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.design import Design
from repro.errors import FlowError
from repro.partition.tier import TIER_LOGIC, TIER_MEMORY


@dataclass(frozen=True)
class PowerDomain:
    """One voltage domain bound to a tier."""

    name: str
    vdd: float
    tier: int


@dataclass(frozen=True)
class PowerPlan:
    """The design's domain arrangement."""

    domains: tuple[PowerDomain, ...]

    def domain_of_tier(self, tier: int) -> PowerDomain:
        for dom in self.domains:
            if dom.tier == tier:
                return dom
        raise FlowError(f"no power domain covers tier {tier}")

    @property
    def lowest_vdd(self) -> float:
        return min(d.vdd for d in self.domains)

    @property
    def needs_level_shifters(self) -> bool:
        return len({d.vdd for d in self.domains}) > 1


def default_power_plan(design: Design) -> PowerPlan:
    """The paper's plan: per-tier node nominal voltages.

    Hetero (16 nm logic + 28 nm memory): 0.81 V bottom, 0.9 V top.
    Homo (28 nm both): 0.9 V everywhere.
    """
    bottom = design.tech.node_of(TIER_LOGIC)
    top = design.tech.node_of(TIER_MEMORY)
    return PowerPlan(domains=(
        PowerDomain("logic", bottom.vdd, TIER_LOGIC),
        PowerDomain("memory", top.vdd, TIER_MEMORY),
    ))


def insert_level_shifters(design: Design, plan: PowerPlan) -> int:
    """Insert a level shifter on every domain-crossing signal net.

    The shifter lands on the *sink* side of each crossing (receiving
    domain), splitting the net: driver-side net keeps the driver and
    same-tier sinks; the shifter drives the other-domain sinks.
    Returns the number of shifters inserted; 0 for single-Vdd plans.

    Must run before routing (the shifter changes net topology); raises
    if the design is already routed.
    """
    if not plan.needs_level_shifters:
        return 0
    if design.routing is not None:
        raise FlowError("insert level shifters before routing, not after")
    netlist = design.netlist
    tiers = design.require_tiers()
    placement = design.require_placement()
    fp = design.require_floorplan()
    inserted = 0
    for net in list(netlist.signal_nets()):
        if net.driver is None:
            continue
        driver_tier = tiers.of_pin(net.driver)
        cross_sinks = [s for s in net.sinks
                       if tiers.of_pin(s) != driver_tier]
        if not cross_sinks:
            continue
        sink_tier = 1 - driver_tier
        region = "logic" if sink_tier == TIER_LOGIC else "memory"
        lib = design.tech.libraries[region]
        inst = netlist.add_instance(netlist.fresh_name(f"{net.name}_ls"),
                                    lib.get("LVLSHIFT"))
        inst.attrs["region"] = region
        inst.attrs["level_shifter"] = "1"
        tiers.set_instance(inst.name, sink_tier)
        # Place at the crossing sinks' centroid, clamped to the die.
        cx = sum(placement.of_pin(s).x for s in cross_sinks) / len(cross_sinks)
        cy = sum(placement.of_pin(s).y for s in cross_sinks) / len(cross_sinks)
        placement.set_instance(inst.name, *fp.clamp(cx, cy))
        shifted = netlist.split_net_at_sinks(net, cross_sinks)
        net.attach(inst.pin("A"))
        shifted.attach(inst.output_pin)
        inserted += 1
    design.notes["level_shifters"] = inserted
    return inserted


def level_shifter_instances(design: Design) -> list[str]:
    """Names of all inserted level shifters."""
    return [name for name, inst in design.netlist.instances.items()
            if inst.attrs.get("level_shifter") == "1"
            or inst.cell.is_level_shifter]
