"""Design power estimation.

Dynamic power = switching of extracted net capacitance plus per-cell
internal energy, both at the design's target frequency under a uniform
activity factor; leakage from the library; a lumped clock-tree term
proportional to the sequential population.  Per-cell voltage comes
from the tier's power domain, so the heterogeneous 0.81 V logic domain
burns quadratically less switching power — the effect Table IV's
power rows show.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.design import Design
from repro.power.domains import PowerPlan, default_power_plan, \
    level_shifter_instances

#: Default signal activity (toggles per cycle).
DEFAULT_ACTIVITY = 0.15
#: Clock distribution overhead: effective cap per sequential cell, fF.
CLOCK_CAP_PER_FLOP_FF = 4.0


@dataclass
class PowerReport:
    """Breakdown in mW."""

    dynamic_mw: float
    leakage_mw: float
    clock_mw: float
    level_shifter_mw: float
    num_level_shifters: int

    @property
    def total_mw(self) -> float:
        return self.dynamic_mw + self.leakage_mw + self.clock_mw

    def summary(self) -> dict[str, float]:
        return {
            "total_mw": self.total_mw,
            "dynamic_mw": self.dynamic_mw,
            "leakage_mw": self.leakage_mw,
            "clock_mw": self.clock_mw,
            "ls_mw": self.level_shifter_mw,
            "ls_count": self.num_level_shifters,
        }


def estimate_power(design: Design, plan: PowerPlan | None = None,
                   activity: float = DEFAULT_ACTIVITY) -> PowerReport:
    """Estimate power for the routed design at its target frequency."""
    plan = plan or default_power_plan(design)
    routing = design.require_routing()
    tiers = design.require_tiers()
    f_hz = design.target_freq_mhz * 1e6

    dynamic_w = 0.0
    leakage_mw = 0.0
    ls_w = 0.0
    ls_names = set(level_shifter_instances(design))
    for name, inst in design.netlist.instances.items():
        tier = tiers.of_instance(name)
        vdd = plan.domain_of_tier(tier).vdd
        act = activity * (1.5 if inst.is_macro else 1.0)
        internal_w = inst.cell.energy_fj * 1e-15 * f_hz * act
        net = inst.output_pin.net
        switch_w = 0.0
        if net is not None and not net.is_clock:
            rc = routing.rc.get(net.name)
            cap_ff = rc.load_ff if rc is not None else net.sink_cap_ff()
            switch_w = 0.5 * cap_ff * 1e-15 * vdd * vdd * f_hz * act
        dynamic_w += internal_w + switch_w
        leakage_mw += inst.cell.leakage_mw
        if name in ls_names:
            ls_w += internal_w + switch_w + inst.cell.leakage_mw * 1e-3

    # Lumped clock tree: full-swing switching of every clock pin plus
    # distribution buffers, at activity 1 (the clock always toggles).
    num_seq = len(design.netlist.sequential_instances())
    vdd_top = max(d.vdd for d in plan.domains)
    clock_w = num_seq * CLOCK_CAP_PER_FLOP_FF * 1e-15 * vdd_top ** 2 * f_hz

    return PowerReport(
        dynamic_mw=dynamic_w * 1e3,
        leakage_mw=leakage_mw,
        clock_mw=clock_w * 1e3,
        level_shifter_mw=ls_w * 1e3,
        num_level_shifters=len(ls_names),
    )
