"""Recursive-bisection global placement with terminal propagation.

The pure quadratic solve collapses interchangeable clusters onto one
point (all 128 MAERI PEs land within a few micrometres), and no local
spreading can recover locality from that.  Top-down bisection is the
classical fix: split the region, divide the cells by their solved
coordinate along the long axis (area-balanced), anchor every cell to
its region center with growing weight, re-solve, recurse.  Connected
cells stay together because each re-solve lets connectivity rearrange
cells *within* their regions while anchors encode the spatial
commitment made so far.
"""

from __future__ import annotations

from dataclasses import dataclass

import math

from repro.errors import PlacementError
from repro.netlist.netlist import Netlist
from repro.place.floorplan import Floorplan
from repro.place.quadratic import quadratic_solve

#: Stop splitting when a region holds at most this many cells.
DEFAULT_LEAF_CELLS = 24
#: Anchor weight at the first level; doubles per level.
DEFAULT_BASE_ANCHOR = 0.01


@dataclass
class _Region:
    x0: float
    y0: float
    x1: float
    y1: float
    cells: list[str]

    @property
    def width(self) -> float:
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        return self.y1 - self.y0

    @property
    def center(self) -> tuple[float, float]:
        return ((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)


def _split(region: _Region, pos: dict[str, tuple[float, float]],
           area: dict[str, float]) -> tuple[_Region, _Region]:
    """Split along the long axis at the area median of solved coords."""
    axis = 0 if region.width >= region.height else 1
    ordered = sorted(region.cells,
                     key=lambda n: (pos[n][axis], n))
    total = sum(area[n] for n in ordered)
    half, acc, cut = total / 2.0, 0.0, 0
    for i, name in enumerate(ordered):
        acc += area[name]
        if acc >= half:
            cut = i + 1
            break
    cut = max(1, min(cut, len(ordered) - 1))
    first, second = ordered[:cut], ordered[cut:]
    frac = max(0.1, min(0.9, sum(area[n] for n in first) / total))
    if axis == 0:
        xm = region.x0 + frac * region.width
        return (_Region(region.x0, region.y0, xm, region.y1, first),
                _Region(xm, region.y0, region.x1, region.y1, second))
    ym = region.y0 + frac * region.height
    return (_Region(region.x0, region.y0, region.x1, ym, first),
            _Region(region.x0, ym, region.x1, region.y1, second))


def _layout_leaf(region: _Region, pos: dict[str, tuple[float, float]]
                 ) -> dict[str, tuple[float, float]]:
    """Arrange a leaf region's cells on a compact grid, ordered by the
    solved coordinates so intra-leaf adjacency is preserved."""
    cells = sorted(region.cells, key=lambda n: (pos[n][1], pos[n][0], n))
    n = len(cells)
    if n == 0:
        return {}
    cols = max(1, int(math.ceil(math.sqrt(n * max(region.width, 1e-6)
                                          / max(region.height, 1e-6)))))
    rows = int(math.ceil(n / cols))
    out: dict[str, tuple[float, float]] = {}
    for i, name in enumerate(cells):
        r, c = divmod(i, cols)
        x = region.x0 + (c + 0.5) * region.width / cols
        y = region.y0 + (r + 0.5) * region.height / max(rows, 1)
        out[name] = (x, y)
    return out


def bisection_place(netlist: Netlist, fixed: dict[str, tuple[float, float]],
                    fp: Floorplan, movable: list[str],
                    leaf_cells: int = DEFAULT_LEAF_CELLS,
                    base_anchor: float = DEFAULT_BASE_ANCHOR
                    ) -> dict[str, tuple[float, float]]:
    """Place *movable* instances inside the core area.

    Returns name -> (x, y).  ``fixed`` holds port/macro anchors (same
    key convention as :func:`quadratic_solve`).
    """
    if not movable:
        return {}
    area = {n: max(netlist.instance(n).cell.area_um2, 0.1) for n in movable}
    pos = quadratic_solve(netlist, fixed, fp, movable=movable)
    regions = [_Region(0.0, 0.0, fp.width, fp.core_height, list(movable))]
    weight = base_anchor
    while max(len(r.cells) for r in regions) > leaf_cells:
        next_regions: list[_Region] = []
        for region in regions:
            if len(region.cells) <= leaf_cells:
                next_regions.append(region)
                continue
            a, b = _split(region, pos, area)
            next_regions.extend((a, b))
        regions = next_regions
        # Terminal propagation: anchor every cell to its region center
        # and re-solve so connectivity optimizes within commitments.
        anchors: dict[str, tuple[float, float]] = {}
        for region in regions:
            cx, cy = region.center
            for name in region.cells:
                anchors[name] = (cx, cy)
        pos = quadratic_solve(netlist, fixed, fp, movable=movable,
                              anchors=anchors, anchor_weight=weight)
        # Clamp each cell into its region so the next split is local.
        for region in regions:
            for name in region.cells:
                x, y = pos[name]
                pos[name] = (min(max(x, region.x0), region.x1),
                             min(max(y, region.y0), region.y1))
        weight *= 2.0

    final: dict[str, tuple[float, float]] = {}
    for region in regions:
        final.update(_layout_leaf(region, pos))
    if len(final) != len(movable):
        raise PlacementError(
            f"bisection lost cells: {len(final)} != {len(movable)}")
    return final
