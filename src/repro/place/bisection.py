"""Recursive-bisection global placement with terminal propagation.

The pure quadratic solve collapses interchangeable clusters onto one
point (all 128 MAERI PEs land within a few micrometres), and no local
spreading can recover locality from that.  Top-down bisection is the
classical fix: split the region, divide the cells by their solved
coordinate along the long axis (area-balanced), anchor every cell to
its region center with growing weight, re-solve, recurse.  Connected
cells stay together because each re-solve lets connectivity rearrange
cells *within* their regions while anchors encode the spatial
commitment made so far.

Implementation notes: all per-level bookkeeping (area-median splits,
region clamping, leaf grid layout) is vectorized over flat NumPy
arrays keyed by a stable cell index, and every level's solve is served
by one cached :class:`~repro.place.system.PlacementSystem` (the
connectivity Laplacian never changes between levels — only the anchor
diagonal and RHS do).  ``reuse_system=False`` rebuilds the system per
level; the results are bit-identical either way, which the test suite
and ``benchmarks/bench_place.py`` enforce.

``region_parallel=True`` switches levels with enough regions to a
block-Jacobi scheme: each region's subsystem is solved with the other
regions' cells held fixed at their current positions, fanned out over
a persistent :class:`~repro.parallel.SnapshotPool`.  That changes the
arithmetic (regions no longer co-optimize within a level), so the mode
is opt-in and *not* bit-identical to the joint solve — its contract is
deterministic output at any worker count (activation depends only on
the region count, never on the pool), legality, and HPWL within a few
percent of the serial placer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import PlacementError
from repro.netlist.netlist import Netlist
from repro.obs import metrics, trace
from repro.parallel import ParallelConfig, SnapshotPool
from repro.parallel import config as _parallel_config
from repro.place.floorplan import Floorplan
from repro.place.system import (NetConnectivity, PlacementSystem,
                                assemble_system, solve_assembled)

#: Stop splitting when a region holds at most this many cells.
DEFAULT_LEAF_CELLS = 24
#: Stop *solving* (keep splitting) once every region is within this
#: multiple of the leaf size — see the loop comment below.
SOLVE_STOP_MULT = 2
#: Anchor weight at the first level; doubles per level.
DEFAULT_BASE_ANCHOR = 0.01
#: Region-parallel mode engages once a level has at least this many
#: regions.  The threshold is a fixed constant (not derived from the
#: worker count) so the sequence of solves — and hence the placement —
#: is identical at any worker count.
REGION_PARALLEL_MIN_REGIONS = 16
#: Block-Jacobi sweeps per level in region-parallel mode.  One sweep
#: lets a region see its neighbors only at their pre-level positions;
#: repeated sweeps propagate the level's movement across region
#: boundaries (one region hop per sweep), which is what holds the
#: mode's HPWL within the quality tolerance of the joint solve.
REGION_JACOBI_SWEEPS = 4


@dataclass
class _Region:
    x0: float
    y0: float
    x1: float
    y1: float
    cells: np.ndarray           # stable cell indices into the movable list

    @property
    def width(self) -> float:
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        return self.y1 - self.y0

    @property
    def center(self) -> tuple[float, float]:
        return ((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)


def _split(region: _Region, xs: np.ndarray, ys: np.ndarray,
           areas: np.ndarray, name_rank: np.ndarray
           ) -> tuple[_Region, _Region]:
    """Split along the long axis at the area median of solved coords."""
    cells = region.cells
    horizontal = region.width >= region.height
    coord = xs[cells] if horizontal else ys[cells]
    order = np.lexsort((name_rank[cells], coord))  # coord, then name
    ordered = cells[order]
    csum = np.cumsum(areas[ordered])
    total = float(csum[-1])
    half = total / 2.0
    cut = int(np.searchsorted(csum, half, side="left")) + 1
    cut = max(1, min(cut, len(ordered) - 1))
    first, second = ordered[:cut], ordered[cut:]
    frac = max(0.1, min(0.9, float(csum[cut - 1]) / total))
    if horizontal:
        xm = region.x0 + frac * region.width
        return (_Region(region.x0, region.y0, xm, region.y1, first),
                _Region(xm, region.y0, region.x1, region.y1, second))
    ym = region.y0 + frac * region.height
    return (_Region(region.x0, region.y0, region.x1, ym, first),
            _Region(region.x0, ym, region.x1, region.y1, second))


def _layout_leaf(region: _Region, xs: np.ndarray, ys: np.ndarray,
                 name_rank: np.ndarray) -> None:
    """Arrange a leaf region's cells on a compact grid (in place),
    ordered by the solved coordinates so intra-leaf adjacency is
    preserved."""
    cells = region.cells
    n = len(cells)
    if n == 0:
        return
    order = np.lexsort((name_rank[cells], xs[cells], ys[cells]))
    ordered = cells[order]
    cols = max(1, int(math.ceil(math.sqrt(n * max(region.width, 1e-6)
                                          / max(region.height, 1e-6)))))
    rows = int(math.ceil(n / cols))
    r, c = np.divmod(np.arange(n), cols)
    xs[ordered] = region.x0 + (c + 0.5) * region.width / cols
    ys[ordered] = region.y0 + (r + 0.5) * region.height / max(rows, 1)


class _RegionState:
    """Pool snapshot for region subsolves: the connectivity arrays plus
    the static movable/fixed key maps.  Duck-types the NetConnectivity
    attributes :func:`assemble_system` reads."""

    def __init__(self, conn: NetConnectivity, name_kid: np.ndarray,
                 base_fx: np.ndarray, base_fy: np.ndarray,
                 width: float, height: float):
        self.pair_a = conn.pair_a
        self.pair_b = conn.pair_b
        self.pair_w = conn.pair_w
        self.star_kid = conn.star_kid
        self.star_vid = conn.star_vid
        self.star_w = conn.star_w
        self.star_ptr = conn.star_ptr
        self.n_stars = conn.n_stars
        self.pair_inc = conn.pair_incidence()
        self.star_inc = conn.star_incidence()
        self.n_keys = conn.n_keys
        self.name_kid = name_kid        # cell index -> key id (or -1)
        self.base_fx = base_fx          # key id -> fixed x (NaN if none)
        self.base_fy = base_fy
        self.width = width
        self.height = height


def _solve_regions_chunk(state: _RegionState, extra, chunk: list[int]
                         ) -> list[tuple[int, np.ndarray, np.ndarray]]:
    """Solve a chunk of region subsystems (block-Jacobi step).

    ``extra`` carries the level's current positions, the anchor weight
    and the region table; each region is solved with every other
    region's cells pinned at their current positions, so the result
    depends only on the level inputs — never on how regions were
    chunked or which worker ran them.
    """
    xs, ys, weight, table = extra
    kfx = state.base_fx.copy()
    kfy = state.base_fy.copy()
    valid = state.name_kid >= 0
    kfx[state.name_kid[valid]] = xs[valid]
    kfy[state.name_kid[valid]] = ys[valid]
    kid_mov = np.full(state.n_keys, -1, dtype=np.int64)
    pptr, pids = state.pair_inc
    sptr, sids = state.star_inc
    empty = np.empty(0, dtype=np.int64)
    out = []
    for ridx in chunk:
        cells, cx, cy = table[ridx]
        m = len(cells)
        memkids = state.name_kid[cells]
        vkids = memkids[memkids >= 0]
        kid_mov[vkids] = np.flatnonzero(memkids >= 0)
        if len(vkids):
            pair_sel = np.unique(np.concatenate(
                [pids[pptr[k]:pptr[k + 1]] for k in vkids]))
            stars = np.unique(np.concatenate(
                [sids[sptr[k]:sptr[k + 1]] for k in vkids]))
            star_edge_sel = np.concatenate(
                [np.arange(state.star_ptr[v], state.star_ptr[v + 1])
                 for v in stars]) if len(stars) else empty
        else:
            pair_sel = star_edge_sel = empty
        asm = assemble_system(state, kid_mov, kfx, kfy, m,
                              state.width, state.height,
                              pair_sel=pair_sel,
                              star_edge_sel=star_edge_sel,
                              star_vid_compress=True)
        rx, ry = solve_assembled(asm, np.arange(m), np.full(m, cx),
                                 np.full(m, cy), weight)
        kid_mov[vkids] = -1
        out.append((ridx, rx, ry))
    return out


class _RegionLevelRunner:
    """Persistent pool for the region-parallel levels of one
    ``bisection_place`` call: the heavy static state ships once, each
    level forwards only the current positions and region table."""

    def __init__(self, conn: NetConnectivity, names: list[str],
                 fixed: dict[str, tuple[float, float]], fp: Floorplan,
                 parallel: ParallelConfig | None):
        name_kid = np.full(len(names), -1, dtype=np.int64)
        for i, name in enumerate(names):
            kid = conn.vocab.get(name)
            if kid is not None:
                name_kid[i] = kid
        base_fx = np.full(conn.n_keys, np.nan)
        base_fy = np.full(conn.n_keys, np.nan)
        for key, pos in fixed.items():
            kid = conn.vocab.get(key)
            if kid is not None:
                base_fx[kid] = pos[0]
                base_fy[kid] = pos[1]
        state = _RegionState(conn, name_kid, base_fx, base_fy,
                             fp.width, fp.core_height)
        config = parallel if parallel is not None else ParallelConfig()
        if config.enabled and _parallel_config.usable_cores() <= 1:
            # Same single-core degradation as ParallelConfig
            # .should_parallelize: extra processes would time-slice one
            # CPU.  The block-Jacobi math is identical either way.
            config = ParallelConfig(workers=1)
        self.pool = SnapshotPool(state, config)

    def solve_level(self, regions: list[_Region], xs: np.ndarray,
                    ys: np.ndarray, weight: float,
                    sweeps: int = REGION_JACOBI_SWEEPS
                    ) -> tuple[np.ndarray, np.ndarray]:
        table = [(r.cells,) + r.center for r in regions]
        indices = list(range(len(table)))
        for _ in range(sweeps):
            results = self.pool.map(_solve_regions_chunk, indices,
                                    extra=(xs, ys, weight, table))
            new_x = np.empty_like(xs)
            new_y = np.empty_like(ys)
            for ridx, rx, ry in results:  # regions partition the cells
                new_x[regions[ridx].cells] = rx
                new_y[regions[ridx].cells] = ry
            xs, ys = new_x, new_y
        return xs, ys

    def close(self) -> None:
        self.pool.close()


def bisection_place(netlist: Netlist, fixed: dict[str, tuple[float, float]],
                    fp: Floorplan, movable: list[str],
                    leaf_cells: int = DEFAULT_LEAF_CELLS,
                    base_anchor: float = DEFAULT_BASE_ANCHOR,
                    conn: NetConnectivity | None = None,
                    parallel: ParallelConfig | None = None,
                    region_parallel: bool = False,
                    reuse_system: bool = True,
                    solver: str = "direct"
                    ) -> dict[str, tuple[float, float]]:
    """Place *movable* instances inside the core area.

    Returns name -> (x, y).  ``fixed`` holds port/macro anchors (same
    key convention as :func:`~repro.place.quadratic.quadratic_solve`).
    ``conn`` optionally shares a pre-built connectivity with the
    caller; ``reuse_system=False`` rebuilds the placement system at
    every level (bit-identical, for verification).  ``solver`` picks
    the per-level backend (see :data:`~repro.place.system.SOLVERS`) —
    the factor-reuse ``cg`` backend is where the level structure pays
    off, since each level's system differs only in the anchor terms.
    See the module docstring for ``region_parallel``.
    """
    if not movable:
        return {}
    names = list(movable)
    n = len(names)
    if conn is None:
        conn = NetConnectivity.from_netlist(netlist)

    def fresh_system() -> PlacementSystem:
        return PlacementSystem(netlist, fixed, fp, movable=names, conn=conn,
                               solver=solver)

    system = fresh_system()
    areas = np.array([max(netlist.instance(name).cell.area_um2, 0.1)
                      for name in names])
    # Stable tie-break key: the cell name's lexicographic rank.
    name_rank = np.empty(n, dtype=np.int64)
    name_rank[np.array(sorted(range(n), key=names.__getitem__),
                       dtype=np.int64)] = np.arange(n)

    xs, ys = system.solve_arrays()
    regions = [_Region(0.0, 0.0, fp.width, fp.core_height,
                       np.arange(n, dtype=np.int64))]
    weight = base_anchor
    runner: _RegionLevelRunner | None = None
    all_idx = np.arange(n, dtype=np.int64)
    level = 0
    try:
        while max(len(r.cells) for r in regions) > leaf_cells:
            level += 1
            next_regions: list[_Region] = []
            for region in regions:
                if len(region.cells) <= leaf_cells:
                    next_regions.append(region)
                    continue
                a, b = _split(region, xs, ys, areas, name_rank)
                next_regions.extend((a, b))
            regions = next_regions
            region_level = (region_parallel and
                            len(regions) >= REGION_PARALLEL_MIN_REGIONS)
            if not region_level and max(len(r.cells) for r in regions) \
                    <= leaf_cells * SOLVE_STOP_MULT:
                # Regions are within a level or two of leaf size: at
                # this depth the anchor weight dominates connectivity,
                # so another full factorization would barely move cells
                # inside their (tiny) regions before the leaf grid
                # quantizes them anyway.  Keep splitting on the last
                # solved coordinates and skip the remaining solves —
                # measured HPWL impact is under 1% on every fabric.
                # Region-parallel levels are exempt: their late-level
                # block-Jacobi sweeps are per-region (cheap) and are
                # what pulls boundary cells back under the 2% HPWL
                # contract.
                metrics.inc("place.levels")
                metrics.inc("place.solves_skipped")
                weight *= 2.0
                continue
            # Terminal propagation: anchor every cell to its region
            # center and re-solve so connectivity optimizes within
            # commitments.
            cx = np.empty(n)
            cy = np.empty(n)
            lo_x = np.empty(n)
            hi_x = np.empty(n)
            lo_y = np.empty(n)
            hi_y = np.empty(n)
            for region in regions:
                cells = region.cells
                ccx, ccy = region.center
                cx[cells] = ccx
                cy[cells] = ccy
                lo_x[cells] = region.x0
                hi_x[cells] = region.x1
                lo_y[cells] = region.y0
                hi_y[cells] = region.y1
            metrics.inc("place.levels")
            metrics.inc("place.level_solves")
            with trace.span("place.solve", level=level,
                            regions=len(regions),
                            region_parallel=region_level):
                if region_level:
                    if runner is None:
                        runner = _RegionLevelRunner(conn, names, fixed,
                                                    fp, parallel)
                    xs, ys = runner.solve_level(regions, xs, ys, weight)
                else:
                    if not reuse_system:
                        system = fresh_system()
                    xs, ys = system.solve_arrays(all_idx, cx, cy, weight)
            # Clamp each cell into its region so the next split is local.
            np.clip(xs, lo_x, hi_x, out=xs)
            np.clip(ys, lo_y, hi_y, out=ys)
            weight *= 2.0
    finally:
        if runner is not None:
            runner.close()

    placed = np.zeros(n, dtype=bool)
    count = 0
    for region in regions:
        _layout_leaf(region, xs, ys, name_rank)
        placed[region.cells] = True
        count += len(region.cells)
    if count != n or not placed.all():
        raise PlacementError(f"bisection lost cells: {count} != {n}")
    return {name: (float(xs[i]), float(ys[i]))
            for i, name in enumerate(names)}
