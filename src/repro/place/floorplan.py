"""Floorplan: die outline, rows, macro band.

Both tiers share one outline (F2F bonding requires matching footprints).
Standard cells legalize onto rows; SRAM macros occupy a reserved band
at the top edge of their tier, matching the memory-die organisation of
Macro-3D designs.
"""

from __future__ import annotations

from dataclasses import dataclass

import math

from repro.errors import PlacementError
from repro.netlist.netlist import Netlist

#: Standard-cell row height in um (28 nm-class library).
ROW_HEIGHT_UM = 1.0
#: Legalization site width in um.
SITE_WIDTH_UM = 0.2


@dataclass
class Floorplan:
    """Die outline shared by both tiers.

    ``macro_band_h`` is the height in um of the top band reserved for
    macros (zero when the design has none).
    """

    width: float
    height: float
    row_height: float = ROW_HEIGHT_UM
    site_width: float = SITE_WIDTH_UM
    macro_band_h: float = 0.0
    utilization: float = 0.65

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise PlacementError("floorplan must have positive dimensions")
        if self.macro_band_h >= self.height:
            raise PlacementError("macro band swallows the whole die")

    @property
    def core_height(self) -> float:
        """Height available to standard-cell rows."""
        return self.height - self.macro_band_h

    @property
    def num_rows(self) -> int:
        return max(1, int(self.core_height / self.row_height))

    @property
    def sites_per_row(self) -> int:
        return max(1, int(self.width / self.site_width))

    @property
    def area_mm2(self) -> float:
        return (self.width * self.height) / 1e6

    def clamp(self, x: float, y: float) -> tuple[float, float]:
        """Clamp a point into the die outline."""
        return (min(max(x, 0.0), self.width),
                min(max(y, 0.0), self.height))

    def row_y(self, row: int) -> float:
        """Bottom y of a row index."""
        if not 0 <= row < self.num_rows:
            raise PlacementError(f"row {row} out of range 0..{self.num_rows - 1}")
        return row * self.row_height


def make_floorplan(netlist: Netlist, utilization: float = 0.65,
                   aspect: float = 1.0) -> Floorplan:
    """Size a square-ish floorplan from total cell area.

    Both tiers share one outline, and the memory-on-logic split is
    lopsided (most standard cells on the logic tier), so the outline
    budgets the full standard-cell area at the target utilization —
    the dominant tier then lands near *utilization* and the other tier
    is sparse, matching the paper's fixed per-benchmark footprints.
    """
    if not 0.1 <= utilization <= 0.95:
        raise PlacementError(f"unreasonable utilization {utilization}")
    macro_area = sum(i.cell.area_um2 for i in netlist.instances.values()
                     if i.is_macro)
    std_area = netlist.total_cell_area() - macro_area
    core_area = std_area / utilization
    width = math.sqrt(core_area * aspect)
    height = core_area / width
    macro_band = 0.0
    if macro_area > 0:
        # Macros are ~30x30 um; band tall enough for one macro row per
        # ~width/35 macros.
        per_row = max(1, int(width / 35.0))
        num_macros = sum(1 for i in netlist.instances.values() if i.is_macro)
        rows = math.ceil(num_macros / per_row)
        macro_band = rows * 32.0
    height = max(height, 8 * ROW_HEIGHT_UM)
    width = max(width, 8.0)
    return Floorplan(width=width, height=height + macro_band,
                     macro_band_h=macro_band, utilization=utilization)
