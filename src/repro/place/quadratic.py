"""Sparse quadratic placement with star/clique net models.

Minimizes sum over nets of squared pin-to-pin distance subject to fixed
anchors (ports, macros), the classic analytical-placement formulation.
Small nets use a clique model; large nets a star with a virtual movable
node, keeping the system sparse.

Clock nets are excluded: a design-wide ideal clock would otherwise
pull every flop to the centroid.

This module is the stable entry point; the heavy lifting lives in
:mod:`repro.place.system`.  :func:`quadratic_solve` builds a
:class:`~repro.place.system.PlacementSystem` and solves it once —
callers that solve the same movable/fixed split repeatedly (the
bisection placer) hold on to the system instead and reuse its cached
assembly, which is bit-identical by construction (same code path).
"""

from __future__ import annotations

from repro.netlist.netlist import Netlist
from repro.place.floorplan import Floorplan
from repro.place.system import (CENTER_REG, CLIQUE_LIMIT, NetConnectivity,
                                PlacementSystem)

__all__ = ["CLIQUE_LIMIT", "CENTER_REG", "quadratic_solve"]


def quadratic_solve(netlist: Netlist, fixed: dict[str, tuple[float, float]],
                    fp: Floorplan,
                    movable: list[str] | None = None,
                    anchors: dict[str, tuple[float, float]] | None = None,
                    anchor_weight: float = 0.0,
                    conn: NetConnectivity | None = None
                    ) -> dict[str, tuple[float, float]]:
    """Solve for (x, y) of movable instances.

    Parameters
    ----------
    fixed:
        Instance/port-pin anchor positions.  Keys are instance names
        or ``"port:NAME"`` for port pins.
    movable:
        Instances to solve for; defaults to every instance not in
        *fixed*.
    anchors / anchor_weight:
        SimPL-style pseudo-anchors: each movable instance present in
        *anchors* is pulled toward that position with *anchor_weight*.
        Used by the iterative global placer to blend spreading back
        into the connectivity optimum.
    conn:
        Optional pre-built :class:`NetConnectivity` for *netlist*,
        shared across solves to skip the per-call net walk.

    Returns a dict instance name -> (x, y), unclamped (bisection and
    legalization handle the outline).
    """
    system = PlacementSystem(netlist, fixed, fp, movable=movable, conn=conn)
    return system.solve(anchors=anchors, anchor_weight=anchor_weight)
