"""Sparse quadratic placement with star/clique net models.

Minimizes sum over nets of squared pin-to-pin distance subject to fixed
anchors (ports, macros), the classic analytical-placement formulation.
Small nets use a clique model; large nets a star with a virtual movable
node, keeping the system sparse.  A rank-remap spreading step then
de-clusters the solution before legalization.

Clock nets are excluded: a design-wide ideal clock would otherwise
pull every flop to the centroid.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.errors import PlacementError
from repro.netlist.netlist import Netlist
from repro.place.floorplan import Floorplan

#: Nets up to this degree use the pairwise clique model.
CLIQUE_LIMIT = 4
#: Tiny pull to die center so fully floating components stay solvable.
CENTER_REG = 1e-6


def quadratic_solve(netlist: Netlist, fixed: dict[str, tuple[float, float]],
                    fp: Floorplan,
                    movable: list[str] | None = None,
                    anchors: dict[str, tuple[float, float]] | None = None,
                    anchor_weight: float = 0.0
                    ) -> dict[str, tuple[float, float]]:
    """Solve for (x, y) of movable instances.

    Parameters
    ----------
    fixed:
        Instance/port-pin anchor positions.  Keys are instance names
        or ``"port:NAME"`` for port pins.
    movable:
        Instances to solve for; defaults to every instance not in
        *fixed*.
    anchors / anchor_weight:
        SimPL-style pseudo-anchors: each movable instance present in
        *anchors* is pulled toward that position with *anchor_weight*.
        Used by the iterative global placer to blend spreading back
        into the connectivity optimum.

    Returns a dict instance name -> (x, y), unclamped (spreading and
    legalization handle the outline).
    """
    if movable is None:
        movable = [n for n in netlist.instances if n not in fixed]
    if not movable:
        return {}
    index = {name: i for i, name in enumerate(movable)}
    n_movable = len(movable)

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    diag = np.full(n_movable, CENTER_REG, dtype=float)
    bx = np.full(n_movable, CENTER_REG * fp.width / 2.0, dtype=float)
    by = np.full(n_movable, CENTER_REG * fp.height / 2.0, dtype=float)

    if anchors and anchor_weight > 0.0:
        for name, (ax, ay) in anchors.items():
            i = index.get(name)
            if i is None:
                continue
            diag[i] += anchor_weight
            bx[i] += anchor_weight * ax
            by[i] += anchor_weight * ay

    virtual_rows: list[dict[int, float]] = []  # star nodes, built later

    def pin_key(pin) -> str:
        if pin.owner is not None:
            return pin.owner.name
        return f"port:{pin.port.name}"

    def add_edge(a_key: str, b_key: str, w: float) -> None:
        ia = index.get(a_key)
        ib = index.get(b_key)
        if ia is not None and ib is not None:
            diag[ia] += w
            diag[ib] += w
            rows.extend((ia, ib))
            cols.extend((ib, ia))
            vals.extend((-w, -w))
        elif ia is not None:
            pos = fixed.get(b_key)
            if pos is None:
                return
            diag[ia] += w
            bx[ia] += w * pos[0]
            by[ia] += w * pos[1]
        elif ib is not None:
            pos = fixed.get(a_key)
            if pos is None:
                return
            diag[ib] += w
            bx[ib] += w * pos[0]
            by[ib] += w * pos[1]

    star_edges: list[tuple[int, list[tuple[str, float]]]] = []
    n_virtual = 0
    for net in netlist.signal_nets():
        pins = net.pins()
        deg = len(pins)
        if deg < 2:
            continue
        keys = [pin_key(p) for p in pins]
        if deg <= CLIQUE_LIMIT:
            w = 1.0 / (deg - 1)
            for i in range(deg):
                for j in range(i + 1, deg):
                    add_edge(keys[i], keys[j], w)
        else:
            w = 2.0 / deg
            star_edges.append((n_virtual, [(k, w) for k in keys]))
            n_virtual += 1

    n_total = n_movable + n_virtual
    if n_virtual:
        diag = np.concatenate([diag, np.zeros(n_virtual)])
        bx = np.concatenate([bx, np.zeros(n_virtual)])
        by = np.concatenate([by, np.zeros(n_virtual)])
        for v_idx, edges in star_edges:
            vi = n_movable + v_idx
            for key, w in edges:
                ii = index.get(key)
                if ii is not None:
                    diag[vi] += w
                    diag[ii] += w
                    rows.extend((vi, ii))
                    cols.extend((ii, vi))
                    vals.extend((-w, -w))
                else:
                    pos = fixed.get(key)
                    if pos is None:
                        continue
                    diag[vi] += w
                    bx[vi] += w * pos[0]
                    by[vi] += w * pos[1]
            if diag[vi] == 0.0:
                diag[vi] = 1.0  # fully disconnected star; keep SPD

    lap = sp.coo_matrix(
        (np.concatenate([np.array(vals, dtype=float), diag]),
         (np.concatenate([np.array(rows, dtype=int),
                          np.arange(n_total)]),
          np.concatenate([np.array(cols, dtype=int),
                          np.arange(n_total)]))),
        shape=(n_total, n_total)).tocsc()
    try:
        solver = spla.factorized(lap)
        xs = solver(bx)
        ys = solver(by)
    except RuntimeError as exc:  # pragma: no cover - singular fallback
        raise PlacementError(f"quadratic system solve failed: {exc}") from exc

    return {name: (float(xs[i]), float(ys[i])) for name, i in index.items()}


def spread(positions: dict[str, tuple[float, float]], fp: Floorplan,
           blend: float = 0.6) -> dict[str, tuple[float, float]]:
    """Rank-remap spreading: de-cluster the quadratic solution.

    Cells keep their relative x (and y) order but are re-mapped toward
    a uniform distribution over the core area, blended with the
    original position by *blend* (1.0 = fully uniform).  Deterministic
    and order-preserving, which keeps connected cells near each other.
    """
    if not positions:
        return {}
    names = sorted(positions)
    xs = np.array([positions[n][0] for n in names])
    ys = np.array([positions[n][1] for n in names])
    n = len(names)

    def remap(vals: np.ndarray, lo: float, hi: float) -> np.ndarray:
        order = np.argsort(vals, kind="stable")
        target = np.empty(n)
        slots = lo + (np.arange(n) + 0.5) * (hi - lo) / n
        target[order] = slots
        return (1.0 - blend) * vals + blend * target

    margin = 1.0
    new_x = remap(xs, margin, max(margin * 2, fp.width - margin))
    new_y = remap(ys, margin, max(margin * 2, fp.core_height - margin))
    return {name: (float(new_x[i]), float(new_y[i]))
            for i, name in enumerate(names)}
