"""Local density spreading.

The quadratic solve collapses connectivity clusters (a PE's 50 cells
land within a micrometre).  Global rank-remapping destroys locality by
interleaving clusters, so we spread *locally*: cells are bucketed into
bins, and overfull bins push their outermost cells into the nearest
bins with free area, spiralling outward.  A cluster therefore dilates
in place — exactly what a real analytical placer's look-ahead
legalization achieves.
"""

from __future__ import annotations

import math

from repro.errors import PlacementError
from repro.netlist.netlist import Netlist
from repro.place.floorplan import Floorplan

#: Default bin side, um.
DEFAULT_BIN_UM = 6.0
#: Target fill of a bin's area before it starts shedding cells.
DEFAULT_FILL = 0.55


def bin_spread(netlist: Netlist, positions: dict[str, tuple[float, float]],
               fp: Floorplan, bin_um: float = DEFAULT_BIN_UM,
               fill: float = DEFAULT_FILL,
               passes: int = 3) -> dict[str, tuple[float, float]]:
    """Spread *positions* so no bin exceeds ``fill`` of its area.

    Returns new positions; cells that moved sit near the center of
    their adopting bin, offset deterministically.  Raises when the
    floorplan cannot hold the total cell area at the requested fill.
    """
    if bin_um <= 0 or not 0.05 < fill <= 1.0:
        raise PlacementError("bad bin_um/fill parameters")
    nx = max(1, math.ceil(fp.width / bin_um))
    ny = max(1, math.ceil(fp.core_height / bin_um))
    cap = bin_um * bin_um * fill

    area = {name: netlist.instance(name).cell.area_um2
            for name in positions}
    total_area = sum(area.values())
    if total_area > nx * ny * cap:
        raise PlacementError(
            f"total cell area {total_area:.0f}um^2 exceeds spread capacity "
            f"{nx * ny * cap:.0f}um^2 — enlarge the floorplan")

    def bin_of(x: float, y: float) -> tuple[int, int]:
        ix = min(max(int(x / bin_um), 0), nx - 1)
        iy = min(max(int(y / bin_um), 0), ny - 1)
        return ix, iy

    pos = dict(positions)
    for _ in range(passes):
        bins: dict[tuple[int, int], list[str]] = {}
        load: dict[tuple[int, int], float] = {}
        for name, (x, y) in pos.items():
            b = bin_of(x, y)
            bins.setdefault(b, []).append(name)
            load[b] = load.get(b, 0.0) + area[name]

        moved = 0
        for b in sorted(bins, key=lambda k: -load.get(k, 0.0)):
            if load[b] <= cap:
                continue
            members = bins[b]
            cx = (b[0] + 0.5) * bin_um
            cy = (b[1] + 0.5) * bin_um
            # Shed outermost cells first: they are cheapest to move.
            members.sort(key=lambda n: (
                -(abs(pos[n][0] - cx) + abs(pos[n][1] - cy)), n))
            idx = 0
            while load[b] > cap and idx < len(members):
                name = members[idx]
                idx += 1
                target = _nearest_free_bin(b, load, cap, area[name], nx, ny)
                if target is None:
                    break
                load[b] -= area[name]
                load[target] = load.get(target, 0.0) + area[name]
                # Land near the adopting bin's center, nudged toward
                # the original position for determinism + locality.
                tx = (target[0] + 0.5) * bin_um
                ty = (target[1] + 0.5) * bin_um
                ox, oy = pos[name]
                pos[name] = (0.75 * tx + 0.25 * ox, 0.75 * ty + 0.25 * oy)
                moved += 1
        if moved == 0:
            break
    return pos


def _nearest_free_bin(origin: tuple[int, int], load: dict, cap: float,
                      need: float, nx: int, ny: int
                      ) -> tuple[int, int] | None:
    """Spiral outward from *origin* to the first bin with room."""
    ox, oy = origin
    max_r = max(nx, ny)
    for r in range(1, max_r + 1):
        ring: list[tuple[int, int]] = []
        for dx in range(-r, r + 1):
            for dy in (-r, r):
                ring.append((ox + dx, oy + dy))
        for dy in range(-r + 1, r):
            for dx in (-r, r):
                ring.append((ox + dx, oy + dy))
        best = None
        best_load = None
        for b in ring:
            if not (0 <= b[0] < nx and 0 <= b[1] < ny):
                continue
            cur = load.get(b, 0.0)
            if cur + need <= cap:
                if best is None or cur < best_load:
                    best, best_load = b, cur
        if best is not None:
            return best
    return None
