"""Row legalization.

Snaps spread standard-cell positions onto rows and sites with no
overlap, minimizing displacement greedily: cells are bucketed into
their nearest non-full row (by area capacity), then packed left-to-
right near their desired x.  Macros legalize separately into the
reserved macro band.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PlacementError
from repro.netlist.netlist import Netlist
from repro.place.floorplan import Floorplan


def legalize_tier(netlist: Netlist, names: list[str],
                  positions: dict[str, tuple[float, float]],
                  fp: Floorplan) -> dict[str, tuple[float, float]]:
    """Legalize the standard cells in *names* onto rows.

    Returns name -> legalized (x, y) with y at row centers and x
    packed so widths (derived from cell area / row height) never
    overlap.  Raises when total cell area exceeds row capacity.
    """
    if not names:
        return {}
    widths = {}
    for name in names:
        inst = netlist.instance(name)
        if inst.is_macro:
            raise PlacementError(
                f"macro {name} must go through legalize_macros")
        widths[name] = max(fp.site_width,
                           inst.cell.area_um2 / fp.row_height)
    total_width = sum(widths.values())
    capacity = fp.num_rows * fp.width
    if total_width > capacity:
        raise PlacementError(
            f"cells need {total_width:.0f}um of row space, floorplan has "
            f"{capacity:.0f}um — increase the floorplan or utilization")

    num_rows = fp.num_rows
    row_cap = fp.width
    row_used = np.zeros(num_rows)
    row_members: list[list[str]] = [[] for _ in range(num_rows)]

    # Assign each cell to the closest row with remaining capacity,
    # processing bottom-up by desired y for stability.
    by_y = sorted(names, key=lambda n: (positions[n][1], n))
    for name in by_y:
        desired_row = int(positions[name][1] / fp.row_height)
        desired_row = min(max(desired_row, 0), num_rows - 1)
        row = desired_row
        # Search alternating outwards for space.
        for offset in range(num_rows):
            candidates = []
            if desired_row + offset < num_rows:
                candidates.append(desired_row + offset)
            if offset > 0 and desired_row - offset >= 0:
                candidates.append(desired_row - offset)
            found = None
            for r in candidates:
                if row_used[r] + widths[name] <= row_cap:
                    found = r
                    break
            if found is not None:
                row = found
                break
        else:  # pragma: no cover - guarded by capacity check above
            raise PlacementError(f"no row space for {name}")
        row_used[row] += widths[name]
        row_members[row].append(name)

    legal: dict[str, tuple[float, float]] = {}
    for row_idx, members in enumerate(row_members):
        if not members:
            continue
        members.sort(key=lambda n: (positions[n][0], n))
        # Pack left-to-right at desired x, pushing right on conflicts.
        cursor = 0.0
        placed: list[tuple[str, float]] = []  # (name, left edge)
        for name in members:
            desired_left = positions[name][0] - widths[name] / 2.0
            left = max(cursor, desired_left)
            placed.append((name, left))
            cursor = left + widths[name]
        # If the row overflowed on the right, shift everything back.
        overflow = cursor - fp.width
        if overflow > 0:
            placed = [(n, max(0.0, left - overflow)) for n, left in placed]
            # Re-pack to clear any overlap introduced by the clamp.
            cursor = 0.0
            repacked = []
            for name, left in placed:
                left = max(cursor, left)
                repacked.append((name, left))
                cursor = left + widths[name]
            placed = repacked
        y = row_idx * fp.row_height + fp.row_height / 2.0
        for name, left in placed:
            legal[name] = (left + widths[name] / 2.0, y)
    return legal


def legalize_macros(netlist: Netlist, names: list[str],
                    positions: dict[str, tuple[float, float]],
                    fp: Floorplan) -> dict[str, tuple[float, float]]:
    """Place macros in the reserved band, ordered by desired x.

    The band is at the top of the die; macros are ~30x30 um and are
    laid out in one or more grid rows.
    """
    if not names:
        return {}
    if fp.macro_band_h <= 0:
        raise PlacementError("floorplan reserved no macro band")
    side = 30.0
    per_row = max(1, int(fp.width / (side + 5.0)))
    ordered = sorted(names, key=lambda n: (positions.get(n, (0, 0))[0], n))
    legal = {}
    for i, name in enumerate(ordered):
        grid_row = i // per_row
        grid_col = i % per_row
        x = (grid_col + 0.5) * (fp.width / per_row)
        y = fp.core_height + (grid_row + 0.5) * 32.0
        if y > fp.height:
            raise PlacementError("macro band overflow — floorplan too small")
        legal[name] = (x, min(y, fp.height - side / 2.0))
    return legal
