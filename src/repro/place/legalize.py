"""Row legalization.

Snaps spread standard-cell positions onto rows and sites with no
overlap, minimizing displacement greedily: cells are bucketed into
their nearest non-full row (by area capacity), then packed left-to-
right near their desired x.  Macros legalize separately into the
reserved macro band.

The in-row packing recurrence ``left[i] = max(cursor, desired[i])``
is evaluated in closed form with a prefix maximum: with ``S`` the
exclusive prefix sum of widths, ``left = S + cummax(desired - S)``
(floored at a starting cursor of 0), which lets each row pack as a
handful of NumPy array ops instead of a Python loop.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PlacementError
from repro.netlist.netlist import Netlist
from repro.place.floorplan import Floorplan


def _pack_row(desired_left: np.ndarray, widths: np.ndarray,
              row_cap: float) -> np.ndarray:
    """Left edges packing cells at desired x, pushing right on overlap."""
    csum = np.concatenate(([0.0], np.cumsum(widths)[:-1]))
    left = csum + np.maximum.accumulate(
        np.maximum(desired_left - csum, -csum))
    overflow = left[-1] + widths[-1] - row_cap
    if overflow > 0:
        # Shift everything back, then re-pack to clear any overlap
        # introduced by the clamp at 0.
        shifted = np.maximum(left - overflow, 0.0)
        left = csum + np.maximum.accumulate(
            np.maximum(shifted - csum, -csum))
    return left


def legalize_tier(netlist: Netlist, names: list[str],
                  positions: dict[str, tuple[float, float]],
                  fp: Floorplan) -> dict[str, tuple[float, float]]:
    """Legalize the standard cells in *names* onto rows.

    Returns name -> legalized (x, y) with y at row centers and x
    packed so widths (derived from cell area / row height) never
    overlap.  Raises when total cell area exceeds row capacity.
    """
    if not names:
        return {}
    n = len(names)
    row_height = fp.row_height
    site_width = fp.site_width
    width_of_cell: dict[int, float] = {}
    widths = np.empty(n)
    for k, name in enumerate(names):
        inst = netlist.instance(name)
        if inst.is_macro:
            raise PlacementError(
                f"macro {name} must go through legalize_macros")
        cell = inst.cell
        w = width_of_cell.get(id(cell))
        if w is None:
            w = max(site_width, cell.area_um2 / row_height)
            width_of_cell[id(cell)] = w
        widths[k] = w
    total_width = float(widths.sum())
    capacity = fp.num_rows * fp.width
    if total_width > capacity:
        raise PlacementError(
            f"cells need {total_width:.0f}um of row space, floorplan has "
            f"{capacity:.0f}um — increase the floorplan or utilization")

    num_rows = fp.num_rows
    row_cap = fp.width
    xs = np.fromiter((positions[m][0] for m in names), dtype=float,
                     count=n)
    ys = np.fromiter((positions[m][1] for m in names), dtype=float,
                     count=n)
    name_rank = np.empty(n, dtype=np.int64)
    name_rank[np.array(sorted(range(n), key=names.__getitem__),
                       dtype=np.int64)] = np.arange(n)
    desired = np.clip((ys / row_height).astype(np.int64), 0, num_rows - 1)

    # Assign each cell to the closest row with remaining capacity,
    # processing bottom-up by desired y for stability (alternating
    # up/down search, up candidate first at each offset).
    row_used = [0.0] * num_rows
    row_members: list[list[int]] = [[] for _ in range(num_rows)]
    by_y = np.lexsort((name_rank, ys))
    for i in by_y:
        desired_row = int(desired[i])
        width = widths[i]
        row = None
        for offset in range(num_rows):
            up = desired_row + offset
            if up < num_rows and row_used[up] + width <= row_cap:
                row = up
                break
            down = desired_row - offset
            if offset > 0 and down >= 0 and row_used[down] + width <= row_cap:
                row = down
                break
        if row is None:  # pragma: no cover - guarded by capacity check
            raise PlacementError(f"no row space for {names[i]}")
        row_used[row] += width
        row_members[row].append(i)

    legal_x = np.empty(n)
    legal_y = np.empty(n)
    for row_idx, members in enumerate(row_members):
        if not members:
            continue
        idx = np.array(members, dtype=np.int64)
        idx = idx[np.lexsort((name_rank[idx], xs[idx]))]
        w = widths[idx]
        left = _pack_row(xs[idx] - w / 2.0, w, row_cap)
        legal_x[idx] = left + w / 2.0
        legal_y[idx] = row_idx * row_height + row_height / 2.0
    return {name: (float(legal_x[k]), float(legal_y[k]))
            for k, name in enumerate(names)}


def legalize_macros(netlist: Netlist, names: list[str],
                    positions: dict[str, tuple[float, float]],
                    fp: Floorplan) -> dict[str, tuple[float, float]]:
    """Place macros in the reserved band, ordered by desired x.

    The band is at the top of the die; macros are ~30x30 um and are
    laid out in one or more grid rows.
    """
    if not names:
        return {}
    if fp.macro_band_h <= 0:
        raise PlacementError("floorplan reserved no macro band")
    side = 30.0
    per_row = max(1, int(fp.width / (side + 5.0)))
    ordered = sorted(names, key=lambda n: (positions.get(n, (0, 0))[0], n))
    legal = {}
    for i, name in enumerate(ordered):
        grid_row = i // per_row
        grid_col = i % per_row
        x = (grid_col + 0.5) * (fp.width / per_row)
        y = fp.core_height + (grid_row + 0.5) * 32.0
        if y > fp.height:
            raise PlacementError("macro band overflow — floorplan too small")
        legal[name] = (x, min(y, fp.height - side / 2.0))
    return legal
