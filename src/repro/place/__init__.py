"""Two-tier placement.

Pseudo-3D flows place both dies on the same footprint: the joint 2D
quadratic solve spreads all instances (both tiers share x/y), and each
tier is then legalized onto its own rows.  This mirrors how Macro-3D
keeps vertically-related logic and memory aligned so F2F connections
stay short.

The quadratic engine lives in :mod:`repro.place.system`: one
:class:`NetConnectivity` walk per netlist, one cached
:class:`PlacementSystem` assembly per movable/fixed split, any number
of anchored solves against it.
"""

from repro.place.floorplan import Floorplan, make_floorplan
from repro.place.placement import Placement
from repro.place.quadratic import quadratic_solve
from repro.place.system import (SOLVERS, FactorReuseSolver, NetConnectivity,
                                PlacementSystem)
from repro.place.spreading import bin_spread
from repro.place.bisection import bisection_place
from repro.place.legalize import legalize_tier
from repro.place.placer import place_design

__all__ = [
    "Floorplan",
    "make_floorplan",
    "SOLVERS",
    "FactorReuseSolver",
    "NetConnectivity",
    "Placement",
    "PlacementSystem",
    "quadratic_solve",
    "bin_spread",
    "bisection_place",
    "legalize_tier",
    "place_design",
]
