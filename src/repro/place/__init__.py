"""Two-tier placement.

Pseudo-3D flows place both dies on the same footprint: the joint 2D
quadratic solve spreads all instances (both tiers share x/y), and each
tier is then legalized onto its own rows.  This mirrors how Macro-3D
keeps vertically-related logic and memory aligned so F2F connections
stay short.
"""

from repro.place.floorplan import Floorplan, make_floorplan
from repro.place.placement import Placement
from repro.place.quadratic import quadratic_solve, spread
from repro.place.spreading import bin_spread
from repro.place.bisection import bisection_place
from repro.place.legalize import legalize_tier
from repro.place.placer import place_design

__all__ = [
    "Floorplan",
    "make_floorplan",
    "Placement",
    "quadratic_solve",
    "spread",
    "bin_spread",
    "bisection_place",
    "legalize_tier",
    "place_design",
]
