"""Placement result container."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PlacementError
from repro.netlist.net import Pin
from repro.netlist.netlist import Netlist
from repro.netlist.soa import pack_names, unpack_names
from repro.partition.tier import TierAssignment


def _pack_locations(loc: dict, reference: list[str]) -> dict:
    """Flatten a name -> Location dict into arrays.

    When the dict's key order matches *reference* (the owning
    netlist's iteration order — the case for every placer output) the
    name table is elided entirely and only the coordinate arrays ship.
    """
    names = list(loc)
    state = {
        "x": np.asarray([l.x for l in loc.values()], dtype=np.float64),
        "y": np.asarray([l.y for l in loc.values()], dtype=np.float64),
        "tier": np.asarray([l.tier for l in loc.values()], dtype=np.int8),
    }
    state["names"] = None if names == reference else pack_names(names)
    return state


def _unpack_locations(state: dict, reference: list[str]) -> dict:
    packed = state["names"]
    names = reference if packed is None else unpack_names(packed)
    return {
        name: Location(float(x), float(y), int(tier))
        for name, x, y, tier in zip(names, state["x"], state["y"],
                                    state["tier"])
    }


@dataclass(frozen=True)
class Location:
    """A placed object: center x/y in um plus tier."""

    x: float
    y: float
    tier: int


class Placement:
    """Locations of every instance and port of a design.

    Ports are placed on the die boundary of their tier.  The object is
    the single source of physical truth for routing, RC extraction and
    the GNN feature extractor.
    """

    def __init__(self, netlist: Netlist, tiers: TierAssignment):
        self.netlist = netlist
        self.tiers = tiers
        self._loc: dict[str, Location] = {}
        self._port_loc: dict[str, Location] = {}

    def __getstate__(self) -> dict:
        # Locations flatten to coordinate arrays (plus a name table
        # only when key order diverges from the netlist's) — the same
        # flat-serialization move as the netlist core, keeping
        # prepare-cache entries and snapshot fan-out payloads small.
        return {
            "netlist": self.netlist,
            "tiers": self.tiers,
            "loc": _pack_locations(self._loc, list(self.netlist.instances)),
            "port_loc": _pack_locations(self._port_loc,
                                        list(self.netlist.ports)),
        }

    def __setstate__(self, state: dict) -> None:
        self.netlist = state["netlist"]
        self.tiers = state["tiers"]
        self._loc = _unpack_locations(state["loc"],
                                      list(self.netlist.instances))
        self._port_loc = _unpack_locations(state["port_loc"],
                                           list(self.netlist.ports))

    def set_instance(self, name: str, x: float, y: float) -> None:
        self._loc[name] = Location(x, y, self.tiers.of_instance(name))

    def set_instances(self,
                      positions: dict[str, tuple[float, float]]) -> None:
        """Batch :meth:`set_instance` over a name -> (x, y) dict."""
        of_tier = self.tiers.of_instance
        self._loc.update(
            (name, Location(x, y, of_tier(name)))
            for name, (x, y) in positions.items())

    def set_port(self, name: str, x: float, y: float) -> None:
        self._port_loc[name] = Location(x, y, self.tiers.of_port(name))

    def of_instance(self, name: str) -> Location:
        try:
            return self._loc[name]
        except KeyError:
            raise PlacementError(f"instance {name!r} not placed") from None

    def of_port(self, name: str) -> Location:
        try:
            return self._port_loc[name]
        except KeyError:
            raise PlacementError(f"port {name!r} not placed") from None

    def of_pin(self, pin: Pin) -> Location:
        """Pin location — the owning instance/port center (pin-level
        offsets are below gcell resolution at this abstraction)."""
        if pin.owner is not None:
            return self.of_instance(pin.owner.name)
        return self.of_port(pin.port.name)

    def validate(self) -> None:
        missing = [n for n in self.netlist.instances if n not in self._loc]
        if missing:
            raise PlacementError(
                f"{len(missing)} unplaced instances, e.g. {missing[:3]}")
        missing_p = [n for n in self.netlist.ports if n not in self._port_loc]
        if missing_p:
            raise PlacementError(f"unplaced ports: {missing_p[:5]}")

    def hpwl(self) -> float:
        """Total half-perimeter wirelength over signal nets, in um."""
        total = 0.0
        for net in self.netlist.signal_nets():
            xs, ys = [], []
            for pin in net.pins():
                loc = self.of_pin(pin)
                xs.append(loc.x)
                ys.append(loc.y)
            if xs:
                total += (max(xs) - min(xs)) + (max(ys) - min(ys))
        return total

    def net_bbox(self, net) -> tuple[float, float, float, float]:
        """(xmin, ymin, xmax, ymax) over a net's pins."""
        xs, ys = [], []
        for pin in net.pins():
            loc = self.of_pin(pin)
            xs.append(loc.x)
            ys.append(loc.y)
        if not xs:
            raise PlacementError(f"net {net.name} has no pins to bound")
        return min(xs), min(ys), max(xs), max(ys)
