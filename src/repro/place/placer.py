"""Top-level two-tier placer.

Stages (mirroring a pseudo-3D flow):

1. Ports are pinned around the boundary of their tier.
2. Joint quadratic solve over *all* instances (both tiers share x/y),
   macros movable — this aligns vertically-related cells, keeping
   cross-tier nets short exactly as Macro-3D intends.
3. Macros snap into the memory-tier band and become fixed anchors.
4. Recursive bisection of the standard cells against ports+macros.
5. Per-tier row legalization.

The net connectivity arrays (:class:`~repro.place.system
.NetConnectivity`) are built once and shared between the macro-seeding
solve and every bisection level.
"""

from __future__ import annotations

from repro.netlist.netlist import Netlist
from repro.obs import trace
from repro.parallel import ParallelConfig
from repro.partition.tier import TIER_LOGIC, TIER_MEMORY, TierAssignment
from repro.place.floorplan import Floorplan, make_floorplan
from repro.place.legalize import legalize_macros, legalize_tier
from repro.place.placement import Placement
from repro.place.quadratic import quadratic_solve
from repro.place.bisection import bisection_place
from repro.place.system import NetConnectivity
from repro.rng import SeedBundle


def _pin_ports(netlist: Netlist, tiers: TierAssignment, fp: Floorplan,
               placement: Placement) -> dict[str, tuple[float, float]]:
    """Distribute ports evenly along the boundary; logic-tier ports on
    the bottom/left edges, memory-tier ports on the top/right, which
    loosely matches pad access per die in an F2F stack."""
    fixed: dict[str, tuple[float, float]] = {}
    by_tier: dict[int, list[str]] = {TIER_LOGIC: [], TIER_MEMORY: []}
    for name in sorted(netlist.ports):
        by_tier[tiers.of_port(name)].append(name)
    for tier, names in by_tier.items():
        if not names:
            continue
        perimeter = 2 * (fp.width + fp.height)
        for i, name in enumerate(names):
            t = (i + 0.5) / len(names) * perimeter
            if tier == TIER_MEMORY:
                t = (t + fp.width + fp.height) % perimeter  # opposite side
            if t < fp.width:
                x, y = t, 0.0
            elif t < fp.width + fp.height:
                x, y = fp.width, t - fp.width
            elif t < 2 * fp.width + fp.height:
                x, y = 2 * fp.width + fp.height - t, fp.height
            else:
                x, y = 0.0, perimeter - t
            placement.set_port(name, x, y)
            fixed[f"port:{name}"] = (x, y)
    return fixed


def place_design(netlist: Netlist, tiers: TierAssignment,
                 seeds: SeedBundle,
                 fp: Floorplan | None = None,
                 utilization: float = 0.45,
                 parallel: ParallelConfig | None = None,
                 region_parallel: bool = False,
                 solver: str = "direct"
                 ) -> tuple[Placement, Floorplan]:
    """Place *netlist* per *tiers*; returns (placement, floorplan).

    ``region_parallel=True`` opts the bisection refinement into the
    block-Jacobi region mode (see :mod:`repro.place.bisection`), fanned
    out over *parallel* when it allows — placements differ slightly
    from the serial joint solve but are deterministic at any worker
    count.

    ``solver`` selects the per-level solve backend for the bisection
    pass (``"auto"``/``"direct"``/``"cg"`` — see
    :mod:`repro.place.system`).  The macro-seeding quadratic pass
    always solves direct: it is a single solve of a different
    movable split, so there is no factorization to reuse.
    """
    if fp is None:
        fp = make_floorplan(netlist, utilization=utilization)
    placement = Placement(netlist, tiers)
    fixed = _pin_ports(netlist, tiers, fp, placement)

    macro_names = [n for n, inst in netlist.instances.items() if inst.is_macro]
    std_names = [n for n in netlist.instances if n not in set(macro_names)]

    conn = NetConnectivity.from_netlist(netlist)

    # Pass 1: everything movable, to get global macro positions.
    with trace.span("place.quadratic", instances=len(netlist.instances)):
        rough = quadratic_solve(netlist, fixed, fp, conn=conn)
    if macro_names:
        with trace.span("place.macros", macros=len(macro_names)):
            macro_pos = legalize_macros(netlist, macro_names, rough, fp)
            fixed.update(macro_pos)
            placement.set_instances(macro_pos)

    # Pass 2: standard cells against fixed ports + macros via
    # recursive bisection (the pure quadratic solution collapses
    # interchangeable clusters onto one point — see bisection.py).
    with trace.span("place.bisection", cells=len(std_names),
                    region_parallel=region_parallel, solver=solver):
        spread_pos = bisection_place(netlist, fixed, fp, movable=std_names,
                                     conn=conn, parallel=parallel,
                                     region_parallel=region_parallel,
                                     solver=solver)

    with trace.span("place.legalize"):
        for tier in (TIER_LOGIC, TIER_MEMORY):
            tier_names = [n for n in std_names
                          if tiers.of_instance(n) == tier]
            placement.set_instances(
                legalize_tier(netlist, tier_names, spread_pos, fp))

    placement.validate()
    return placement, fp
