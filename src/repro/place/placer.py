"""Top-level two-tier placer.

Stages (mirroring a pseudo-3D flow):

1. Ports are pinned around the boundary of their tier.
2. Joint quadratic solve over *all* instances (both tiers share x/y),
   macros movable — this aligns vertically-related cells, keeping
   cross-tier nets short exactly as Macro-3D intends.
3. Macros snap into the memory-tier band and become fixed anchors.
4. Second quadratic solve of the standard cells against ports+macros,
   followed by rank-remap spreading.
5. Per-tier row legalization.
"""

from __future__ import annotations

import numpy as np

from repro.netlist.netlist import Netlist
from repro.partition.tier import TIER_LOGIC, TIER_MEMORY, TierAssignment
from repro.place.floorplan import Floorplan, make_floorplan
from repro.place.legalize import legalize_macros, legalize_tier
from repro.place.placement import Placement
from repro.place.quadratic import quadratic_solve
from repro.place.bisection import bisection_place
from repro.rng import SeedBundle


def _pin_ports(netlist: Netlist, tiers: TierAssignment, fp: Floorplan,
               placement: Placement) -> dict[str, tuple[float, float]]:
    """Distribute ports evenly along the boundary; logic-tier ports on
    the bottom/left edges, memory-tier ports on the top/right, which
    loosely matches pad access per die in an F2F stack."""
    fixed: dict[str, tuple[float, float]] = {}
    by_tier: dict[int, list[str]] = {TIER_LOGIC: [], TIER_MEMORY: []}
    for name in sorted(netlist.ports):
        by_tier[tiers.of_port(name)].append(name)
    for tier, names in by_tier.items():
        if not names:
            continue
        perimeter = 2 * (fp.width + fp.height)
        for i, name in enumerate(names):
            t = (i + 0.5) / len(names) * perimeter
            if tier == TIER_MEMORY:
                t = (t + fp.width + fp.height) % perimeter  # opposite side
            if t < fp.width:
                x, y = t, 0.0
            elif t < fp.width + fp.height:
                x, y = fp.width, t - fp.width
            elif t < 2 * fp.width + fp.height:
                x, y = 2 * fp.width + fp.height - t, fp.height
            else:
                x, y = 0.0, perimeter - t
            placement.set_port(name, x, y)
            fixed[f"port:{name}"] = (x, y)
    return fixed


def place_design(netlist: Netlist, tiers: TierAssignment,
                 seeds: SeedBundle,
                 fp: Floorplan | None = None,
                 utilization: float = 0.45) -> tuple[Placement, Floorplan]:
    """Place *netlist* per *tiers*; returns (placement, floorplan)."""
    if fp is None:
        fp = make_floorplan(netlist, utilization=utilization)
    placement = Placement(netlist, tiers)
    fixed = _pin_ports(netlist, tiers, fp, placement)

    macro_names = [n for n, inst in netlist.instances.items() if inst.is_macro]
    std_names = [n for n in netlist.instances if n not in set(macro_names)]

    # Pass 1: everything movable, to get global macro positions.
    rough = quadratic_solve(netlist, fixed, fp)
    if macro_names:
        macro_pos = legalize_macros(netlist, macro_names, rough, fp)
        for name, (x, y) in macro_pos.items():
            fixed[name] = (x, y)
            placement.set_instance(name, x, y)

    # Pass 2: standard cells against fixed ports + macros via
    # recursive bisection (the pure quadratic solution collapses
    # interchangeable clusters onto one point — see bisection.py).
    spread_pos = bisection_place(netlist, fixed, fp, movable=std_names)

    for tier in (TIER_LOGIC, TIER_MEMORY):
        tier_names = [n for n in std_names if tiers.of_instance(n) == tier]
        legal = legalize_tier(netlist, tier_names, spread_pos, fp)
        for name, (x, y) in legal.items():
            placement.set_instance(name, x, y)

    placement.validate()
    return placement, fp
