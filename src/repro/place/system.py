"""Cached-Laplacian quadratic placement engine.

The recursive-bisection placer solves the same connectivity Laplacian
at every level — only the SimPL-style anchor diagonal and the RHS
change as cells are committed to regions.  The seed implementation
re-walked every net in Python and rebuilt the COO system per level,
which dominated ``place_design`` wall-clock.  This module splits that
work into three cacheable layers:

* :class:`NetConnectivity` — one walk over the netlist producing flat
  NumPy arrays of the clique pairs and star edges (net models of
  ``quadratic.py``), independent of which instances are movable.  A
  ``place_design`` call builds it once and shares it between the
  macro-seeding pass and every bisection level.
* :func:`assemble_system` — vectorized classification of those arrays
  against a movable/fixed split, producing the base CSC Laplacian,
  the positions of its diagonal entries, and the base RHS.  No Python
  per-net loop.
* :class:`PlacementSystem` — serves any number of anchored solves from
  one assembly: each solve copies the base CSC data, adds the anchor
  weight at the precomputed diagonal slots (the sparsity pattern is
  shared across factorizations), and factorizes with SuperLU.

Contract: a reused ``PlacementSystem`` produces positions bit-identical
to rebuilding the system from scratch for every solve — the cache only
skips redundant work, it never changes the arithmetic.  This is locked
by ``tests/test_place_system.py`` and the ``bench_place.py`` gate.

Solver backends.  SuperLU factorization dominates the solve (~27x the
back-substitution it enables — EXPERIMENTS.md), yet between adjacent
bisection levels only the anchor diagonal and RHS change.
:class:`FactorReuseSolver` exploits that: it keeps ONE SuperLU
factorization and serves subsequent anchored solves with
preconditioned conjugate gradients (the stale factorization as the
preconditioner, the previous level's positions as the warm start),
refactorizing only when the anchor perturbation outgrows the
preconditioner (weight-ratio bound + iteration-count feedback).
``solver="direct"`` (the default) keeps the factorize-every-solve
path bit-identical to the pre-backend engine; ``solver="cg"`` opts
into factor reuse (positions agree with direct to the CG residual
tolerance — equivalence-gated, not bit-identical); ``solver="auto"``
picks cg for systems large enough to amortize the bookkeeping.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.errors import PlacementError
from repro.obs import metrics, trace
from repro.netlist.netlist import Netlist
from repro.place.floorplan import Floorplan

#: Nets up to this degree use the pairwise clique model.
CLIQUE_LIMIT = 4
#: Tiny pull to die center so fully floating components stay solvable.
CENTER_REG = 1e-6

#: Solver backends ``PlacementSystem``/``FlowConfig`` understand.
SOLVERS = ("auto", "direct", "cg")
#: ``auto`` stays direct below this many unknowns — factorizing a tiny
#: system is cheaper than any preconditioner bookkeeping.  1000 puts
#: the MAERI-16 hetero fabric (~1.9k unknowns per region) on the cg
#: backend alongside A7 (~3.7k), where factor reuse across the anchor
#: bisection already wins; toy designs stay direct.
AUTO_CG_MIN_UNKNOWNS = 1000
#: PCG convergence target, relative to ``||b||``.  Positions land
#: within ~1e-4 um of the direct solve — far inside the 2% HPWL
#: equivalence tolerance the quality gates check, and measured HPWL
#: stays within 0.1% of direct on every fabric.
CG_RTOL = 1e-6
#: Hard PCG iteration cap; hitting it falls back to refactor + direct
#: back-substitution, so a pathological system still solves exactly.
CG_MAXITER = 400
#: Proactively refactorize once the uniform anchor weight drifts this
#: far (ratio) from the factorized one.  Bisection doubles the anchor
#: weight per level, so 4 means one fresh factorization every ~3
#: levels; the preconditioned condition number stays <= the ratio, so
#: in-between solves converge in ~a dozen block iterations, each
#: costing ~1/25 of a factorization (one triangular sweep + spmv).
CG_REFACTOR_RATIO = 4.0
#: ...or once a PCG solve needed this many (block) iterations —
#: feedback for perturbations the ratio rule cannot see, e.g. changed
#: anchor sets.
CG_REFACTOR_ITERS = 16

#: (i, j) index pairs of the clique model, per net degree.
_PAIR_TEMPLATES = {
    d: np.array([(i, j) for i in range(d) for j in range(i + 1, d)],
                dtype=np.int64)
    for d in range(2, CLIQUE_LIMIT + 1)
}


def _csr_groups(values: np.ndarray, ids: np.ndarray,
                n_groups: int) -> tuple[np.ndarray, np.ndarray]:
    """Group *ids* by *values* (a key per id); returns (indptr, ids)."""
    order = np.argsort(values, kind="stable")
    counts = np.bincount(values, minlength=n_groups)
    indptr = np.concatenate([[0], np.cumsum(counts)])
    return indptr.astype(np.int64), ids[order]


class NetConnectivity:
    """Flat-array view of the clique/star net models of a netlist.

    Instances and port pins are interned into a *key id* vocabulary
    (``vocab``/``keys``); clique nets become ``(pair_a, pair_b,
    pair_w)`` key-id pairs, star nets become ``(star_vid, star_kid,
    star_w)`` edges grouped by virtual-node id.  The arrays depend
    only on the netlist, not on which instances are movable, so one
    instance serves every solve of a ``place_design`` call.
    """

    def __init__(self, vocab: dict[str, int], keys: list[str],
                 pair_a: np.ndarray, pair_b: np.ndarray,
                 pair_w: np.ndarray, star_vid: np.ndarray,
                 star_kid: np.ndarray, star_w: np.ndarray,
                 star_sizes: np.ndarray):
        self.vocab = vocab
        self.keys = keys
        self.pair_a = pair_a
        self.pair_b = pair_b
        self.pair_w = pair_w
        self.star_vid = star_vid
        self.star_kid = star_kid
        self.star_w = star_w
        self.star_sizes = star_sizes
        #: Edge range of star v is star_ptr[v]:star_ptr[v+1].
        self.star_ptr = np.concatenate(
            [[0], np.cumsum(star_sizes)]).astype(np.int64)
        self._pair_incidence: tuple[np.ndarray, np.ndarray] | None = None
        self._star_incidence: tuple[np.ndarray, np.ndarray] | None = None

    @property
    def n_keys(self) -> int:
        return len(self.keys)

    @property
    def n_stars(self) -> int:
        return len(self.star_sizes)

    @classmethod
    def from_netlist(cls, netlist: Netlist) -> "NetConnectivity":
        vocab: dict[str, int] = {}
        flat: list[int] = []            # clique pins, net-major
        clique_degs: list[int] = []
        star_flat: list[int] = []
        star_sizes: list[int] = []
        intern = vocab.setdefault
        for net in netlist.signal_nets():
            pins = net.pins()
            deg = len(pins)
            if deg < 2:
                continue
            if deg <= CLIQUE_LIMIT:
                append = flat.append
                clique_degs.append(deg)
            else:
                append = star_flat.append
                star_sizes.append(deg)
            for pin in pins:
                owner = pin.owner
                key = owner.name if owner is not None \
                    else f"port:{pin.port.name}"
                append(intern(key, len(vocab)))

        degs = np.asarray(clique_degs, dtype=np.int64)
        flat_arr = np.asarray(flat, dtype=np.int64)
        offsets = np.concatenate([[0], np.cumsum(degs)])[:-1]
        chunks_a, chunks_b, chunks_w = [], [], []
        for d, template in _PAIR_TEMPLATES.items():
            sel = np.flatnonzero(degs == d)
            if not len(sel):
                continue
            base = offsets[sel][:, None]
            chunks_a.append(flat_arr[(base + template[:, 0]).ravel()])
            chunks_b.append(flat_arr[(base + template[:, 1]).ravel()])
            chunks_w.append(np.full(len(sel) * len(template),
                                    1.0 / (d - 1)))
        empty_i = np.empty(0, dtype=np.int64)
        pair_a = np.concatenate(chunks_a) if chunks_a else empty_i
        pair_b = np.concatenate(chunks_b) if chunks_b else empty_i
        pair_w = np.concatenate(chunks_w) if chunks_w \
            else np.empty(0, dtype=float)

        sizes = np.asarray(star_sizes, dtype=np.int64)
        star_kid = np.asarray(star_flat, dtype=np.int64)
        star_vid = np.repeat(np.arange(len(sizes), dtype=np.int64), sizes)
        star_w = np.repeat(2.0 / sizes, sizes) if len(sizes) \
            else np.empty(0, dtype=float)
        return cls(vocab, list(vocab), pair_a, pair_b, pair_w,
                   star_vid, star_kid, star_w, sizes)

    def pair_incidence(self) -> tuple[np.ndarray, np.ndarray]:
        """Key id -> clique pair ids touching it, as (indptr, ids)."""
        if self._pair_incidence is None:
            n_pairs = len(self.pair_a)
            ids = np.concatenate([np.arange(n_pairs, dtype=np.int64)] * 2) \
                if n_pairs else np.empty(0, dtype=np.int64)
            endpoints = np.concatenate([self.pair_a, self.pair_b])
            self._pair_incidence = _csr_groups(endpoints, ids, self.n_keys)
        return self._pair_incidence

    def star_incidence(self) -> tuple[np.ndarray, np.ndarray]:
        """Key id -> star (virtual node) ids touching it."""
        if self._star_incidence is None:
            self._star_incidence = _csr_groups(
                self.star_kid, self.star_vid.copy(), self.n_keys)
        return self._star_incidence


@dataclass
class AssembledSystem:
    """One movable/fixed split's Laplacian, ready for anchored solves.

    ``data`` is the base CSC value array (connectivity + CENTER_REG,
    no anchors); ``diag_pos[i]`` is the position of entry ``(i, i)``
    inside ``data``.  ``bx``/``by`` are the base RHS.  A solve copies
    ``data`` and adds the anchor diagonal — the pattern
    (``indices``/``indptr``) is shared across every factorization.
    """

    data: np.ndarray
    indices: np.ndarray
    indptr: np.ndarray
    diag_pos: np.ndarray
    bx: np.ndarray
    by: np.ndarray
    n_movable: int
    n_total: int


def assemble_system(conn: NetConnectivity, kid_mov: np.ndarray,
                    kid_fx: np.ndarray, kid_fy: np.ndarray,
                    n_movable: int, width: float, height: float,
                    pair_sel: np.ndarray | None = None,
                    star_edge_sel: np.ndarray | None = None,
                    star_vid_compress: bool = False) -> AssembledSystem:
    """Vectorized assembly of the quadratic system.

    ``kid_mov`` maps key id -> movable index (or -1); ``kid_fx`` /
    ``kid_fy`` hold fixed positions (NaN where the key has none, in
    which case the term is dropped — same as the seed ``add_edge``).
    ``pair_sel`` / ``star_edge_sel`` restrict assembly to a subset of
    the connectivity rows (region subsolves); with
    ``star_vid_compress`` the touched stars get dense local virtual
    ids instead of one node per star net in the whole design.
    """
    pa = conn.pair_a if pair_sel is None else conn.pair_a[pair_sel]
    pb = conn.pair_b if pair_sel is None else conn.pair_b[pair_sel]
    pw = conn.pair_w if pair_sel is None else conn.pair_w[pair_sel]
    am, bm = kid_mov[pa], kid_mov[pb]
    both = (am >= 0) & (bm >= 0)
    a_only = (am >= 0) & (bm < 0) & ~np.isnan(kid_fx[pb])
    b_only = (bm >= 0) & (am < 0) & ~np.isnan(kid_fx[pa])

    diag = np.full(n_movable, CENTER_REG)
    np.add.at(diag, am[both], pw[both])
    np.add.at(diag, bm[both], pw[both])
    np.add.at(diag, am[a_only], pw[a_only])
    np.add.at(diag, bm[b_only], pw[b_only])
    bx = np.full(n_movable, CENTER_REG * width / 2.0)
    by = np.full(n_movable, CENTER_REG * height / 2.0)
    np.add.at(bx, am[a_only], pw[a_only] * kid_fx[pb][a_only])
    np.add.at(by, am[a_only], pw[a_only] * kid_fy[pb][a_only])
    np.add.at(bx, bm[b_only], pw[b_only] * kid_fx[pa][b_only])
    np.add.at(by, bm[b_only], pw[b_only] * kid_fy[pa][b_only])

    if star_edge_sel is None:
        sk, sw = conn.star_kid, conn.star_w
        svid = conn.star_vid
        n_virtual = conn.n_stars
    else:
        sk, sw = conn.star_kid[star_edge_sel], conn.star_w[star_edge_sel]
        svid = conn.star_vid[star_edge_sel]
        n_virtual = conn.n_stars
    if star_vid_compress and len(svid):
        uniq, svid = np.unique(svid, return_inverse=True)
        n_virtual = len(uniq)
    elif star_vid_compress:
        n_virtual = 0
    sm = kid_mov[sk]
    s_mov = sm >= 0
    s_fix = ~s_mov & ~np.isnan(kid_fx[sk])
    vdiag = np.zeros(n_virtual)
    np.add.at(vdiag, svid[s_mov], sw[s_mov])
    np.add.at(vdiag, svid[s_fix], sw[s_fix])
    np.add.at(diag, sm[s_mov], sw[s_mov])
    vbx = np.zeros(n_virtual)
    vby = np.zeros(n_virtual)
    np.add.at(vbx, svid[s_fix], sw[s_fix] * kid_fx[sk][s_fix])
    np.add.at(vby, svid[s_fix], sw[s_fix] * kid_fy[sk][s_fix])
    vdiag[vdiag == 0.0] = 1.0       # fully disconnected star; keep SPD

    n_total = n_movable + n_virtual
    rows = np.concatenate([am[both], bm[both],
                           n_movable + svid[s_mov], sm[s_mov]])
    cols = np.concatenate([bm[both], am[both],
                           sm[s_mov], n_movable + svid[s_mov]])
    vals = np.concatenate([-pw[both], -pw[both], -sw[s_mov], -sw[s_mov]])
    full_diag = np.concatenate([diag, vdiag])
    lap = sp.coo_matrix(
        (np.concatenate([vals, full_diag]),
         (np.concatenate([rows, np.arange(n_total)]),
          np.concatenate([cols, np.arange(n_total)]))),
        shape=(n_total, n_total)).tocsc()
    # The diagonal entry of every column exists structurally (appended
    # above), so its position in the merged data array is recoverable.
    col_of = np.repeat(np.arange(n_total), np.diff(lap.indptr))
    diag_pos = np.flatnonzero(lap.indices == col_of)
    if len(diag_pos) != n_total:    # pragma: no cover - structural bug
        raise PlacementError("placement system lost diagonal entries")
    return AssembledSystem(data=lap.data, indices=lap.indices,
                           indptr=lap.indptr, diag_pos=diag_pos,
                           bx=np.concatenate([bx, vbx]),
                           by=np.concatenate([by, vby]),
                           n_movable=n_movable, n_total=n_total)


def _anchored_arrays(asm: AssembledSystem,
                     anchor_idx: np.ndarray | None,
                     anchor_x: np.ndarray | None,
                     anchor_y: np.ndarray | None,
                     anchor_weight: float
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(data, bx, by) with the anchor terms applied; base never mutated."""
    data, bx, by = asm.data, asm.bx, asm.by
    if anchor_idx is not None and len(anchor_idx) and anchor_weight > 0.0:
        data = data.copy()
        bx = bx.copy()
        by = by.copy()
        data[asm.diag_pos[anchor_idx]] += anchor_weight
        bx[anchor_idx] += anchor_weight * anchor_x
        by[anchor_idx] += anchor_weight * anchor_y
    return data, bx, by


def _factorize(lap: sp.csc_matrix, n_total: int) -> spla.SuperLU:
    # The system is a symmetric diagonally-dominant Laplacian:
    # SymmetricMode (COLAMD on A+A', tiny pivot threshold) cuts
    # SuperLU fill ~20% vs the unsymmetric default, small panels
    # suit its thin supernodes, and both RHS solve in one
    # triangular sweep.
    metrics.inc("place.factorizations")
    t0 = time.perf_counter()
    with trace.span("place.factor", n=n_total):
        lu = spla.splu(lap, options=dict(SymmetricMode=True,
                                         DiagPivotThresh=0.001,
                                         PanelSize=1, Relax=12))
    metrics.add_time("place.factor_s", time.perf_counter() - t0)
    return lu


def _back_solve(lu: spla.SuperLU, bx: np.ndarray, by: np.ndarray,
                n_total: int) -> np.ndarray:
    t0 = time.perf_counter()
    with trace.span("place.back_solve", n=n_total):
        xy = lu.solve(np.stack([bx, by], axis=1))
    metrics.add_time("place.back_solve_s", time.perf_counter() - t0)
    return xy


def solve_assembled(asm: AssembledSystem,
                    anchor_idx: np.ndarray | None = None,
                    anchor_x: np.ndarray | None = None,
                    anchor_y: np.ndarray | None = None,
                    anchor_weight: float = 0.0
                    ) -> tuple[np.ndarray, np.ndarray]:
    """Solve one anchored instance of *asm*; returns movable (x, y).

    ``anchor_idx`` must hold *unique* movable indices (an instance
    carries at most one pseudo-anchor, as in SimPL).  The base arrays
    are never mutated, so any number of solves can share one assembly.
    This is the ``direct`` backend: every call factorizes.
    """
    data, bx, by = _anchored_arrays(asm, anchor_idx, anchor_x, anchor_y,
                                    anchor_weight)
    lap = sp.csc_matrix((data, asm.indices, asm.indptr),
                        shape=(asm.n_total, asm.n_total))
    try:
        lu = _factorize(lap, asm.n_total)
        xy = _back_solve(lu, bx, by, asm.n_total)
    except RuntimeError as exc:  # pragma: no cover - singular fallback
        raise PlacementError(f"quadratic system solve failed: {exc}") from exc
    return (np.ascontiguousarray(xy[:asm.n_movable, 0]),
            np.ascontiguousarray(xy[:asm.n_movable, 1]))


class FactorReuseSolver:
    """Anchored solves of one assembly with SuperLU factor reuse.

    The first solve factorizes its (anchored) system and keeps the
    SuperLU object.  Later solves of a *perturbed* system — same
    sparsity pattern, different anchor diagonal/RHS — run
    preconditioned CG with the stale factorization as the
    preconditioner and the previous solution as the warm start.  The
    preconditioned spectrum is clustered as long as the anchor
    perturbation stays small relative to the factorized system, so
    solves converge in a handful of iterations; the solver
    refactorizes when the anchor-weight ratio passes
    :data:`CG_REFACTOR_RATIO`, when a solve needed more than
    :data:`CG_REFACTOR_ITERS` iterations, or when PCG fails outright
    (exactness fallback: refactor + direct back-substitution, so a
    result is *never* worse than CG_RTOL away from the direct answer).

    A solve whose anchor set and weight exactly match the cached
    factorization skips CG entirely: the LU is exact for that system
    and the back-substitution is bit-identical to the direct backend.
    """

    def __init__(self, asm: AssembledSystem):
        self.asm = asm
        self._lu: spla.SuperLU | None = None
        #: (anchor-idx digest, weight) of the factorized system.
        self._lu_key: tuple[bytes, float] | None = None
        self._refactor_next = False
        self._warm: np.ndarray | None = None    # last (n_total, 2) solution

    @staticmethod
    def _key(anchor_idx: np.ndarray | None,
             anchor_weight: float) -> tuple[bytes, float]:
        if anchor_idx is None or not len(anchor_idx) or anchor_weight <= 0.0:
            return b"", 0.0
        return anchor_idx.tobytes(), float(anchor_weight)

    def _should_refactor(self, key: tuple[bytes, float]) -> bool:
        if self._lu is None or self._refactor_next:
            return True
        lu_sig, lu_w = self._lu_key
        sig, w = key
        if sig == lu_sig and lu_w > 0.0 and w > 0.0:
            ratio = max(w, lu_w) / min(w, lu_w)
            return ratio > CG_REFACTOR_RATIO
        # Changed anchor set (or anchored <-> unanchored): no cheap
        # conditioning estimate — try CG, let iteration feedback and
        # the non-convergence fallback decide.
        return False

    def solve(self, anchor_idx: np.ndarray | None = None,
              anchor_x: np.ndarray | None = None,
              anchor_y: np.ndarray | None = None,
              anchor_weight: float = 0.0
              ) -> tuple[np.ndarray, np.ndarray]:
        asm = self.asm
        data, bx, by = _anchored_arrays(asm, anchor_idx, anchor_x,
                                        anchor_y, anchor_weight)
        lap = sp.csc_matrix((data, asm.indices, asm.indptr),
                            shape=(asm.n_total, asm.n_total))
        key = self._key(anchor_idx, anchor_weight)
        try:
            if self._should_refactor(key):
                self._lu = _factorize(lap, asm.n_total)
                self._lu_key = key
                self._refactor_next = False
                xy = _back_solve(self._lu, bx, by, asm.n_total)
            elif key == self._lu_key:
                # Exact cache hit: the LU *is* this system's
                # factorization — bit-identical direct back-solve.
                metrics.inc("place.factor_reuse")
                xy = _back_solve(self._lu, bx, by, asm.n_total)
            else:
                xy = self._pcg_solve(lap, bx, by)
                if xy is None:      # non-convergence: exact fallback
                    metrics.inc("place.cg_fallbacks")
                    self._lu = _factorize(lap, asm.n_total)
                    self._lu_key = key
                    self._refactor_next = False
                    xy = _back_solve(self._lu, bx, by, asm.n_total)
        except RuntimeError as exc:  # pragma: no cover - singular fallback
            raise PlacementError(
                f"quadratic system solve failed: {exc}") from exc
        self._warm = xy
        return (np.ascontiguousarray(xy[:asm.n_movable, 0]),
                np.ascontiguousarray(xy[:asm.n_movable, 1]))

    def _pcg_solve(self, lap: sp.csc_matrix, bx: np.ndarray,
                   by: np.ndarray) -> np.ndarray | None:
        """Both axes via block preconditioned CG; None on failure.

        Hand-rolled rather than ``scipy.sparse.linalg.cg`` so the two
        independent RHS columns advance in lockstep: each iteration
        does ONE spmv and ONE triangular ``lu.solve`` sweep on the
        ``(n, 2)`` block (per-column step lengths), roughly halving
        per-iteration cost versus two scalar CG runs and dodging
        scipy's per-iteration Python overhead — which is what makes
        reuse actually beat refactorization at this system size.
        """
        n = self.asm.n_total
        lu = self._lu
        iters = 0
        t0 = time.perf_counter()
        with trace.span("place.cg_solve", n=n) as span:
            B = np.stack([bx, by], axis=1)
            X = self._warm.copy() if self._warm is not None \
                else np.zeros_like(B)
            R = B - lap @ X
            tol_sq = CG_RTOL ** 2 * np.einsum("ij,ij->j", B, B)
            converged = bool(np.all(
                np.einsum("ij,ij->j", R, R) <= tol_sq))
            if not converged:
                Z = lu.solve(R)
                P = Z.copy()
                rz = np.einsum("ij,ij->j", R, Z)
                zeros = np.zeros_like(rz)
                for _ in range(CG_MAXITER):
                    AP = lap @ P
                    pap = np.einsum("ij,ij->j", P, AP)
                    # A converged column has P ~ 0: freeze it (alpha=0)
                    # while the other column keeps iterating.
                    alpha = np.divide(rz, pap, out=zeros.copy(),
                                      where=pap > 0.0)
                    X += alpha * P
                    R -= alpha * AP
                    iters += 1
                    if np.all(np.einsum("ij,ij->j", R, R) <= tol_sq):
                        converged = True
                        break
                    Z = lu.solve(R)
                    rz_new = np.einsum("ij,ij->j", R, Z)
                    beta = np.divide(rz_new, rz, out=zeros.copy(),
                                     where=rz != 0.0)
                    P = Z + beta * P
                    rz = rz_new
            span.set(converged=converged, iters=iters)
            if not converged:
                return None
        metrics.add_time("place.cg_solve_s", time.perf_counter() - t0)
        metrics.inc("place.factor_reuse")
        metrics.observe("place.cg_iters", iters)
        if iters > CG_REFACTOR_ITERS:
            # The preconditioner is going stale; refresh it on the
            # next solve rather than grinding through longer and
            # longer CG runs.
            self._refactor_next = True
        return X


class PlacementSystem:
    """Reusable quadratic system for one (netlist, fixed, movable) split.

    Assembles the connectivity Laplacian once (vectorized over the
    :class:`NetConnectivity` arrays) and serves per-level anchored
    solves that only add the anchor diagonal and RHS.  With the
    default ``solver="direct"`` every solve factorizes and results are
    bit-identical to constructing a fresh system per call; ``"cg"``
    routes repeat solves through :class:`FactorReuseSolver` (equal to
    direct within :data:`CG_RTOL`); ``"auto"`` picks cg when the
    system clears :data:`AUTO_CG_MIN_UNKNOWNS`.
    """

    def __init__(self, netlist: Netlist,
                 fixed: dict[str, tuple[float, float]], fp: Floorplan,
                 movable: list[str] | None = None,
                 conn: NetConnectivity | None = None,
                 solver: str = "direct"):
        if solver not in SOLVERS:
            raise PlacementError(
                f"unknown solver {solver!r}; expected one of {SOLVERS}")
        self.solver = solver
        self._reuse: FactorReuseSolver | None = None
        if movable is None:
            movable = [n for n in netlist.instances if n not in fixed]
        self.movable = list(movable)
        self.index = {name: i for i, name in enumerate(self.movable)}
        self.fp = fp
        self.conn = conn if conn is not None \
            else NetConnectivity.from_netlist(netlist)
        if not self.movable:
            self._asm = None
            return
        nk = self.conn.n_keys
        kid_mov = np.full(nk, -1, dtype=np.int64)
        vocab = self.conn.vocab
        get = vocab.get
        mov_kids = np.fromiter((get(name, -1) for name in self.movable),
                               dtype=np.int64, count=len(self.movable))
        has_kid = mov_kids >= 0
        kid_mov[mov_kids[has_kid]] = np.flatnonzero(has_kid)
        kid_fx = np.full(nk, np.nan)
        kid_fy = np.full(nk, np.nan)
        for key, (px, py) in fixed.items():
            kid = vocab.get(key)
            # A name in both movable and fixed counts as movable, the
            # same precedence the seed add_edge applied.
            if kid is not None and kid_mov[kid] < 0:
                kid_fx[kid] = px
                kid_fy[kid] = py
        self._asm = assemble_system(self.conn, kid_mov, kid_fx, kid_fy,
                                    len(self.movable), fp.width, fp.height)

    @property
    def n_movable(self) -> int:
        return len(self.movable)

    def resolved_solver(self) -> str:
        """The backend solves actually use (``auto`` resolved by size)."""
        if self.solver != "auto":
            return self.solver
        if self._asm is not None and self._asm.n_total >= AUTO_CG_MIN_UNKNOWNS:
            return "cg"
        return "direct"

    def solve_arrays(self, anchor_idx: np.ndarray | None = None,
                     anchor_x: np.ndarray | None = None,
                     anchor_y: np.ndarray | None = None,
                     anchor_weight: float = 0.0
                     ) -> tuple[np.ndarray, np.ndarray]:
        """Array-level solve; positions align with ``self.movable``."""
        if self._asm is None:
            empty = np.empty(0)
            return empty, empty
        if self.resolved_solver() == "cg":
            if self._reuse is None:
                self._reuse = FactorReuseSolver(self._asm)
            return self._reuse.solve(anchor_idx, anchor_x, anchor_y,
                                     anchor_weight)
        return solve_assembled(self._asm, anchor_idx, anchor_x, anchor_y,
                               anchor_weight)

    def solve(self, anchors: dict[str, tuple[float, float]] | None = None,
              anchor_weight: float = 0.0) -> dict[str, tuple[float, float]]:
        """Dict-level solve, same signature semantics as the seed
        ``quadratic_solve`` (unknown anchor names are ignored)."""
        if self._asm is None:
            return {}
        anchor_idx = anchor_x = anchor_y = None
        if anchors and anchor_weight > 0.0:
            idx, axs, ays = [], [], []
            for name, (ax, ay) in anchors.items():
                i = self.index.get(name)
                if i is None:
                    continue
                idx.append(i)
                axs.append(ax)
                ays.append(ay)
            if idx:
                anchor_idx = np.asarray(idx, dtype=np.int64)
                anchor_x = np.asarray(axs)
                anchor_y = np.asarray(ays)
        xs, ys = self.solve_arrays(anchor_idx, anchor_x, anchor_y,
                                   anchor_weight)
        return {name: (float(xs[i]), float(ys[i]))
                for name, i in self.index.items()}
