"""Fiduccia–Mattheyses min-cut bipartitioning.

A single-pass-iterated FM with gain buckets over the netlist
hypergraph.  Used two ways:

* :func:`fm_bipartition` — balanced 2-way split from scratch (general
  substrate capability, exercised by tests and available to users who
  want logic-on-logic stacking experiments);
* :func:`fm_refine` — refine an existing :class:`TierAssignment`
  (e.g. the memory-on-logic seed) while keeping *locked* instances
  (macros) in place, reducing the number of cross-tier (F2F) nets.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.errors import PartitionError
from repro.netlist.netlist import Netlist
from repro.partition.tier import TierAssignment


def _net_side_counts(netlist: Netlist, side: dict[str, int]):
    """Per net: how many of its instance pins sit on each side.

    Port pins are ignored by FM (ports are immovable pads); nets with
    pins on only one instance side can still be cut by port placement,
    but FM optimizes the instance-induced cut, which dominates.
    """
    counts: dict[str, list[int]] = {}
    for net in netlist.signal_nets():
        c = [0, 0]
        for pin in net.pins():
            if pin.owner is not None:
                c[side[pin.owner.name]] += 1
        counts[net.name] = c
    return counts


def _gain(netlist: Netlist, inst_name: str, side: dict[str, int],
          counts: dict[str, list[int]]) -> int:
    """FM gain of moving *inst_name* to the other side."""
    inst = netlist.instance(inst_name)
    s = side[inst_name]
    gain = 0
    seen: set[str] = set()
    for pin in inst.pins.values():
        net = pin.net
        if net is None or net.is_clock or net.name in seen:
            continue
        seen.add(net.name)
        c = counts[net.name]
        if c[s] == 1 and c[1 - s] > 0:
            gain += 1          # move uncuts the net
        elif c[1 - s] == 0 and c[s] > 1:
            gain -= 1          # move newly cuts the net
    return gain


def cut_size(netlist: Netlist, side: dict[str, int]) -> int:
    """Number of signal nets with instance pins on both sides."""
    counts = _net_side_counts(netlist, side)
    return sum(1 for c in counts.values() if c[0] > 0 and c[1] > 0)


def _fm_pass(netlist: Netlist, side: dict[str, int], area: dict[str, float],
             locked: set[str], balance: tuple[float, float]) -> int:
    """One FM pass: tentatively move every free cell once in best-gain
    order, then roll back to the best prefix.  Returns the cut
    improvement achieved (>= 0)."""
    counts = _net_side_counts(netlist, side)
    free = [n for n in netlist.instances if n not in locked]
    gains = {n: _gain(netlist, n, side, counts) for n in free}
    area_side = [0.0, 0.0]
    for name, s in side.items():
        area_side[s] += area[name]
    total_area = sum(area_side)
    lo, hi = balance

    moved_order: list[str] = []
    cum_gain = 0
    best_gain, best_idx = 0, -1
    moved: set[str] = set()
    # Gain-bucket structure: dict gain -> list of candidates.
    buckets: dict[int, list[str]] = defaultdict(list)
    for n, g in gains.items():
        buckets[g].append(n)

    def pop_best() -> str | None:
        for g in sorted(buckets, reverse=True):
            bucket = buckets[g]
            while bucket:
                cand = bucket.pop()
                if cand in moved or gains[cand] != g:
                    continue
                s = side[cand]
                new_from = area_side[s] - area[cand]
                new_to = area_side[1 - s] + area[cand]
                if not (lo * total_area <= new_to <= hi * total_area
                        and new_from >= 0):
                    continue
                return cand
            del buckets[g]
        return None

    while True:
        cand = pop_best()
        if cand is None:
            break
        s = side[cand]
        moved.add(cand)
        moved_order.append(cand)
        cum_gain += gains[cand]
        area_side[s] -= area[cand]
        area_side[1 - s] += area[cand]
        side[cand] = 1 - s
        # Update net counts and neighbor gains.
        inst = netlist.instance(cand)
        touched: set[str] = set()
        for pin in inst.pins.values():
            net = pin.net
            if net is None or net.is_clock:
                continue
            c = counts[net.name]
            c[s] -= 1
            c[1 - s] += 1
            for other in net.pins():
                if other.owner is not None:
                    touched.add(other.owner.name)
        for name in touched:
            if name in moved or name in locked:
                continue
            g = _gain(netlist, name, side, counts)
            if g != gains[name]:
                gains[name] = g
                buckets[g].append(name)
        if cum_gain > best_gain:
            best_gain, best_idx = cum_gain, len(moved_order) - 1

    # Roll back moves after the best prefix.
    for name in moved_order[best_idx + 1:]:
        side[name] = 1 - side[name]
    return best_gain


def fm_refine(netlist: Netlist, tiers: TierAssignment,
              locked: set[str] | None = None,
              balance: tuple[float, float] = (0.10, 0.90),
              max_passes: int = 4) -> TierAssignment:
    """Refine *tiers* in place with FM, keeping *locked* instances
    fixed.  Macros are always locked.  Returns *tiers*.
    """
    locked = set(locked or ())
    locked.update(n for n, inst in netlist.instances.items() if inst.is_macro)
    side = {n: tiers.of_instance(n) for n in netlist.instances}
    area = {n: inst.cell.area_um2 for n, inst in netlist.instances.items()}
    for _ in range(max_passes):
        improved = _fm_pass(netlist, side, area, locked, balance)
        if improved <= 0:
            break
    for name, s in side.items():
        tiers.set_instance(name, s)
    return tiers


def fm_bipartition(netlist: Netlist, seed: int = 0,
                   balance: tuple[float, float] = (0.45, 0.55),
                   max_passes: int = 6) -> dict[str, int]:
    """Balanced 2-way min-cut partition from a random start.

    Returns instance name -> side (0/1).  Raises if the netlist is
    empty.
    """
    names = list(netlist.instances)
    if not names:
        raise PartitionError("cannot partition an empty netlist")
    rng = np.random.default_rng(seed)
    side = {n: int(rng.integers(2)) for n in names}
    area = {n: inst.cell.area_um2 for n, inst in netlist.instances.items()}
    for _ in range(max_passes):
        improved = _fm_pass(netlist, side, area, set(), balance)
        if improved <= 0:
            break
    return side
