"""Tier partitioning for two-tier F2F 3D ICs.

The paper's designs follow the Macro-3D memory-on-logic arrangement:
SRAM macros and their interface logic on the top (memory) die, the
compute fabric on the bottom (logic) die.  :mod:`memory_on_logic`
implements that policy; :mod:`fm` provides a Fiduccia–Mattheyses
min-cut refiner used to pull small logic clusters across when it
reduces the 3D cut (and as a general-purpose bipartitioner).
"""

from repro.partition.tier import (
    TIER_LOGIC,
    TIER_MEMORY,
    TierAssignment,
    cross_tier_nets,
)
from repro.partition.memory_on_logic import partition_memory_on_logic
from repro.partition.fm import fm_bipartition, fm_refine

__all__ = [
    "TIER_LOGIC",
    "TIER_MEMORY",
    "TierAssignment",
    "cross_tier_nets",
    "partition_memory_on_logic",
    "fm_bipartition",
    "fm_refine",
]
