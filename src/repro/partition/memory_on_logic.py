"""Macro-3D style memory-on-logic tier partitioning.

Instances tagged ``region == "memory"`` by the generators (SRAM macros
and their registered interfaces) go to the top tier; everything else to
the bottom tier.  Ports follow their ``tier_hint``.  This mirrors the
Macro-3D flow the paper builds on [5]: the memory die is placed face
down on the logic die, with F2F pads carrying the cache/bank traffic.
"""

from __future__ import annotations

from repro.netlist.netlist import Netlist
from repro.partition.tier import TIER_LOGIC, TIER_MEMORY, TierAssignment


def partition_memory_on_logic(netlist: Netlist) -> TierAssignment:
    """Assign tiers by generator region tags.

    Untagged instances default to the logic tier — a conservative
    choice that keeps hand-built test netlists valid.
    """
    tiers = TierAssignment(netlist)
    for name, inst in netlist.instances.items():
        region = inst.attrs.get("region", "logic")
        tiers.set_instance(
            name, TIER_MEMORY if region == "memory" else TIER_LOGIC)
    for name, port in netlist.ports.items():
        tiers.set_port(
            name, TIER_MEMORY if port.tier_hint == TIER_MEMORY else TIER_LOGIC)
    tiers.validate()
    return tiers
