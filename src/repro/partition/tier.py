"""Tier assignment container and cut queries."""

from __future__ import annotations

import numpy as np

from repro.errors import PartitionError
from repro.netlist.net import Net
from repro.netlist.netlist import Netlist
from repro.netlist.soa import pack_names, unpack_names


def _pack_tiers(tiers: dict[str, int], reference: list[str]) -> dict:
    names = list(tiers)
    return {
        "tier": np.asarray(list(tiers.values()), dtype=np.int8),
        "names": None if names == reference else pack_names(names),
    }


def _unpack_tiers(state: dict, reference: list[str]) -> dict[str, int]:
    packed = state["names"]
    names = reference if packed is None else unpack_names(packed)
    return {name: int(tier) for name, tier in zip(names, state["tier"])}

#: Bottom die — compute fabric ("logic die" in the paper).
TIER_LOGIC = 0
#: Top die — SRAM banks and interface logic ("memory die").
TIER_MEMORY = 1


class TierAssignment:
    """Maps every instance and port of a netlist to tier 0 or 1."""

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        self._inst_tier: dict[str, int] = {}
        self._port_tier: dict[str, int] = {}

    def __getstate__(self) -> dict:
        # Flat arrays, eliding the name tables when assignment order
        # matches netlist order (every partitioner output does).
        return {
            "netlist": self.netlist,
            "inst": _pack_tiers(self._inst_tier, list(self.netlist.instances)),
            "port": _pack_tiers(self._port_tier, list(self.netlist.ports)),
        }

    def __setstate__(self, state: dict) -> None:
        self.netlist = state["netlist"]
        self._inst_tier = _unpack_tiers(state["inst"],
                                        list(self.netlist.instances))
        self._port_tier = _unpack_tiers(state["port"],
                                        list(self.netlist.ports))

    def set_instance(self, name: str, tier: int) -> None:
        if tier not in (TIER_LOGIC, TIER_MEMORY):
            raise PartitionError(f"tier must be 0 or 1, got {tier}")
        if name not in self.netlist.instances:
            raise PartitionError(f"unknown instance {name!r}")
        self._inst_tier[name] = tier

    def set_port(self, name: str, tier: int) -> None:
        if tier not in (TIER_LOGIC, TIER_MEMORY):
            raise PartitionError(f"tier must be 0 or 1, got {tier}")
        if name not in self.netlist.ports:
            raise PartitionError(f"unknown port {name!r}")
        self._port_tier[name] = tier

    def of_instance(self, name: str) -> int:
        try:
            return self._inst_tier[name]
        except KeyError:
            raise PartitionError(f"instance {name!r} unassigned") from None

    def of_port(self, name: str) -> int:
        try:
            return self._port_tier[name]
        except KeyError:
            raise PartitionError(f"port {name!r} unassigned") from None

    def of_pin(self, pin) -> int:
        """Tier of the instance/port owning *pin*."""
        if pin.owner is not None:
            return self.of_instance(pin.owner.name)
        return self.of_port(pin.port.name)

    def validate(self) -> None:
        """Every instance and port must be assigned."""
        missing = [n for n in self.netlist.instances if n not in self._inst_tier]
        if missing:
            raise PartitionError(
                f"{len(missing)} unassigned instances, e.g. {missing[:3]}")
        missing_p = [n for n in self.netlist.ports if n not in self._port_tier]
        if missing_p:
            raise PartitionError(f"unassigned ports: {missing_p[:5]}")

    def instances_on(self, tier: int) -> list[str]:
        return [n for n, t in self._inst_tier.items() if t == tier]

    def area_on(self, tier: int) -> float:
        """Total instance area on *tier*, in um^2."""
        return sum(self.netlist.instance(n).cell.area_um2
                   for n in self.instances_on(tier))

    def counts(self) -> tuple[int, int]:
        bottom = sum(1 for t in self._inst_tier.values() if t == TIER_LOGIC)
        return bottom, len(self._inst_tier) - bottom

    def net_tiers(self, net: Net) -> set[int]:
        """The set of tiers a net's pins touch (clock excluded pins too)."""
        return {self.of_pin(pin) for pin in net.pins()}

    def is_cross_tier(self, net: Net) -> bool:
        return len(self.net_tiers(net)) > 1


def cross_tier_nets(netlist: Netlist, tiers: TierAssignment) -> list[Net]:
    """All signal nets whose pins span both tiers — the 3D nets that
    consume F2F vias regardless of MLS."""
    return [net for net in netlist.signal_nets() if tiers.is_cross_tier(net)]
