"""Flow-as-a-service: an asyncio job daemon over a unix socket.

One daemon process owns an :class:`ArtifactStore` and serves flow
requests from any number of clients.  The protocol is one JSON object
per line in both directions; ops:

``ping``      liveness probe;
``health``    minimal liveness + uptime (no metrics snapshot: safe to
              poll at high frequency);
``status``    queue depth, in-flight requests (with request ids), run
              metrics, store stats;
``metrics``   the full metrics registry rendered as Prometheus text
              exposition (format 0.0.4) — counters, gauges, stats
              summaries and the per-request latency histograms;
``flow``      run (or replay) one benchmark flow; responds with the
              table row, the report digest, timing breakdown and —
              on request — the on-disk paths of the pickled
              :class:`FlowReport` artifacts;
``shutdown``  drain nothing, stop now (the store is crash-safe:
              every artifact write is atomic).

Scheduling is FIFO over an :class:`asyncio.Queue` with *flow_workers*
consumer tasks, each running the (numpy-heavy, GIL-releasing) flow in
a thread executor so the event loop keeps accepting connections.
**Identical concurrent requests are deduplicated**: the second
arrival awaits the first one's future instead of enqueueing — N
clients submitting the same cell of a sweep matrix cost one compute.
Distinct requests proceed independently.  Completed results live in
the store, so dedup only needs to cover the in-flight window.

Every request runs under a ``service.request`` span and feeds the
process-wide :mod:`repro.obs` metrics (``service.requests``,
``service.dedup_hits``, ``service.flow_computes``,
``service.flow_summary_hits``, ``store.*``), which ``status`` reports
back to clients — the concurrency test suite asserts dedup through
exactly this surface.  Telemetry additions on top of that:

* every dispatch is timed into the ``service.latency_s`` (and
  per-op ``service.latency_s.<op>``) fixed-bucket **histograms**,
  exported by the ``metrics`` op;
* flow requests get a daemon-unique **request id** (``req-<seq>``)
  that is pinned onto the tracer for the job's executor thread, so
  every span the job emits — including pool-worker spans merged back
  from other processes — carries ``req=<id>`` and cross-process
  traces group by request rather than pid alone;
* the **flight recorder** is armed for the daemon's lifetime: a
  bounded ring of recent spans dumped to ``<store_root>/flight/`` on
  unhandled exceptions, failed flow jobs, or ``SIGUSR1``.

Tracing note: the span stack is process-global, so per-request traces
are only well-nested with ``flow_workers=1`` (the default).
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from threading import Thread

from repro.errors import FlowError
from repro.obs import flight, get_logger, metrics, trace
from repro.obs.metrics import render_prometheus
from repro.service.store import (ArtifactStore, DEFAULT_BUDGET_BYTES,
                                 DEFAULT_COMPRESS_LEVEL)

log = get_logger("repro.service.daemon")

#: Protocol revision, echoed by ``ping``/``status``.  2 added the
#: ``health``/``metrics`` ops, request ids and latency histograms.
PROTOCOL_VERSION = 2

#: Fields of a ``flow`` request that identify the computation.  This
#: tuple is the *dedup* key (request-level, cheap to derive in the
#: event loop); content-level equivalence across differently-phrased
#: requests is still caught by the store's content keys.
_FLOW_REQUEST_FIELDS = ("benchmark", "selector", "seed", "with_scan",
                        "dft_strategy", "freq_mhz",
                        "place_region_parallel", "workers")


@dataclass(frozen=True)
class ServiceConfig:
    """Daemon deployment knobs."""

    socket_path: str
    store_root: str
    budget_bytes: int = DEFAULT_BUDGET_BYTES
    compress_level: int = DEFAULT_COMPRESS_LEVEL
    #: Concurrent flow executions.  1 keeps traces well-nested and
    #: benchmark wall-clocks honest; raise it for throughput.
    flow_workers: int = 1


class ServiceError(FlowError):
    """Daemon-level failure (bad request, socket in use...)."""


def _flow_dedup_key(request: dict) -> tuple:
    return tuple(request.get(f) for f in _FLOW_REQUEST_FIELDS)


def build_flow_config(request: dict):
    """(spec, FlowConfig, SeedBundle) for one ``flow`` request."""
    from repro.core.flow import FlowConfig
    from repro.harness.designs import (DEFAULT_EXPERIMENT_SEED,
                                       get_benchmark)
    from repro.parallel import ParallelConfig

    spec = get_benchmark(request.get("benchmark", "maeri16_hetero"))
    # `or` would swallow an explicit seed=0; only None means "default".
    seed = request.get("seed")
    seed = DEFAULT_EXPERIMENT_SEED if seed is None else int(seed)
    config = FlowConfig(
        selector=request.get("selector", "gnn"),
        target_freq_mhz=float(request.get("freq_mhz")
                              or spec.target_freq_mhz),
        num_paths=spec.num_paths,
        num_labeled=spec.num_labeled,
        with_scan=bool(request.get("with_scan", False)),
        dft_strategy=request.get("dft_strategy"),
        activity=spec.activity,
        parallel=ParallelConfig(workers=int(request.get("workers") or 1)),
        place_region_parallel=bool(request.get("place_region_parallel",
                                               False)),
    )
    return spec, config, spec.seeds(seed)


class FlowService:
    """The daemon; construct, then :meth:`serve` (or
    :func:`start_in_thread` for in-process embedding)."""

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.store = ArtifactStore(config.store_root,
                                   budget_bytes=config.budget_bytes,
                                   compress_level=config.compress_level)
        self._queue: asyncio.Queue = asyncio.Queue()
        self._inflight: dict[tuple, asyncio.Future] = {}
        #: Request-id bookkeeping mirroring ``_inflight``: key ->
        #: {"id", "benchmark", "selector", "since_s", "waiters"}.
        self._inflight_info: dict[tuple, dict] = {}
        self._req_seq = 0
        self._executor = ThreadPoolExecutor(
            max_workers=config.flow_workers,
            thread_name_prefix="repro-flow")
        self._stop = asyncio.Event()
        self._started_at = time.time()
        self._loop: asyncio.AbstractEventLoop | None = None

    # -- lifecycle -----------------------------------------------------------

    async def serve(self) -> None:
        """Bind the socket and serve until a ``shutdown`` request."""
        self._loop = asyncio.get_running_loop()
        path = Path(self.config.socket_path)
        await self._claim_socket(path)
        server = await asyncio.start_unix_server(self._handle_conn,
                                                 path=str(path))
        workers = [asyncio.create_task(self._worker())
                   for _ in range(self.config.flow_workers)]
        # Crash forensics for the daemon's whole lifetime: recent spans
        # ring-buffered, dumped on SIGUSR1 / unhandled exceptions /
        # failed flow jobs.  Pool workers inherit via the environment.
        flight.arm(Path(self.store.root) / "flight",
                   install_signal=True, install_excepthook=True)
        log.info(f"repro service listening on {path} "
                 f"(store: {self.store.root}, "
                 f"workers: {self.config.flow_workers})")
        try:
            await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()
            for task in workers:
                task.cancel()
            self._executor.shutdown(wait=False, cancel_futures=True)
            self.store.flush()
            flight.disarm()
            path.unlink(missing_ok=True)
            log.info("repro service stopped")

    async def _claim_socket(self, path: Path) -> None:
        if not path.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
            return
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_unix_connection(str(path)), timeout=2.0)
        except (OSError, asyncio.TimeoutError):
            log.warning(f"removing stale service socket {path}")
            path.unlink(missing_ok=True)
            return
        writer.close()
        raise ServiceError(f"service already running on {path}")

    def request_shutdown(self) -> None:
        self._stop.set()

    # -- connection handling -------------------------------------------------

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        try:
            while not self._stop.is_set():
                line = await reader.readline()
                if not line:
                    break
                try:
                    response = await self._dispatch(json.loads(line))
                except (FlowError, ValueError, KeyError,
                        TypeError) as exc:
                    metrics.inc("service.errors")
                    response = {"ok": False, "error": repr(exc)}
                writer.write(json.dumps(response, default=str).encode()
                             + b"\n")
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()

    async def _dispatch(self, request: dict) -> dict:
        op = request.get("op")
        metrics.inc("service.requests")
        metrics.inc(f"service.requests.{op}")
        t0 = time.perf_counter()
        try:
            return await self._dispatch_op(op, request)
        finally:
            latency = time.perf_counter() - t0
            metrics.observe_hist("service.latency_s", latency)
            if isinstance(op, str):
                metrics.observe_hist(f"service.latency_s.{op}", latency)

    async def _dispatch_op(self, op, request: dict) -> dict:
        if op == "ping":
            return {"ok": True, "op": "ping", "pid": os.getpid(),
                    "protocol": PROTOCOL_VERSION}
        if op == "health":
            return self._health()
        if op == "status":
            return self._status()
        if op == "metrics":
            return {"ok": True, "op": "metrics",
                    "format": "prometheus-0.0.4",
                    "text": render_prometheus(metrics.snapshot())}
        if op == "shutdown":
            self.request_shutdown()
            return {"ok": True, "op": "shutdown"}
        if op == "flow":
            return await self._op_flow(request)
        raise ServiceError(f"unknown op {op!r}")

    def _health(self) -> dict:
        return {
            "ok": True,
            "op": "health",
            "status": "ok",
            "pid": os.getpid(),
            "protocol": PROTOCOL_VERSION,
            "uptime_s": time.time() - self._started_at,
            "inflight": len(self._inflight),
            "queue_depth": self._queue.qsize(),
        }

    def _status(self) -> dict:
        return {
            "ok": True,
            "op": "status",
            "pid": os.getpid(),
            "protocol": PROTOCOL_VERSION,
            "socket": self.config.socket_path,
            "uptime_s": time.time() - self._started_at,
            "queue_depth": self._queue.qsize(),
            "inflight": len(self._inflight),
            "inflight_requests": [
                {"id": info["id"], "benchmark": info["benchmark"],
                 "selector": info["selector"],
                 "age_s": time.time() - info["since_s"],
                 "waiters": info["waiters"]}
                for info in self._inflight_info.values()],
            "flight": {"armed": flight.armed,
                       "dumps": flight.dumps_written,
                       "dir": str(flight.directory or "")},
            "flow_workers": self.config.flow_workers,
            "store": self.store.stats(),
            "metrics": metrics.snapshot(),
        }

    # -- the flow op ---------------------------------------------------------

    async def _op_flow(self, request: dict) -> dict:
        key = _flow_dedup_key(request)
        t0 = time.perf_counter()
        future = self._inflight.get(key)
        if future is not None:
            metrics.inc("service.dedup_hits")
            info = self._inflight_info.get(key)
            if info is not None:
                info["waiters"] += 1
            request_id = info["id"] if info else None
            deduped = True
        else:
            deduped = False
            self._req_seq += 1
            request_id = f"req-{self._req_seq}"
            future = self._loop.create_future()
            self._inflight[key] = future
            self._inflight_info[key] = {
                "id": request_id, "since_s": time.time(), "waiters": 1,
                "benchmark": request.get("benchmark", "maeri16_hetero"),
                "selector": request.get("selector", "gnn")}
            metrics.set_gauge("service.inflight", len(self._inflight))
            await self._queue.put((key, request, future, request_id))
            metrics.set_gauge("service.queue_depth", self._queue.qsize())
        try:
            response = dict(await asyncio.shield(future))
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            metrics.inc("service.errors")
            return {"ok": False, "error": repr(exc),
                    "request_id": request_id}
        response["deduped"] = deduped
        response["request_id"] = request_id
        response["wait_s"] = time.perf_counter() - t0
        metrics.add_time("service.request_wait_s",
                         time.perf_counter() - t0)
        return response

    def _finish_inflight(self, key: tuple) -> None:
        self._inflight.pop(key, None)
        self._inflight_info.pop(key, None)
        metrics.set_gauge("service.inflight", len(self._inflight))

    async def _worker(self) -> None:
        while True:
            key, request, future, request_id = await self._queue.get()
            try:
                result = await self._loop.run_in_executor(
                    self._executor, self._run_flow_job, request,
                    request_id)
            except Exception as exc:           # surfaced per-awaiter
                self._finish_inflight(key)
                if not future.done():
                    future.set_exception(exc)
                continue
            finally:
                self._queue.task_done()
                metrics.set_gauge("service.queue_depth",
                                  self._queue.qsize())
            self._finish_inflight(key)
            if not future.done():
                future.set_result(result)

    def _run_flow_job(self, request: dict,
                      request_id: str | None = None) -> dict:
        """Executor-thread body: store lookup or full flow compute."""
        from repro.service.stages import (flow_artifact_paths,
                                          run_flow_stored)
        spec, config, seeds = build_flow_config(request)
        want_report = bool(request.get("save_report", False))
        # Pin the request id on this executor thread: every span the
        # job emits (and every pool-worker span merged back into it)
        # carries req=<id>, so cross-process traces group by request.
        trace.set_request(request_id)
        try:
            with trace.span("service.request", op="flow",
                            benchmark=spec.key,
                            selector=config.selector):
                t0 = time.perf_counter()
                report, summary, cached = run_flow_stored(
                    spec.factory, spec.tech(), seeds, config, self.store,
                    need_report=want_report)
                elapsed = time.perf_counter() - t0
        except Exception as exc:
            flight.record_note("flow job failed",
                               request_id=request_id or "",
                               benchmark=spec.key)
            flight.crash_dump("service.flow", exc)
            raise
        finally:
            trace.set_request(None)
        metrics.add_time("service.flow_serve_s", elapsed)
        metrics.observe_hist("service.flow_serve_s", elapsed)
        flight.record_sample("service.flow_serve_s", elapsed,
                             request_id=request_id or "",
                             benchmark=spec.key, cached=cached)
        response = {
            "ok": True,
            "op": "flow",
            "benchmark": spec.key,
            "selector": config.selector,
            "cached": cached,
            "serve_s": elapsed,
            "row": summary["row"],
            "report_digest": summary["report_digest"],
            "runtime_s": summary["runtime_s"],
            "stage_runtime_s": summary["stage_runtime_s"],
        }
        if want_report:
            response["artifacts"] = flow_artifact_paths(
                spec.factory, spec.tech(), seeds, config, self.store)
        return response


# -- embedding helpers --------------------------------------------------------


class ServiceHandle:
    """A daemon running on a background thread (tests, benchmarks)."""

    def __init__(self, service: FlowService, thread: Thread):
        self.service = service
        self.thread = thread

    def stop(self, timeout: float = 30.0) -> None:
        loop = self.service._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self.service.request_shutdown)
        self.thread.join(timeout=timeout)


def start_in_thread(config: ServiceConfig,
                    ready_timeout: float = 30.0) -> ServiceHandle:
    """Start a :class:`FlowService` on a daemon thread and wait until
    its socket answers ``ping``."""
    from repro.service.client import ServiceClient, wait_for_service

    service = FlowService(config)
    thread = Thread(target=lambda: asyncio.run(service.serve()),
                    name="repro-service", daemon=True)
    thread.start()
    wait_for_service(config.socket_path, timeout=ready_timeout)
    # One sanity ping so callers start from a known-good connection.
    ServiceClient(config.socket_path).ping()
    return ServiceHandle(service, thread)
