"""Flow-as-a-service: content-addressed artifacts + an async daemon.

The per-process prepare LRU dies with the process; this package makes
preparation (and whole flow runs) durable and shareable:

* :mod:`repro.service.keys`   — canonical content-hash keys, the single
  definition of "same run" used by every cache in the repo;
* :mod:`repro.service.store`  — the on-disk artifact store (atomic
  writes, checksummed blobs, LRU size budget);
* :mod:`repro.service.stages` — store-backed prepare/flow execution,
  provably bit-identical to the cold path;
* :mod:`repro.service.daemon` — the asyncio unix-socket job server
  (FIFO queue, request dedup, per-request obs traces);
* :mod:`repro.service.client` — the blocking client the CLI verbs use.

``daemon``/``client``/``stages`` import flow machinery and are loaded
lazily by the CLI; importing this package pulls only the light key and
store layers.
"""

from repro.service.keys import (ContentKey, PrepareKeys, canonical,
                                factory_token, flow_key,
                                flow_summary_key, prepare_key,
                                prepare_stage_keys, tech_digest)
from repro.service.store import (ArtifactCorruptError, ArtifactStore,
                                 read_artifact)

__all__ = [
    "ArtifactCorruptError",
    "ArtifactStore",
    "ContentKey",
    "PrepareKeys",
    "canonical",
    "factory_token",
    "flow_key",
    "flow_summary_key",
    "prepare_key",
    "prepare_stage_keys",
    "read_artifact",
    "tech_digest",
]
