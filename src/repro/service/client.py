"""Blocking JSON-line client for the flow service socket.

Thin by design: one connection per request, stdlib ``socket`` only, so
the CLI verbs, tests and benchmark harnesses can talk to the daemon
without touching asyncio.  Thread-safe by construction (no shared
connection state), which is exactly what the concurrency suite needs
to hammer one daemon from many submitter threads.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Any, Optional

from repro.errors import FlowError

#: Flow runs can be minutes cold on the big fabrics.
DEFAULT_TIMEOUT_S = 900.0


class ServiceUnavailable(FlowError):
    """No daemon is answering on the socket."""


class ServiceClient:
    """Talk to a :class:`repro.service.daemon.FlowService`."""

    def __init__(self, socket_path: str,
                 timeout: float = DEFAULT_TIMEOUT_S):
        self.socket_path = str(socket_path)
        self.timeout = timeout

    def request(self, payload: dict) -> dict:
        """One request/response round trip; raises on transport
        failure, returns the (possibly ``ok=False``) response dict."""
        try:
            with socket.socket(socket.AF_UNIX,
                               socket.SOCK_STREAM) as sock:
                sock.settimeout(self.timeout)
                sock.connect(self.socket_path)
                sock.sendall(json.dumps(payload).encode() + b"\n")
                line = self._read_line(sock)
        except (OSError, socket.timeout) as exc:
            raise ServiceUnavailable(
                f"no flow service on {self.socket_path}: {exc}") from exc
        if not line:
            raise ServiceUnavailable(
                f"flow service on {self.socket_path} closed the "
                f"connection without answering")
        return json.loads(line)

    @staticmethod
    def _read_line(sock: socket.socket) -> bytes:
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
            if chunk.endswith(b"\n"):
                break
        return b"".join(chunks)

    # -- ops -----------------------------------------------------------------

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def status(self) -> dict:
        return self.request({"op": "status"})

    def health(self) -> dict:
        """Cheap liveness probe (no metrics snapshot attached)."""
        return self.request({"op": "health"})

    def metrics_prometheus(self) -> str:
        """The daemon's metrics as Prometheus text exposition."""
        response = self.request({"op": "metrics"})
        if not response.get("ok"):
            raise ServiceUnavailable(
                f"metrics op failed: {response.get('error')}")
        return response["text"]

    def shutdown(self) -> dict:
        return self.request({"op": "shutdown"})

    def submit_flow(self, benchmark: str, selector: str = "gnn",
                    seed: Optional[int] = None,
                    with_scan: bool = False,
                    dft_strategy: Optional[str] = None,
                    freq_mhz: Optional[float] = None,
                    workers: int = 1,
                    place_region_parallel: bool = False,
                    save_report: bool = False,
                    **extra: Any) -> dict:
        payload = {"op": "flow", "benchmark": benchmark,
                   "selector": selector, "seed": seed,
                   "with_scan": with_scan,
                   "dft_strategy": dft_strategy,
                   "freq_mhz": freq_mhz, "workers": workers,
                   "place_region_parallel": place_region_parallel,
                   "save_report": save_report}
        payload.update(extra)
        return self.request(payload)


def service_alive(socket_path: str, timeout: float = 2.0) -> bool:
    """True when a daemon answers ``ping`` on *socket_path*."""
    try:
        return bool(ServiceClient(socket_path, timeout=timeout)
                    .ping().get("ok"))
    except (ServiceUnavailable, ValueError):
        return False


def wait_for_service(socket_path: str, timeout: float = 30.0,
                     poll_s: float = 0.05) -> None:
    """Block until the daemon answers; raise on deadline."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if service_alive(socket_path, timeout=poll_s * 10):
            return
        time.sleep(poll_s)
    raise ServiceUnavailable(
        f"flow service on {socket_path} did not come up "
        f"within {timeout:.0f}s")
