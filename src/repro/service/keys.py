"""Canonical content-hash keys for flow artifacts.

Every cache in the repo — the in-process prepare LRU
(:func:`repro.core.flow.prepare_design_cached`), the per-process flow
memo (:func:`repro.harness.tables.run_benchmark_flow`) and the on-disk
:class:`repro.service.store.ArtifactStore` — derives its keys here, so
"what makes two runs the same" has exactly one definition.

A key digests *content*, never identity: the netlist factory (module
path + closure/default values + a code fingerprint covering bytecode,
constant pool, names and nested code objects), a SHA-256 over the
pickled :class:`~repro.design.TechSetup`, the experiment seed, and the
flow-config fields that can change results.  ``ParallelConfig`` is
deliberately excluded — worker counts change wall-clock, never output
(the equivalence suites lock that) — while ``place_region_parallel``
*is* keyed because region-parallel placement legitimately differs from
the serial joint solve.

Stage keys are prefix-shaped on purpose: ``generate``/``partition``
depend only on (factory, tech, seed), ``place`` adds the
region-parallel flag, and ``prepared`` adds target frequency + scan.
A frequency or scan sweep therefore shares the expensive placement
artifact across every cell of the sweep.

Objects the canonicalizer cannot fingerprint (ad-hoc test stand-ins,
closures over live designs) degrade to *unstable* keys: still unique
within the process — :func:`canonical` folds in ``id()`` and the
in-memory caches retain the object alongside the key so ids can never
be recycled into a collision — but refused by the persistent store.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json
import types
from dataclasses import dataclass
from typing import Any, Callable

from repro.parallel import dumps_snapshot

#: Bump to invalidate every previously-derived key (schema change in
#: what a key covers, not in the artifact payload format — the store
#: has its own version for that).  2: factory bytecode fingerprints
#: cover co_consts/co_names/co_freevars and nested code objects, not
#: co_code alone (constants are referenced by index, so a literal
#: edit used to leave co_code byte-identical).  3: the place stage key
#: covers the solver backend (cg placements differ within tolerance,
#: not bit-exactly), and the route ``batch_ms`` dispatch-sizing knob
#: is excluded as result-neutral.
KEY_SCHEMA_VERSION = 3


@dataclass(frozen=True)
class ContentKey:
    """One addressable artifact identity.

    ``stable`` is False when any input could only be fingerprinted by
    object identity — such keys work for in-memory memoization (the
    caches keep the object alive, pinning its id) but must never be
    persisted.
    """

    kind: str
    hexdigest: str
    stable: bool = True

    @property
    def short(self) -> str:
        return self.hexdigest[:12]

    def __str__(self) -> str:  # pragma: no cover - debug aid
        mark = "" if self.stable else "!unstable"
        return f"{self.kind}:{self.short}{mark}"


@dataclass(frozen=True)
class PrepareKeys:
    """Stage-artifact keys for one prepare chain (see module doc)."""

    generate: ContentKey       # Netlist
    partition: ContentKey      # TierAssignment (carries the netlist)
    place: ContentKey          # (Placement, Floorplan)
    prepared: ContentKey       # fully buffered Design

    @property
    def stable(self) -> bool:
        return self.prepared.stable


def canonical(obj: Any, unstable: list | None = None) -> Any:
    """JSON-ready canonical form of *obj*, deterministic across
    processes for the types keys are built from.

    Unrepresentable leaves become ``"@<type>:<id>"`` markers and flag
    *unstable* (a one-element-appended list used as an out-param).
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # json repr round-trips doubles exactly in CPython.
        return obj
    if isinstance(obj, (bytes, bytearray)):
        return {"__bytes__": hashlib.sha256(bytes(obj)).hexdigest()}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out: dict[str, Any] = {
            "__dataclass__":
                f"{type(obj).__module__}.{type(obj).__qualname__}"}
        for field in dataclasses.fields(obj):
            out[field.name] = canonical(getattr(obj, field.name), unstable)
        return out
    if isinstance(obj, (list, tuple)):
        return [canonical(item, unstable) for item in obj]
    if isinstance(obj, (set, frozenset)):
        members = [canonical(item, unstable) for item in obj]
        return {"__set__": sorted(members, key=lambda m: json.dumps(
            m, sort_keys=True, default=str))}
    if isinstance(obj, dict):
        return {"__dict__": sorted(
            ([canonical(k, unstable), canonical(v, unstable)]
             for k, v in obj.items()),
            key=lambda kv: json.dumps(kv[0], sort_keys=True, default=str))}
    # numpy scalars sneak into configs via arithmetic; unwrap them.
    item = getattr(obj, "item", None)
    if callable(item) and getattr(obj, "shape", None) == ():
        return canonical(obj.item(), unstable)
    if isinstance(obj, types.CodeType):
        return _code_fingerprint(obj, unstable)
    if callable(obj):
        return factory_token(obj, unstable)
    if unstable is not None:
        unstable.append(type(obj).__qualname__)
    return f"@{type(obj).__module__}.{type(obj).__qualname__}:{id(obj):x}"


def _code_fingerprint(code: types.CodeType,
                      unstable: list | None = None) -> Any:
    """Canonical content form of one code object.

    Bytecode references constants and names *by index*, so ``co_code``
    alone is blind to literal edits (``bandwidth=8`` -> ``16`` leaves
    it byte-identical).  The fingerprint therefore covers the constant
    pool, name tables and free variables too, recursing into nested
    code objects (inner functions, lambdas, comprehensions) found in
    ``co_consts``.
    """
    return {
        "__code__": hashlib.sha256(code.co_code).hexdigest(),
        "consts": [canonical(const, unstable)
                   for const in code.co_consts],
        "names": list(code.co_names),
        "freevars": list(code.co_freevars),
    }


def factory_token(fn: Callable, unstable: list | None = None) -> Any:
    """Content fingerprint of a netlist factory (or any callable).

    Precedence: an explicit ``__content_token__`` attribute (used e.g.
    by the Verilog-import factory, which hashes the file bytes);
    ``functools.partial`` recurses; plain functions fingerprint as
    module-qualified name + closure cell values + defaults + the
    :func:`_code_fingerprint` of their code object (bytecode, constant
    pool, names, free variables, nested code), so editing the factory
    body — including a bare literal — invalidates its keys.
    """
    token = getattr(fn, "__content_token__", None)
    if token is not None:
        return {"__factory_token__": str(token)}
    if isinstance(fn, functools.partial):
        return {"__partial__": factory_token(fn.func, unstable),
                "args": canonical(fn.args, unstable),
                "kwargs": canonical(fn.keywords, unstable)}
    bound = getattr(fn, "__self__", None)
    if bound is not None:
        return {"__method__": f"{getattr(fn, '__qualname__', '?')}",
                "self": canonical(bound, unstable)}
    out: dict[str, Any] = {
        "__factory__":
            f"{getattr(fn, '__module__', '?')}."
            f"{getattr(fn, '__qualname__', '?')}"}
    code = getattr(fn, "__code__", None)
    if code is not None:
        out["code"] = _code_fingerprint(code, unstable)
        cells = getattr(fn, "__closure__", None) or ()
        if cells:
            closure = {}
            for var, cell in zip(code.co_freevars, cells):
                try:
                    value = cell.cell_contents
                except ValueError:          # empty cell
                    value = "<empty>"
                closure[var] = canonical(value, unstable)
            out["closure"] = {"__dict__": sorted(
                ([k, v] for k, v in closure.items()),
                key=lambda kv: kv[0])}
        defaults = getattr(fn, "__defaults__", None)
        if defaults:
            out["defaults"] = canonical(defaults, unstable)
    elif not isinstance(fn, type):
        # Callable instance with opaque state: identity only.
        if unstable is not None:
            unstable.append(type(fn).__qualname__)
        out["instance"] = f"@{id(fn):x}"
    return out


def digest_key(kind: str, payload: Any) -> ContentKey:
    """Hash a canonical *payload* into a :class:`ContentKey`."""
    unstable: list = []
    value = canonical(payload, unstable)
    blob = json.dumps({"schema": KEY_SCHEMA_VERSION, "kind": kind,
                       "key": value},
                      sort_keys=True, default=str).encode("utf-8")
    return ContentKey(kind, hashlib.sha256(blob).hexdigest(),
                      stable=not unstable)


def tech_digest(tech) -> str:
    """SHA-256 over the pickled tech setup — equal-by-construction
    :class:`~repro.design.TechSetup` instances share one digest."""
    return hashlib.sha256(dumps_snapshot(tech)).hexdigest()


def _base(factory, tech, seeds) -> dict:
    return {"factory": factory, "tech": tech_digest(tech),
            "seed": int(seeds.seed)}


def prepare_stage_keys(factory, tech, seeds, config) -> PrepareKeys:
    """Keys for the four prepare artifacts of one flow configuration.

    *config* is a :class:`repro.core.flow.FlowConfig` (anything with
    the same field names works).  Only the fields each stage chain
    actually consumes participate — see the module docstring.
    """
    base = _base(factory, tech, seeds)
    place = dict(base,
                 region_parallel=bool(config.place_region_parallel),
                 solver=str(getattr(config, "place_solver", "direct")))
    prepared = dict(place,
                    freq_mhz=float(config.target_freq_mhz),
                    scan=bool(config.with_scan))
    return PrepareKeys(
        generate=digest_key("prepare.generate", base),
        partition=digest_key("prepare.partition", base),
        place=digest_key("prepare.place", place),
        prepared=digest_key("prepare.design", prepared),
    )


def prepare_key(factory, tech, seeds, config) -> ContentKey:
    """The fully-prepared-design key (what the prepare LRU uses)."""
    return prepare_stage_keys(factory, tech, seeds, config).prepared


#: FlowConfig fields excluded from flow keys: parallelism changes
#: wall-clock only (locked by the equivalence suites), never results.
_RESULT_NEUTRAL_CONFIG_FIELDS = frozenset({"parallel"})

#: RouteConfig fields excluded for the same reason: ``batch_ms`` only
#: sizes wavefront pool dispatches — the routing-invariant suite locks
#: trees/grid/stats bit-identical at any batch size.
_RESULT_NEUTRAL_ROUTE_FIELDS = frozenset({"batch_ms"})


def config_fingerprint(config) -> Any:
    """Canonical form of every result-relevant flow-config field."""
    out = {}
    for field in dataclasses.fields(config):
        if field.name in _RESULT_NEUTRAL_CONFIG_FIELDS:
            continue
        value = getattr(config, field.name)
        if field.name == "route" and dataclasses.is_dataclass(value):
            value = {f.name: getattr(value, f.name)
                     for f in dataclasses.fields(value)
                     if f.name not in _RESULT_NEUTRAL_ROUTE_FIELDS}
        out[field.name] = value
    return out


def flow_key(factory, tech, seeds, config) -> ContentKey:
    """Key of one complete flow run's :class:`FlowReport`."""
    payload = dict(_base(factory, tech, seeds),
                   config=config_fingerprint(config))
    return digest_key("flow.report", payload)


def flow_summary_key(factory, tech, seeds, config) -> ContentKey:
    """Key of the lightweight (row + digests) flow summary artifact."""
    payload = dict(_base(factory, tech, seeds),
                   config=config_fingerprint(config))
    return digest_key("flow.summary", payload)
