"""On-disk content-addressed artifact store.

Layout under one root directory::

    <root>/objects/<aa>/<kind>-<sha256>.bin    artifact blobs
    <root>/index.json                          schema + LRU bookkeeping
    <root>/tmp/                                staging for atomic writes

Each blob is a small header — magic, SHA-256 of the compressed
payload, payload length — followed by the zlib-compressed
:func:`repro.parallel.dumps_snapshot` pickle (the flat struct-of-arrays
format from the netlist core, so prepared MAERI-128 designs are ~1 MB).
Writes stage into ``tmp/`` and land via ``os.replace``; a crash at any
point leaves either no file or the complete old one, never a partial
artifact.  Reads verify the checksum and length: any corruption or
truncation is *detected, counted and treated as a miss* — the damaged
file is unlinked, never served.

The index tracks a monotone access sequence per entry; when the byte
budget overflows, least-recently-used artifacts are evicted.  A
missing, unreadable or schema-mismatched index is rebuilt by scanning
``objects/`` (artifacts are self-describing by filename).

Keys whose inputs could not be content-fingerprinted
(``ContentKey.stable == False``) are refused on both paths — an
identity-keyed artifact served to another process would be a lie.

Concurrency model: a process-local re-entrant lock guards index
mutation only — blob IO, checksumming and (un)pickling run outside it,
so daemon executor threads don't serialize on multi-MB payloads.
Recency touches are batched (flushed on put/eviction/corruption and
every :data:`TOUCH_FLUSH_INTERVAL` reads) instead of rewriting the
index per ``get``.  Across processes, every index write happens under
an advisory ``flock`` on ``index.lock`` and *merges* the on-disk view
first (adopting other writers' entries, dropping ones whose blobs were
evicted), so a CLI ``--store`` run and a live daemon sharing one root
cannot clobber each other's bookkeeping.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import struct
import zlib
from contextlib import contextmanager
from pathlib import Path
from threading import RLock
from typing import Any, Optional

try:
    import fcntl
except ImportError:              # pragma: no cover - non-POSIX
    fcntl = None

from repro.obs import get_logger, metrics, trace
from repro.parallel import dumps_snapshot, loads_snapshot
from repro.service.keys import ContentKey

log = get_logger("repro.service.store")

#: Artifact-container format version (pickled payload framing).
STORE_SCHEMA_VERSION = 1

#: Blob header: magic, sha256(compressed payload), payload byte length.
_MAGIC = b"RPRART01"
_HEADER = struct.Struct(f">{len(_MAGIC)}s32sQ")

#: Default size budget: enough for a few hundred prepared benchmark
#: designs at the ~1 MB flat-snapshot scale.
DEFAULT_BUDGET_BYTES = 2 << 30

#: zlib level: decompression speed is what warm paths pay; 6 buys
#: little over 3 here and costs 3x the compress time on 17 MB reports.
DEFAULT_COMPRESS_LEVEL = 3

#: Recency touches accumulated before the index is persisted on a
#: read-only path (puts/evictions flush immediately).  Losing up to
#: this many LRU-order updates in a crash only skews eviction order,
#: never correctness — blobs are self-validating.
TOUCH_FLUSH_INTERVAL = 64

_tmp_counter = itertools.count()


class ArtifactCorruptError(Exception):
    """Blob failed header, checksum or payload validation."""


def write_artifact_bytes(obj: Any, level: int = DEFAULT_COMPRESS_LEVEL
                         ) -> bytes:
    """Frame *obj* as one self-validating artifact blob."""
    payload = zlib.compress(dumps_snapshot(obj), level)
    header = _HEADER.pack(_MAGIC, hashlib.sha256(payload).digest(),
                          len(payload))
    return header + payload


def read_artifact_bytes(blob: bytes) -> Any:
    """Validate and unpickle one artifact blob.

    Raises :class:`ArtifactCorruptError` on any truncation, bit-flip
    or undecodable payload — callers turn that into a cache miss.
    """
    if len(blob) < _HEADER.size:
        raise ArtifactCorruptError(
            f"blob shorter than header ({len(blob)} bytes)")
    magic, digest, length = _HEADER.unpack_from(blob)
    if magic != _MAGIC:
        raise ArtifactCorruptError(f"bad magic {magic!r}")
    payload = blob[_HEADER.size:]
    if len(payload) != length:
        raise ArtifactCorruptError(
            f"payload length {len(payload)} != header {length}")
    if hashlib.sha256(payload).digest() != digest:
        raise ArtifactCorruptError("payload checksum mismatch")
    try:
        return loads_snapshot(zlib.decompress(payload))
    except Exception as exc:        # zlib.error, pickle errors, EOF...
        raise ArtifactCorruptError(f"payload undecodable: {exc!r}") \
            from exc


def read_artifact(path: str | Path) -> Any:
    """Read + validate one artifact file (e.g. a served report path)."""
    return read_artifact_bytes(Path(path).read_bytes())


class ArtifactStore:
    """Content-addressed persistent cache; see the module docstring."""

    def __init__(self, root: str | Path,
                 budget_bytes: int = DEFAULT_BUDGET_BYTES,
                 compress_level: int = DEFAULT_COMPRESS_LEVEL):
        self.root = Path(root)
        self.budget_bytes = int(budget_bytes)
        self.compress_level = int(compress_level)
        self._lock = RLock()
        self._objects = self.root / "objects"
        self._tmp = self.root / "tmp"
        self._index_path = self.root / "index.json"
        self._index_lock_path = self.root / "index.lock"
        self._objects.mkdir(parents=True, exist_ok=True)
        self._tmp.mkdir(parents=True, exist_ok=True)
        #: hexdigest -> {"kind", "size", "seq"}
        self._entries: dict[str, dict] = {}
        self._seq = 0
        self._dirty = False
        self._touches_since_flush = 0
        self._load_index()

    # -- index ---------------------------------------------------------------

    def _load_index(self) -> None:
        try:
            data = json.loads(self._index_path.read_text())
            if data.get("schema") != STORE_SCHEMA_VERSION:
                raise ValueError(f"index schema {data.get('schema')!r}")
            self._entries = dict(data["entries"])
            self._seq = max((e["seq"] for e in self._entries.values()),
                            default=0)
        except FileNotFoundError:
            self._rebuild_index(reason=None)
        except (ValueError, KeyError, TypeError, OSError) as exc:
            self._rebuild_index(reason=repr(exc))

    def _rebuild_index(self, reason: str | None) -> None:
        """Reconstruct bookkeeping by scanning ``objects/``."""
        if reason is not None:
            metrics.inc("store.index_rebuilds")
            log.warning(f"artifact index unusable ({reason}); "
                        f"rebuilding from object scan")
        self._entries = {}
        self._seq = 0
        for path in sorted(self._objects.glob("*/*.bin")):
            kind, _, hexdigest = path.stem.rpartition("-")
            if not kind or not hexdigest:
                continue
            self._entries[hexdigest] = {
                "kind": kind, "size": path.stat().st_size, "seq": 0}
        if self._entries or reason is not None:
            with self._ipc_lock():
                self._save_index()
        self._dirty = False
        self._touches_since_flush = 0

    @contextmanager
    def _ipc_lock(self):
        """Advisory inter-process lock serializing index writes.

        Blobs are content-addressed and written atomically, so only
        the index read-modify-write needs cross-process exclusion;
        without it two processes sharing one root (a CLI ``--store``
        run next to a live daemon) would last-writer-win each other's
        size/recency bookkeeping.
        """
        if fcntl is None:        # pragma: no cover - non-POSIX
            yield
            return
        fd = os.open(self._index_lock_path,
                     os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)

    def _flush_index(self) -> None:
        """Persist bookkeeping (caller holds the process lock): merge
        concurrent writers' on-disk view, then write atomically."""
        with self._ipc_lock():
            self._merge_index_from_disk()
            self._save_index()
        self._dirty = False
        self._touches_since_flush = 0

    def _merge_index_from_disk(self) -> None:
        """Fold another process's index state into ours (under the
        inter-process lock).  Entries only they know are adopted when
        the blob still exists; entries only we know are kept unless
        their blob is gone (the other side evicted it); shared entries
        take the freshest access sequence."""
        try:
            data = json.loads(self._index_path.read_text())
            if data.get("schema") != STORE_SCHEMA_VERSION:
                return
            disk = dict(data["entries"])
        except (FileNotFoundError, ValueError, KeyError,
                TypeError, OSError):
            return
        for hexdigest, entry in disk.items():
            ours = self._entries.get(hexdigest)
            if ours is None:
                if self._blob_path(hexdigest, entry["kind"]).exists():
                    self._entries[hexdigest] = dict(entry)
            else:
                ours["seq"] = max(ours["seq"], entry.get("seq", 0))
        for hexdigest in [h for h in self._entries if h not in disk]:
            entry = self._entries[hexdigest]
            if not self._blob_path(hexdigest, entry["kind"]).exists():
                del self._entries[hexdigest]
        self._seq = max([self._seq] + [e.get("seq", 0)
                                       for e in self._entries.values()])

    def _save_index(self) -> None:
        blob = json.dumps({"schema": STORE_SCHEMA_VERSION,
                           "entries": self._entries},
                          sort_keys=True).encode("utf-8")
        tmp = self._tmp / f"index-{os.getpid()}-{next(_tmp_counter)}"
        try:
            tmp.write_bytes(blob)
            os.replace(tmp, self._index_path)
        finally:
            tmp.unlink(missing_ok=True)

    # -- paths ---------------------------------------------------------------

    def object_path(self, key: ContentKey) -> Path:
        """Where *key*'s blob lives (exists only after a put)."""
        return self._blob_path(key.hexdigest, key.kind)

    def _blob_path(self, hexdigest: str, kind: str) -> Path:
        return self._objects / hexdigest[:2] / f"{kind}-{hexdigest}.bin"

    # -- operations ----------------------------------------------------------

    def get(self, key: ContentKey) -> Optional[Any]:
        """The stored object, or ``None`` on miss/corruption/unstable."""
        if not key.stable:
            metrics.inc("store.unstable_key_skips")
            return None
        path = self.object_path(key)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            metrics.inc("store.misses")
            metrics.inc(f"store.misses.{key.kind}")
            return None
        # Validation + unpickling run lock-free: the blob bytes are in
        # hand and immutable, so concurrent readers never serialize on
        # multi-MB payload work.
        with trace.span("store.get", kind=key.kind, key=key.short):
            try:
                obj = read_artifact_bytes(blob)
            except ArtifactCorruptError as exc:
                metrics.inc("store.corrupt")
                log.warning(f"corrupt artifact {key}: {exc}; "
                            f"dropping and treating as a miss")
                path.unlink(missing_ok=True)
                with self._lock:
                    self._entries.pop(key.hexdigest, None)
                    self._flush_index()
                metrics.inc("store.misses")
                metrics.inc(f"store.misses.{key.kind}")
                return None
        with self._lock:
            self._touch(key, len(blob))
        metrics.inc("store.hits")
        metrics.inc(f"store.hits.{key.kind}")
        return obj

    def _touch(self, key: ContentKey, size: int) -> None:
        """Refresh recency (caller holds the lock); persistence is
        batched — see :data:`TOUCH_FLUSH_INTERVAL`."""
        self._seq += 1
        entry = self._entries.setdefault(
            key.hexdigest, {"kind": key.kind, "size": size, "seq": 0})
        entry["seq"] = self._seq
        self._dirty = True
        self._touches_since_flush += 1
        if self._touches_since_flush >= TOUCH_FLUSH_INTERVAL:
            self._flush_index()

    def put(self, key: ContentKey, obj: Any) -> bool:
        """Persist *obj* under *key* atomically; False when refused."""
        if not key.stable:
            metrics.inc("store.unstable_key_skips")
            return False
        path = self.object_path(key)
        if path.exists():
            # Content-addressed: an existing blob is the same bytes;
            # just refresh recency.
            with self._lock:
                self._touch(key, path.stat().st_size)
            return True
        # Pickle + compress + write outside the lock; os.replace makes
        # the publish atomic even if another thread races the same key
        # (same content either way).
        with trace.span("store.put", kind=key.kind, key=key.short):
            blob = write_artifact_bytes(obj, self.compress_level)
            tmp = self._tmp / (f"put-{os.getpid()}"
                               f"-{next(_tmp_counter)}")
            try:
                with open(tmp, "wb") as fh:
                    fh.write(blob)
                    fh.flush()
                    os.fsync(fh.fileno())
                path.parent.mkdir(parents=True, exist_ok=True)
                os.replace(tmp, path)
            finally:
                tmp.unlink(missing_ok=True)
        with self._lock:
            self._touch(key, len(blob))
            self._evict(keep=key.hexdigest)
            self._flush_index()
            total = self.total_bytes()
        metrics.inc("store.puts")
        metrics.inc(f"store.puts.{key.kind}")
        metrics.set_gauge("store.bytes", total)
        return True

    def _evict(self, keep: str) -> None:
        """Drop least-recently-used entries until under budget (caller
        holds the lock and flushes the index afterwards)."""
        while self.total_bytes() > self.budget_bytes:
            victims = sorted(
                (entry["seq"], hexdigest)
                for hexdigest, entry in self._entries.items()
                if hexdigest != keep)
            if not victims:
                break
            _, hexdigest = victims[0]
            entry = self._entries.pop(hexdigest)
            self._blob_path(hexdigest, entry["kind"]).unlink(
                missing_ok=True)
            metrics.inc("store.evictions")
            log.debug(f"evicted {entry['kind']}:{hexdigest[:12]} "
                      f"({entry['size']} bytes)")
            self._dirty = True

    # -- introspection -------------------------------------------------------

    def contains(self, key: ContentKey) -> bool:
        return key.stable and self.object_path(key).exists()

    def total_bytes(self) -> int:
        return sum(e["size"] for e in self._entries.values())

    def stats(self) -> dict:
        with self._lock:
            kinds: dict[str, int] = {}
            for entry in self._entries.values():
                kinds[entry["kind"]] = kinds.get(entry["kind"], 0) + 1
            return {"root": str(self.root),
                    "entries": len(self._entries),
                    "bytes": self.total_bytes(),
                    "budget_bytes": self.budget_bytes,
                    "kinds": dict(sorted(kinds.items()))}

    def flush(self) -> None:
        """Persist any batched recency updates (daemon shutdown, end
        of a CLI invocation)."""
        with self._lock:
            if self._dirty:
                self._flush_index()

    def clear(self) -> None:
        """Drop every artifact (tests, ``service`` cache resets)."""
        with self._lock:
            for path in self._objects.glob("*/*.bin"):
                path.unlink(missing_ok=True)
            self._entries = {}
            self._flush_index()
