"""Store-backed flow execution: pure stages + content-addressed reuse.

The cold path is exactly :func:`repro.core.flow.prepare_design` /
:func:`repro.core.flow.run_flow` — same stage functions, same spans.
This module adds artifact lookups between stages:

* ``prepare.generate``  — the netlist;
* ``prepare.partition`` — the tier assignment (whose flat pickle
  carries the netlist, so one payload keeps identity consistent);
* ``prepare.place``     — (placement, floorplan), likewise carrying
  netlist + tiers;
* ``prepare.design``    — the fully buffered design;
* ``flow.report``       — the complete pickled :class:`FlowReport`;
* ``flow.summary``      — a small JSON-able row + digest dict, what
  the daemon answers warm requests from without unpickling megabytes.

Because stage keys are prefix-shaped (:mod:`repro.service.keys`), a
request that differs only in frequency or scan config still reuses the
placement artifact; a request that differs in nothing replays the
stored report, provably bit-identical to the cold run (pickle
round-trips are pinned by the golden-equivalence suite, and
:func:`report_digest` rides along in the summary for end-to-end
verification).
"""

from __future__ import annotations

import hashlib
import json
import time

from repro.core.flow import (FlowConfig, FlowReport, NetlistFactory,
                             _note_prepare_runtime, run_flow,
                             stage_finish, stage_generate,
                             stage_partition, stage_place)
from repro.design import Design, TechSetup
from repro.obs import metrics, trace
from repro.rng import SeedBundle
from repro.service.keys import (PrepareKeys, canonical, flow_key,
                                flow_summary_key, prepare_stage_keys)
from repro.service.store import ArtifactStore


def report_digest(report: FlowReport) -> str:
    """Stable digest of the observable flow outcome.

    Covers the table row, both STA summaries, the exact endpoint
    slacks and the requested/applied MLS sets — everything a client
    could act on.  Cold and warm runs of one key must agree on this
    (the daemon returns it with every flow response), so wall-clock
    columns (``runtime_min``) are excluded: two cold runs of one key
    are bit-identical in results, never in elapsed time.
    """
    row = {k: v for k, v in report.row().items()
           if k != "runtime_min"}
    h = hashlib.sha256()
    h.update(json.dumps(canonical(row), sort_keys=True,
                        default=str).encode())
    for sta in (report.baseline_sta, report.final_sta):
        h.update(f"|{sta.wns_ps!r}|{sta.tns_ns!r}|"
                 f"{sta.num_violating}".encode())
        for name, slack in sta.endpoint_slack.items():
            h.update(f"{name}={float(slack)!r};".encode())
    h.update(("|req:" + ",".join(sorted(report.requested_mls))).encode())
    h.update(("|app:" + ",".join(sorted(report.applied_mls))).encode())
    return h.hexdigest()


def report_summary(report: FlowReport, digest: str | None = None) -> dict:
    """The ``flow.summary`` artifact payload (JSON-able, tiny)."""
    return {
        "row": report.row(),
        "report_digest": digest or report_digest(report),
        "select_runtime_s": report.select_runtime_s,
        "runtime_s": report.runtime_s,
        "stage_runtime_s": dict(report.stage_runtime_s),
        "requested_mls": sorted(report.requested_mls),
        "applied_mls": sorted(report.applied_mls),
    }


def prepare_design_stored(factory: NetlistFactory, tech: TechSetup,
                          seeds: SeedBundle, config: FlowConfig,
                          store: ArtifactStore) -> Design:
    """Store-backed :func:`prepare_design`: resume from the deepest
    artifact hit, persist every stage boundary crossed."""
    keys = prepare_stage_keys(factory, tech, seeds, config)
    t0 = time.perf_counter()
    with trace.span("flow.prepare", stored=True):
        design = store.get(keys.prepared)
        if design is None:
            design = _build_prepared(factory, tech, seeds, config,
                                     keys, store)
            store.put(keys.prepared, design)
        else:
            metrics.inc("service.prepare_design_hits")
    _note_prepare_runtime(design, time.perf_counter() - t0)
    return design


def _build_prepared(factory: NetlistFactory, tech: TechSetup,
                    seeds: SeedBundle, config: FlowConfig,
                    keys: PrepareKeys, store: ArtifactStore) -> Design:
    placed = store.get(keys.place)
    if placed is not None:
        placement, floorplan = placed
        netlist, tiers = placement.netlist, placement.tiers
    else:
        tiers = store.get(keys.partition)
        if tiers is not None:
            netlist = tiers.netlist
        else:
            netlist = store.get(keys.generate)
            if netlist is None:
                netlist = stage_generate(factory, tech, seeds)
                store.put(keys.generate, netlist)
            tiers = stage_partition(netlist)
            store.put(keys.partition, tiers)
        placement, floorplan = stage_place(netlist, tiers, seeds, config)
        store.put(keys.place, (placement, floorplan))
    design = Design(netlist, tech, config.target_freq_mhz)
    design.tiers = tiers
    design.placement = placement
    design.floorplan = floorplan
    return stage_finish(design, config)


def run_flow_stored(factory: NetlistFactory, tech: TechSetup,
                    seeds: SeedBundle, config: FlowConfig,
                    store: ArtifactStore,
                    need_report: bool = True
                    ) -> tuple[FlowReport | None, dict, bool]:
    """Run (or replay) one flow through the store.

    Returns ``(report, summary, cached)``.  With ``need_report=False``
    a warm hit answers from the summary artifact alone — *report* is
    ``None`` and nothing megabyte-sized is unpickled; that is the
    daemon's fast path.  A cold run executes the full flow (with
    store-backed prepare, so even a cold *flow* may be a warm
    *prepare*) and persists both artifacts.
    """
    fkey = flow_key(factory, tech, seeds, config)
    skey = flow_summary_key(factory, tech, seeds, config)
    if not need_report:
        summary = store.get(skey)
        if summary is not None:
            metrics.inc("service.flow_summary_hits")
            return None, summary, True
    report = store.get(fkey)
    if report is not None:
        metrics.inc("service.flow_report_hits")
        summary = store.get(skey)
        if summary is None:     # e.g. the small artifact was evicted
            summary = report_summary(report)
            store.put(skey, summary)
        return report, summary, True
    metrics.inc("service.flow_computes")
    with trace.span("service.flow_compute", key=fkey.short):
        design = prepare_design_stored(factory, tech, seeds, config,
                                       store)
        report = run_flow(factory, tech, seeds, config, design=design)
    summary = report_summary(report)
    store.put(fkey, report)
    store.put(skey, summary)
    return report, summary, False


def flow_artifact_paths(factory: NetlistFactory, tech: TechSetup,
                        seeds: SeedBundle, config: FlowConfig,
                        store: ArtifactStore) -> dict[str, str]:
    """Filesystem locations of this flow's report + summary blobs
    (readable with :func:`repro.service.store.read_artifact`)."""
    return {
        "report": str(store.object_path(
            flow_key(factory, tech, seeds, config))),
        "summary": str(store.object_path(
            flow_summary_key(factory, tech, seeds, config))),
    }
