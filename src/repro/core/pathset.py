"""Timing-path datasets for pretraining and fine-tuning.

The paper pretrains DGI on unlabeled paths, then fine-tunes on ~500
STA-labeled paths per design.  :func:`build_dataset` extracts the K
worst paths, converts them (hypergraph fold), attaches oracle labels
to the requested subset, and fits the feature normalizer on the
training split.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.design import Design
from repro.errors import FlowError
from repro.core.features import NodeFeatureExtractor
from repro.core.hypergraph import PathGraph, build_path_graph
from repro.mls.oracle import NetLabel, oracle_labels
from repro.parallel import ParallelConfig, snapshot_map
from repro.route.router import GlobalRouter, RoutingResult
from repro.timing.paths import extract_worst_paths
from repro.timing.sta import TimingReport


@dataclass
class PathDataset:
    """Converted paths plus the fitted extractor and label map."""

    graphs: list[PathGraph]
    labeled_graphs: list[PathGraph]
    extractor: NodeFeatureExtractor
    net_labels: dict[str, NetLabel]
    _normalized: list[np.ndarray] | None = field(
        default=None, repr=False, compare=False)
    _normalized_by_id: dict[int, np.ndarray] = field(
        default_factory=dict, repr=False, compare=False)

    @property
    def num_nodes(self) -> int:
        return sum(g.depth for g in self.graphs)

    def normalized(self, graphs: list[PathGraph] | None = None
                   ) -> list[np.ndarray]:
        """Normalized feature matrices, computed once per graph.

        DGI pretraining, fine-tuning and batched inference all start
        from ``extractor.normalize(g.features)``; this caches the
        result for the dataset's own graphs (keyed by object identity,
        which is stable while ``self.graphs`` holds them) so the three
        legs share one precompute.  Graphs outside the dataset — e.g.
        fresh path sets from the refine loop — normalize on the fly.
        """
        if self._normalized is None:
            self._normalized = [self.extractor.normalize(g.features)
                                for g in self.graphs]
            self._normalized_by_id = {
                id(g): m for g, m in zip(self.graphs, self._normalized)}
        if graphs is None:
            return self._normalized
        out: list[np.ndarray] = []
        for g in graphs:
            cached = self._normalized_by_id.get(id(g))
            out.append(cached if cached is not None
                       else self.extractor.normalize(g.features))
        return out

    def label_balance(self) -> float:
        """Fraction of positive labels among labeled nodes."""
        pos = tot = 0
        for g in self.labeled_graphs:
            assert g.labels is not None
            pos += int(g.labels[g.decidable].sum())
            tot += int(g.decidable.sum())
        return pos / tot if tot else 0.0


def _graph_chunk(state, indices: list[int]) -> list[PathGraph]:
    """Worker: convert one chunk of extracted paths to PathGraphs."""
    extractor, paths = state
    return [build_path_graph(paths[i], extractor) for i in indices]


def build_dataset(design: Design, router: GlobalRouter,
                  result: RoutingResult, report: TimingReport,
                  num_paths: int = 2000, num_labeled: int = 500,
                  extra_features: bool = True,
                  parallel: ParallelConfig | None = None) -> PathDataset:
    """Extract, convert and label paths from the no-MLS baseline.

    The *num_labeled* worst paths get per-net oracle labels (paper:
    500 labeled paths per design); all *num_paths* feed DGI.

    With a multi-worker *parallel* config both heavy stages fan out:
    path-graph conversion over a pickled (extractor, paths) snapshot
    and the oracle label probes over the routed design snapshot.  The
    dataset is identical to a serial build.
    """
    if num_labeled > num_paths:
        raise FlowError("num_labeled cannot exceed num_paths")
    extractor = NodeFeatureExtractor(design, extra_features=extra_features)
    paths = extract_worst_paths(report, k=num_paths)
    if parallel is not None and parallel.should_parallelize(len(paths)):
        usable = [p for p in paths if len(p.stages()) >= 2]
        graphs = snapshot_map(_graph_chunk, range(len(usable)),
                              snapshot=(extractor, usable),
                              config=parallel)
    else:
        graphs = [build_path_graph(p, extractor) for p in paths
                  if len(p.stages()) >= 2]
    if not graphs:
        raise FlowError("no usable timing paths extracted")

    # Label the nets on the worst paths with the what-if oracle.
    labeled = graphs[:num_labeled]
    wanted: set[str] = set()
    for g in labeled:
        for name, ok in zip(g.net_names, g.decidable):
            if ok:
                wanted.add(name)
    nets = [design.netlist.net(n) for n in sorted(wanted)]
    labels = oracle_labels(design, router, result, nets=nets,
                           parallel=parallel)
    for g in labeled:
        g.labels = np.array(
            [1.0 if (name in labels and labels[name].helps) else 0.0
             for name in g.net_names], dtype=np.float64)

    matrix = np.vstack([g.features for g in graphs])
    extractor.fit_normalizer(matrix)
    return PathDataset(graphs=graphs, labeled_graphs=labeled,
                       extractor=extractor, net_labels=labels)
