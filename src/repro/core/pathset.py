"""Timing-path datasets for pretraining and fine-tuning.

The paper pretrains DGI on unlabeled paths, then fine-tunes on ~500
STA-labeled paths per design.  :func:`build_dataset` extracts the K
worst paths, converts them (hypergraph fold), attaches oracle labels
to the requested subset, and fits the feature normalizer on the
training split.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.design import Design
from repro.errors import FlowError
from repro.core.features import NodeFeatureExtractor
from repro.core.hypergraph import PathGraph, build_path_graph
from repro.mls.oracle import NetLabel, oracle_labels
from repro.parallel import ParallelConfig, snapshot_map
from repro.route.router import GlobalRouter, RoutingResult
from repro.timing.paths import extract_worst_paths
from repro.timing.sta import TimingReport


@dataclass
class PathDataset:
    """Converted paths plus the fitted extractor and label map."""

    graphs: list[PathGraph]
    labeled_graphs: list[PathGraph]
    extractor: NodeFeatureExtractor
    net_labels: dict[str, NetLabel]

    @property
    def num_nodes(self) -> int:
        return sum(g.depth for g in self.graphs)

    def label_balance(self) -> float:
        """Fraction of positive labels among labeled nodes."""
        pos = tot = 0
        for g in self.labeled_graphs:
            assert g.labels is not None
            pos += int(g.labels[g.decidable].sum())
            tot += int(g.decidable.sum())
        return pos / tot if tot else 0.0


def _graph_chunk(state, indices: list[int]) -> list[PathGraph]:
    """Worker: convert one chunk of extracted paths to PathGraphs."""
    extractor, paths = state
    return [build_path_graph(paths[i], extractor) for i in indices]


def build_dataset(design: Design, router: GlobalRouter,
                  result: RoutingResult, report: TimingReport,
                  num_paths: int = 2000, num_labeled: int = 500,
                  extra_features: bool = True,
                  parallel: ParallelConfig | None = None) -> PathDataset:
    """Extract, convert and label paths from the no-MLS baseline.

    The *num_labeled* worst paths get per-net oracle labels (paper:
    500 labeled paths per design); all *num_paths* feed DGI.

    With a multi-worker *parallel* config both heavy stages fan out:
    path-graph conversion over a pickled (extractor, paths) snapshot
    and the oracle label probes over the routed design snapshot.  The
    dataset is identical to a serial build.
    """
    if num_labeled > num_paths:
        raise FlowError("num_labeled cannot exceed num_paths")
    extractor = NodeFeatureExtractor(design, extra_features=extra_features)
    paths = extract_worst_paths(report, k=num_paths)
    if parallel is not None and parallel.should_parallelize(len(paths)):
        usable = [p for p in paths if len(p.stages()) >= 2]
        graphs = snapshot_map(_graph_chunk, range(len(usable)),
                              snapshot=(extractor, usable),
                              config=parallel)
    else:
        graphs = [build_path_graph(p, extractor) for p in paths
                  if len(p.stages()) >= 2]
    if not graphs:
        raise FlowError("no usable timing paths extracted")

    # Label the nets on the worst paths with the what-if oracle.
    labeled = graphs[:num_labeled]
    wanted: set[str] = set()
    for g in labeled:
        for name, ok in zip(g.net_names, g.decidable):
            if ok:
                wanted.add(name)
    nets = [design.netlist.net(n) for n in sorted(wanted)]
    labels = oracle_labels(design, router, result, nets=nets,
                           parallel=parallel)
    for g in labeled:
        g.labels = np.array(
            [1.0 if (name in labels and labels[name].helps) else 0.0
             for name in g.net_names], dtype=np.float64)

    matrix = np.vstack([g.features for g in graphs])
    extractor.fit_normalizer(matrix)
    return PathDataset(graphs=graphs, labeled_graphs=labeled,
                       extractor=extractor, net_labels=labels)
