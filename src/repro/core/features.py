"""Table II hand-crafted node features.

Each node of the converted hypergraph is a *driving pin* (cell output
or input port) with its net's features fused in:

====================  =====================================  ======
feature               description                            unit
====================  =====================================  ======
cell x, y             location of the driving cell           um
cell delay            delay of the driving cell at its load  ps
pin capacitance       capacitance load on the output pin     pF
wirelength            routed wirelength of the net           um
wire capacitance      extracted wire capacitance             pF
wire resistance       extracted wire resistance              ohm
====================  =====================================  ======

Plus two structural extras the simulator exposes for free (fanout and
a cross-tier flag); they are appended after the paper's six and can be
disabled for a faithful-ablation run.
"""

from __future__ import annotations


import numpy as np

from repro.design import Design
from repro.errors import FlowError
from repro.netlist.net import Net, Pin
from repro.timing.delay import PORT_DRIVE_RES, cell_output_delay
from repro.units import ff_to_pf

FEATURE_NAMES = (
    "cell_x_um",
    "cell_y_um",
    "cell_delay_ps",
    "pin_cap_pf",
    "wirelength_um",
    "wire_cap_pf",
    "wire_res_ohm",
    "fanout",
    "is_cross_tier",
)

#: Number of Table II features (the first seven columns).
NUM_PAPER_FEATURES = 7


class NodeFeatureExtractor:
    """Extracts and standardizes per-node feature vectors."""

    def __init__(self, design: Design, extra_features: bool = True):
        self.design = design
        self.extra = extra_features
        self.placement = design.require_placement()
        self.tiers = design.require_tiers()
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None

    @property
    def routing(self):
        """The design's *current* routing — re-read on every access so
        iterative refinement sees post-MLS parasitics."""
        return self.design.require_routing()

    @property
    def dim(self) -> int:
        return len(FEATURE_NAMES) if self.extra else NUM_PAPER_FEATURES

    def raw_features(self, driver: Pin, net: Net) -> np.ndarray:
        """Unnormalized feature vector for one (driver, net) node."""
        if not driver.drives:
            raise FlowError(f"{driver.full_name} is not a driving pin")
        loc = self.placement.of_pin(driver)
        rc = self.routing.rc.get(net.name)
        if rc is not None:
            load_ff = rc.load_ff
            wirelength = rc.wirelength_um
            wire_cap = rc.wire_cap_ff
            wire_res = rc.wire_res_ohm
        else:
            load_ff = net.sink_cap_ff()
            wirelength = wire_cap = wire_res = 0.0
        if driver.owner is not None:
            delay = cell_output_delay(driver.owner.cell, load_ff)
        else:
            delay = PORT_DRIVE_RES * load_ff / 1000.0
        vec = [
            loc.x,
            loc.y,
            delay,
            ff_to_pf(load_ff),
            wirelength,
            ff_to_pf(wire_cap),
            wire_res,
        ]
        if self.extra:
            vec.append(float(net.fanout))
            vec.append(1.0 if self.tiers.is_cross_tier(net) else 0.0)
        return np.array(vec, dtype=np.float64)

    def fit_normalizer(self, matrix: np.ndarray) -> None:
        """Fit standardization stats on the training feature matrix."""
        if matrix.ndim != 2 or matrix.shape[1] != self.dim:
            raise FlowError(
                f"expected (N, {self.dim}) features, got {matrix.shape}")
        self._mean = matrix.mean(axis=0)
        std = matrix.std(axis=0)
        std[std < 1e-9] = 1.0
        self._std = std

    def normalize(self, matrix: np.ndarray) -> np.ndarray:
        if self._mean is None or self._std is None:
            raise FlowError("normalizer not fitted — call fit_normalizer")
        return (matrix - self._mean) / self._std
