"""Hypergraph-to-node conversion of timing paths (Section III-B).

A multi-pin net is a hyperedge; folding it onto its single source
(the driving output pin) turns net-level MLS decisions into *node*
decisions and lets edge features ride along as node features
(Figure 5).  A :class:`PathGraph` is one timing path after that
conversion: an ordered node sequence, each node a (driver pin, net)
pair with a fused feature vector.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FlowError
from repro.core.features import NodeFeatureExtractor
from repro.timing.paths import TimingPath


@dataclass
class PathGraph:
    """One converted timing path.

    ``net_names[i]`` is the net folded into node i; ``features`` is
    the raw (unnormalized) feature matrix, shape (depth, dim);
    ``decidable[i]`` marks nodes whose net is a 2-D net the MLS
    decision applies to (cross-tier and clock nets are not MLS
    candidates).
    """

    endpoint: str
    slack_ps: float
    net_names: list[str]
    features: np.ndarray
    decidable: np.ndarray                 # bool per node
    labels: np.ndarray | None = None      # optional binary targets

    @property
    def depth(self) -> int:
        return len(self.net_names)

    def __post_init__(self) -> None:
        if self.features.shape[0] != len(self.net_names):
            raise FlowError("feature rows must match node count")
        if self.decidable.shape[0] != len(self.net_names):
            raise FlowError("decidable mask must match node count")


def build_path_graph(path: TimingPath,
                     extractor: NodeFeatureExtractor) -> PathGraph:
    """Convert one STA path into a node-centric :class:`PathGraph`."""
    tiers = extractor.tiers
    net_names: list[str] = []
    rows: list[np.ndarray] = []
    decidable: list[bool] = []
    for driver, net in path.stages():
        net_names.append(net.name)
        rows.append(extractor.raw_features(driver, net))
        decidable.append(not tiers.is_cross_tier(net))
    if not net_names:
        raise FlowError(f"path to {path.endpoint} has no stages")
    return PathGraph(
        endpoint=path.endpoint,
        slack_ps=path.slack_ps,
        net_names=net_names,
        features=np.vstack(rows),
        decidable=np.array(decidable, dtype=bool),
    )
