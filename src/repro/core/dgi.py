"""Deep Graph Infomax pretraining (Section III-C, Algorithm 1).

For each timing-path graph: compute node embeddings v with the Graph
Transformer, a global summary g(Y) by mean readout, and corrupted
embeddings v* from a feature-shuffled copy C(Y) (negative sampling by
perturbing node features).  A bilinear discriminator scores <v, W g>;
the loss pushes true node/summary pairs toward 1 and corrupted pairs
toward 0 through the sigmoid of Eq. 3.
"""

from __future__ import annotations

import numpy as np

from repro.core.encoder import GraphTransformer
from repro.core.hypergraph import PathGraph
from repro.nn.functional import dgi_loss
from repro.nn.init import xavier_uniform
from repro.nn.layers import Module
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor


class DGIPretrainer(Module):
    """Owns the bilinear discriminator; trains a given encoder."""

    def __init__(self, encoder: GraphTransformer,
                 rng: np.random.Generator):
        self.encoder = encoder
        dim = encoder.config.d_model
        self.discriminator = Tensor.param(
            xavier_uniform(rng, dim, dim), name="dgi.W")
        self._rng = rng

    def corrupt(self, features: np.ndarray) -> np.ndarray:
        """Negative sample: row-shuffle + mild feature noise."""
        perm = self._rng.permutation(features.shape[0])
        noisy = features[perm].copy()
        noisy += self._rng.normal(scale=0.1, size=noisy.shape)
        return noisy

    def loss_for(self, normalized: np.ndarray) -> Tensor:
        """DGI loss of one path graph's normalized feature matrix."""
        pos = self.encoder(Tensor(normalized))
        summary = pos.mean(axis=0, keepdims=True).tanh()    # (1, D)
        neg = self.encoder(Tensor(self.corrupt(normalized)))
        pos_scores = (pos @ self.discriminator) @ summary.transpose(1, 0)
        neg_scores = (neg @ self.discriminator) @ summary.transpose(1, 0)
        return dgi_loss(pos_scores, neg_scores)

    def pretrain(self, graphs: list[PathGraph], normalize,
                 epochs: int = 5, lr: float = 1e-3,
                 log=None) -> list[float]:
        """Run DGI over *graphs*; returns per-epoch mean losses.

        *normalize* maps a raw feature matrix to model inputs (the
        dataset extractor's transform).
        """
        optimizer = Adam(self.parameters(), lr=lr)
        history: list[float] = []
        mats = [normalize(g.features) for g in graphs]
        for epoch in range(epochs):
            order = self._rng.permutation(len(mats))
            total = 0.0
            for idx in order:
                loss = self.loss_for(mats[int(idx)])
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                total += float(loss.data)
            mean = total / max(len(mats), 1)
            history.append(mean)
            if log is not None:
                log(f"DGI epoch {epoch}: loss {mean:.4f}")
        return history
