"""Deep Graph Infomax pretraining (Section III-C, Algorithm 1).

For each timing-path graph: compute node embeddings v with the Graph
Transformer, a global summary g(Y) by mean readout, and corrupted
embeddings v* from a feature-shuffled copy C(Y) (negative sampling by
perturbing node features).  A bilinear discriminator scores <v, W g>;
the loss pushes true node/summary pairs toward 1 and corrupted pairs
toward 0 through the sigmoid of Eq. 3.

Training runs over zero-padded (B, L, D) minibatches by default —
corruption is still drawn per graph in visit order, the summary
readout and score means are masked so padding contributes exact zeros,
and one optimizer step covers the batch.  ``batch_size=1`` with
``vectorized=False`` retains the per-graph reference loop unchanged
(same math, same RNG draw sequence).
"""

from __future__ import annotations

import numpy as np

from repro.core.batching import (length_bucketed_batches, pad_batch)
from repro.core.encoder import GraphTransformer
from repro.core.hypergraph import PathGraph
from repro.nn.functional import dgi_loss, masked_dgi_loss, masked_mean
from repro.nn.init import xavier_uniform
from repro.nn.layers import Module
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.obs import metrics, trace


class DGIPretrainer(Module):
    """Owns the bilinear discriminator; trains a given encoder."""

    def __init__(self, encoder: GraphTransformer,
                 rng: np.random.Generator):
        self.encoder = encoder
        dim = encoder.config.d_model
        self.discriminator = Tensor.param(
            xavier_uniform(rng, dim, dim), name="dgi.W")
        self._rng = rng

    def corrupt(self, features: np.ndarray) -> np.ndarray:
        """Negative sample: row-shuffle + mild feature noise."""
        perm = self._rng.permutation(features.shape[0])
        noisy = features[perm].copy()
        noisy += self._rng.normal(scale=0.1, size=noisy.shape)
        return noisy

    def loss_for(self, normalized: np.ndarray) -> Tensor:
        """DGI loss of one path graph's normalized feature matrix."""
        pos = self.encoder(Tensor(normalized))
        summary = pos.mean(axis=0, keepdims=True).tanh()    # (1, D)
        neg = self.encoder(Tensor(self.corrupt(normalized)))
        pos_scores = (pos @ self.discriminator) @ summary.transpose(1, 0)
        neg_scores = (neg @ self.discriminator) @ summary.transpose(1, 0)
        return dgi_loss(pos_scores, neg_scores)

    def loss_for_batch(self, mats: list[np.ndarray]) -> Tensor:
        """DGI loss of one padded minibatch of feature matrices.

        Corruption draws per graph in list order — the same RNG call
        sequence the per-graph path consumes — then both the clean and
        corrupted batches run one masked (B, L, D) forward each.
        """
        batch, mask = pad_batch(mats)
        corrupt, _ = pad_batch([self.corrupt(m) for m in mats])
        pos = self.encoder(Tensor(batch), mask)
        summary = masked_mean(pos, mask, axis=1).tanh()      # (B, D)
        summary = summary.reshape(len(mats), 1,
                                  self.encoder.config.d_model)
        neg = self.encoder(Tensor(corrupt), mask)
        pos_scores = ((pos @ self.discriminator) * summary).sum(axis=-1)
        neg_scores = ((neg @ self.discriminator) * summary).sum(axis=-1)
        return masked_dgi_loss(pos_scores, neg_scores, mask)

    def pretrain(self, graphs: list[PathGraph], normalize,
                 epochs: int = 5, lr: float = 1e-3,
                 log=None, batch_size: int = 1,
                 vectorized: bool = True,
                 mats: list[np.ndarray] | None = None) -> list[float]:
        """Run DGI over *graphs*; returns per-epoch mean losses.

        *normalize* maps a raw feature matrix to model inputs (the
        dataset extractor's transform); pass *mats* to reuse matrices
        the caller already normalized.  ``batch_size`` graphs share
        one forward/backward and optimizer step; ``vectorized=False``
        computes the identical minibatch loss with per-graph forwards
        and gradient accumulation (the reference implementation —
        with ``batch_size=1`` exactly the historical per-graph loop).
        """
        optimizer = Adam(self.parameters(), lr=lr)
        history: list[float] = []
        if mats is None:
            mats = [normalize(g.features) for g in graphs]
        lengths = np.array([m.shape[0] for m in mats], dtype=np.int64)
        use_padded = vectorized and batch_size > 1
        for epoch in range(epochs):
            order = self._rng.permutation(len(mats))
            batches = length_bucketed_batches(
                lengths, order, batch_size,
                rng=self._rng if batch_size > 1 else None)
            total = 0.0
            with trace.span("select.dgi.epoch", epoch=epoch,
                            batches=len(batches)) as span:
                for batch_idx in batches:
                    if use_padded:
                        loss = self.loss_for_batch(
                            [mats[int(i)] for i in batch_idx])
                        optimizer.zero_grad()
                        loss.backward()
                        optimizer.step()
                        total += float(loss.data) * len(batch_idx)
                    else:
                        optimizer.zero_grad()
                        seed = 1.0 / len(batch_idx)
                        for idx in batch_idx:
                            loss = self.loss_for(mats[int(idx)])
                            loss.backward(
                                np.full_like(loss.data, seed))
                            total += float(loss.data)
                        optimizer.step()
                mean = total / max(len(mats), 1)
                span.set(loss=round(mean, 6))
            metrics.observe("select.dgi.epoch_loss", mean)
            metrics.inc("select.dgi.batches", len(batches))
            history.append(mean)
            if log is not None:
                log(f"DGI epoch {epoch}: loss {mean:.4f}")
        return history
