"""The 2-layer MLP decision head (Algorithm 1, fine-tuning stage).

Maps each DGI-pretrained node embedding to the binary MLS decision
delta(n_i).
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import MLP, Module
from repro.nn.tensor import Tensor


class DecisionHead(Module):
    """MLP: d_model -> hidden -> 1 logit per node."""

    def __init__(self, d_model: int, hidden: int,
                 rng: np.random.Generator):
        self.mlp = MLP(d_model, hidden, 1, rng, name="head")

    def __call__(self, embeddings: Tensor) -> Tensor:
        return self.mlp(embeddings)

    def probabilities(self, embeddings: Tensor) -> np.ndarray:
        """Inference: per-node MLS probability."""
        return self(embeddings).sigmoid().data[:, 0]
