"""GNN-MLS: the paper's contribution.

Hypergraph-to-node conversion with feature fusion (Section III-B,
Table II), a 3-layer / 3-head Graph Transformer over timing paths with
positional encodings (Section III-C), Deep Graph Infomax pretraining
(Eq. 3, Algorithm 1), a 2-layer MLP fine-tuned on STA labels, per-net
MLS decisions, and the end-to-end design flow of Figure 4.
"""

from repro.core.features import NodeFeatureExtractor, FEATURE_NAMES
from repro.core.hypergraph import PathGraph, build_path_graph
from repro.core.pathset import PathDataset, build_dataset
from repro.core.encoder import GraphTransformer, EncoderConfig
from repro.core.dgi import DGIPretrainer
from repro.core.classifier import DecisionHead
from repro.core.trainer import GnnMlsModel, TrainConfig, train_gnn_mls
from repro.core.decide import decide_mls_nets
from repro.core.flow import FlowConfig, FlowReport, run_flow

__all__ = [
    "NodeFeatureExtractor",
    "FEATURE_NAMES",
    "PathGraph",
    "build_path_graph",
    "PathDataset",
    "build_dataset",
    "GraphTransformer",
    "EncoderConfig",
    "DGIPretrainer",
    "DecisionHead",
    "GnnMlsModel",
    "TrainConfig",
    "train_gnn_mls",
    "decide_mls_nets",
    "FlowConfig",
    "FlowReport",
    "run_flow",
]
