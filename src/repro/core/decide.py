"""Turning model scores into the MLS net set."""

from __future__ import annotations

from repro.core.hypergraph import PathGraph
from repro.core.trainer import GnnMlsModel

#: Default decision threshold on the aggregated net probability.
DEFAULT_THRESHOLD = 0.5


def decide_mls_nets(model: GnnMlsModel,
                    graphs: list[PathGraph] | None = None,
                    threshold: float = DEFAULT_THRESHOLD) -> set[str]:
    """Nets the GNN selects for Metal Layer Sharing.

    *graphs* defaults to every path in the model's dataset — nets that
    never appear on an extracted timing path stay un-shared (they are
    timing-irrelevant, so sharing them cannot improve slack and only
    consumes the shared resource).
    """
    graphs = graphs if graphs is not None else model.dataset.graphs
    probs = model.net_probabilities(graphs)
    return {name for name, p in probs.items() if p >= threshold}
