"""Training orchestration (Algorithm 1).

Stage 1: DGI pretraining of the Graph Transformer on all extracted
paths (unlabeled).  Stage 2: supervised fine-tuning of the 2-layer
MLP head — and, with a reduced learning rate, the encoder — on the
oracle-labeled paths.  Loss is masked to *decidable* nodes (2-D nets)
and positively re-weighted for the label imbalance.

Both stages and inference run over zero-padded (B, L, D) minibatches
by default (``TrainConfig.batch_size``): graphs are length-bucketed
per epoch from the shuffle the ``finetune``/``dgi`` seed streams draw,
padding rows contribute exact zeros through the masked attention/
reduction stack, and one optimizer step covers each batch.  Two
escape hatches recover the historical behavior: ``batch_size=1``
reproduces the per-graph schedule exactly, and ``vectorized=False``
computes the *same* minibatch loss with per-graph forwards and
gradient accumulation — the reference implementation the equivalence
tests and ``benchmarks/bench_select.py`` gate against.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.core.batching import (length_bucketed_batches, pad_batch,
                                 pad_rows)
from repro.core.classifier import DecisionHead
from repro.core.dgi import DGIPretrainer
from repro.core.encoder import EncoderConfig, GraphTransformer
from repro.core.hypergraph import PathGraph
from repro.core.pathset import PathDataset
from repro.errors import TrainingError
from repro.nn.functional import (binary_cross_entropy_with_logits,
                                 masked_bce_with_logits)
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.obs import metrics, trace
from repro.rng import SeedBundle


@dataclass(frozen=True)
class TrainConfig:
    """Hyper-parameters for both stages."""

    encoder: EncoderConfig = field(default_factory=EncoderConfig)
    head_hidden: int = 32
    dgi_epochs: int = 4
    dgi_lr: float = 1e-3
    finetune_epochs: int = 12
    finetune_lr: float = 2e-3
    encoder_finetune_lr: float = 2e-4
    use_dgi: bool = True           # ablation knob
    #: Graphs per padded minibatch (forward/backward/optimizer step).
    #: 1 retains the per-graph reference schedule exactly.
    batch_size: int = 16
    #: False routes every minibatch through per-graph forwards with
    #: gradient accumulation instead of the padded (B, L, D) kernels —
    #: same math within float tolerance, the benchmark's reference leg.
    vectorized: bool = True

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")


class GnnMlsModel:
    """Encoder + head + the dataset's normalizer, ready for inference."""

    def __init__(self, encoder: GraphTransformer, head: DecisionHead,
                 dataset: PathDataset, config: TrainConfig):
        self.encoder = encoder
        self.head = head
        self.dataset = dataset
        self.config = config
        self.history: dict[str, list[float]] = {}

    def node_probabilities(self, graph: PathGraph) -> np.ndarray:
        """Per-node MLS probability for one path graph."""
        normalized = self.dataset.extractor.normalize(graph.features)
        embeddings = self.encoder(Tensor(normalized))
        return self.head.probabilities(embeddings)

    def _node_probabilities_all(self, graphs: list[PathGraph]
                                ) -> list[np.ndarray]:
        """Per-node probabilities for every graph, batched when the
        config allows; the returned list aligns with *graphs*."""
        if not (self.config.vectorized and self.config.batch_size > 1):
            return [self.node_probabilities(g) for g in graphs]
        mats = self.dataset.normalized(graphs)
        lengths = np.array([m.shape[0] for m in mats], dtype=np.int64)
        batches = length_bucketed_batches(
            lengths, np.arange(len(mats), dtype=np.int64),
            self.config.batch_size)
        out: list[np.ndarray | None] = [None] * len(mats)
        for batch_idx in batches:
            batch, mask = pad_batch([mats[int(i)] for i in batch_idx])
            logits = self.head(self.encoder(Tensor(batch), mask))
            probs = logits.sigmoid().data[:, :, 0]
            for row, idx in enumerate(batch_idx):
                out[int(idx)] = probs[row, : lengths[int(idx)]]
        return out

    def net_probabilities(self, graphs: list[PathGraph]
                          ) -> dict[str, float]:
        """Aggregate node probabilities per net (mean over paths).

        A net can appear on many paths; averaging its per-occurrence
        scores is the consensus rule the decision stage thresholds.
        The forward runs over length-bucketed padded batches and the
        per-net mean is gathered with index arrays — the float sums
        visit occurrences in the same order the per-graph dict loop
        did, so the aggregation itself is exact.
        """
        with trace.span("select.infer", graphs=len(graphs)) as span:
            probs_per_graph = self._node_probabilities_all(graphs)
            index: dict[str, int] = {}
            ids = np.empty(sum(g.depth for g in graphs), dtype=np.int64)
            pos = 0
            for graph in graphs:
                for name in graph.net_names:
                    ids[pos] = index.setdefault(name, len(index))
                    pos += 1
            if not index:
                return {}
            flat_p = np.concatenate(probs_per_graph) \
                if probs_per_graph else np.empty(0)
            flat_ok = np.concatenate([g.decidable for g in graphs])
            totals = np.zeros(len(index))
            counts = np.zeros(len(index), dtype=np.int64)
            np.add.at(totals, ids[flat_ok], flat_p[flat_ok])
            np.add.at(counts, ids[flat_ok], 1)
            span.set(nets=len(index))
            metrics.inc("select.infer.graphs", len(graphs))
            return {name: totals[i] / counts[i]
                    for name, i in index.items() if counts[i]}


def _finetune(dataset: PathDataset, encoder: GraphTransformer,
              head: DecisionHead, config: TrainConfig,
              rng_ft: np.random.Generator, pos_weight: float,
              log=None) -> list[float]:
    """The supervised stage; returns per-epoch mean losses."""
    head_opt = Adam(head.parameters(), lr=config.finetune_lr)
    enc_opt = Adam(encoder.parameters(), lr=config.encoder_finetune_lr)
    graphs = dataset.labeled_graphs
    mats = dataset.normalized(graphs)
    lengths = np.array([m.shape[0] for m in mats], dtype=np.int64)
    use_padded = config.vectorized and config.batch_size > 1
    losses: list[float] = []
    for epoch in range(config.finetune_epochs):
        order = rng_ft.permutation(len(mats))
        batches = length_bucketed_batches(
            lengths, order, config.batch_size,
            rng=rng_ft if config.batch_size > 1 else None)
        total = 0.0
        used = 0
        with trace.span("select.finetune.epoch", epoch=epoch,
                        batches=len(batches)) as span:
            for batch_idx in batches:
                picked = [graphs[int(i)] for i in batch_idx]
                valid = [g for g in picked if g.decidable.any()]
                if not valid:
                    continue
                head_opt.zero_grad()
                enc_opt.zero_grad()
                if use_padded:
                    feats = [mats[int(i)] for i in batch_idx]
                    batch, mask = pad_batch(feats)
                    length = batch.shape[1]
                    labels = pad_rows([g.labels for g in picked], length)
                    dec = pad_rows([g.decidable for g in picked],
                                   length, dtype=bool)
                    emb = encoder(Tensor(batch), mask)
                    logits = head(emb).reshape(len(picked), length)
                    loss = masked_bce_with_logits(
                        logits, labels, dec & mask,
                        pos_weight=pos_weight)
                    loss.backward()
                    total += float(loss.data) * len(valid)
                else:
                    seed = 1.0 / len(valid)
                    for idx in batch_idx:
                        graph = graphs[int(idx)]
                        assert graph.labels is not None
                        gmask = graph.decidable
                        if not gmask.any():
                            continue
                        embeddings = encoder(Tensor(mats[int(idx)]))
                        logits = head(embeddings)[gmask]
                        targets = Tensor(graph.labels[gmask][:, None])
                        loss = binary_cross_entropy_with_logits(
                            logits, targets, pos_weight=pos_weight)
                        loss.backward(np.full_like(loss.data, seed))
                        total += float(loss.data)
                head_opt.step()
                enc_opt.step()
                used += len(valid)
            mean = total / max(used, 1)
            span.set(loss=round(mean, 6))
        metrics.observe("select.finetune.epoch_loss", mean)
        metrics.inc("select.finetune.batches", len(batches))
        losses.append(mean)
        if log is not None:
            log(f"fine-tune epoch {epoch}: loss {mean:.4f}")
    return losses


def train_gnn_mls(dataset: PathDataset, seeds: SeedBundle,
                  config: TrainConfig | None = None,
                  log=None) -> GnnMlsModel:
    """Run Algorithm 1 on *dataset*; returns the trained model."""
    config = config or TrainConfig()
    if not dataset.labeled_graphs:
        raise TrainingError("dataset has no labeled paths to fine-tune on")
    enc_cfg = config.encoder
    if enc_cfg.in_dim != dataset.extractor.dim:
        enc_cfg = dataclasses.replace(enc_cfg,
                                      in_dim=dataset.extractor.dim)
    rng = seeds.fresh("gnn-init")
    encoder = GraphTransformer(enc_cfg, rng)
    head = DecisionHead(enc_cfg.d_model, config.head_hidden, rng)
    model = GnnMlsModel(encoder, head, dataset, config)

    if config.use_dgi:
        pretrainer = DGIPretrainer(encoder, seeds.fresh("dgi"))
        model.history["dgi"] = pretrainer.pretrain(
            dataset.graphs, dataset.extractor.normalize,
            epochs=config.dgi_epochs, lr=config.dgi_lr, log=log,
            batch_size=config.batch_size,
            vectorized=config.vectorized,
            mats=dataset.normalized())

    # Fine-tune: head at full LR, encoder at a reduced LR.
    balance = dataset.label_balance()
    pos_weight = min(10.0, (1.0 - balance) / max(balance, 0.02))
    model.history["finetune"] = _finetune(
        dataset, encoder, head, config, seeds.fresh("finetune"),
        pos_weight, log=log)
    return model
