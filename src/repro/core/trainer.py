"""Training orchestration (Algorithm 1).

Stage 1: DGI pretraining of the Graph Transformer on all extracted
paths (unlabeled).  Stage 2: supervised fine-tuning of the 2-layer
MLP head — and, with a reduced learning rate, the encoder — on the
oracle-labeled paths.  Loss is masked to *decidable* nodes (2-D nets)
and positively re-weighted for the label imbalance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.classifier import DecisionHead
from repro.core.dgi import DGIPretrainer
from repro.core.encoder import EncoderConfig, GraphTransformer
from repro.core.hypergraph import PathGraph
from repro.core.pathset import PathDataset
from repro.errors import TrainingError
from repro.nn.functional import binary_cross_entropy_with_logits
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.rng import SeedBundle


@dataclass(frozen=True)
class TrainConfig:
    """Hyper-parameters for both stages."""

    encoder: EncoderConfig = field(default_factory=EncoderConfig)
    head_hidden: int = 32
    dgi_epochs: int = 4
    dgi_lr: float = 1e-3
    finetune_epochs: int = 12
    finetune_lr: float = 2e-3
    encoder_finetune_lr: float = 2e-4
    use_dgi: bool = True           # ablation knob


class GnnMlsModel:
    """Encoder + head + the dataset's normalizer, ready for inference."""

    def __init__(self, encoder: GraphTransformer, head: DecisionHead,
                 dataset: PathDataset, config: TrainConfig):
        self.encoder = encoder
        self.head = head
        self.dataset = dataset
        self.config = config
        self.history: dict[str, list[float]] = {}

    def node_probabilities(self, graph: PathGraph) -> np.ndarray:
        """Per-node MLS probability for one path graph."""
        normalized = self.dataset.extractor.normalize(graph.features)
        embeddings = self.encoder(Tensor(normalized))
        return self.head.probabilities(embeddings)

    def net_probabilities(self, graphs: list[PathGraph]
                          ) -> dict[str, float]:
        """Aggregate node probabilities per net (mean over paths).

        A net can appear on many paths; averaging its per-occurrence
        scores is the consensus rule the decision stage thresholds.
        """
        total: dict[str, float] = {}
        count: dict[str, int] = {}
        for graph in graphs:
            probs = self.node_probabilities(graph)
            for name, p, ok in zip(graph.net_names, probs, graph.decidable):
                if not ok:
                    continue
                total[name] = total.get(name, 0.0) + float(p)
                count[name] = count.get(name, 0) + 1
        return {name: total[name] / count[name] for name in total}


def train_gnn_mls(dataset: PathDataset, seeds: SeedBundle,
                  config: TrainConfig | None = None,
                  log=None) -> GnnMlsModel:
    """Run Algorithm 1 on *dataset*; returns the trained model."""
    config = config or TrainConfig()
    if not dataset.labeled_graphs:
        raise TrainingError("dataset has no labeled paths to fine-tune on")
    enc_cfg = config.encoder
    if enc_cfg.in_dim != dataset.extractor.dim:
        enc_cfg = EncoderConfig(in_dim=dataset.extractor.dim,
                                d_model=enc_cfg.d_model,
                                heads=enc_cfg.heads,
                                layers=enc_cfg.layers,
                                ff_mult=enc_cfg.ff_mult,
                                max_len=enc_cfg.max_len)
    rng = seeds.fresh("gnn-init")
    encoder = GraphTransformer(enc_cfg, rng)
    head = DecisionHead(enc_cfg.d_model, config.head_hidden, rng)
    model = GnnMlsModel(encoder, head, dataset, config)

    if config.use_dgi:
        pretrainer = DGIPretrainer(encoder, seeds.fresh("dgi"))
        model.history["dgi"] = pretrainer.pretrain(
            dataset.graphs, dataset.extractor.normalize,
            epochs=config.dgi_epochs, lr=config.dgi_lr, log=log)

    # Fine-tune: head at full LR, encoder at a reduced LR.
    balance = dataset.label_balance()
    pos_weight = min(10.0, (1.0 - balance) / max(balance, 0.02))
    head_opt = Adam(head.parameters(), lr=config.finetune_lr)
    enc_opt = Adam(encoder.parameters(), lr=config.encoder_finetune_lr)
    rng_ft = seeds.fresh("finetune")
    mats = [dataset.extractor.normalize(g.features)
            for g in dataset.labeled_graphs]
    losses: list[float] = []
    for epoch in range(config.finetune_epochs):
        order = rng_ft.permutation(len(mats))
        total = 0.0
        used = 0
        for idx in order:
            graph = dataset.labeled_graphs[int(idx)]
            assert graph.labels is not None
            mask = graph.decidable
            if not mask.any():
                continue
            embeddings = encoder(Tensor(mats[int(idx)]))
            logits = head(embeddings)[mask]
            targets = Tensor(graph.labels[mask][:, None])
            loss = binary_cross_entropy_with_logits(
                logits, targets, pos_weight=pos_weight)
            head_opt.zero_grad()
            enc_opt.zero_grad()
            loss.backward()
            head_opt.step()
            enc_opt.step()
            total += float(loss.data)
            used += 1
        mean = total / max(used, 1)
        losses.append(mean)
        if log is not None:
            log(f"fine-tune epoch {epoch}: loss {mean:.4f}")
    model.history["finetune"] = losses
    return model
