"""Padded-batch assembly for the selector leg.

The trainer and inference paths process path graphs as zero-padded
(B, L, D) batches with boolean (B, L) key-padding masks instead of one
(N, D) matrix at a time.  Everything here is deterministic plain
NumPy: bucketing depends only on the lengths and the visit order the
caller drew from its :class:`~repro.rng.SeedBundle` stream, so two
runs with the same seeds build identical batches.
"""

from __future__ import annotations

import numpy as np


def pad_batch(mats: list[np.ndarray]
              ) -> tuple[np.ndarray, np.ndarray]:
    """Stack variable-length (N_i, D) matrices into a zero-padded
    (B, L, D) batch plus its boolean (B, L) node mask (True = real).

    Padding rows are exactly zero; combined with the mask-aware
    softmax/reductions downstream they contribute exact zeros to every
    cross-row sum, which is what keeps per-row math equal to the
    per-graph path.
    """
    if not mats:
        raise ValueError("cannot pad an empty batch")
    length = max(m.shape[0] for m in mats)
    dim = mats[0].shape[1]
    batch = np.zeros((len(mats), length, dim), dtype=np.float64)
    mask = np.zeros((len(mats), length), dtype=bool)
    for i, m in enumerate(mats):
        batch[i, : m.shape[0]] = m
        mask[i, : m.shape[0]] = True
    return batch, mask


def pad_rows(rows: list[np.ndarray], length: int,
             dtype=np.float64) -> np.ndarray:
    """Pad 1-D per-node arrays (labels, decidable flags) to (B, L)."""
    out = np.zeros((len(rows), length), dtype=dtype)
    for i, row in enumerate(rows):
        out[i, : row.shape[0]] = row
    return out


def length_bucketed_batches(lengths: np.ndarray, order: np.ndarray,
                            batch_size: int,
                            rng: np.random.Generator | None = None
                            ) -> list[np.ndarray]:
    """Partition a visit *order* into length-homogeneous minibatches.

    The shuffled *order* is stably sorted by graph length — so each
    epoch's bucket composition still varies with the shuffle — then
    chunked into consecutive groups of *batch_size*, which bounds the
    padding waste to the within-bucket length spread.  With *rng* the
    bucket visit order is reshuffled (one extra deterministic draw);
    with ``batch_size == 1`` the order is returned as singleton
    batches untouched, preserving the per-graph reference schedule.
    """
    order = np.asarray(order, dtype=np.int64)
    if batch_size <= 1:
        return [order[i : i + 1] for i in range(len(order))]
    ranked = order[np.argsort(lengths[order], kind="stable")]
    batches = [ranked[i : i + batch_size]
               for i in range(0, len(ranked), batch_size)]
    if rng is not None and len(batches) > 1:
        batches = [batches[int(i)]
                   for i in rng.permutation(len(batches))]
    return batches
