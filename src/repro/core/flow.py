"""The end-to-end GNN-MLS design flow (Figure 4).

One call runs: generate -> partition (memory-on-logic) -> place ->
level shifters (mixed-node) -> optional scan insertion -> repeater
buffering -> baseline no-MLS routing + STA -> MLS net selection
(none / SOTA / GNN / oracle / random) -> targeted routing -> final
STA -> optional MLS DFT + die-test fault simulation -> power + PDN.
The :class:`FlowReport` carries every number Tables IV-VI print.
"""

from __future__ import annotations

import time
import weakref
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.obs import metrics, trace

from repro.design import Design, TechSetup
from repro.errors import FlowError
from repro.netlist.netlist import Netlist
from repro.opt.buffering import insert_buffers
from repro.parallel import ParallelConfig, dumps_snapshot, loads_snapshot
from repro.partition import partition_memory_on_logic
from repro.place import place_design
from repro.place.system import SOLVERS as PLACE_SOLVERS
from repro.power import (default_power_plan, estimate_power,
                         insert_level_shifters, PowerReport)
from repro.pdn.sizing import PdnSizingResult, size_pdn
from repro.route.router import GlobalRouter, RouteConfig
from repro.mls import oracle_select, route_with_mls, sota_select
from repro.mls.oracle import candidate_nets
from repro.timing import IncrementalSta, run_sta
from repro.timing.sta import TimingReport
from repro.rng import SeedBundle
from repro.core.decide import decide_mls_nets
from repro.core.pathset import build_dataset
from repro.core.trainer import TrainConfig, train_gnn_mls

#: Netlist factory signature: (libraries, seeds) -> Netlist.
NetlistFactory = Callable[[dict, SeedBundle], Netlist]

SELECTORS = ("none", "sota", "gnn", "oracle", "random")

DFT_STRATEGIES = ("net-based", "wire-based")


@dataclass(frozen=True)
class FlowConfig:
    """Flow knobs for one run."""

    selector: str = "gnn"
    target_freq_mhz: float = 1500.0
    num_paths: int = 1500
    num_labeled: int = 500
    with_scan: bool = False
    dft_strategy: Optional[str] = None      # "net-based"/"wire-based"
    dft_patterns: int = 256
    #: Cap on exactly-simulated faults (stride-sampled beyond).
    dft_max_faults: int = 30000
    train: TrainConfig = field(default_factory=TrainConfig)
    route: RouteConfig = field(default_factory=RouteConfig)
    #: Oracle selector criterion: False labels nets by their local
    #: worst-sink delay delta (parallelizable); True measures the
    #: exact design WNS/TNS movement per net via incremental STA.
    oracle_exact_slack: bool = False
    decision_threshold: float = 0.5
    #: After routing the first GNN selection, re-extract the now-worst
    #: paths and re-infer, growing the set — covers nets that only
    #: become critical once the original offenders are fixed.
    gnn_refine_iters: int = 2
    pdn: bool = True
    activity: float = 0.15
    #: Worker fan-out for the what-if oracle, the dataset build, the
    #: die-test fault simulation and wavefront global routing.  The
    #: default (workers=1) runs every stage serially, bit-identical to
    #: the parallel paths.
    parallel: ParallelConfig = field(default_factory=ParallelConfig)
    #: Opt-in block-Jacobi region-parallel bisection refinement (see
    #: repro.place.bisection).  Unlike the other parallel stages this
    #: changes the placement slightly (not bit-identical to the joint
    #: solve), though deterministically at any worker count — hence a
    #: separate flag rather than riding on ``parallel`` alone.
    place_region_parallel: bool = False
    #: Per-level solve backend for the bisection placer:
    #: ``"direct"`` factorizes every level (bit-identical baseline),
    #: ``"cg"`` reuses one SuperLU factorization as a PCG
    #: preconditioner across levels (equal within tolerance),
    #: ``"auto"`` picks by system size.  See repro.place.system.
    place_solver: str = "direct"

    def __post_init__(self) -> None:
        if self.selector not in SELECTORS:
            raise FlowError(f"unknown selector {self.selector!r}; "
                            f"choose from {SELECTORS}")
        if self.place_solver not in PLACE_SOLVERS:
            raise FlowError(f"unknown place solver {self.place_solver!r}; "
                            f"choose from {PLACE_SOLVERS}")
        if self.dft_strategy is not None \
                and self.dft_strategy not in DFT_STRATEGIES:
            raise FlowError(f"unknown DFT strategy {self.dft_strategy!r}; "
                            f"choose from {DFT_STRATEGIES}")
        if self.dft_strategy is not None and not self.with_scan:
            raise FlowError("MLS DFT needs with_scan=True")


@dataclass
class FlowReport:
    """Everything a table row needs, plus the live objects."""

    design: Design
    config: FlowConfig
    baseline_sta: TimingReport
    final_sta: TimingReport
    requested_mls: set[str]
    applied_mls: set[str]
    wirelength_m: float
    power: PowerReport
    pdn: Optional[PdnSizingResult]
    #: Selector + GNN-refine wall time only — the paper's Table V
    #: "Run-Time (min)" column (as ``runtime_min`` in :meth:`row`).
    select_runtime_s: float
    #: Whole-flow wall time: prepare (even when the design came from
    #: the prepare cache) through PDN.  Wall-clock, so deliberately
    #: *not* part of :meth:`row` — rows must stay bit-identical.
    runtime_s: float = 0.0
    #: Per-stage wall time keyed by flow span name ("flow.prepare",
    #: "flow.select", ...).  Same wall-clock caveat as ``runtime_s``.
    stage_runtime_s: dict[str, float] = field(default_factory=dict)
    coverage_pct: Optional[float] = None
    total_faults: Optional[int] = None
    detected_faults: Optional[int] = None
    model: object = None

    def row(self) -> dict[str, float]:
        """Flat metric dict, the currency of the benchmark tables."""
        sta = self.final_sta
        out = {
            "target_freq_mhz": self.design.target_freq_mhz,
            "wirelength_m": self.wirelength_m,
            "wns_ps": sta.wns_ps,
            "tns_ns": sta.tns_ns,
            "vio_paths": sta.num_violating,
            "mls_nets": len(self.applied_mls),
            "runtime_min": self.select_runtime_s / 60.0,
            "power_mw": self.power.total_mw,
            "ls_power_mw": self.power.level_shifter_mw,
            "eff_freq_mhz": sta.effective_freq_mhz(),
        }
        if self.pdn is not None:
            out["ir_drop_pct"] = self.pdn.worst_drop_pct
            out["pdn_width_um"] = self.pdn.config.width_um
            out["pdn_pitch_um"] = self.pdn.config.pitch_um
            out["pdn_util_pct"] = 100.0 * self.pdn.config.utilization
        if self.coverage_pct is not None:
            out["coverage_pct"] = self.coverage_pct
            out["total_faults"] = self.total_faults
            out["detected_faults"] = self.detected_faults
        return out


@contextmanager
def _stage(name: str, stages: dict[str, float], **attrs):
    """One flow stage: a trace span plus an always-on wall-time entry
    in *stages* (the FlowReport.stage_runtime_s breakdown)."""
    with trace.span(name, **attrs):
        t0 = time.perf_counter()
        try:
            yield
        finally:
            stages[name] = stages.get(name, 0.0) \
                + time.perf_counter() - t0


#: Side-channel for each prepared design's wall time: run_flow folds
#: it into FlowReport.runtime_s even when the design was prepared
#: out-of-band (the cache, the table harness).  Deliberately NOT
#: stored on the design — prepared designs must stay byte-identical
#: under pickling regardless of how long preparation took.
_PREPARE_RUNTIME: "weakref.WeakKeyDictionary[Design, float]" = \
    weakref.WeakKeyDictionary()


def prepare_runtime_s(design: Design) -> float:
    """Wall seconds spent preparing *design* (0.0 if unknown)."""
    try:
        return _PREPARE_RUNTIME.get(design, 0.0)
    except TypeError:               # non-weakref-able test stand-ins
        return 0.0


def _note_prepare_runtime(design: Design, seconds: float) -> None:
    try:
        _PREPARE_RUNTIME[design] = seconds
    except TypeError:               # non-weakref-able test stand-ins
        pass


def stage_generate(factory: NetlistFactory, tech: TechSetup,
                   seeds: SeedBundle) -> Netlist:
    """Prepare stage 1: build (or import) the netlist.

    Pure in (factory, tech libraries, seed): the generators draw only
    from their own named seed streams, so skipping this stage — e.g.
    restoring its artifact from the service store — leaves every later
    stage's randomness untouched.
    """
    with trace.span("prepare.generate"):
        return factory(tech.libraries, seeds)


def stage_partition(netlist: Netlist):
    """Prepare stage 2: memory-on-logic tier assignment (pure)."""
    with trace.span("prepare.partition"):
        return partition_memory_on_logic(netlist)


def stage_place(netlist: Netlist, tiers, seeds: SeedBundle,
                config: FlowConfig):
    """Prepare stage 3: placement; returns (placement, floorplan).

    Deterministic in (netlist, tiers, region-parallel flag, solver) —
    worker fan-out is bit-identical by the placement equivalence
    suite, and nothing here reads the clock target, so frequency
    sweeps share one placement artifact.
    """
    with trace.span("prepare.place"):
        return place_design(netlist, tiers, seeds,
                            parallel=config.parallel,
                            region_parallel=config.place_region_parallel,
                            solver=config.place_solver)


def stage_finish(design: Design, config: FlowConfig) -> Design:
    """Prepare stages 4-6: level shifters, optional scan, buffering.

    Mutates and returns *design*; the first stage that depends on the
    target frequency (buffer sizing reads the clock period)."""
    with trace.span("prepare.level_shifters"):
        plan = default_power_plan(design)
        insert_level_shifters(design, plan)
    if config.with_scan:
        from repro.dft.scan import insert_scan
        with trace.span("prepare.scan"):
            insert_scan(design)
    with trace.span("prepare.buffer"):
        insert_buffers(design)
    return design


def prepare_design(factory: NetlistFactory, tech: TechSetup,
                   seeds: SeedBundle, config: FlowConfig) -> Design:
    """Stages shared by every selector: generate through buffering."""
    t0 = time.perf_counter()
    with trace.span("flow.prepare"):
        netlist = stage_generate(factory, tech, seeds)
        design = Design(netlist, tech, config.target_freq_mhz)
        design.tiers = stage_partition(netlist)
        design.placement, design.floorplan = stage_place(
            netlist, design.tiers, seeds, config)
        stage_finish(design, config)
    _note_prepare_runtime(design, time.perf_counter() - t0)
    return design


#: prepare key -> pickled prepared design (see prepare_design_cached).
#: Bounded LRU: long benchmark sweeps touch many (design, tech, seed)
#: combinations and a pickled prepared design is tens of MB — keep
#: only the most recently used few instead of every design ever seen.
_PREPARE_CACHE: OrderedDict[tuple, bytes] = OrderedDict()

#: Maximum pickled designs retained in the prepare cache.
PREPARE_CACHE_MAX_ENTRIES = 8


def _prepare_cache_key(factory: NetlistFactory, tech: TechSetup,
                       seeds: SeedBundle, config: FlowConfig) -> tuple:
    """Everything prepare_design's output depends on.

    Derivation is shared with the persistent artifact store
    (:mod:`repro.service.keys`) so the in-memory LRU and the on-disk
    cache can never disagree about which config fields matter.  ``tech``
    is keyed by value (content digest) so fresh-but-equal TechSetup
    instances share one entry.  Factories the canonicalizer cannot
    content-fingerprint (ad-hoc test closures over live objects) fall
    back to identity: the factory object itself joins the key, which
    also pins its ``id`` against reuse for the entry's lifetime.
    """
    from repro.service.keys import prepare_key
    key = prepare_key(factory, tech, seeds, config)
    if key.stable:
        return (key.kind, key.hexdigest)
    return (key.kind, key.hexdigest, factory)


def prepare_design_cached(factory: NetlistFactory, tech: TechSetup,
                          seeds: SeedBundle, config: FlowConfig) -> Design:
    """Memoized :func:`prepare_design` returning an isolated copy.

    The cache stores the prepared design *pickled*; every call —
    including the one that populates an entry — gets its own unpickled
    copy, so downstream stages (routing, MLS toggles, DFT inserts) on
    one copy never leak into another selector's run.  Preparation is
    deterministic in (factory, tech, seed, target freq, scan,
    region-parallel placement), which is exactly the cache key.
    """
    key = _prepare_cache_key(factory, tech, seeds, config)
    t0 = time.perf_counter()
    if key in _PREPARE_CACHE:
        metrics.inc("prepare.cache_hits")
        _PREPARE_CACHE.move_to_end(key)
    else:
        metrics.inc("prepare.cache_misses")
        _PREPARE_CACHE[key] = dumps_snapshot(
            prepare_design(factory, tech, seeds, config))
        while len(_PREPARE_CACHE) > PREPARE_CACHE_MAX_ENTRIES:
            _PREPARE_CACHE.popitem(last=False)
    design = loads_snapshot(_PREPARE_CACHE[key])
    # What *this* call paid — an unpickle on a hit, build + pickle +
    # unpickle on a miss.
    _note_prepare_runtime(design, time.perf_counter() - t0)
    return design


def clear_prepare_cache() -> None:
    _PREPARE_CACHE.clear()


def select_nets(design: Design, router: GlobalRouter, baseline,
                report: TimingReport, seeds: SeedBundle,
                config: FlowConfig,
                sta: IncrementalSta | None = None
                ) -> tuple[set[str], float, object]:
    """Run the configured selector; returns (nets, runtime_s, model)."""
    start = time.perf_counter()
    model = None
    if config.selector == "none":
        nets: set[str] = set()
    elif config.selector == "sota":
        nets = sota_select(design, baseline)
    elif config.selector == "oracle":
        nets = oracle_select(design, router, baseline,
                             parallel=config.parallel,
                             exact_slack=config.oracle_exact_slack,
                             sta=sta)
    elif config.selector == "random":
        rng = seeds.fresh("random-selector")
        pool = [n.name for n in candidate_nets(design)]
        take = max(1, len(pool) // 5)
        nets = set(rng.choice(pool, size=min(take, len(pool)),
                              replace=False).tolist())
    else:  # gnn
        dataset = build_dataset(design, router, baseline, report,
                                num_paths=config.num_paths,
                                num_labeled=config.num_labeled,
                                parallel=config.parallel)
        model = train_gnn_mls(dataset, seeds, config.train)
        nets = decide_mls_nets(model, threshold=config.decision_threshold)
    return nets, time.perf_counter() - start, model


def run_flow(factory: NetlistFactory, tech: TechSetup,
             seeds: SeedBundle, config: FlowConfig,
             design: Design | None = None) -> FlowReport:
    """Run the complete flow for one (design, selector) combination.

    Pass a pre-built *design* (e.g. from :func:`prepare_design_cached`)
    to skip the partition/place/buffer stages; it must have been
    prepared with the same factory/tech/seeds/config.
    """
    stages: dict[str, float] = {}
    # A design prepared out-of-band (prepare_design_cached, the table
    # harness) carries its own wall time; fold it into the whole-flow
    # runtime so FlowReport.runtime_s never undercounts preparation.
    prepare_ext_s = 0.0
    if design is not None:
        prepare_ext_s = prepare_runtime_s(design)
        stages["flow.prepare"] = prepare_ext_s
    t_flow = time.perf_counter()
    with trace.span("flow", selector=config.selector,
                    scan=config.with_scan,
                    workers=config.parallel.workers):
        if design is None:
            design = prepare_design(factory, tech, seeds, config)
            stages["flow.prepare"] = prepare_runtime_s(design)

        with _stage("flow.route_baseline", stages):
            router, baseline = route_with_mls(design, set(), config.route,
                                              parallel=config.parallel)
        # The pin graph's structure is routing-invariant: build it once,
        # then patch arc delays incrementally after every reroute instead
        # of re-running full STA (the refine loop's former hot spot).
        with _stage("flow.sta_baseline", stages):
            timing = IncrementalSta(design)
            base_report = timing.report()

        with _stage("flow.select", stages, selector=config.selector):
            requested, runtime_s, model = select_nets(
                design, router, baseline, base_report, seeds, config,
                sta=timing)

        with _stage("flow.route_mls", stages, nets=len(requested)):
            router, routing = route_with_mls(design, requested,
                                             config.route,
                                             parallel=config.parallel)
            final_report = timing.update_routing()

        if config.selector == "gnn" and model is not None:
            from repro.core.hypergraph import build_path_graph
            from repro.timing.paths import extract_worst_paths
            with _stage("flow.refine", stages):
                start = time.perf_counter()
                for _ in range(config.gnn_refine_iters):
                    paths = extract_worst_paths(final_report,
                                                k=config.num_paths)
                    graphs = [build_path_graph(p, model.dataset.extractor)
                              for p in paths if len(p.stages()) >= 2]
                    probs = model.net_probabilities(graphs)
                    new = {name for name, p in probs.items()
                           if p >= config.decision_threshold} - requested
                    if not new:
                        break
                    requested |= new
                    router, routing = route_with_mls(design, requested,
                                                     config.route,
                                                     parallel=config.parallel)
                    final_report = timing.update_routing()
                runtime_s += time.perf_counter() - start

        coverage = total = detected = None
        if config.dft_strategy is not None:
            from repro.dft.mls_dft import apply_mls_dft, die_test_fault_sim
            with _stage("flow.dft", stages,
                        strategy=config.dft_strategy):
                apply_mls_dft(design, router, routing, config.dft_strategy)
                # DFT edits the netlist structurally (muxes, observe
                # flops, net splits) — outside the incremental
                # contract, so rebuild.
                final_report = run_sta(design)
                sim = die_test_fault_sim(design, seeds.fresh("die-test"),
                                         patterns=config.dft_patterns,
                                         with_dft=True,
                                         max_faults=config.dft_max_faults,
                                         parallel=config.parallel)
                coverage = sim.coverage_pct
                total = sim.total_faults
                detected = sim.detected_total

        with _stage("flow.power", stages):
            plan = default_power_plan(design)
            power = estimate_power(design, plan, activity=config.activity)
        pdn = None
        if config.pdn:
            with _stage("flow.pdn", stages):
                pdn = size_pdn(design, plan=plan)

    metrics.inc("flow.runs")
    return FlowReport(
        design=design,
        config=config,
        baseline_sta=base_report,
        final_sta=final_report,
        requested_mls=requested,
        applied_mls=routing.mls_applied_nets(),
        wirelength_m=routing.wirelength_um() * 1e-6,
        power=power,
        pdn=pdn,
        select_runtime_s=runtime_s,
        runtime_s=prepare_ext_s + time.perf_counter() - t_flow,
        stage_runtime_s=stages,
        coverage_pct=coverage,
        total_faults=total,
        detected_faults=detected,
        model=model,
    )
