"""The Graph Transformer encoder (Section III-C).

Three encoder layers with three-head self-attention over one timing
path's node sequence — "the proposed Transformer architecture has
three layers; each layer consists of a three-head self-attention
mechanism" — with sinusoidal positional encodings preserving the
path's signal-flow order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.layers import (Linear, Module, TransformerEncoder,
                             positional_encoding)
from repro.nn.tensor import Tensor


@dataclass(frozen=True)
class EncoderConfig:
    """Model hyper-parameters (paper defaults)."""

    in_dim: int = 9
    d_model: int = 48
    heads: int = 3
    layers: int = 3
    ff_mult: int = 2
    max_len: int = 512

    def __post_init__(self) -> None:
        if self.d_model % self.heads:
            raise ValueError("d_model must be divisible by heads")


class GraphTransformer(Module):
    """Input projection + positional encoding + Transformer stack."""

    def __init__(self, config: EncoderConfig, rng: np.random.Generator):
        self.config = config
        self.proj = Linear(config.in_dim, config.d_model, rng, name="proj")
        self.encoder = TransformerEncoder(config.d_model, config.heads,
                                          config.layers, rng,
                                          ff_mult=config.ff_mult)
        self._posenc = positional_encoding(config.max_len, config.d_model)

    def __call__(self, features: Tensor,
                 key_padding_mask: np.ndarray | None = None) -> Tensor:
        """Encode path features to node embeddings.

        Accepts one path's (N, in_dim) matrix — the per-graph
        reference — or a zero-padded (B, L, in_dim) batch with a
        boolean (B, L) *key_padding_mask* marking real nodes; the
        positional encoding broadcasts per row, and the mask keeps
        padded nodes out of every attention softmax so real rows
        encode exactly as they would alone.
        """
        n = features.shape[-2]
        if n > self.config.max_len:
            raise ValueError(
                f"path length {n} exceeds max_len {self.config.max_len}")
        h = self.proj(features) + Tensor(self._posenc[:n])
        return self.encoder(h, key_padding_mask)
