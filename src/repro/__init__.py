"""GNN-MLS reproduction: GNN-assisted Metal Layer Sharing for
mixed-node 3D ICs (DAC 2025).

Public API tour:

* :mod:`repro.tech` / :mod:`repro.netlist` — technology + netlist model
  and the MAERI / A7 benchmark generators;
* :mod:`repro.partition`, :mod:`repro.place`, :mod:`repro.route`,
  :mod:`repro.timing`, :mod:`repro.opt` — the physical-design substrate
  (memory-on-logic partitioning, bisection placement, MLS-aware
  routing, STA);
* :mod:`repro.mls` — SOTA baseline, exact oracle, MLS application;
* :mod:`repro.dft`, :mod:`repro.power`, :mod:`repro.pdn` — test,
  power and power-delivery substrates;
* :mod:`repro.nn` — NumPy autograd + Transformer layers;
* :mod:`repro.core` — the paper's contribution and the Figure 4 flow;
* :mod:`repro.harness` — canonical benchmark configs and table/figure
  builders used by ``benchmarks/`` and ``examples/``.
"""

from repro.design import Design, TechSetup
from repro.parallel import ParallelConfig
from repro.rng import SeedBundle
from repro.core.flow import FlowConfig, FlowReport, run_flow

__version__ = "1.1.0"

__all__ = [
    "Design",
    "TechSetup",
    "SeedBundle",
    "FlowConfig",
    "FlowReport",
    "ParallelConfig",
    "run_flow",
    "__version__",
]
