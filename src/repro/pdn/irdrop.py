"""Sparse nodal IR-drop analysis.

Modified nodal analysis on the stripe mesh: pad nodes pin to VDD
through a small bump/via resistance, every cell injects its current at
the nearest crossing, and the sparse SPD system G.v = i solves for
node voltages.  Reports the worst drop as a percentage of the plan's
*lowest* VDD — the paper's 10 %-of-0.81 V criterion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.design import Design
from repro.errors import PDNError
from repro.pdn.grid import PdnGrid
from repro.power.domains import PowerPlan, default_power_plan
from repro.power.estimate import DEFAULT_ACTIVITY

#: Pad / F2F power via resistance to the ideal supply, ohm.
PAD_RESISTANCE = 0.4


@dataclass
class IRDropReport:
    """Per-tier voltage map plus the headline percentages."""

    tier: int
    vdd: float
    node_voltage: np.ndarray        # shape (ny, nx)
    worst_drop_v: float
    drop_pct_of_lowest: float        # vs the plan's lowest VDD
    total_current_a: float

    def drop_map_mv(self) -> np.ndarray:
        """IR-drop per node in millivolts (for Figure 9 style maps)."""
        return (self.vdd - self.node_voltage) * 1e3

    def summary(self) -> dict[str, float]:
        return {
            "tier": self.tier,
            "vdd": self.vdd,
            "worst_drop_mv": self.worst_drop_v * 1e3,
            "drop_pct": self.drop_pct_of_lowest,
            "current_a": self.total_current_a,
        }


def _cell_currents(design: Design, grid: PdnGrid, vdd: float,
                   activity: float) -> np.ndarray:
    """Per-node current injection (amperes) for cells on grid.tier."""
    tiers = design.require_tiers()
    placement = design.require_placement()
    routing = design.require_routing()
    f_hz = design.target_freq_mhz * 1e6
    currents = np.zeros(grid.num_nodes)
    for name, inst in design.netlist.instances.items():
        if tiers.of_instance(name) != grid.tier:
            continue
        act = activity * (1.5 if inst.is_macro else 1.0)
        power_w = inst.cell.energy_fj * 1e-15 * f_hz * act \
            + inst.cell.leakage_mw * 1e-3
        net = inst.output_pin.net
        if net is not None and not net.is_clock:
            rc = routing.rc.get(net.name)
            cap_ff = rc.load_ff if rc is not None else net.sink_cap_ff()
            power_w += 0.5 * cap_ff * 1e-15 * vdd * vdd * f_hz * act
        loc = placement.of_instance(name)
        ix = min(max(int(loc.x / grid.pitch), 0), grid.nx - 1)
        iy = min(max(int(loc.y / grid.pitch), 0), grid.ny - 1)
        currents[grid.node(ix, iy)] += power_w / vdd
    return currents


def solve_irdrop(design: Design, grid: PdnGrid,
                 plan: PowerPlan | None = None,
                 activity: float = DEFAULT_ACTIVITY) -> IRDropReport:
    """Solve the mesh and report the worst drop."""
    plan = plan or default_power_plan(design)
    vdd = grid.vdd
    currents = _cell_currents(design, grid, vdd, activity)

    n = grid.num_nodes
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    diag = np.zeros(n)

    def stamp(a: int, b: int, g: float) -> None:
        diag[a] += g
        diag[b] += g
        rows.extend((a, b))
        cols.extend((b, a))
        vals.extend((-g, -g))

    gx = 1.0 / max(grid.r_seg_x, 1e-9)
    gy = 1.0 / max(grid.r_seg_y, 1e-9)
    for iy in range(grid.ny):
        for ix in range(grid.nx):
            node = grid.node(ix, iy)
            if ix + 1 < grid.nx:
                stamp(node, grid.node(ix + 1, iy), gx)
            if iy + 1 < grid.ny:
                stamp(node, grid.node(ix, iy + 1), gy)
    g_pad = 1.0 / PAD_RESISTANCE
    rhs = -currents.copy()
    for node in grid.pad_nodes:
        diag[node] += g_pad
        rhs[node] += g_pad * vdd

    matrix = sp.coo_matrix(
        (np.concatenate([np.array(vals), diag]),
         (np.concatenate([np.array(rows), np.arange(n)]),
          np.concatenate([np.array(cols), np.arange(n)]))),
        shape=(n, n)).tocsc()
    try:
        voltages = spla.spsolve(matrix, rhs)
    except RuntimeError as exc:  # pragma: no cover
        raise PDNError(f"IR solve failed: {exc}") from exc

    vmap = voltages.reshape(grid.ny, grid.nx)
    worst = float(vdd - vmap.min())
    lowest = plan.lowest_vdd
    return IRDropReport(
        tier=grid.tier,
        vdd=vdd,
        node_voltage=vmap,
        worst_drop_v=worst,
        drop_pct_of_lowest=100.0 * worst / lowest,
        total_current_a=float(currents.sum()),
    )
