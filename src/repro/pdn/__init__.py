"""Power delivery network: stripe grids, IR-drop analysis, sizing.

Reproduces Section III-E / Table IV / Figure 9: per-tier VDD stripe
meshes on the top metal pair with configurable width and pitch, a
sparse resistive nodal solve with per-cell current sources, IR-drop
as a percentage of the lowest domain voltage, and a sizing search
that picks the narrowest stripes meeting the 10 % target — what's
left of the top pair is exactly the routing resource the MLS nets
share.
"""

from repro.pdn.grid import PdnConfig, PdnGrid, build_pdn
from repro.pdn.irdrop import IRDropReport, solve_irdrop
from repro.pdn.sizing import size_pdn

__all__ = [
    "PdnConfig",
    "PdnGrid",
    "build_pdn",
    "IRDropReport",
    "solve_irdrop",
    "size_pdn",
]
