"""PDN width/pitch sizing against the IR-drop target.

Section III-E: "the PDN is implemented with specific width and pitch
to ensure the IR-drop of all designs is within 10% of the lowest VDD
(0.81 V); the remaining routing resources are utilized for the 2D or
MLS nets."  The search sweeps a menu of (width, pitch) candidates from
least to most metal and returns the first meeting the target on both
tiers — minimizing PDN utilization maximizes the MLS resource.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.design import Design
from repro.errors import PDNError
from repro.pdn.grid import PdnConfig, build_pdn
from repro.pdn.irdrop import IRDropReport, solve_irdrop
from repro.power.domains import PowerPlan, default_power_plan

#: Candidate (width, pitch) pairs, least metal first.
DEFAULT_MENU: tuple[tuple[float, float], ...] = (
    (1.0, 14.0),
    (1.4, 10.0),
    (2.0, 7.0),
    (2.7, 9.0),
    (2.7, 7.0),
    (3.4, 7.0),
    (3.4, 5.5),
    (4.0, 5.0),
)


@dataclass
class PdnSizingResult:
    """Chosen geometry and the per-tier reports at that geometry."""

    config: PdnConfig
    reports: dict[int, IRDropReport]
    met_target: bool

    @property
    def worst_drop_pct(self) -> float:
        return max(r.drop_pct_of_lowest for r in self.reports.values())

    def summary(self) -> dict[str, float]:
        return {
            "width_um": self.config.width_um,
            "pitch_um": self.config.pitch_um,
            "utilization_pct": 100.0 * self.config.utilization,
            "worst_drop_pct": self.worst_drop_pct,
            "met_target": float(self.met_target),
        }


def size_pdn(design: Design, target_pct: float = 10.0,
             plan: PowerPlan | None = None,
             menu: tuple[tuple[float, float], ...] = DEFAULT_MENU
             ) -> PdnSizingResult:
    """Pick the lightest menu entry whose worst-tier drop meets
    *target_pct*; falls back to the heaviest entry (flagged) if none
    does."""
    if target_pct <= 0:
        raise PDNError("target_pct must be positive")
    plan = plan or default_power_plan(design)
    last: PdnSizingResult | None = None
    for width, pitch in menu:
        config = PdnConfig(width_um=width, pitch_um=pitch)
        reports: dict[int, IRDropReport] = {}
        for tier in (0, 1):
            vdd = plan.domain_of_tier(tier).vdd
            grid = build_pdn(design, config, tier, vdd)
            reports[tier] = solve_irdrop(design, grid, plan)
        result = PdnSizingResult(config=config, reports=reports,
                                 met_target=all(
                                     r.drop_pct_of_lowest <= target_pct
                                     for r in reports.values()))
        last = result
        if result.met_target:
            return result
    assert last is not None
    return last
