"""PDN stripe-grid construction.

Each tier carries an orthogonal VDD mesh on its top metal pair:
vertical stripes on the top layer, horizontal on the layer below,
both with the same width/pitch (the paper's "M-T: W/P/U" row).  The
mesh is modeled as a resistor network between stripe crossings; power
pads pin the boundary nodes of the bottom tier, and the top tier draws
through F2F power vias distributed across the overlap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.design import Design
from repro.errors import PDNError


@dataclass(frozen=True)
class PdnConfig:
    """Stripe geometry per tier (paper Table IV: width / pitch, um)."""

    width_um: float = 2.0
    pitch_um: float = 7.0

    def __post_init__(self) -> None:
        if self.width_um <= 0 or self.pitch_um <= 0:
            raise PDNError("PDN width and pitch must be positive")
        if self.width_um >= self.pitch_um:
            raise PDNError("stripe width must be below the pitch")

    @property
    def utilization(self) -> float:
        """Fraction of the layer consumed by VDD stripes."""
        return self.width_um / self.pitch_um


@dataclass
class PdnGrid:
    """Resistor mesh of one tier's VDD grid.

    Nodes are stripe crossings on an ``nx x ny`` lattice; ``r_seg_x``
    / ``r_seg_y`` are the segment resistances between neighbours.
    ``pad_nodes`` are indices pinned to VDD (boundary ring for the
    bottom tier, F2F power-via lattice for the top tier).
    """

    tier: int
    nx: int
    ny: int
    pitch: float
    r_seg_x: float
    r_seg_y: float
    pad_nodes: list[int]
    vdd: float
    config: PdnConfig

    def node(self, ix: int, iy: int) -> int:
        return iy * self.nx + ix

    def node_xy(self, idx: int) -> tuple[float, float]:
        iy, ix = divmod(idx, self.nx)
        return (ix + 0.5) * self.pitch, (iy + 0.5) * self.pitch

    @property
    def num_nodes(self) -> int:
        return self.nx * self.ny


def _stripe_resistance_per_um(layer, width_um: float) -> float:
    """Stripe sheet scaling: the layer's per-um figure is for a
    minimum-width track (~pitch/2 wide); widening the stripe divides
    resistance proportionally."""
    track_width = layer.pitch_um / 2.0
    return layer.r_per_um * (track_width / width_um)


def build_pdn(design: Design, config: PdnConfig,
              tier: int, vdd: float) -> PdnGrid:
    """Build the VDD mesh of *tier* at *vdd*."""
    fp = design.require_floorplan()
    stack = design.tech.stack_of(tier)
    pairs = stack.pairs()
    top_a, top_b = pairs[-1]
    nx = max(2, int(fp.width / config.pitch_um))
    ny = max(2, int(fp.height / config.pitch_um))
    r_x = _stripe_resistance_per_um(top_a, config.width_um) * config.pitch_um
    r_y = _stripe_resistance_per_um(top_b, config.width_um) * config.pitch_um

    pad_nodes: list[int] = []
    if tier == 0:
        # Bottom die: package bumps around the boundary ring.
        for ix in range(nx):
            pad_nodes.append(ix)                       # bottom row
            pad_nodes.append((ny - 1) * nx + ix)       # top row
        for iy in range(1, ny - 1):
            pad_nodes.append(iy * nx)
            pad_nodes.append(iy * nx + nx - 1)
    else:
        # Top die: F2F power vias every ~4 crossings across the area
        # (hybrid bonding affords a dense power lattice).
        step = 4
        for iy in range(0, ny, step):
            for ix in range(0, nx, step):
                pad_nodes.append(iy * nx + ix)
    if not pad_nodes:
        raise PDNError("PDN grid has no pad nodes")  # pragma: no cover
    return PdnGrid(tier=tier, nx=nx, ny=ny, pitch=config.pitch_um,
                   r_seg_x=r_x, r_seg_y=r_y,
                   pad_nodes=sorted(set(pad_nodes)), vdd=vdd,
                   config=config)
