"""Experiment harness: canonical designs, tables, figures.

Single home for the benchmark configurations (which MAERI/A7 scale
maps to which paper benchmark, at which target frequency) and for the
code that regenerates every table and figure of the evaluation —
shared by ``benchmarks/`` and ``examples/`` so numbers never drift
between the two.
"""

from repro.harness.designs import (
    BenchmarkSpec,
    BENCHMARKS,
    get_benchmark,
)
from repro.harness.tables import (
    flow_comparison_rows,
    format_table,
    table1_single_net,
    table3_dft_comparison,
    table4_heterogeneous,
    table5_homogeneous,
    table6_testable,
)
from repro.harness.figures import (
    fig2_violation_points,
    fig8_timing_series,
    fig9_irdrop_map,
)

__all__ = [
    "BenchmarkSpec",
    "BENCHMARKS",
    "get_benchmark",
    "flow_comparison_rows",
    "format_table",
    "table1_single_net",
    "table3_dft_comparison",
    "table4_heterogeneous",
    "table5_homogeneous",
    "table6_testable",
    "fig2_violation_points",
    "fig8_timing_series",
    "fig9_irdrop_map",
]
