"""Canonical benchmark specifications.

Maps the paper's benchmarks to simulator-scale equivalents.  Target
frequencies are re-calibrated for the scaled technology so the no-MLS
baseline violates *shallowly* (paper regime: WNS around -20 % of the
period, e.g. -85 ps at 400 ps) — EXPERIMENTS.md records the paper's
nominal targets next to ours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.design import TechSetup
from repro.errors import FlowError
from repro.netlist.generators import (A7Config, MaeriConfig,
                                      generate_a7_dual_core, generate_maeri)
from repro.rng import SeedBundle

#: Default experiment seed — every table reproduces bit-identically.
DEFAULT_EXPERIMENT_SEED = 20250706


@dataclass(frozen=True)
class BenchmarkSpec:
    """One benchmark design + integration context."""

    key: str
    paper_name: str
    logic_node: str
    memory_node: str
    beol_layers: int
    target_freq_mhz: float          # our calibrated target
    paper_target_mhz: float         # what the paper's tables print
    factory: Callable
    activity: float = 0.15
    num_paths: int = 800
    num_labeled: int = 300

    def tech(self) -> TechSetup:
        return TechSetup.build(self.logic_node, self.memory_node,
                               self.beol_layers)

    def seeds(self, seed: int = DEFAULT_EXPERIMENT_SEED) -> SeedBundle:
        return SeedBundle(seed)

    @property
    def is_heterogeneous(self) -> bool:
        return self.logic_node != self.memory_node


def _maeri_factory(pe: int, bw: int):
    def factory(libraries, seeds):
        return generate_maeri(MaeriConfig(pe_count=pe, bandwidth=bw),
                              libraries, seeds)
    return factory


def _a7_factory(**kwargs):
    def factory(libraries, seeds):
        return generate_a7_dual_core(A7Config(**kwargs), libraries, seeds)
    return factory


BENCHMARKS: dict[str, BenchmarkSpec] = {
    # -- heterogeneous (Table IV): 16 nm logic + 28 nm memory ---------------
    "maeri128_hetero": BenchmarkSpec(
        key="maeri128_hetero",
        paper_name="MAERI 128PE 32BW (hetero)",
        logic_node="16nm", memory_node="28nm", beol_layers=6,
        target_freq_mhz=1500.0, paper_target_mhz=2500.0,
        factory=_maeri_factory(128, 32),
        activity=0.25,
    ),
    "a7_hetero": BenchmarkSpec(
        key="a7_hetero",
        paper_name="A7 Dual-Core (hetero)",
        logic_node="16nm", memory_node="28nm", beol_layers=8,
        target_freq_mhz=1000.0, paper_target_mhz=2000.0,
        factory=_a7_factory(word_width=24, stage_depth=10, cache_banks=6),
        activity=0.10,
    ),
    # -- homogeneous (Table V): 28 nm logic + 28 nm memory --------------------
    "maeri256_homo": BenchmarkSpec(
        key="maeri256_homo",
        paper_name="MAERI 256PE 64BW (homo)",
        logic_node="28nm", memory_node="28nm", beol_layers=6,
        target_freq_mhz=850.0, paper_target_mhz=2500.0,
        factory=_maeri_factory(256, 64),
        activity=0.25,
        num_paths=600, num_labeled=250,
    ),
    "a7_homo": BenchmarkSpec(
        key="a7_homo",
        paper_name="A7 Dual-Core (homo)",
        logic_node="28nm", memory_node="28nm", beol_layers=8,
        target_freq_mhz=800.0, paper_target_mhz=2000.0,
        factory=_a7_factory(word_width=24, stage_depth=10, cache_banks=6),
        activity=0.10,
    ),
    # -- small fabric for Table I / Table III / the Section II motivation ----
    "maeri16_hetero": BenchmarkSpec(
        key="maeri16_hetero",
        paper_name="MAERI 16PE 4BW (hetero)",
        logic_node="16nm", memory_node="28nm", beol_layers=6,
        target_freq_mhz=1900.0, paper_target_mhz=2500.0,
        factory=_maeri_factory(16, 8),
        activity=0.25,
        num_paths=400, num_labeled=200,
    ),
}


def get_benchmark(key: str) -> BenchmarkSpec:
    try:
        return BENCHMARKS[key]
    except KeyError:
        raise FlowError(f"unknown benchmark {key!r}; "
                        f"known: {sorted(BENCHMARKS)}") from None
