"""Figure builders — data series for Figures 2, 8 and 9.

Figures are emitted as data (counts, series, maps) rather than images:
the paper's figures plot exactly these series, and keeping benches
plot-free avoids a matplotlib dependency offline.
"""

from __future__ import annotations


from repro.harness.designs import DEFAULT_EXPERIMENT_SEED, get_benchmark
from repro.harness.tables import (flow_comparison_rows, run_benchmark_flow,
                                  table4_heterogeneous, table5_homogeneous)
from repro.pdn import build_pdn, solve_irdrop, size_pdn
from repro.power import default_power_plan


def fig2_violation_points(benchmark_key: str = "maeri128_hetero",
                          seed: int = DEFAULT_EXPERIMENT_SEED
                          ) -> dict[str, dict[str, float]]:
    """Figure 2: violating registers per flow + reduction vs No MLS.

    Paper: SOTA reduces violation points by 68 %, GNN-MLS by 80 %.
    """
    rows = flow_comparison_rows(benchmark_key, seed=seed)
    base = max(rows["none"]["vio_paths"], 1)
    out: dict[str, dict[str, float]] = {}
    for flow, row in rows.items():
        vio = row["vio_paths"]
        out[flow] = {
            "violation_points": vio,
            "reduction_pct": 100.0 * (1.0 - vio / base),
        }
    return out


def fig8_timing_series(seed: int = DEFAULT_EXPERIMENT_SEED
                       ) -> dict[str, dict[str, dict[str, float]]]:
    """Figure 8: WNS / TNS / #violations series per benchmark x flow.

    Same data as Tables IV/V, reshaped into plottable series (the
    flow-cache makes this free when the tables already ran).
    """
    series: dict[str, dict[str, dict[str, float]]] = {}
    tables = {**table4_heterogeneous(seed), **table5_homogeneous(seed)}
    for bench, rows in tables.items():
        series[bench] = {
            flow: {
                "wns_ps": row["wns_ps"],
                "tns_ns": row["tns_ns"],
                "vio_paths": row["vio_paths"],
            }
            for flow, row in rows.items()
        }
    return series


def fig9_irdrop_map(benchmark_key: str = "maeri128_hetero",
                    seed: int = DEFAULT_EXPERIMENT_SEED
                    ) -> dict[str, object]:
    """Figure 9: the hetero IR-drop map + top-layer resource split.

    Returns the logic-tier drop map in millivolts (the paper shows a
    92 mV peak for hetero MAERI-128), the chosen PDN geometry, and the
    top-pair routing utilization left to signal/MLS nets.
    """
    report = run_benchmark_flow(get_benchmark(benchmark_key), "gnn",
                                seed=seed)
    design = report.design
    plan = default_power_plan(design)
    sizing = report.pdn or size_pdn(design, plan=plan)
    grid = build_pdn(design, sizing.config, tier=0,
                     vdd=plan.domain_of_tier(0).vdd)
    ir = solve_irdrop(design, grid, plan)
    routing = design.require_routing()
    top0 = routing.grid.top_pair(0)
    top1 = routing.grid.top_pair(1)
    return {
        "drop_map_mv": ir.drop_map_mv(),
        "peak_drop_mv": float(ir.drop_map_mv().max()),
        "pdn_width_um": sizing.config.width_um,
        "pdn_pitch_um": sizing.config.pitch_um,
        "pdn_util_pct": 100.0 * sizing.config.utilization,
        "signal_top_util_logic_pct":
            100.0 * routing.grid.utilization(0, top0),
        "signal_top_util_memory_pct":
            100.0 * routing.grid.utilization(1, top1),
        "mls_nets_on_shared_layer": len(routing.mls_applied_nets()),
    }
