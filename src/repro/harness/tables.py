"""Table builders — one function per paper table.

Heavy flow runs are memoized per (benchmark, selector, options) within
the process, so Figure 8 (which replots Tables IV/V data) and repeated
bench invocations don't pay twice.  One level below, the prepared
(partitioned/placed/buffered) design is memoized per benchmark by
:func:`repro.core.flow.prepare_design_cached`, so the per-*selector*
runs of one table only pay routing + selection + signoff.
"""

from __future__ import annotations


from repro.core.trainer import TrainConfig
from repro.core.flow import (FlowConfig, FlowReport, run_flow,
                             prepare_design_cached)
from repro.harness.designs import (BenchmarkSpec, get_benchmark,
                                   DEFAULT_EXPERIMENT_SEED)
from repro.mls import route_with_mls
from repro.parallel import ParallelConfig
from repro.route.router import RouteConfig
from repro.service.keys import flow_key
from repro.timing import (IncrementalSta, extract_worst_paths,
                          net_whatif_delta)

#: (flow content key, workers[, factory]) -> FlowReport
_FLOW_CACHE: dict[tuple, FlowReport] = {}


def run_benchmark_flow(spec: BenchmarkSpec, selector: str,
                       with_scan: bool = False,
                       dft_strategy: str | None = None,
                       seed: int = DEFAULT_EXPERIMENT_SEED,
                       parallel: ParallelConfig | None = None,
                       place_region_parallel: bool = False,
                       place_solver: str = "direct",
                       route_batch_ms: float | None = None,
                       select_batch: int | None = None,
                       store=None) -> FlowReport:
    """Run (or fetch) one cached flow.

    The memo key is the shared content key from
    :mod:`repro.service.keys` — the same derivation the persistent
    store uses — plus the worker count: *parallel* only changes
    wall-clock, never results (the equivalence suite locks that), but
    repeat invocations with different worker counts must measure
    honestly.  Factories without a stable content fingerprint key by
    identity, exactly like the prepare LRU.

    Pass *store* (an :class:`repro.service.ArtifactStore`) to read
    through / write back the persistent artifact cache — warm
    invocations then skip generate/partition/place/buffer or replay
    the whole stored report.
    """
    parallel = parallel or ParallelConfig()
    route = RouteConfig() if route_batch_ms is None \
        else RouteConfig(batch_ms=route_batch_ms)
    train = TrainConfig() if select_batch is None \
        else TrainConfig(batch_size=select_batch,
                         vectorized=select_batch > 1)
    config = FlowConfig(
        selector=selector,
        target_freq_mhz=spec.target_freq_mhz,
        num_paths=spec.num_paths,
        num_labeled=spec.num_labeled,
        with_scan=with_scan,
        dft_strategy=dft_strategy,
        activity=spec.activity,
        parallel=parallel,
        place_region_parallel=place_region_parallel,
        place_solver=place_solver,
        route=route,
        train=train,
    )
    content = flow_key(spec.factory, spec.tech(), spec.seeds(seed),
                       config)
    key: tuple = (content.hexdigest, parallel.workers)
    if not content.stable:
        key += (spec.factory,)
    if key not in _FLOW_CACHE:
        if store is not None:
            from repro.service.stages import run_flow_stored
            report, _summary, _cached = run_flow_stored(
                spec.factory, spec.tech(), spec.seeds(seed), config,
                store, need_report=True)
        else:
            design = prepare_design_cached(spec.factory, spec.tech(),
                                           spec.seeds(seed), config)
            report = run_flow(spec.factory, spec.tech(),
                              spec.seeds(seed), config, design=design)
        _FLOW_CACHE[key] = report
    return _FLOW_CACHE[key]


def clear_flow_cache() -> None:
    _FLOW_CACHE.clear()


def flow_comparison_rows(benchmark_key: str,
                         selectors: tuple[str, ...] = ("none", "sota", "gnn"),
                         seed: int = DEFAULT_EXPERIMENT_SEED,
                         parallel: ParallelConfig | None = None
                         ) -> dict[str, dict[str, float]]:
    """selector -> metric row for one benchmark."""
    spec = get_benchmark(benchmark_key)
    return {sel: run_benchmark_flow(spec, sel, seed=seed,
                                    parallel=parallel).row()
            for sel in selectors}


def format_table(title: str, columns: list[str],
                 rows: dict[str, dict[str, float]],
                 metrics: list[tuple[str, str, str]]) -> str:
    """Render rows as the paper prints them.

    ``metrics`` is a list of (metric key, display label, format spec).
    ``columns`` are the flow names in display order.
    """
    width = 14
    lines = [title, "=" * len(title)]
    header = f"{'metric':<22}" + "".join(f"{c:>{width}}" for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for key, label, fmt in metrics:
        cells = []
        for col in columns:
            value = rows.get(col, {}).get(key)
            cells.append("-" if value is None else format(value, fmt))
        lines.append(f"{label:<22}" + "".join(f"{c:>{width}}" for c in cells))
    return "\n".join(lines)


_PPA_METRICS = [
    ("target_freq_mhz", "Target Freq (MHz)", ".0f"),
    ("wirelength_m", "WL (m)", ".3f"),
    ("wns_ps", "WNS (ps)", ".1f"),
    ("tns_ns", "TNS (ns)", ".2f"),
    ("vio_paths", "#Vio. Paths", ".0f"),
    ("mls_nets", "#MLS Nets", ".0f"),
    ("runtime_min", "Run-Time (min)", ".2f"),
    ("power_mw", "Pwr (mW)", ".1f"),
    ("ir_drop_pct", "IR-drop (%)", ".2f"),
    ("pdn_width_um", "M-T W (um)", ".1f"),
    ("pdn_pitch_um", "M-T P (um)", ".1f"),
    ("pdn_util_pct", "M-T U (%)", ".1f"),
    ("ls_power_mw", "L.S Pwr (mW)", ".3f"),
    ("eff_freq_mhz", "Eff. Freq (MHz)", ".0f"),
]


def table4_heterogeneous(seed: int = DEFAULT_EXPERIMENT_SEED,
                         parallel: ParallelConfig | None = None
                         ) -> dict[str, dict[str, dict[str, float]]]:
    """Table IV: hetero PPA for MAERI-128 and A7 x {No MLS, SOTA, Ours}."""
    return {
        "maeri128_hetero": flow_comparison_rows("maeri128_hetero", seed=seed,
                                                parallel=parallel),
        "a7_hetero": flow_comparison_rows("a7_hetero", seed=seed,
                                          parallel=parallel),
    }


def table5_homogeneous(seed: int = DEFAULT_EXPERIMENT_SEED,
                       parallel: ParallelConfig | None = None
                       ) -> dict[str, dict[str, dict[str, float]]]:
    """Table V: homo PPA for MAERI-256 and A7 x {No MLS, SOTA, Ours}."""
    return {
        "maeri256_homo": flow_comparison_rows("maeri256_homo", seed=seed,
                                              parallel=parallel),
        "a7_homo": flow_comparison_rows("a7_homo", seed=seed,
                                        parallel=parallel),
    }


def table6_testable(seed: int = DEFAULT_EXPERIMENT_SEED,
                    parallel: ParallelConfig | None = None
                    ) -> dict[str, dict[str, dict[str, float]]]:
    """Table VI: testable designs — No-MLS+DFT vs GNN-MLS+DFT (hetero).

    The No-MLS flow has no MLS opens, so only scan applies; the
    GNN-MLS flow additionally gets the wire-based MLS repairs.
    """
    out: dict[str, dict[str, dict[str, float]]] = {}
    for key in ("maeri128_hetero", "a7_hetero"):
        spec = get_benchmark(key)
        rows = {}
        rows["none"] = run_benchmark_flow(
            spec, "none", with_scan=True, dft_strategy="wire-based",
            seed=seed, parallel=parallel).row()
        rows["gnn"] = run_benchmark_flow(
            spec, "gnn", with_scan=True, dft_strategy="wire-based",
            seed=seed, parallel=parallel).row()
        out[key] = rows
    return out


def table3_dft_comparison(seed: int = DEFAULT_EXPERIMENT_SEED,
                          parallel: ParallelConfig | None = None
                          ) -> dict[str, dict[str, float]]:
    """Table III: net-based vs wire-based DFT on the small fabric.

    Both strategies apply to the same GNN-selected MLS set on
    MAERI-16PE; rows report total/detected faults and WNS.
    """
    spec = get_benchmark("maeri16_hetero")
    out: dict[str, dict[str, float]] = {}
    for strategy in ("net-based", "wire-based"):
        report = run_benchmark_flow(spec, "gnn", with_scan=True,
                                    dft_strategy=strategy, seed=seed,
                                    parallel=parallel)
        row = report.row()
        out[strategy] = {
            "total_faults": row["total_faults"],
            "detected_faults": row["detected_faults"],
            "coverage_pct": row["coverage_pct"],
            "wns_ps": row["wns_ps"],
            "mls_nets": row["mls_nets"],
        }
    return out


def table1_single_net(seed: int = DEFAULT_EXPERIMENT_SEED
                      ) -> list[dict[str, object]]:
    """Table I: single-net MLS impact — one net helped, one net hurt.

    On the no-MLS MAERI baseline, probe the 2-D nets on the worst
    paths; report, for the strongest improvement and the strongest
    degradation: slack before/after MLS and the metal layers used.
    """
    spec = get_benchmark("maeri128_hetero")
    config = FlowConfig(selector="none",
                        target_freq_mhz=spec.target_freq_mhz)
    design = prepare_design_cached(spec.factory, spec.tech(),
                                   spec.seeds(seed), config)
    router, routing = route_with_mls(design, set())
    timing = IncrementalSta(design)
    report = timing.report()
    paths = extract_worst_paths(report, k=200, only_violating=True)
    tiers = design.require_tiers()

    best = worst = None        # (delta, net, path)
    for path in paths:
        for _, net in path.stages():
            if tiers.is_cross_tier(net):
                continue
            delta = net_whatif_delta(design, router, routing, net)
            if not delta.applied:
                continue
            d = delta.worst_delta_ps()
            entry = (d, net, path)
            if best is None or d < best[0]:
                best = entry
            if worst is None or d > worst[0]:
                worst = entry
    rows: list[dict[str, object]] = []
    stacks = design.tech.stacks
    for tag, entry in (("improved", best), ("degraded", worst)):
        if entry is None:
            continue
        d, net, path = entry
        tree_before = routing.tree(net.name)
        rc_before = routing.rc.get(net.name)
        usage_before = tree_before.usage_string(
            {0: stacks[0], 1: stacks[1]}, tiers.of_pin(net.driver))
        router.reroute_net(routing, net, mls=True)
        usage_after = routing.tree(net.name).usage_string(
            {0: stacks[0], 1: stacks[1]}, tiers.of_pin(net.driver))
        # Exact signoff slack with the MLS route committed: patch just
        # this net in the incremental STA rather than re-running full
        # STA — then roll grid and timing back to the probed baseline.
        rep_on = timing.update([net.name])
        slack_after = rep_on.endpoint_slack[path.endpoint]
        router.restore_net(routing, net, tree_before, rc_before)
        timing.update([net.name])
        rows.append({
            "case": tag,
            "net": net.name,
            "slack_before_ps": path.slack_ps,
            "slack_after_ps": slack_after,
            "delta_ps": d,
            "metals_before": usage_before,
            "metals_after": usage_after,
        })
    return rows
