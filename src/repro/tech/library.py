"""Node-scaled cell libraries.

:func:`build_library` takes the 28 nm reference cells and applies a
:class:`~repro.tech.node.TechNode`'s scale factors, yielding the
library used by one die.  A heterogeneous design therefore carries two
libraries (16 nm logic die, 28 nm memory die) whose relative speeds
drive the cross-tier timing effects the paper studies.
"""

from __future__ import annotations

from dataclasses import replace

from repro.errors import TechError
from repro.tech.cells import CellType, reference_cells
from repro.tech.node import TechNode


class CellLibrary:
    """An immutable mapping of cell-type name -> :class:`CellType`."""

    def __init__(self, node: TechNode, cells: list[CellType]):
        self.node = node
        self._cells = {cell.name: cell for cell in cells}
        if len(self._cells) != len(cells):
            raise TechError("duplicate cell names in library")

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __iter__(self):
        return iter(self._cells.values())

    def __len__(self) -> int:
        return len(self._cells)

    def get(self, name: str) -> CellType:
        """Fetch a cell type, raising :class:`TechError` if unknown."""
        try:
            return self._cells[name]
        except KeyError:
            raise TechError(
                f"cell {name!r} not in {self.node.name} library") from None

    def names(self) -> list[str]:
        return sorted(self._cells)

    def combinational(self) -> list[CellType]:
        """All single-output combinational gates (no macros, no FFs)."""
        return [c for c in self._cells.values()
                if not c.is_sequential and not c.is_macro]


def _scale_cell(cell: CellType, node: TechNode) -> CellType:
    """Apply node scaling to one reference cell.

    Macros (SRAM) scale area/energy like logic but keep most of their
    access time: a 16 nm SRAM compiler macro is faster than a 28 nm one
    by roughly the gate-delay ratio's square root, not the full ratio.
    """
    delay_scale = node.delay_scale
    if cell.is_macro:
        delay_scale = node.delay_scale ** 0.5
    return replace(
        cell,
        intrinsic_ps=cell.intrinsic_ps * delay_scale,
        drive_res=cell.drive_res * delay_scale,
        input_cap_ff=cell.input_cap_ff * node.cap_scale,
        leakage_mw=cell.leakage_mw * node.leakage_scale,
        energy_fj=cell.energy_fj * node.energy_scale,
        area_um2=cell.area_um2 * node.area_scale,
    )


def build_library(node: TechNode) -> CellLibrary:
    """Build the standard library for *node*.

    >>> from repro.tech import NODE_16NM, NODE_28NM
    >>> lib16 = build_library(NODE_16NM)
    >>> lib28 = build_library(NODE_28NM)
    >>> lib16.get("INV").intrinsic_ps < lib28.get("INV").intrinsic_ps
    True
    """
    return CellLibrary(node, [_scale_cell(c, node) for c in reference_cells()])
