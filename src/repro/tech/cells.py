"""Standard-cell types with an NLDM-lite delay model and logic functions.

Each :class:`CellType` carries:

* electrical data — intrinsic delay, output drive resistance, per-input
  pin capacitance, leakage, per-toggle internal energy, area;
* a *logic function* operating on ``numpy.uint64`` words, so the DFT
  fault simulator can evaluate 64 test patterns per word in parallel;
* structural flags (sequential / macro / level-shifter / scannable).

The delay model is the classic linear approximation

    delay = intrinsic + drive_resistance * load_capacitance

which is what matters for the MLS experiments: MLS changes the *wire*
part of the load and adds F2F via RC, and the STA engine composes both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import TechError

#: Bit-parallel logic function: receives one uint64 ndarray per input
#: pin (in declared order) and returns the output word array.
LogicFn = Callable[..., np.ndarray]

_ALL_ONES = np.uint64(0xFFFF_FFFF_FFFF_FFFF)


def _inv(a):
    return a ^ _ALL_ONES


def _buf(a):
    return a


def _nand2(a, b):
    return (a & b) ^ _ALL_ONES


def _nor2(a, b):
    return (a | b) ^ _ALL_ONES


def _and2(a, b):
    return a & b


def _or2(a, b):
    return a | b


def _xor2(a, b):
    return a ^ b


def _xnor2(a, b):
    return (a ^ b) ^ _ALL_ONES


def _aoi21(a, b, c):
    return ((a & b) | c) ^ _ALL_ONES


def _oai21(a, b, c):
    return ((a | b) & c) ^ _ALL_ONES


def _mux2(a, b, s):
    """Output = a when s=0, b when s=1."""
    return (a & (s ^ _ALL_ONES)) | (b & s)


def _and3(a, b, c):
    return a & b & c


def _or3(a, b, c):
    return a | b | c


def _maj3(a, b, c):
    """Majority — the carry function of a full adder."""
    return (a & b) | (a & c) | (b & c)


def _xor3(a, b, c):
    """Three-input parity — the sum function of a full adder."""
    return a ^ b ^ c


def _const0():
    return np.uint64(0)


@dataclass(frozen=True)
class CellPinSpec:
    """Declared pin of a cell type.

    ``direction`` is ``"in"`` or ``"out"``; ``cap_ff`` is the pin's
    input capacitance (meaningful for inputs; outputs use the cell's
    drive resistance instead).
    """

    name: str
    direction: str
    cap_ff: float = 0.0

    def __post_init__(self) -> None:
        if self.direction not in ("in", "out"):
            raise TechError(f"pin {self.name}: direction must be 'in'/'out'")


@dataclass(frozen=True)
class CellType:
    """One library cell (or macro) with electrical and logical models.

    All electrical values are *pre-node-scaling*; :mod:`repro.tech.library`
    applies the node's scale factors when instantiating a library.
    """

    name: str
    inputs: tuple[str, ...]
    output: str
    intrinsic_ps: float
    drive_res: float          # ohm
    input_cap_ff: float       # per input pin
    leakage_mw: float
    energy_fj: float          # internal energy per output toggle
    area_um2: float
    logic: LogicFn | None = None
    is_sequential: bool = False
    is_macro: bool = False
    is_level_shifter: bool = False
    is_scannable: bool = False
    clock_pin: str | None = None
    extra_pins: tuple[CellPinSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise TechError("cell type needs a name")
        if self.intrinsic_ps < 0 or self.drive_res <= 0:
            raise TechError(f"cell {self.name}: bad delay parameters")
        if self.is_sequential and self.clock_pin is None:
            raise TechError(f"sequential cell {self.name} needs a clock pin")
        if len(set(self.inputs)) != len(self.inputs):
            raise TechError(f"cell {self.name}: duplicate input pin names")
        if self.output in self.inputs:
            raise TechError(f"cell {self.name}: output shadows an input")

    @property
    def num_inputs(self) -> int:
        return len(self.inputs)

    def pins(self) -> list[CellPinSpec]:
        """All pins: declared data inputs, clock, extras, then output."""
        out: list[CellPinSpec] = [
            CellPinSpec(name, "in", self.input_cap_ff) for name in self.inputs
        ]
        if self.clock_pin is not None:
            out.append(CellPinSpec(self.clock_pin, "in", self.input_cap_ff * 0.8))
        out.extend(self.extra_pins)
        out.append(CellPinSpec(self.output, "out", 0.0))
        return out

    def evaluate(self, *input_words: np.ndarray) -> np.ndarray:
        """Bit-parallel logic evaluation; sequential cells pass D through.

        Sequential cells are evaluated in scan/combinational-cone mode,
        where the Q output takes the captured D value — the standard
        full-scan abstraction the fault simulator relies on.
        """
        if self.logic is None:
            raise TechError(f"cell {self.name} has no logic function "
                            "(macro pins are cone boundaries)")
        if len(input_words) != self.num_inputs:
            raise TechError(
                f"cell {self.name} expects {self.num_inputs} inputs, "
                f"got {len(input_words)}")
        return self.logic(*input_words)

    def delay_ps(self, load_ff: float) -> float:
        """Linear NLDM-lite delay for a given output load in fF."""
        if load_ff < 0:
            raise TechError(f"negative load {load_ff} on cell {self.name}")
        # ohm * fF = fs; /1000 -> ps.
        return self.intrinsic_ps + (self.drive_res * load_ff) / 1000.0


# -- reference (28 nm, unit-drive) cell definitions --------------------------
# intrinsic_ps, drive_res(ohm), input_cap(fF), leakage(mW), energy(fJ), area(um2)

def reference_cells() -> list[CellType]:
    """The unscaled 28 nm reference library.

    Drive strengths: a plain and a "_X2" variant for the workhorse
    gates, so the generators can pick stronger drivers for high-fanout
    tree nodes (MAERI's distribution tree in particular).
    """
    cells = [
        CellType("INV", ("A",), "Y", 8.0, 2600.0, 0.9, 2.0e-6, 0.35, 0.5, _inv),
        CellType("INV_X2", ("A",), "Y", 8.5, 1300.0, 1.7, 3.6e-6, 0.55, 0.9, _inv),
        CellType("BUF", ("A",), "Y", 14.0, 2200.0, 0.9, 2.4e-6, 0.50, 0.8, _buf),
        CellType("BUF_X4", ("A",), "Y", 16.0, 600.0, 3.2, 7.0e-6, 1.30, 2.6, _buf),
        CellType("NAND2", ("A", "B"), "Y", 10.0, 2900.0, 1.0, 2.8e-6, 0.45, 0.8, _nand2),
        CellType("NAND2_X2", ("A", "B"), "Y", 10.5, 1500.0, 1.9, 5.0e-6, 0.75, 1.4, _nand2),
        CellType("NOR2", ("A", "B"), "Y", 11.0, 3300.0, 1.0, 2.8e-6, 0.45, 0.8, _nor2),
        CellType("AND2", ("A", "B"), "Y", 16.0, 2500.0, 1.0, 3.2e-6, 0.60, 1.1, _and2),
        CellType("OR2", ("A", "B"), "Y", 17.0, 2500.0, 1.0, 3.2e-6, 0.60, 1.1, _or2),
        CellType("XOR2", ("A", "B"), "Y", 22.0, 3100.0, 1.4, 4.4e-6, 0.95, 1.7, _xor2),
        CellType("XNOR2", ("A", "B"), "Y", 22.5, 3100.0, 1.4, 4.4e-6, 0.95, 1.7, _xnor2),
        CellType("AOI21", ("A", "B", "C"), "Y", 13.0, 3000.0, 1.1, 3.4e-6, 0.60, 1.2, _aoi21),
        CellType("OAI21", ("A", "B", "C"), "Y", 13.5, 3000.0, 1.1, 3.4e-6, 0.60, 1.2, _oai21),
        CellType("MUX2", ("A", "B", "S"), "Y", 20.0, 2800.0, 1.2, 4.0e-6, 0.85, 1.8, _mux2),
        CellType("MUX2_X4", ("A", "B", "S"), "Y", 22.0, 700.0, 2.6, 9.0e-6, 1.70, 3.6, _mux2),
        # Transmission-gate pass mux: the DFT-repair structure parked
        # at F2F pads.  Functional mode is a pass gate + keeper, so the
        # in-path penalty is small — the paper's post-routing ECO keeps
        # the "timing impact of these solutions minimal" (Sec. III-D).
        CellType("TGMUX", ("A", "B", "S"), "Y", 3.0, 650.0, 0.8, 5.0e-6, 0.70, 2.2, _mux2),
        CellType("AND3", ("A", "B", "C"), "Y", 20.0, 2700.0, 1.0, 3.8e-6, 0.70, 1.5, _and3),
        CellType("OR3", ("A", "B", "C"), "Y", 21.0, 2700.0, 1.0, 3.8e-6, 0.70, 1.5, _or3),
        CellType("MAJ3", ("A", "B", "C"), "Y", 24.0, 2900.0, 1.3, 4.6e-6, 1.00, 2.0, _maj3),
        CellType("XOR3", ("A", "B", "C"), "Y", 30.0, 3200.0, 1.5, 5.2e-6, 1.25, 2.4, _xor3),
        CellType("DFF", ("D",), "Q", 45.0, 2400.0, 1.1, 9.0e-6, 2.10, 4.5,
                 _buf, is_sequential=True, clock_pin="CK"),
        CellType("SDFF", ("D", "SI", "SE"), "Q", 48.0, 2400.0, 1.1, 1.1e-5,
                 2.30, 5.4, _mux2, is_sequential=True, clock_pin="CK",
                 is_scannable=True),
        CellType("CLKBUF", ("A",), "Y", 12.0, 800.0, 2.4, 5.0e-6, 1.10, 2.0, _buf),
        CellType("LVLSHIFT", ("A",), "Y", 28.0, 2000.0, 1.6, 1.4e-5, 1.90, 3.2,
                 _buf, is_level_shifter=True),
        # SRAM macro: black box for logic purposes; sequential endpoint.
        # Access time dominates; the Q side drives like a strong buffer.
        CellType("SRAM_1KX32", ("D", "A0", "A1", "A2", "WE"), "Q",
                 180.0, 500.0, 2.8, 4.0e-3, 45.0, 900.0, None,
                 is_sequential=True, is_macro=True, clock_pin="CK"),
    ]
    return cells
