"""Technology modelling: process nodes, BEOL metal stacks, cell libraries.

This package replaces the TSMC 16 nm / 28 nm PDKs used in the paper with
parametric models that preserve the ratios the experiments depend on:

* 16 nm standard cells are faster and smaller but sit under a *finer,
  more resistive* lower-metal BEOL;
* 28 nm top metals are thick and low-resistance — exactly the resource
  Metal Layer Sharing borrows across the F2F interface;
* F2F via parameters follow the paper's setup (0.5 um size, 1.0 um
  pitch, 0.5 ohm, 0.2 fF).
"""

from repro.tech.node import TechNode, NODE_28NM, NODE_16NM, get_node
from repro.tech.layers import MetalLayer, MetalStack, F2FVia, default_stack
from repro.tech.cells import CellType, CellPinSpec
from repro.tech.library import CellLibrary, build_library

__all__ = [
    "TechNode",
    "NODE_28NM",
    "NODE_16NM",
    "get_node",
    "MetalLayer",
    "MetalStack",
    "F2FVia",
    "default_stack",
    "CellType",
    "CellPinSpec",
    "CellLibrary",
    "build_library",
]
