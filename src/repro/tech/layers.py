"""BEOL metal-stack and F2F-via models.

The router and the MLS machinery need, per metal layer: resistance and
capacitance per micrometre, routing pitch (which sets gcell capacity),
and preferred direction.  The paper's designs use a 6-layer BEOL per die
for MAERI and 8 layers for the A7 (Table IV "BEOL 6+6 / 8+8"); the
top one or two layers are thick, low-resistance metals that double as
PDN stripes and as the landing resource for Metal Layer Sharing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TechError
from repro.tech.node import TechNode


@dataclass(frozen=True)
class MetalLayer:
    """One routing layer of a die's BEOL stack.

    Attributes
    ----------
    name:
        e.g. ``"M5"``.
    index:
        1-based position from the substrate (M1 = 1).
    r_per_um:
        Wire resistance in ohm per micrometre at the default width.
    c_per_um:
        Wire capacitance in femtofarad per micrometre.
    pitch_um:
        Minimum routing pitch; sets per-gcell track capacity.
    direction:
        Preferred routing direction, ``"H"`` or ``"V"``; layers
        alternate.
    thick:
        True for top "fat" metals usable by the PDN and as the MLS
        landing resource.
    """

    name: str
    index: int
    r_per_um: float
    c_per_um: float
    pitch_um: float
    direction: str
    thick: bool = False

    def __post_init__(self) -> None:
        if self.direction not in ("H", "V"):
            raise TechError(f"layer {self.name}: direction must be 'H' or 'V'")
        if self.r_per_um <= 0 or self.c_per_um <= 0 or self.pitch_um <= 0:
            raise TechError(f"layer {self.name}: electrical params must be positive")

    def wire_resistance(self, length_um: float) -> float:
        """Total resistance in ohm of a *length_um* segment."""
        return self.r_per_um * length_um

    def wire_capacitance(self, length_um: float) -> float:
        """Total capacitance in fF of a *length_um* segment."""
        return self.c_per_um * length_um


@dataclass(frozen=True)
class F2FVia:
    """Face-to-face hybrid-bond via between the two dies.

    Defaults follow the paper's experimental setup (Section IV-A):
    size 0.5 um, pitch 1.0 um, R = 0.5 ohm, C = 0.2 fF.
    """

    size_um: float = 0.5
    pitch_um: float = 1.0
    resistance: float = 0.5
    capacitance: float = 0.2

    def __post_init__(self) -> None:
        if min(self.size_um, self.pitch_um, self.resistance, self.capacitance) <= 0:
            raise TechError("F2F via parameters must all be positive")


# Reference 28 nm per-layer electricals.  Lower metals: tight pitch and
# high resistance; intermediate metals 2x pitch; top metals thick with
# ~8x lower resistance.  These ratios are what give MLS its payoff.
_BASE_LAYERS = [
    # name, r_per_um, c_per_um, pitch_um, thick
    ("M1", 4.50, 0.200, 0.10, False),
    ("M2", 3.80, 0.190, 0.10, False),
    ("M3", 2.60, 0.180, 0.20, False),
    ("M4", 2.20, 0.175, 0.20, False),
    ("M5", 0.90, 0.165, 0.40, False),
    ("M6", 0.55, 0.160, 0.40, True),
    ("M7", 0.14, 0.150, 0.80, True),
    ("M8", 0.11, 0.145, 0.80, True),
]


class MetalStack:
    """Ordered BEOL stack of one die.

    Provides layer lookup by name/index, the pairing used by the layer
    assigner (layers are consumed in H/V pairs), and convenience
    accessors for the thick top metals shared with the PDN and MLS.
    """

    def __init__(self, layers: list[MetalLayer], via_r: float = 3.0,
                 via_c: float = 0.05):
        if not layers:
            raise TechError("metal stack must contain at least one layer")
        expected = list(range(1, len(layers) + 1))
        if [layer.index for layer in layers] != expected:
            raise TechError("metal layers must be supplied bottom-up with "
                            "contiguous 1-based indices")
        self.layers = list(layers)
        self.via_r = via_r    # inter-layer via resistance, ohm
        self.via_c = via_c    # inter-layer via capacitance, fF
        self._by_name = {layer.name: layer for layer in layers}
        if len(self._by_name) != len(layers):
            raise TechError("duplicate layer names in metal stack")

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self):
        return iter(self.layers)

    def layer(self, name_or_index: str | int) -> MetalLayer:
        """Fetch a layer by ``"M3"`` or by 1-based index."""
        if isinstance(name_or_index, int):
            if not 1 <= name_or_index <= len(self.layers):
                raise TechError(f"layer index {name_or_index} out of range "
                                f"1..{len(self.layers)}")
            return self.layers[name_or_index - 1]
        try:
            return self._by_name[name_or_index]
        except KeyError:
            raise TechError(f"unknown metal layer {name_or_index!r}") from None

    @property
    def top(self) -> MetalLayer:
        """The top-most (thickest) layer — the paper's "M-T"."""
        return self.layers[-1]

    def thick_layers(self) -> list[MetalLayer]:
        """Layers flagged thick (PDN + MLS landing resource)."""
        return [layer for layer in self.layers if layer.thick]

    def pairs(self) -> list[tuple[MetalLayer, MetalLayer]]:
        """H/V layer pairs bottom-up, used by length-based assignment.

        An odd top layer pairs with itself (still routable, both
        directions at halved capacity).
        """
        out: list[tuple[MetalLayer, MetalLayer]] = []
        i = 0
        while i < len(self.layers):
            if i + 1 < len(self.layers):
                out.append((self.layers[i], self.layers[i + 1]))
                i += 2
            else:
                out.append((self.layers[i], self.layers[i]))
                i += 1
        return out

    def stack_via_path(self, from_index: int, to_index: int) -> tuple[float, float]:
        """(R, C) of the via stack climbing between two layer indices."""
        hops = abs(from_index - to_index)
        return hops * self.via_r, hops * self.via_c

    def describe_span(self, lo: int, hi: int) -> str:
        """Human-readable span like ``"M1-4"`` used in Table I strings."""
        if lo == hi:
            return f"M{lo}"
        return f"M{lo}-{hi}"


def default_stack(node: TechNode, num_layers: int = 6,
                  wire_scale: float = 4.0) -> MetalStack:
    """Build the standard BEOL stack for *node* with *num_layers* metals.

    The node's ``wire_r_scale`` / ``wire_c_scale`` apply to the lower
    (thin) metals only: top thick metals are similar across nodes in
    practice, and keeping them unscaled preserves the paper's central
    asymmetry — a 16 nm die's local wires are slow, but the 28 nm
    neighbour's M5-M6 borrowed through MLS are fast for everyone.

    ``wire_scale`` compensates the reproduction's instance-count
    scale-down: our benchmarks have ~20x fewer cells than the paper's,
    so the floorplan (and every route) is linearly smaller, which
    would make wire RC negligible against gate delay — a regime where
    MLS could not matter.  Scaling every layer's per-um R and C by
    *wire_scale* makes one floorplan micrometre represent
    ``wire_scale`` physical micrometres of wiring, restoring the
    paper's mm-die electrical regime (see DESIGN.md section 5).
    """
    if not 2 <= num_layers <= len(_BASE_LAYERS):
        raise TechError(f"num_layers must be in 2..{len(_BASE_LAYERS)}")
    if wire_scale <= 0:
        raise TechError("wire_scale must be positive")
    layers = []
    for i, (name, r, c, pitch, thick) in enumerate(_BASE_LAYERS[:num_layers]):
        if not thick:
            r = r * node.wire_r_scale
            c = c * node.wire_c_scale
        r *= wire_scale
        c *= wire_scale
        direction = "H" if i % 2 == 0 else "V"
        layers.append(MetalLayer(name=name, index=i + 1, r_per_um=r,
                                 c_per_um=c, pitch_um=pitch,
                                 direction=direction, thick=thick))
    # Mark the top layer thick regardless, so every stack exposes an
    # MLS/PDN resource (a 6-layer stack ends at thick M6).
    top = layers[-1]
    if not top.thick:
        layers[-1] = MetalLayer(name=top.name, index=top.index,
                                r_per_um=top.r_per_um, c_per_um=top.c_per_um,
                                pitch_um=top.pitch_um, direction=top.direction,
                                thick=True)
    return MetalStack(layers)
